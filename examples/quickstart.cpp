// Quickstart: monitor one person's breathing for a minute.
//
// Builds the Table-I default scene (one sitting user, three tags, 4 m
// from the antenna, 10 bpm metronome), collects the reader's low-level
// data, runs the TagBreathe analysis, and prints what it found.
//
//   $ ./quickstart [rate_bpm] [distance_m]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "core/monitor.hpp"
#include "experiments/scenario.hpp"

using namespace tagbreathe;

int main(int argc, char** argv) {
  const double rate_bpm = argc > 1 ? std::atof(argv[1]) : 10.0;
  const double distance_m = argc > 2 ? std::atof(argv[2]) : 4.0;

  std::printf("TagBreathe quickstart: %.0f bpm metronome, %.1f m range\n\n",
              rate_bpm, distance_m);

  // 1. A scene: one subject wearing the 3-tag array, a reader antenna at
  //    the origin. (With real hardware this would be an LLRP connection;
  //    see the llrp_live example.)
  experiments::ScenarioConfig scene;
  scene.distance_m = distance_m;
  scene.users[0].rate_bpm = rate_bpm;
  scene.duration_s = 60.0;
  scene.seed = 2026;
  experiments::Scenario scenario(scene);

  // 2. Collect one minute of low-level reads.
  const core::ReadStream reads = scenario.run();
  std::printf("collected %zu low-level reads (%.1f reads/s)\n", reads.size(),
              static_cast<double>(reads.size()) / scene.duration_s);

  // 3. Analyse: demux -> phase deltas (Eq. 3) -> fusion (Eq. 6) ->
  //    low-pass extraction -> zero-crossing rate (Eq. 5).
  core::BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  if (analyses.empty()) {
    std::printf("no monitored users seen\n");
    return 1;
  }

  for (const auto& a : analyses) {
    std::printf("\nuser %llu (via antenna %u, %zu reads, %zu tag streams)\n",
                static_cast<unsigned long long>(a.user_id), a.antenna_used,
                a.reads_used, a.streams_used);
    std::printf("  breathing rate: %.2f bpm (%s)\n", a.rate.rate_bpm,
                a.rate.reliable ? "reliable" : "low confidence");
    std::printf("  true rate:      %.2f bpm -> error %.2f bpm\n", rate_bpm,
                std::abs(a.rate.rate_bpm - rate_bpm));
    std::printf("  breath signal:  %s\n",
                common::sparkline(a.breath.values()).c_str());
    std::printf("  zero crossings: %zu in %.0f s\n", a.rate.crossings.size(),
                a.window_s);
  }
  return 0;
}
