// Hospital-ward scenario: four patients monitored at once.
//
// The paper's headline capability is *multi-user* monitoring: the Gen2
// MAC separates every tag's backscatter, and the Fig. 9 EPC scheme lets
// the analysis group streams per patient. Here four patients sit/lie at
// different ranges with different breathing rates (one has a scheduled
// rate change, as after exertion); two round-robin antennas cover the
// ward. A realtime pipeline prints a rate board every 10 s.
#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "experiments/scenario.hpp"

using namespace tagbreathe;

int main() {
  std::printf("TagBreathe ward monitor: 4 patients, 2 antennas, 3 min\n\n");

  experiments::ScenarioConfig scene;
  scene.duration_s = 180.0;
  scene.distance_m = 3.0;
  scene.num_antennas = 2;
  scene.seed = 99;
  scene.users.clear();
  {
    experiments::UserSpec bed1;  // resting adult, propped up in bed
    bed1.rate_bpm = 9.0;
    bed1.side_offset_m = 0.0;
    scene.users.push_back(bed1);

    experiments::UserSpec bed2;  // recovering: slows from 18 to 12 bpm
    bed2.schedule = {{0.0, 18.0}, {90.0, 12.0}};
    bed2.side_offset_m = 1.2;
    scene.users.push_back(bed2);

    experiments::UserSpec chair;  // visitor, chest breather
    chair.rate_bpm = 14.0;
    chair.chest_style = 0.9;
    chair.side_offset_m = 2.4;
    scene.users.push_back(chair);

    experiments::UserSpec standing;  // nurse charting
    standing.rate_bpm = 12.0;
    standing.posture = body::Posture::Standing;
    standing.side_offset_m = 3.6;
    scene.users.push_back(standing);
  }
  experiments::Scenario scenario(scene);

  // Stream the reads through the realtime pipeline and keep the latest
  // rate per user.
  std::map<std::uint64_t, double> board;
  std::map<std::uint64_t, bool> reliable;
  core::PipelineConfig pcfg;
  pcfg.window_s = 60.0;  // a longer window steadies multi-user estimates
  core::RealtimePipeline pipeline(
      pcfg, [&](const core::PipelineEvent& e) {
        if (e.kind == core::PipelineEventKind::RateUpdate) {
          board[e.user_id] = e.rate_bpm;
          reliable[e.user_id] = e.reliable;
        }
      });

  double next_print = 30.0;
  scenario.reader().run(scene.duration_s, [&](const core::TagRead& read) {
    pipeline.push(read);
    if (read.time_s >= next_print) {
      std::printf("t = %3.0f s |", read.time_s);
      for (const auto& [user, rate] : board)
        std::printf(" patient %llu: %5.1f bpm%s |",
                    static_cast<unsigned long long>(user), rate,
                    reliable[user] ? "" : "?");
      std::printf("\n");
      next_print += 30.0;
    }
  });

  std::printf("\nfinal board vs ground truth:\n");
  common::ConsoleTable table({"patient", "estimated [bpm]", "true [bpm]",
                              "posture"});
  for (std::size_t u = 0; u < scene.users.size(); ++u) {
    const double truth =
        scenario.subject(u).breathing().schedule().mean_rate_bpm(
            scene.duration_s - 30.0, scene.duration_s);
    table.add_row({std::to_string(u + 1), common::fmt(board[u + 1], 1),
                   common::fmt(truth, 1),
                   body::posture_name(scene.users[u].posture)});
    (void)truth;
  }
  table.print();
  return 0;
}
