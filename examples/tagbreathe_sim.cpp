// tagbreathe_sim — command-line front end to the whole system.
//
//   tagbreathe_sim run <scenario.ini>            simulate + analyse
//   tagbreathe_sim record <scenario.ini> <out.csv>  simulate -> capture file
//   tagbreathe_sim analyze <capture.csv>         analyse a capture
//   tagbreathe_sim stats <capture.csv>           breath-by-breath statistics
//   tagbreathe_sim print-defaults                emit a template scenario.ini
//
// The capture format is the plain CSV of core/replay.hpp, so captures can
// come from this simulator or from a real reader bridge.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.hpp"
#include "core/breath_stats.hpp"
#include "core/monitor.hpp"
#include "core/replay.hpp"
#include "experiments/scenario_io.hpp"

using namespace tagbreathe;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tagbreathe_sim run <scenario.ini>\n"
               "  tagbreathe_sim record <scenario.ini> <out.csv>\n"
               "  tagbreathe_sim analyze <capture.csv>\n"
               "  tagbreathe_sim stats <capture.csv>\n"
               "  tagbreathe_sim print-defaults\n");
  return 2;
}

void print_analyses(const std::vector<core::UserAnalysis>& analyses) {
  common::ConsoleTable table({"user", "rate [bpm]", "reliable", "antenna",
                              "reads", "crossings"});
  for (const auto& a : analyses) {
    table.add_row({std::to_string(a.user_id),
                   common::fmt(a.rate.rate_bpm, 2),
                   a.rate.reliable ? "yes" : "no",
                   std::to_string(a.antenna_used),
                   std::to_string(a.reads_used),
                   std::to_string(a.rate.crossings.size())});
  }
  table.print();
}

int cmd_run(const std::string& ini_path) {
  const auto cfg = experiments::scenario_from_ini_file(ini_path);
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();
  std::printf("simulated %.0f s: %zu reads (%.1f/s)\n", cfg.duration_s,
              reads.size(),
              static_cast<double>(reads.size()) / cfg.duration_s);
  core::BreathMonitor monitor;
  auto analyses = monitor.analyze(reads);
  // Contending item tags carry out-of-range user IDs; drop them from the
  // monitoring report.
  std::erase_if(analyses, [&cfg](const core::UserAnalysis& a) {
    return a.user_id < 1 || a.user_id > cfg.users.size();
  });
  print_analyses(analyses);
  // Ground truth comparison where available.
  for (const auto& a : analyses) {
    if (a.user_id >= 1 && a.user_id <= cfg.users.size()) {
      const double truth = scenario.true_rate_bpm(a.user_id - 1);
      std::printf("user %llu: true %.2f bpm, error %.2f bpm\n",
                  static_cast<unsigned long long>(a.user_id), truth,
                  std::abs(a.rate.rate_bpm - truth));
    }
  }
  return 0;
}

int cmd_record(const std::string& ini_path, const std::string& out_path) {
  const auto cfg = experiments::scenario_from_ini_file(ini_path);
  experiments::Scenario scenario(cfg);
  core::ReadRecorder recorder(out_path);
  scenario.reader().run(cfg.duration_s, [&recorder](const core::TagRead& r) {
    recorder.record(r);
  });
  std::printf("recorded %zu reads to %s\n", recorder.recorded(),
              out_path.c_str());
  return 0;
}

int cmd_analyze(const std::string& capture_path) {
  const auto reads = core::load_reads_csv(capture_path);
  std::printf("loaded %zu reads from %s\n", reads.size(),
              capture_path.c_str());
  core::BreathMonitor monitor;
  print_analyses(monitor.analyze(reads));
  return 0;
}

int cmd_stats(const std::string& capture_path) {
  const auto reads = core::load_reads_csv(capture_path);
  core::BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  for (const auto& a : analyses) {
    const auto stats = core::analyze_breaths(a.breath.samples, a.rate);
    std::printf("\nuser %llu: %zu breaths\n",
                static_cast<unsigned long long>(a.user_id),
                stats.breaths.size());
    common::ConsoleTable table({"metric", "value"});
    table.add_row({std::string("mean rate [bpm]"),
                   common::fmt(stats.mean_rate_bpm, 2)});
    table.add_row({std::string("interval SD [s]"),
                   common::fmt(stats.interval_sd_s, 3)});
    table.add_row({std::string("interval RMSSD [s]"),
                   common::fmt(stats.interval_rmssd_s, 3)});
    table.add_row({std::string("interval CV"),
                   common::fmt(stats.interval_cv, 3)});
    table.add_row({std::string("mean amplitude [mm]"),
                   common::fmt(stats.mean_amplitude * 1e3, 2)});
    table.add_row({std::string("pattern"),
                   core::is_irregular(stats) ? "irregular" : "regular"});
    table.print();
    const auto pauses = core::detect_pauses(stats);
    for (const auto& p : pauses)
      std::printf("  pause at %.1f s lasting %.1f s\n", p.start_s,
                  p.duration_s);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "run" && argc == 3) return cmd_run(argv[2]);
    if (cmd == "record" && argc == 4) return cmd_record(argv[2], argv[3]);
    if (cmd == "analyze" && argc == 3) return cmd_analyze(argv[2]);
    if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
    if (cmd == "print-defaults" && argc == 2) {
      std::printf("%s", experiments::scenario_to_ini(
                            experiments::ScenarioConfig{})
                            .c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
