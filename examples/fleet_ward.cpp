// Fault-tolerant reader fleet over a hospital ward (ISSUE 6).
//
// 16 simulated readers front a 96-bed ward, hashed onto 4 pipeline
// shards. Mid-run, reader 3 is killed for 8 s (PoE switch reboot) and
// reader 9 flaps twice; a handful of ambulatory users roam between
// reader coverage zones, exercising the overlap duplicate suppression
// and cross-reader handoff. The fleet keeps every bed monitored —
// failing streams over to live readers, rebalancing the dead readers'
// users and reviving readers when their link returns — and the merged
// per-ward event stream stays deterministic. The run ends with a
// Prometheus scrape of the fleet's labelled instruments: the dashboard
// a ward nurse station would poll.
#include <cstdio>
#include <string>

#include "core/chaos.hpp"
#include "fleet/fleet_soak.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"

using namespace tagbreathe;

int main() {
  std::printf("TagBreathe reader fleet: 96-bed ward, 16 readers, 4 shards\n");
  std::printf("reader 3 dark t=[20,28) s; reader 9 flaps twice; "
              "6 users roam\n\n");

  obs::Observability hub;

  fleet::FleetSoakConfig cfg;
  cfg.n_readers = 16;
  cfg.n_users = 96;
  cfg.duration_s = 60.0;
  cfg.read_rate_hz = 2.0;
  cfg.fleet.n_shards = 4;
  cfg.fleet.shard_threads = 2;
  cfg.fleet.ingest.max_users = 0;  // ward census is far above the default cap
  cfg.fleet.pipeline.window_s = 20.0;
  cfg.fleet.pipeline.update_period_s = 2.0;
  cfg.fleet.pipeline.warmup_s = 8.0;
  cfg.roaming_users = 6;
  cfg.roam_period_s = 15.0;
  cfg.record_event_log = false;
  cfg.observability = &hub;
  cfg.reader_chaos.push_back(
      core::ReaderChaosConfig::blackout(3, 20.0, 8.0, 101));
  cfg.reader_chaos.push_back(
      core::ReaderChaosConfig::flap(9, 10.0, 12.0, 3.0, 2, 102));

  const fleet::FleetSoakReport report = fleet::run_fleet_soak(cfg);

  std::printf("--- fleet run: %s ---\n", report.ok() ? "OK" : "VIOLATIONS");
  for (const std::string& v : report.violations)
    std::printf("  violation: %s\n", v.c_str());
  const fleet::FleetCounters& c = report.counters;
  std::printf("admitted %zu  routed %zu  overlap dups suppressed %zu\n",
              c.admitted, c.routed, c.handoff_suppressed);
  std::printf("readers died %zu  revived %zu  handoffs %zu\n",
              c.readers_died, c.readers_revived, c.handoffs);
  std::printf("users rebalanced %zu (deadline misses %zu)  "
              "parked %zu  restored %zu\n",
              c.users_rebalanced, c.rebalance_deadline_misses, c.users_parked,
              c.users_restored);
  std::printf("merged events %zu (log hash %016llx)\n\n", report.events,
              static_cast<unsigned long long>(report.event_log_hash));

  std::printf("--- nurse-station scrape (fleet_* series) ---\n");
  const std::string scrape = obs::to_prometheus(hub.snapshot());
  // Print only the fleet families; the full exposition also carries the
  // pipeline and trace-ring series.
  std::size_t pos = 0;
  while (pos < scrape.size()) {
    const std::size_t eol = scrape.find('\n', pos);
    const std::string line = scrape.substr(pos, eol - pos);
    if (line.find("fleet_") != std::string::npos)
      std::printf("%s\n", line.c_str());
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return report.ok() ? 0 : 1;
}
