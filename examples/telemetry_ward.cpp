// Live ward telemetry (ISSUE 7).
//
// An 8-reader, 32-bed ward runs with the TelemetryService tapped into
// the fleet's merged event stream. Four nurse-station clients dial in
// over the framed wire protocol: a ward dashboard (ward 1 filter), a
// bedside viewer pinned to user 7, an alarm panel (AlarmOnly), and a
// deliberately slow consumer that stops reading mid-run — the
// slow-consumer ladder sheds it with an explicit reason and its
// jittered backoff redials with a resume cursor, replaying the gap
// from the server's ring. Reader 2 goes dark for 6 s mid-run to show
// that the monitoring plane rides through fleet failover untouched.
// The run ends with an HTTP scrape of /metrics on the SAME listener —
// the Prometheus view a ward ops team would poll.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "fleet/fleet_soak.hpp"
#include "llrp/transport.hpp"
#include "obs/observability.hpp"
#include "telemetry/client.hpp"
#include "telemetry/service.hpp"

using namespace tagbreathe;
using telemetry::FilterKind;
using telemetry::FilterSpec;
using telemetry::OverflowPolicy;

namespace {

constexpr std::size_t kUsersPerWard = 8;

struct Station {
  const char* name;
  telemetry::TelemetryClientConfig cfg;
  std::unique_ptr<telemetry::TelemetryClient> client;
  std::vector<std::unique_ptr<llrp::DuplexChannel>> channels;
  std::size_t events = 0;
  /// Stops stepping inside [stall_from_s, stall_until_s): a consumer
  /// that hangs without closing its socket.
  double stall_from_s = -1.0;
  double stall_until_s = -1.0;
};

}  // namespace

int main() {
  std::printf("TagBreathe ward telemetry: 32 beds, 8 readers + 1 service\n");
  std::printf("reader 2 dark t=[20,26) s; the lab display stalls "
              "t=[15,35) s and is shed + resumed\n\n");

  obs::Observability hub;

  telemetry::TelemetryServiceConfig scfg;
  scfg.bus.queue_capacity = 64;
  scfg.bus.shed_after_lagging_ticks = 8;
  // Generous heartbeat budget so the stalled display is shed by the
  // slow-consumer ladder (backlog judgement), not the silence timer.
  scfg.heartbeat_timeout_s = 10.0;
  scfg.max_inflight_bytes = 2048;
  telemetry::TelemetryService service(scfg, [](std::uint64_t user) {
    return static_cast<std::uint32_t>((user - 1) / kUsersPerWard);
  });
  service.bind_observability(hub);

  std::vector<Station> stations(4);
  stations[0].name = "ward-1 dashboard";
  stations[0].cfg.filter = {FilterKind::Ward, 1};
  stations[1].name = "bed of user 7";
  stations[1].cfg.filter = {FilterKind::User, 7};
  stations[2].name = "alarm panel";
  stations[2].cfg.filter = {FilterKind::AlarmOnly, 0};
  stations[3].name = "lab display (stalls)";
  stations[3].cfg.filter = {FilterKind::All, 0};
  stations[3].cfg.policy = OverflowPolicy::DropOldest;
  stations[3].stall_from_s = 15.0;
  stations[3].stall_until_s = 35.0;
  for (std::size_t i = 0; i < stations.size(); ++i) {
    Station& st = stations[i];
    st.cfg.seed = 100 + i;
    st.client = std::make_unique<telemetry::TelemetryClient>(
        st.cfg,
        [&st, &service](double now_s) -> llrp::ByteChannel* {
          st.channels.push_back(std::make_unique<llrp::DuplexChannel>());
          service.accept(*st.channels.back(), now_s);
          return st.channels.back().get();
        },
        [&st](const telemetry::TelemetryEvent&) { ++st.events; });
  }

  fleet::FleetSoakConfig cfg;
  cfg.n_readers = 8;
  cfg.n_users = 32;
  cfg.duration_s = 60.0;
  cfg.read_rate_hz = 2.0;
  cfg.fleet.n_shards = 2;
  cfg.fleet.ingest.max_users = 0;
  cfg.fleet.pipeline.window_s = 20.0;
  cfg.fleet.pipeline.update_period_s = 2.0;
  cfg.fleet.pipeline.warmup_s = 8.0;
  cfg.record_event_log = false;
  cfg.observability = &hub;
  cfg.reader_chaos.push_back(
      core::ReaderChaosConfig::blackout(2, 20.0, 6.0, 77));
  cfg.event_tap = [&service](const fleet::FleetEvent& fe) {
    service.bus().publish(static_cast<std::uint16_t>(fe.shard), fe.event);
  };
  cfg.pump_tap = [&](double now_s) {
    for (Station& st : stations) {
      if (now_s >= st.stall_from_s && now_s < st.stall_until_s) continue;
      st.client->step(now_s);
    }
    service.pump(now_s);
  };

  const fleet::FleetSoakReport report = fleet::run_fleet_soak(cfg);

  // Let the stations drain what is still queued server-side.
  for (int i = 0; i < 32; ++i) {
    const double t = cfg.duration_s + 0.25 * (i + 1);
    for (Station& st : stations) st.client->step(t);
    service.pump(t);
  }

  std::printf("--- fleet run: %s ---\n", report.ok() ? "OK" : "VIOLATIONS");
  std::printf("fleet events %zu  published to bus %llu\n\n", report.events,
              static_cast<unsigned long long>(
                  service.bus().counters().events_published));
  std::printf("%-22s %9s %6s %6s %6s %8s %9s\n", "station", "delivered",
              "dials", "sheds", "gaps", "replayed", "ordering");
  for (const Station& st : stations) {
    const telemetry::ClientCounters& c = st.client->counters();
    std::printf("%-22s %9llu %6llu %6llu %6llu %8llu %9llu\n", st.name,
                static_cast<unsigned long long>(c.delivered),
                static_cast<unsigned long long>(c.dials),
                static_cast<unsigned long long>(c.sheds_received),
                static_cast<unsigned long long>(c.gap_dropped),
                static_cast<unsigned long long>(c.replayed),
                static_cast<unsigned long long>(c.ordering_violations));
  }

  // The same listener answers HTTP: scrape a few series the ops
  // dashboard graphs.
  llrp::DuplexChannel scrape;
  service.accept(scrape, cfg.duration_s + 9.0);
  const std::string request = "GET /metrics HTTP/1.1\r\n\r\n";
  scrape.write(llrp::Side::Client,
               std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(request.data()),
                   request.size()));
  service.pump(cfg.duration_s + 9.0);
  const std::vector<std::uint8_t> raw = scrape.read(llrp::Side::Client);
  const std::string response(raw.begin(), raw.end());
  std::printf("\n--- GET /metrics (same port as the stream) ---\n");
  for (const char* needle :
       {"telemetry_events_published_total",
        "telemetry_sheds_total{reason=\"SlowConsumer\"}",
        "telemetry_replayed_events_total", "fleet_readers_dead"}) {
    // Skip past the "# TYPE <name> ..." comment to the sample line.
    std::size_t at = response.find(needle);
    if (at != std::string::npos && at > 0 && response[at - 1] != '\n')
      at = response.find(needle, at + 1);
    if (at == std::string::npos) continue;
    const std::size_t end = response.find('\n', at);
    std::printf("%s\n", response.substr(at, end - at).c_str());
  }
  service.shutdown();

  const bool shed_and_resumed =
      stations[3].client->counters().sheds_received > 0 &&
      stations[3].client->counters().dials > 1;
  std::printf("\nlab display shed + resumed with cursor: %s\n",
              shed_and_resumed ? "yes" : "no");
  return report.ok() && shed_and_resumed ? 0 : 1;
}
