// Reader-SDK integration: drive TagBreathe through the llrp-lite wire,
// over a deliberately hostile transport.
//
// This mirrors the paper's software stack (Sec. V) as deployed: the host
// configures the reader over LLRP (ADD/ENABLE/START ROSpec), the reader
// streams RO_ACCESS_REPORT batches with the vendor low-level-data
// parameters, and the client decodes them into TagRead records feeding
// the realtime pipeline. Between the two sits a FaultyChannel injecting
// the failures a real reader link produces — bit corruption, latency
// bursts and periodic hard disconnects — and a SessionSupervisor that
// dials, re-arms the ROSpec and resyncs the framer on its own. Swap the
// in-memory channel for a TCP socket and the simulator for an R420 and
// the host side is unchanged.
#include <cmath>
#include <cstdio>
#include <memory>

#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "llrp/session.hpp"

using namespace tagbreathe;

int main() {
  std::printf(
      "TagBreathe over llrp-lite: self-healing session on a faulty wire\n\n");

  // Radio side: one subject, 3 tags, 3 m.
  body::SubjectConfig scfg;
  scfg.user_id = 1;
  scfg.position = {3.0, 0.0, 0.0};
  scfg.heading_rad = common::kPi;
  auto subject = std::make_unique<body::Subject>(
      scfg, body::BreathingModel(body::MetronomeSchedule(13.0), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 3; ++i) {
    tags.push_back(std::make_unique<rfid::BodyTag>(
        rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i + 1)),
        subject.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  }
  rfid::ReaderConfig rcfg;
  rcfg.seed = 4242;
  auto sim = std::make_unique<rfid::ReaderSim>(rcfg, std::move(tags));

  // Transport faults: ~0.2% of bytes corrupted, occasional 0.4 s latency
  // bursts, and a hard 2 s disconnect every 40 s. Every draw comes from
  // the seed, so this run reproduces byte-for-byte.
  llrp::SupervisedSessionConfig cfg;
  cfg.faults.seed = 7;
  cfg.faults.bit_flip_prob = 0.002;
  cfg.faults.latency_burst_prob = 0.02;
  cfg.faults.latency_s = 0.4;
  cfg.faults.disconnect_period_s = 40.0;
  cfg.faults.disconnect_duration_s = 2.0;

  // No start()/stop(): the supervisor dials and re-arms on its own.
  llrp::SupervisedSession session(cfg, std::move(sim));

  core::RealtimePipeline pipeline(
      core::PipelineConfig{}, [](const core::PipelineEvent& e) {
        if (e.kind == core::PipelineEventKind::RateUpdate &&
            std::fmod(e.time_s, 10.0) < 1.0) {
          std::printf("t=%5.1f s  user %llu  %.1f bpm  signal=%s%s\n",
                      e.time_s,
                      static_cast<unsigned long long>(e.user_id), e.rate_bpm,
                      core::signal_health_name(e.health),
                      e.reliable ? "" : " (settling)");
        } else if (e.kind == core::PipelineEventKind::SignalLost) {
          std::printf("t=%5.1f s  user %llu  SIGNAL LOST\n", e.time_s,
                      static_cast<unsigned long long>(e.user_id));
        } else if (e.kind == core::PipelineEventKind::SignalRecovered) {
          std::printf("t=%5.1f s  user %llu  signal recovered\n", e.time_s,
                      static_cast<unsigned long long>(e.user_id));
        }
      });
  // Host-side sanity gate. Salvage decoding recovers most reads from a
  // corrupted report, but a bit flip that lands in the EPC or timestamp
  // words survives decoding — inventing a phantom user, or stamping a
  // read years ahead that would drag the pipeline clock with it. Known
  // monitored users only, and legit reads are never from the future
  // (latency only delays), so the accept window is tight ahead.
  double last_pushed = -1.0;
  session.client().set_read_callback([&](const core::TagRead& read) {
    if (read.epc.user_id() != 1) return;
    const double now = session.now_s();
    if (read.time_s < now - 5.0 || read.time_s > now + 0.05) return;
    if (read.time_s < last_pushed) return;
    last_pushed = read.time_s;
    pipeline.push(read);
  });

  // Pump the connection in 1 s slices, as a socket event loop would,
  // logging supervisor state transitions as they happen.
  llrp::SessionState last_state = session.supervisor().state();
  for (int s = 0; s < 132; ++s) {
    session.advance(1.0);
    pipeline.advance_to(session.now_s());
    const llrp::SessionState state = session.supervisor().state();
    if (state != last_state) {
      std::printf("t=%5.1f s  session %s -> %s\n", session.now_s(),
                  llrp::session_state_name(last_state),
                  llrp::session_state_name(state));
      last_state = state;
    }
  }

  const auto& health = session.supervisor().health();
  const auto& wire = session.channel().counters();
  std::printf("\nwire:       %zu bytes, %zu corrupted, %zu disconnects\n",
              wire.bytes_written, wire.bytes_corrupted, wire.disconnects);
  std::printf("supervisor: %zu reconnects, %zu ROSpec re-arms, "
              "%zu watchdog fires, %zu handshake retransmits\n",
              health.reconnects, health.rearm_count, health.watchdog_fires,
              health.handshake_retransmits);
  std::printf("client:     %zu reports, %zu reads decoded, %zu framer "
              "resyncs, %zu decode errors, %zu reads dropped\n",
              session.client().reports_received(),
              session.client().reads_decoded(),
              session.client().framer_stats().resyncs,
              session.client().decode_errors(),
              session.client().reads_dropped());
  return 0;
}
