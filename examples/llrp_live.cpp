// Reader-SDK integration: drive TagBreathe through the llrp-lite wire.
//
// This mirrors the paper's software stack (Sec. V): the host configures
// the reader over LLRP (ADD/ENABLE/START ROSpec), the reader streams
// RO_ACCESS_REPORT batches with the vendor low-level-data parameters, and
// the client decodes them into TagRead records feeding the realtime
// pipeline. Swap the in-memory channel for a TCP socket and the
// simulator for an R420 and the host side is unchanged.
#include <cstdio>
#include <memory>

#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "llrp/session.hpp"

using namespace tagbreathe;

int main() {
  std::printf("TagBreathe over llrp-lite: configure, inventory, decode\n\n");

  // Radio side: one subject, 3 tags, 3 m.
  body::SubjectConfig scfg;
  scfg.user_id = 1;
  scfg.position = {3.0, 0.0, 0.0};
  scfg.heading_rad = common::kPi;
  auto subject = std::make_unique<body::Subject>(
      scfg, body::BreathingModel(body::MetronomeSchedule(13.0), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 3; ++i) {
    tags.push_back(std::make_unique<rfid::BodyTag>(
        rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i + 1)),
        subject.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  }
  rfid::ReaderConfig rcfg;
  rcfg.seed = 4242;
  auto sim = std::make_unique<rfid::ReaderSim>(rcfg, std::move(tags));

  // Protocol session: client <-> reader endpoint over the in-memory wire.
  llrp::LlrpSession session(llrp::ClientConfig{}, llrp::EndpointConfig{},
                            std::move(sim));
  std::printf("handshake: ADD_ROSPEC / ENABLE_ROSPEC / START_ROSPEC ... ");
  session.start();
  std::printf("ok\n");

  core::RealtimePipeline pipeline(
      core::PipelineConfig{}, [](const core::PipelineEvent& e) {
        if (e.kind == core::PipelineEventKind::RateUpdate &&
            std::fmod(e.time_s, 10.0) < 1.0) {
          std::printf("t=%5.1f s  user %llu  %.1f bpm%s\n", e.time_s,
                      static_cast<unsigned long long>(e.user_id), e.rate_bpm,
                      e.reliable ? "" : " (settling)");
        }
      });
  session.client().set_read_callback(
      [&pipeline](const core::TagRead& read) { pipeline.push(read); });

  // Pump the connection in 1 s slices, as a socket event loop would.
  for (int s = 0; s < 90; ++s) session.advance(1.0);

  std::printf("\nreports received: %zu, reads decoded: %zu\n",
              session.client().reports_received(),
              session.client().reads_decoded());
  session.stop();
  std::printf("ROSpec stopped; connection idle.\n");
  return 0;
}
