// Crash-injection demo for the durability layer: run the deterministic
// soak population through a DurableMonitor, kill the process state at a
// seeded crash point (mid-append, mid-snapshot-write, mid-rename, ...),
// recover from the on-disk journal + snapshots, and verify the
// recovered event stream converges with an uninterrupted golden run.
//
//   ./build/examples/durable_monitor [crash_point 0-4|all] [minutes]
//
// Exits non-zero if any kill point fails to recover or the recovered
// run diverges from the golden run after the replay window refills.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "core/journal.hpp"
#include "core/recovery.hpp"

using namespace tagbreathe;
namespace fs = std::filesystem;

namespace {

void print_durability(const core::DurabilityCounters& c) {
  std::printf("  journal appended/commits   %zu / %zu\n",
              static_cast<std::size_t>(c.journal_records_appended),
              static_cast<std::size_t>(c.journal_commits));
  std::printf("  journal bytes/segments     %zu / %zu (+%zu pruned)\n",
              static_cast<std::size_t>(c.journal_bytes_written),
              static_cast<std::size_t>(c.journal_segments_created),
              static_cast<std::size_t>(c.journal_segments_pruned));
  std::printf("  replayed / quarantined     %zu / %zu\n",
              static_cast<std::size_t>(c.replay_records),
              static_cast<std::size_t>(c.replay_quarantined));
  std::printf("  corrupt / torn tails       %zu / %zu\n",
              static_cast<std::size_t>(c.journal_records_corrupt),
              static_cast<std::size_t>(c.journal_truncated_tails));
  std::printf("  snapshots written/loaded   %zu / %zu (%zu rejected)\n",
              static_cast<std::size_t>(c.snapshots_written),
              static_cast<std::size_t>(c.snapshots_loaded),
              static_cast<std::size_t>(c.snapshots_rejected));
}

int run_one(core::CrashPoint point, double minutes) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("tagbreathe_durable_monitor_" + std::to_string(::getpid()) + "_" +
       std::to_string(static_cast<int>(point)));
  fs::create_directories(dir);

  core::CrashSoakConfig cfg;
  cfg.soak.n_users = 2;
  cfg.soak.tags_per_user = 2;
  cfg.soak.duration_s = minutes * 60.0;
  cfg.soak.pipeline.window_s = 15.0;
  cfg.soak.pipeline.warmup_s = 5.0;
  cfg.durability.directory = dir.string();
  cfg.durability.snapshot_period_s = 10.0;
  cfg.durability.journal.commit_batch = 32;
  cfg.point = point;
  cfg.crash_after_s = cfg.soak.duration_s / 2.0;
  cfg.converge_margin_s = 15.0;

  std::printf("== kill point: %s (crash after %.0fs of %.0fs) ==\n",
              core::crash_point_name(point), cfg.crash_after_s,
              cfg.soak.duration_s);
  const core::CrashSoakReport report = core::run_crash_soak(cfg);

  std::printf("  crashed at t=%.3fs, recovered=%s\n", report.crash_time_s,
              report.recovered ? "yes" : "NO");
  std::printf("  snapshot loaded            %s (seq %zu, %zu rejected)\n",
              report.recovery.snapshot_loaded ? "yes" : "no",
              static_cast<std::size_t>(report.recovery.snapshot_seq),
              report.recovery.snapshots_rejected.size());
  std::printf("  journal reads replayed     %zu (+%zu re-quarantined)\n",
              report.recovery.replayed_reads,
              report.recovery.replay_quarantined);
  std::printf("  resumed at t=%.3fs\n", report.recovery.resume_time_s);
  std::printf("  golden/recovered events    %zu / %zu (%zu compared)\n",
              report.golden_events, report.recovered_run_events,
              report.compared_events);
  print_durability(report.counters);

  std::error_code ec;
  fs::remove_all(dir, ec);

  if (!report.ok()) {
    std::printf("  VIOLATIONS (%zu):\n", report.violations.size());
    for (const std::string& v : report.violations)
      std::printf("    %s\n", v.c_str());
    return 1;
  }
  std::printf("  converged with the golden run.\n\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  const double minutes = argc > 2 ? std::atof(argv[2]) : 3.0;

  int failures = 0;
  if (which == "all") {
    for (std::size_t p = 0; p < core::kCrashPointCount; ++p)
      failures += run_one(static_cast<core::CrashPoint>(p), minutes);
  } else {
    const int p = std::atoi(which.c_str());
    if (p < 0 || static_cast<std::size_t>(p) >= core::kCrashPointCount) {
      std::fprintf(stderr, "usage: %s [crash_point 0-%zu|all] [minutes]\n",
                   argv[0], core::kCrashPointCount - 1);
      return 2;
    }
    failures += run_one(static_cast<core::CrashPoint>(p), minutes);
  }
  if (failures > 0) {
    std::printf("%d kill point(s) FAILED to recover cleanly.\n", failures);
    return 1;
  }
  std::printf("every kill point recovered and converged.\n");
  return 0;
}
