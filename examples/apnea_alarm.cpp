// Infant apnea alarm: the introduction's motivating application.
//
// A sleeping infant (lying, fast shallow breathing) is monitored through
// tags in the sleep garment. The breathing pauses twice — a short
// self-resolving pause and a long apnea. The realtime pipeline raises
// ApneaAlert when the extracted breath signal stops crossing zero while
// the tags are still being read (so it is a breathing pause, not a
// coverage problem), and SignalLost when the tags stop reporting.
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "experiments/scenario.hpp"

using namespace tagbreathe;

int main() {
  std::printf("TagBreathe apnea alarm: sleeping infant, 4 min\n");
  std::printf("breathing pauses scripted at t=90 s (8 s) and t=180 s (25 s)\n\n");

  experiments::ScenarioConfig scene;
  scene.duration_s = 240.0;
  scene.distance_m = 0.6;        // antenna mounted over the crib...
  scene.antenna_height_m = 2.0;  // ...looking down at the infant
  scene.seed = 7;
  scene.users[0].rate_bpm = 28.0;  // infant rate (faster than adults)
  scene.users[0].posture = body::Posture::Lying;
  scene.users[0].apneas = {{90.0, 8.0}, {180.0, 25.0}};
  experiments::Scenario scenario(scene);

  core::PipelineConfig pcfg;
  pcfg.apnea_silence_s = 8.0;  // alarm threshold
  // Infant rates are above the adult default band's midpoint; the
  // extractor's 0.67 Hz cutoff (40 bpm) still covers 28 bpm.
  std::vector<std::string> alarms;
  double last_rate = 0.0;
  core::RealtimePipeline pipeline(
      pcfg, [&](const core::PipelineEvent& e) {
        char line[128];
        switch (e.kind) {
          case core::PipelineEventKind::ApneaAlert:
            std::snprintf(line, sizeof(line),
                          "t=%6.1f s  *** APNEA ALARM: no breath for >%.0f s",
                          e.time_s, pcfg.apnea_silence_s);
            alarms.push_back(line);
            std::printf("%s\n", line);
            break;
          case core::PipelineEventKind::SignalLost:
            std::snprintf(line, sizeof(line),
                          "t=%6.1f s  ** tags unreadable (coverage loss)",
                          e.time_s);
            alarms.push_back(line);
            std::printf("%s\n", line);
            break;
          case core::PipelineEventKind::SignalRecovered:
            std::printf("t=%6.1f s  tags readable again\n", e.time_s);
            break;
          case core::PipelineEventKind::RateUpdate:
            last_rate = e.rate_bpm;
            break;
        }
      });

  double next_status = 30.0;
  scenario.reader().run(scene.duration_s, [&](const core::TagRead& read) {
    pipeline.push(read);
    if (read.time_s >= next_status) {
      std::printf("t=%6.1f s  breathing %.1f bpm\n", read.time_s, last_rate);
      next_status += 30.0;
    }
  });

  std::printf("\nsummary: %zu alarm(s) raised\n", alarms.size());
  std::printf("expected: the 25 s apnea at t=180 s must alarm; the 8 s pause "
              "at t=90 s sits at the threshold and may or may not.\n");
  return alarms.empty() ? 1 : 0;
}
