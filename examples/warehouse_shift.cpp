// Warehouse shift monitor: breath monitoring in a busy RFID environment.
//
// A worker wearing three factory-EPC tags (identities resolved through
// the Sec. IV-C mapping table — no EPC rewriting) shares the reader with
// tagged stock that continuously moves through the dock. Two operating
// modes are compared live:
//
//   phase 1 (0-60 s):  open inventory — stock contends for air time and
//                      the monitoring read rate collapses (Fig. 14);
//   phase 2 (60-120 s): the reader issues a Gen2 SELECT for the three
//                      monitoring tags — full rate returns while stock
//                      keeps moving (it just stops being read).
#include <cstdio>
#include <memory>

#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/demux.hpp"
#include "core/monitor.hpp"
#include "core/tag_registry.hpp"
#include "rfid/reader.hpp"

using namespace tagbreathe;

namespace {

struct Deployment {
  std::unique_ptr<body::Subject> worker;
  core::TagRegistry registry;
  rfid::Epc96 monitor_epcs[3];
};

std::vector<std::unique_ptr<rfid::TagBehavior>> build_tags(Deployment& dep) {
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  // The worker's tags carry factory EPCs; the registry maps them.
  const char* factory_hex[3] = {"30395dfa833114a0000000a1",
                                "30395dfa833114a0000000a2",
                                "30395dfa833114a0000000a3"};
  for (int i = 0; i < 3; ++i) {
    dep.monitor_epcs[i] = *rfid::Epc96::from_hex(factory_hex[i]);
    dep.registry.register_tag(dep.monitor_epcs[i], /*user=*/1,
                              static_cast<std::uint32_t>(i + 1));
    tags.push_back(std::make_unique<rfid::BodyTag>(
        dep.monitor_epcs[i], dep.worker.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  }
  // Stock: 40 tagged cartons, each passing through the dock for ~25 s.
  for (int i = 0; i < 40; ++i) {
    auto item = std::make_unique<rfid::StaticTag>(
        rfid::Epc96::from_user_tag(
            0xCAFE0000ULL + static_cast<std::uint64_t>(i),
            static_cast<std::uint32_t>(i)),
        common::Vec3{1.2 + 0.08 * i, (i % 2) ? 1.4 : -1.1,
                     0.4 + 0.05 * (i % 8)});
    item->set_presence_window(3.0 * i, 3.0 * i + 25.0);
    tags.push_back(std::move(item));
  }
  return tags;
}

}  // namespace

int main() {
  std::printf("TagBreathe warehouse shift: 1 worker, 40 cartons passing, "
              "2 min\n\n");

  Deployment dep;
  body::SubjectConfig sc;
  sc.user_id = 1;
  sc.position = {2.5, 0.0, 0.0};
  sc.heading_rad = common::kPi;
  dep.worker = std::make_unique<body::Subject>(
      sc, body::BreathingModel(body::MetronomeSchedule(13.0), {}));

  // Phase 1: open inventory.
  rfid::ReaderConfig open_cfg;
  open_cfg.seed = 321;
  rfid::ReaderSim open_sim(open_cfg, build_tags(dep));
  const auto open_reads = open_sim.run(60.0);

  // Phase 2: SELECT only the registered monitoring EPCs.
  rfid::ReaderConfig select_cfg;
  select_cfg.seed = 322;
  const core::TagRegistry& registry = dep.registry;
  select_cfg.select_filter = [&registry](const rfid::Epc96& epc) {
    return registry.lookup(epc).has_value();
  };
  rfid::ReaderSim select_sim(select_cfg, build_tags(dep));
  const auto select_reads = select_sim.run(60.0);

  core::BreathMonitor monitor;
  for (const auto& [label, reads] :
       {std::pair<const char*, const core::ReadStream&>{"open inventory",
                                                        open_reads},
        {"SELECT monitoring", select_reads}}) {
    std::size_t monitor_count = 0;
    for (const auto& r : reads)
      if (registry.lookup(r.epc)) ++monitor_count;

    core::StreamDemux demux;
    demux.set_registry(&dep.registry);
    demux.add(reads);
    const auto analysis = monitor.analyze_user(
        demux, 1, reads.front().time_s, reads.back().time_s);
    std::printf("%-17s: total %5.1f reads/s, monitoring %5.1f reads/s, "
                "rate %.1f bpm (true 13.0)\n",
                label, reads.size() / 60.0, monitor_count / 60.0,
                analysis.rate.rate_bpm);
  }
  std::printf("\nthe mapping table resolves factory EPCs; SELECT recovers "
              "the air time the stock was consuming.\n");
  return 0;
}
