// Deterministic chaos-scenario soak: drives a multi-user synthetic
// population through every composed failure mode (dropout, blackout,
// duplicates, reordering, timestamp skew, EPC corruption, burst
// overload) into the robust ingest front-end and checks the data-plane
// invariants. Exits non-zero on any violation, so it doubles as a soak
// gate in CI or an endurance run on a workstation:
//
//   ./build/examples/chaos_soak [seed] [minutes] [users] [durable_dir]
//
// Two runs with the same arguments print identical event statistics
// (seeded determinism end to end). With a fourth argument the stream is
// additionally journaled and snapshotted into that directory through
// the DurableMonitor, and the journal/snapshot counters join the
// summary — rerunning against a non-empty directory exercises a
// graceful restart (snapshot load + journal tail replay) first.
// The soak binds an observability hub; set TAGBREATHE_METRICS_OUT to a
// path to dump the final Prometheus scrape there for inspection.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/chaos.hpp"
#include "core/recovery.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"

using namespace tagbreathe;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7u;
  const double minutes = argc > 2 ? std::atof(argv[2]) : 10.0;
  const std::size_t users =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 3;
  const char* durable_dir = argc > 4 ? argv[4] : nullptr;

  core::SoakConfig cfg;
  cfg.n_users = users;
  cfg.tags_per_user = 2;
  cfg.duration_s = minutes * 60.0;
  cfg.pipeline.window_s = 20.0;
  cfg.pipeline.warmup_s = 8.0;
  cfg.pipeline.max_reads_per_stream = 4096;
  cfg.ingest.max_users = users;
  cfg.ingest.queue_capacity = 1024;
  cfg.chaos = core::ChaosConfig::composite(seed);
  obs::Observability hub(1 << 14);
  hub.use_deterministic_clock();  // byte-stable exports across runs
  cfg.observability = &hub;

  std::printf("chaos soak: seed=%llu duration=%.0fs users=%zu%s%s\n",
              static_cast<unsigned long long>(seed), cfg.duration_s, users,
              durable_dir != nullptr ? " durable_dir=" : "",
              durable_dir != nullptr ? durable_dir : "");
  core::SoakReport report;
  if (durable_dir != nullptr) {
    core::DurabilityConfig durability;
    durability.directory = durable_dir;
    durability.snapshot_period_s = 30.0;
    report = core::run_durable_soak(cfg, durability);
  } else {
    report = core::run_soak(cfg);
  }

  std::printf("\n-- chaos injected --\n");
  std::printf("clean reads        %zu\n", report.chaos.total_in);
  std::printf("delivered          %zu\n", report.chaos.total_out);
  std::printf("dropped            %zu\n", report.chaos.dropped);
  std::printf("blackout dropped   %zu\n", report.chaos.blackout_dropped);
  std::printf("duplicated         %zu\n", report.chaos.duplicated);
  std::printf("reordered          %zu\n", report.chaos.reordered);
  std::printf("skewed             %zu\n", report.chaos.skewed);
  std::printf("epc corrupted      %zu\n", report.chaos.corrupted);
  std::printf("burst injected     %zu\n", report.chaos.burst_injected);

  std::printf("\n-- ingest queue --\n");
  std::printf("enqueued           %zu\n", report.queue.enqueued);
  std::printf("drained            %zu\n", report.queue.drained);
  std::printf("shed oldest        %zu\n", report.queue.shed_oldest);
  std::printf("coalesced          %zu\n", report.queue.coalesced);
  std::printf("peak depth         %zu / %zu\n", report.queue.peak_depth,
              cfg.ingest.queue_capacity);
  std::printf("delay mean/max     %.4fs / %.4fs\n",
              report.queue.queue_delay.mean_s(),
              report.queue.queue_delay.max_s);

  std::printf("\n-- validation --\n");
  std::printf("admitted           %zu\n", report.validation.admitted);
  std::printf("repaired stamps    %zu\n",
              report.validation.repaired_timestamps);
  std::printf("quarantined        %zu\n", report.validation.quarantined_total);
  for (std::size_t r = 0; r < core::kQuarantineReasonCount; ++r) {
    if (report.validation.quarantined[r] == 0) continue;
    std::printf("  %-20s %zu\n",
                core::quarantine_reason_name(
                    static_cast<core::QuarantineReason>(r)),
                report.validation.quarantined[r]);
  }

  std::printf("\n-- pipeline --\n");
  std::printf("events             %zu\n", report.events);
  std::printf("signal lost/rec    %zu / %zu\n", report.signal_lost_events,
              report.signal_recovered_events);
  std::printf("peak users         %zu\n", report.peak_tracked_users);
  std::printf("last event         t=%.3fs\n", report.last_event_time_s);

  if (durable_dir != nullptr) {
    const core::DurabilityCounters& d = report.durability;
    std::printf("\n-- durability --\n");
    std::printf("journal appended   %zu (%zu commits, %zu bytes)\n",
                static_cast<std::size_t>(d.journal_records_appended),
                static_cast<std::size_t>(d.journal_commits),
                static_cast<std::size_t>(d.journal_bytes_written));
    std::printf("segments           %zu created / %zu pruned\n",
                static_cast<std::size_t>(d.journal_segments_created),
                static_cast<std::size_t>(d.journal_segments_pruned));
    std::printf("replayed on start  %zu (+%zu re-quarantined)\n",
                static_cast<std::size_t>(d.replay_records),
                static_cast<std::size_t>(d.replay_quarantined));
    std::printf("corrupt skipped    %zu records, %zu torn tails\n",
                static_cast<std::size_t>(d.journal_records_corrupt),
                static_cast<std::size_t>(d.journal_truncated_tails));
    std::printf("snapshots          %zu written / %zu loaded / %zu rejected\n",
                static_cast<std::size_t>(d.snapshots_written),
                static_cast<std::size_t>(d.snapshots_loaded),
                static_cast<std::size_t>(d.snapshots_rejected));
  }

  const obs::ObservabilitySnapshot snap = hub.snapshot();
  std::printf("\n-- observability --\n");
  std::printf("metric series      %zu\n", hub.metrics().size());
  std::printf("trace events       %zu (%llu dropped by ring wrap)\n",
              snap.trace.events.size(),
              static_cast<unsigned long long>(snap.trace.dropped));
  if (const char* out = std::getenv("TAGBREATHE_METRICS_OUT")) {
    const std::string scrape = obs::to_prometheus(snap);
    if (std::FILE* f = std::fopen(out, "w")) {
      std::fwrite(scrape.data(), 1, scrape.size(), f);
      std::fclose(f);
      std::printf("scrape written     %s (%zu bytes)\n", out, scrape.size());
    }
  }

  if (!report.ok()) {
    std::printf("\nINVARIANT VIOLATIONS (%zu):\n", report.violations.size());
    for (const std::string& v : report.violations)
      std::printf("  %s\n", v.c_str());
    return 1;
  }
  std::printf("\nall invariants held.\n");
  return 0;
}
