// Realtime console dashboard — the paper's Fig. 11 user interface in
// ASCII: per-user breathing waveform, live rate, breath-by-breath
// variability, and link health, refreshed as data streams in.
//
// Two users breathe at different (and changing) rates; the display
// redraws every 5 seconds of stream time.
//
// The pipeline is bound to an observability hub; on exit the full
// Prometheus scrape is written to `dashboard_metrics.prom` (first
// argument overrides the path) — the same text a /metrics endpoint
// would serve, so `curl`-style tooling and promtool can consume it.
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "core/breath_stats.hpp"
#include "core/pipeline.hpp"
#include "experiments/scenario.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"

using namespace tagbreathe;

namespace {

void draw(double now, const core::RealtimePipeline& pipeline) {
  std::printf("\n==== TagBreathe dashboard @ t = %5.1f s ====\n", now);
  // Ascending user order — the pipeline's explicit ordering contract,
  // so the dashboard rows never depend on registry layout.
  pipeline.for_each_latest_ordered([&](std::uint64_t user,
                                       const core::UserAnalysis& a) {
    // Trailing 30 s of the breath waveform as a sparkline.
    std::vector<double> tail;
    for (const auto& s : a.breath.samples)
      if (s.time_s > now - 30.0) tail.push_back(s.value);
    const auto stats = core::analyze_breaths(a.breath.samples, a.rate);

    std::printf("user %llu  %5.1f bpm %s | antenna %u | %4.0f reads | ",
                static_cast<unsigned long long>(user), a.rate.rate_bpm,
                a.rate.reliable ? " " : "?", a.antenna_used,
                static_cast<double>(a.reads_used));
    std::printf("CV %.2f %s\n", stats.interval_cv,
                core::is_irregular(stats) ? "(irregular)" : "");
    std::printf("  %s\n", common::sparkline(tail).c_str());
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("TagBreathe realtime dashboard: 2 users, 2 min\n");
  const std::string metrics_path =
      argc > 1 ? argv[1] : "dashboard_metrics.prom";

  experiments::ScenarioConfig scene;
  scene.duration_s = 120.0;
  scene.distance_m = 3.0;
  scene.seed = 555;
  scene.users.clear();
  {
    experiments::UserSpec steady;
    steady.rate_bpm = 11.0;
    scene.users.push_back(steady);
    experiments::UserSpec shifting;  // breathes faster halfway through
    shifting.schedule = {{0.0, 9.0}, {60.0, 16.0}};
    shifting.side_offset_m = 1.0;
    scene.users.push_back(shifting);
  }
  experiments::Scenario scenario(scene);

  core::PipelineConfig pcfg;
  pcfg.window_s = 45.0;
  core::RealtimePipeline pipeline(pcfg, nullptr);
  obs::Observability hub;
  pipeline.bind_observability(hub);

  double next_draw = 20.0;
  scenario.reader().run(scene.duration_s, [&](const core::TagRead& read) {
    pipeline.push(read);
    if (read.time_s >= next_draw) {
      draw(read.time_s, pipeline);
      next_draw += 20.0;
    }
  });

  std::printf("\nfinal state:\n");
  common::ConsoleTable table({"user", "rate [bpm]", "true (final) [bpm]"});
  pipeline.for_each_latest_ordered(
      [&](std::uint64_t user, const core::UserAnalysis& a) {
        const double truth =
            scenario.subject(user - 1).breathing().schedule().rate_bpm_at(
                scene.duration_s);
        table.add_row({std::to_string(user), common::fmt(a.rate.rate_bpm, 1),
                       common::fmt(truth, 1)});
      });
  table.print();

  // The scrape a /metrics endpoint would serve.
  const std::string scrape = obs::to_prometheus(hub.snapshot());
  if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
    std::fwrite(scrape.data(), 1, scrape.size(), f);
    std::fclose(f);
    std::printf("\nmetrics scrape written to %s (%zu bytes); sample:\n",
                metrics_path.c_str(), scrape.size());
    // First few series as a teaser; the file has the full export.
    std::size_t shown = 0, pos = 0;
    while (shown < 6 && pos < scrape.size()) {
      const std::size_t eol = scrape.find('\n', pos);
      std::printf("  %s\n", scrape.substr(pos, eol - pos).c_str());
      pos = eol + 1;
      ++shown;
    }
  }
  return 0;
}
