// Realtime console dashboard — the paper's Fig. 11 user interface in
// ASCII: per-user breathing waveform, live rate, breath-by-breath
// variability, and link health, refreshed as data streams in.
//
// Two users breathe at different (and changing) rates; the display
// redraws every 5 seconds of stream time.
#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "core/breath_stats.hpp"
#include "core/pipeline.hpp"
#include "experiments/scenario.hpp"

using namespace tagbreathe;

namespace {

void draw(double now, const std::map<std::uint64_t, core::UserAnalysis>& latest) {
  std::printf("\n==== TagBreathe dashboard @ t = %5.1f s ====\n", now);
  for (const auto& [user, a] : latest) {
    // Trailing 30 s of the breath waveform as a sparkline.
    std::vector<double> tail;
    for (const auto& s : a.breath.samples)
      if (s.time_s > now - 30.0) tail.push_back(s.value);
    const auto stats = core::analyze_breaths(a.breath.samples, a.rate);

    std::printf("user %llu  %5.1f bpm %s | antenna %u | %4.0f reads | ",
                static_cast<unsigned long long>(user), a.rate.rate_bpm,
                a.rate.reliable ? " " : "?", a.antenna_used,
                static_cast<double>(a.reads_used));
    std::printf("CV %.2f %s\n", stats.interval_cv,
                core::is_irregular(stats) ? "(irregular)" : "");
    std::printf("  %s\n", common::sparkline(tail).c_str());
  }
}

}  // namespace

int main() {
  std::printf("TagBreathe realtime dashboard: 2 users, 2 min\n");

  experiments::ScenarioConfig scene;
  scene.duration_s = 120.0;
  scene.distance_m = 3.0;
  scene.seed = 555;
  scene.users.clear();
  {
    experiments::UserSpec steady;
    steady.rate_bpm = 11.0;
    scene.users.push_back(steady);
    experiments::UserSpec shifting;  // breathes faster halfway through
    shifting.schedule = {{0.0, 9.0}, {60.0, 16.0}};
    shifting.side_offset_m = 1.0;
    scene.users.push_back(shifting);
  }
  experiments::Scenario scenario(scene);

  core::PipelineConfig pcfg;
  pcfg.window_s = 45.0;
  core::RealtimePipeline pipeline(pcfg, nullptr);

  double next_draw = 20.0;
  scenario.reader().run(scene.duration_s, [&](const core::TagRead& read) {
    pipeline.push(read);
    if (read.time_s >= next_draw) {
      draw(read.time_s, pipeline.latest());
      next_draw += 20.0;
    }
  });

  std::printf("\nfinal state:\n");
  common::ConsoleTable table({"user", "rate [bpm]", "true (final) [bpm]"});
  for (const auto& [user, a] : pipeline.latest()) {
    const double truth =
        scenario.subject(user - 1).breathing().schedule().rate_bpm_at(
            scene.duration_s);
    table.add_row({std::to_string(user), common::fmt(a.rate.rate_bpm, 1),
                   common::fmt(truth, 1)});
  }
  table.print();
  return 0;
}
