#include "body/motion.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace tagbreathe::body {

using tagbreathe::common::kTwoPi;

SwayProcess::SwayProcess(double amplitude_m, std::uint64_t seed) {
  common::Rng rng(seed ^ 0xB0D75A11ULL);
  double total = 0.0;
  for (int k = 0; k < kComponents; ++k) {
    amp_[k] = rng.uniform(0.5, 1.0);
    total += amp_[k];
    freq_hz_[k] = rng.uniform(0.02, 0.15);
    phase_[k] = rng.uniform(0.0, kTwoPi);
    const double theta = rng.uniform(0.0, kTwoPi);
    dir_x_[k] = std::cos(theta);
    dir_y_[k] = std::sin(theta);
  }
  // Normalise so the worst-case sum equals the requested amplitude.
  if (total > 0.0) {
    for (double& a : amp_) a *= amplitude_m / total;
  }
}

common::Vec3 SwayProcess::offset(double t) const noexcept {
  common::Vec3 out{};
  for (int k = 0; k < kComponents; ++k) {
    const double s = amp_[k] * std::sin(kTwoPi * freq_hz_[k] * t + phase_[k]);
    out.x += s * dir_x_[k];
    out.y += s * dir_y_[k];
  }
  return out;
}

}  // namespace tagbreathe::body
