// Involuntary body motion (posture sway).
//
// Even a "still" seated subject drifts by millimetres at well below the
// breathing band. The sway process is a deterministic function of time
// (a sum of incommensurate low-frequency sinusoids with seeded random
// phases) so the simulator can evaluate positions at arbitrary
// timestamps without integrating a stochastic ODE.
#pragma once

#include <cstdint>

#include "common/geometry.hpp"

namespace tagbreathe::body {

class SwayProcess {
 public:
  /// `amplitude_m` is the peak horizontal displacement. Frequencies are
  /// drawn in [0.02, 0.15] Hz — below or at the very bottom of the
  /// breathing band, so most sway is removed by detrending.
  SwayProcess(double amplitude_m, std::uint64_t seed);

  /// Horizontal sway offset at time t (z component always 0).
  common::Vec3 offset(double t) const noexcept;

 private:
  static constexpr int kComponents = 4;
  double amp_[kComponents];
  double freq_hz_[kComponents];
  double phase_[kComponents];
  double dir_x_[kComponents];
  double dir_y_[kComponents];
};

}  // namespace tagbreathe::body
