// Human-subject deployment model.
//
// A Subject is a torso with up to three tag sites (the paper's placement:
// chest, lower abdomen, one in between — Sec. IV-D.1), a posture, a world
// position/heading, and a BreathingModel driving the wall displacement.
// The RFID simulator queries tag world positions at read time; breathing
// physically moves the tags, which is what modulates phase (Eq. 1).
#pragma once

#include <cstdint>
#include <vector>

#include "body/breathing_model.hpp"
#include "body/motion.hpp"
#include "common/geometry.hpp"

namespace tagbreathe::body {

enum class Posture { Sitting, Standing, Lying };

const char* posture_name(Posture p) noexcept;

/// Tag attachment sites on the upper body (paper Sec. IV-D.1).
enum class TagSite { Chest, Mid, Abdomen };

const char* tag_site_name(TagSite s) noexcept;

struct SubjectConfig {
  std::uint64_t user_id = 1;
  /// Torso reference point on the ground plane [m] (z ignored).
  common::Vec3 position{};
  /// World heading [rad]: direction the subject faces, measured in the
  /// horizontal plane from the +x axis.
  double heading_rad = 0.0;
  Posture posture = Posture::Sitting;
  /// Chest-vs-abdominal breathing style in [0, 1]: 1 = pure chest
  /// breather, 0 = pure abdominal breather. The paper observed both
  /// (Sec. IV-D.1), which motivates the 3-site placement.
  double chest_style = 0.5;
  /// Peak chest-wall excursion [m] for the dominant site. Quiet breathing
  /// moves the wall by ~4-12 mm; metronome-paced breathing (the paper's
  /// protocol) sits at the deliberate end of that range.
  double base_amplitude_m = 0.010;
  /// Torso half-depth [m]: tags sit on the front surface.
  double torso_radius_m = 0.12;
  /// Peak torso sway amplitude [m] (involuntary posture drift).
  double sway_amplitude_m = 0.0010;
  /// Seed for the sway process.
  std::uint64_t sway_seed = 0;
};

/// A subject with an attached breathing model.
class Subject {
 public:
  Subject(SubjectConfig config, BreathingModel model);

  /// World position of a tag at time t, including breathing displacement
  /// and sway.
  common::Vec3 tag_position(TagSite site, double t) const noexcept;

  /// Unit vector of the subject's facing direction (horizontal for
  /// sitting/standing; for lying it is the direction the chest points,
  /// i.e. straight up).
  common::Vec3 facing() const noexcept;

  /// Orientation angle [rad, 0..π] between the subject's facing direction
  /// and the direction from the subject to `point` (e.g. the reader
  /// antenna). 0 = facing the antenna; π = back turned. This is the
  /// paper's orientation axis in Figs. 15-16.
  double orientation_to(const common::Vec3& point) const noexcept;

  /// Breathing displacement amplitude [m] at a site, combining the style
  /// mix and posture effects.
  double site_amplitude(TagSite site) const noexcept;

  /// Height [m] of a tag site above ground for the current posture
  /// (before breathing/sway motion).
  double site_height(TagSite site) const noexcept;

  const SubjectConfig& config() const noexcept { return config_; }
  const BreathingModel& breathing() const noexcept { return model_; }
  std::uint64_t user_id() const noexcept { return config_.user_id; }

  /// All three paper tag sites in placement order.
  static const std::vector<TagSite>& all_sites();

 private:
  SubjectConfig config_;
  BreathingModel model_;
  SwayProcess sway_;
};

}  // namespace tagbreathe::body
