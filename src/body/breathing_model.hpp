// Breathing kinematics.
//
// The experiments in the paper regulate subjects with a breathing
// metronome app, so ground truth is a commanded rate schedule. This
// module turns a rate schedule into a chest/abdomen wall displacement
// waveform:
//
//   - MetronomeSchedule: piecewise-constant breathing rate over time with
//     exact phase integration (so rate changes don't jump the phase).
//   - BreathWaveform: maps breathing phase to normalised wall excursion
//     in [0, 1]. Real breathing is asymmetric (inspiration is shorter
//     than expiration at rest, roughly 1:1.5) with a brief end-expiration
//     pause; we model that with a piecewise raised-cosine profile.
//   - Apnea intervals freeze the excursion near the end-expiration level,
//     modelling the "occasional pauses" the introduction motivates.
#pragma once

#include <cstddef>
#include <vector>

namespace tagbreathe::body {

/// One segment of a commanded breathing-rate schedule.
struct RateSegment {
  double start_s = 0.0;  // segment start time
  double rate_bpm = 12.0;
};

/// Piecewise-constant metronome with continuous phase.
class MetronomeSchedule {
 public:
  /// Constant-rate schedule.
  explicit MetronomeSchedule(double rate_bpm);

  /// Piecewise schedule; segments must be sorted by start time with the
  /// first starting at 0.
  explicit MetronomeSchedule(std::vector<RateSegment> segments);

  /// Commanded rate [bpm] at time t.
  double rate_bpm_at(double t) const noexcept;

  /// Breathing phase [cycles, not radians] at time t:
  /// phase(t) = integral of rate(tau) dtau. Continuous across segment
  /// boundaries.
  double phase_cycles_at(double t) const noexcept;

  /// Mean commanded rate over [t0, t1].
  double mean_rate_bpm(double t0, double t1) const noexcept;

  const std::vector<RateSegment>& segments() const noexcept {
    return segments_;
  }

 private:
  std::vector<RateSegment> segments_;
  std::vector<double> phase_at_start_;  // cumulative cycles at segment start
};

/// Shape of one breath cycle.
struct BreathShape {
  /// Fraction of the cycle spent inhaling (typ. 0.4: expiration longer).
  double inhale_fraction = 0.4;
  /// Fraction of the cycle spent in the end-expiration pause.
  double pause_fraction = 0.1;
  /// Relative second-harmonic content (chest wall motion is not a pure
  /// sinusoid; a small harmonic makes the FFT figure realistic).
  double harmonic_level = 0.08;
};

/// Normalised chest-wall excursion g(phase) in [0, 1]:
/// 0 = end of expiration, 1 = end of inspiration. `phase_cycles` may be
/// any real number; only its fractional part matters.
double breath_excursion(double phase_cycles, const BreathShape& shape) noexcept;

/// An apnea (breath-hold) episode.
struct ApneaEvent {
  double start_s = 0.0;
  double duration_s = 0.0;
};

/// Full displacement generator: metronome + shape + amplitude + apneas.
class BreathingModel {
 public:
  BreathingModel(MetronomeSchedule schedule, BreathShape shape,
                 std::vector<ApneaEvent> apneas = {});

  /// Wall displacement [m] relative to end-expiration at time t, for a
  /// site whose peak excursion is `amplitude_m`. During apnea the wall
  /// holds at the excursion level reached when the apnea began.
  double displacement_m(double t, double amplitude_m) const noexcept;

  /// True (commanded) breathing rate [bpm] at t; 0 during apnea.
  double true_rate_bpm(double t) const noexcept;

  bool in_apnea(double t) const noexcept;

  const MetronomeSchedule& schedule() const noexcept { return schedule_; }

 private:
  /// Effective breathing phase with apnea intervals excised: the phase
  /// clock stops while an apnea is in progress.
  double effective_phase_cycles(double t) const noexcept;

  MetronomeSchedule schedule_;
  BreathShape shape_;
  std::vector<ApneaEvent> apneas_;  // sorted by start
};

}  // namespace tagbreathe::body
