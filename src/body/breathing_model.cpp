#include "body/breathing_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace tagbreathe::body {

using tagbreathe::common::kPi;
using tagbreathe::common::kTwoPi;

MetronomeSchedule::MetronomeSchedule(double rate_bpm)
    : MetronomeSchedule(std::vector<RateSegment>{{0.0, rate_bpm}}) {}

MetronomeSchedule::MetronomeSchedule(std::vector<RateSegment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty())
    throw std::invalid_argument("MetronomeSchedule: empty schedule");
  if (segments_.front().start_s != 0.0)
    throw std::invalid_argument("MetronomeSchedule: first segment must start at 0");
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].start_s <= segments_[i - 1].start_s)
      throw std::invalid_argument("MetronomeSchedule: segments must be sorted");
  }
  for (const RateSegment& s : segments_) {
    if (s.rate_bpm < 0.0)
      throw std::invalid_argument("MetronomeSchedule: negative rate");
  }
  phase_at_start_.resize(segments_.size(), 0.0);
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    const double span = segments_[i].start_s - segments_[i - 1].start_s;
    phase_at_start_[i] = phase_at_start_[i - 1] +
                         span * segments_[i - 1].rate_bpm / 60.0;
  }
}

namespace {
std::size_t segment_index(const std::vector<RateSegment>& segments, double t) {
  // Last segment whose start <= t (t < 0 clamps to the first segment).
  std::size_t idx = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].start_s <= t) idx = i;
    else break;
  }
  return idx;
}
}  // namespace

double MetronomeSchedule::rate_bpm_at(double t) const noexcept {
  return segments_[segment_index(segments_, t)].rate_bpm;
}

double MetronomeSchedule::phase_cycles_at(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  const std::size_t i = segment_index(segments_, t);
  return phase_at_start_[i] +
         (t - segments_[i].start_s) * segments_[i].rate_bpm / 60.0;
}

double MetronomeSchedule::mean_rate_bpm(double t0, double t1) const noexcept {
  if (t1 <= t0) return rate_bpm_at(t0);
  return (phase_cycles_at(t1) - phase_cycles_at(t0)) / (t1 - t0) * 60.0;
}

double breath_excursion(double phase_cycles, const BreathShape& shape) noexcept {
  double p = phase_cycles - std::floor(phase_cycles);  // in [0, 1)
  const double fi = std::clamp(shape.inhale_fraction, 0.05, 0.9);
  const double fp = std::clamp(shape.pause_fraction, 0.0, 0.5);
  const double fe = std::max(1.0 - fi - fp, 0.05);  // exhale fraction

  double g;
  if (p < fi) {
    // Inhale: raised cosine from 0 to 1.
    g = 0.5 - 0.5 * std::cos(kPi * p / fi);
  } else if (p < fi + fe) {
    // Exhale: raised cosine from 1 back to 0.
    const double q = (p - fi) / fe;
    g = 0.5 + 0.5 * std::cos(kPi * q);
  } else {
    // End-expiration pause.
    g = 0.0;
  }

  if (shape.harmonic_level != 0.0) {
    // Small second harmonic, scaled so g stays within [0, 1].
    const double h = shape.harmonic_level * std::sin(2.0 * kTwoPi * p);
    g = std::clamp(g + h * g * (1.0 - g) * 4.0, 0.0, 1.0);
  }
  return g;
}

BreathingModel::BreathingModel(MetronomeSchedule schedule, BreathShape shape,
                               std::vector<ApneaEvent> apneas)
    : schedule_(std::move(schedule)),
      shape_(shape),
      apneas_(std::move(apneas)) {
  std::sort(apneas_.begin(), apneas_.end(),
            [](const ApneaEvent& a, const ApneaEvent& b) {
              return a.start_s < b.start_s;
            });
  for (const ApneaEvent& a : apneas_) {
    if (a.duration_s < 0.0)
      throw std::invalid_argument("BreathingModel: negative apnea duration");
  }
}

bool BreathingModel::in_apnea(double t) const noexcept {
  for (const ApneaEvent& a : apneas_) {
    if (t >= a.start_s && t < a.start_s + a.duration_s) return true;
    if (a.start_s > t) break;
  }
  return false;
}

double BreathingModel::effective_phase_cycles(double t) const noexcept {
  // Integrate the commanded rate only over non-apnea time: the phase
  // clock stops during a breath hold, which freezes the excursion.
  double phase = schedule_.phase_cycles_at(t);
  for (const ApneaEvent& a : apneas_) {
    if (a.start_s >= t) break;
    const double end = std::min(a.start_s + a.duration_s, t);
    phase -= schedule_.phase_cycles_at(end) -
             schedule_.phase_cycles_at(a.start_s);
  }
  return phase;
}

double BreathingModel::displacement_m(double t,
                                      double amplitude_m) const noexcept {
  return amplitude_m * breath_excursion(effective_phase_cycles(t), shape_);
}

double BreathingModel::true_rate_bpm(double t) const noexcept {
  return in_apnea(t) ? 0.0 : schedule_.rate_bpm_at(t);
}

}  // namespace tagbreathe::body
