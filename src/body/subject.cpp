#include "body/subject.hpp"

#include <cmath>

namespace tagbreathe::body {

using common::Vec3;

const char* posture_name(Posture p) noexcept {
  switch (p) {
    case Posture::Sitting: return "sitting";
    case Posture::Standing: return "standing";
    case Posture::Lying: return "lying";
  }
  return "?";
}

const char* tag_site_name(TagSite s) noexcept {
  switch (s) {
    case TagSite::Chest: return "chest";
    case TagSite::Mid: return "mid";
    case TagSite::Abdomen: return "abdomen";
  }
  return "?";
}

Subject::Subject(SubjectConfig config, BreathingModel model)
    : config_(config),
      model_(std::move(model)),
      sway_(config.sway_amplitude_m,
            config.sway_seed ^ config.user_id) {}

const std::vector<TagSite>& Subject::all_sites() {
  static const std::vector<TagSite> sites{TagSite::Chest, TagSite::Mid,
                                          TagSite::Abdomen};
  return sites;
}

double Subject::site_height(TagSite site) const noexcept {
  switch (config_.posture) {
    case Posture::Sitting:
      switch (site) {
        case TagSite::Chest: return 1.20;
        case TagSite::Mid: return 1.05;
        case TagSite::Abdomen: return 0.90;
      }
      break;
    case Posture::Standing:
      switch (site) {
        case TagSite::Chest: return 1.35;
        case TagSite::Mid: return 1.18;
        case TagSite::Abdomen: return 1.02;
      }
      break;
    case Posture::Lying:
      // On a bed: chest-wall surface ~0.75 m above the floor for all
      // sites; they separate along the body axis instead.
      return 0.75;
  }
  return 1.0;
}

double Subject::site_amplitude(TagSite site) const noexcept {
  // Chest breathers move the rib cage most; abdominal breathers the
  // belly. All sites move in phase (Sec. IV-D.1), only amplitude varies.
  const double chest_w = config_.chest_style;
  const double abd_w = 1.0 - chest_w;
  double relative = 1.0;
  switch (site) {
    case TagSite::Chest: relative = 0.55 + 0.75 * chest_w; break;
    case TagSite::Mid: relative = 0.85; break;
    case TagSite::Abdomen: relative = 0.55 + 0.75 * abd_w; break;
  }
  // Supine breathing is predominantly abdominal and slightly larger.
  if (config_.posture == Posture::Lying) {
    if (site == TagSite::Abdomen) relative *= 1.25;
    if (site == TagSite::Chest) relative *= 0.8;
  }
  return config_.base_amplitude_m * relative;
}

Vec3 Subject::facing() const noexcept {
  if (config_.posture == Posture::Lying) return Vec3{0.0, 0.0, 1.0};
  return Vec3{std::cos(config_.heading_rad), std::sin(config_.heading_rad),
              0.0};
}

Vec3 Subject::tag_position(TagSite site, double t) const noexcept {
  const Vec3 face = facing();
  Vec3 base = config_.position;
  base.z = 0.0;

  Vec3 site_point;
  if (config_.posture == Posture::Lying) {
    // Body axis along the heading; sites separate along it while the
    // chest surface points up.
    const Vec3 axis{std::cos(config_.heading_rad),
                    std::sin(config_.heading_rad), 0.0};
    double along = 0.0;
    switch (site) {
      case TagSite::Chest: along = 0.25; break;
      case TagSite::Mid: along = 0.05; break;
      case TagSite::Abdomen: along = -0.15; break;
    }
    site_point = base + axis * along;
    site_point.z = site_height(site);
  } else {
    // Upright: tags on the front torso surface at site heights.
    site_point = base + face * config_.torso_radius_m;
    site_point.z = site_height(site);
  }

  // Breathing moves the wall mainly outward along the facing normal, but
  // the torso circumference grows too: each site's wall normal is tilted
  // a few degrees off dead-ahead (tags never sit at the exact sagittal
  // centre), and the chest rises. The off-axis components are what keeps
  // a side-viewed (90 deg) tag observable at all (Fig. 16's 85%); their
  // signs differ per site, which is why the fusion stage sign-aligns
  // streams before summing.
  const double disp = model_.displacement_m(t, site_amplitude(site));
  if (config_.posture == Posture::Lying) {
    site_point += face * disp;
    // Supine: the secondary motion is along the body axis (abdomen wall
    // pushes headward) — facing is +z, so the off-axis term follows the
    // body axis.
    const Vec3 axis{std::cos(config_.heading_rad),
                    std::sin(config_.heading_rad), 0.0};
    site_point += axis * (0.20 * disp);
  } else {
    double azimuth_offset = 0.0;  // wall-normal tilt per site [rad]
    switch (site) {
      case TagSite::Chest: azimuth_offset = 0.21; break;    // ~12 deg
      case TagSite::Mid: azimuth_offset = -0.14; break;     // ~-8 deg
      case TagSite::Abdomen: azimuth_offset = 0.10; break;  // ~6 deg
    }
    const Vec3 normal = common::rotate_z(face, azimuth_offset);
    const Vec3 up{0.0, 0.0, 1.0};
    site_point += normal * disp + up * (0.22 * disp);
  }

  // Sway shifts the whole torso (all sites coherently).
  site_point += sway_.offset(t);
  return site_point;
}

double Subject::orientation_to(const Vec3& point) const noexcept {
  if (config_.posture == Posture::Lying) {
    // Orientation defined against the upward chest normal.
    Vec3 to_point = point - tag_position(TagSite::Mid, 0.0);
    return common::angle_between(facing(), to_point);
  }
  Vec3 centre = config_.position;
  centre.z = 0.0;
  Vec3 to_point = point - centre;
  to_point.z = 0.0;  // horizontal-plane angle, as in the paper's Fig. 15a
  return common::angle_between(facing(), to_point);
}

}  // namespace tagbreathe::body
