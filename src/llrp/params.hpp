// llrp-lite parameters: generic TLV/TV trees plus the typed tag-report
// encoding.
//
// LLRP parameters are either TLV (6 reserved bits + 10-bit type, 16-bit
// length, nested children) or TV (1 marker bit + 7-bit type, fixed
// length). Tag reports (RO_ACCESS_REPORT) carry one TagReportData per
// read with the fields the paper's software consumes: EPC, antenna ID,
// channel index, peak RSSI, timestamp — and the low-level phase/Doppler
// values, which production readers expose through vendor Custom
// parameters (Impinj-style), encoded here the same way.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "llrp/bytes.hpp"
#include "rfid/channel_plan.hpp"
#include "rfid/epc.hpp"

namespace tagbreathe::llrp {

// --- Generic parameter tree ------------------------------------------------

/// LLRP 1.1 parameter type numbers for the subset we use.
enum class ParamType : std::uint16_t {
  // TV types (7-bit space).
  AntennaId = 1,
  FirstSeenTimestampUtc = 2,
  PeakRssi = 6,
  ChannelIndex = 7,
  Epc96 = 13,
  // TLV types.
  RoSpec = 177,
  RoBoundarySpec = 178,
  RoSpecStartTrigger = 179,
  RoSpecStopTrigger = 182,
  AiSpec = 183,
  AiSpecStopTrigger = 184,
  InventoryParameterSpec = 186,
  RoReportSpec = 237,
  TagReportData = 240,
  EpcData = 241,
  LlrpStatus = 287,
  Custom = 1023,
};

struct Param {
  std::uint16_t type = 0;
  bool tv = false;  // TV params have fixed-size values and no children
  std::vector<std::uint8_t> value;
  std::vector<Param> children;
};

/// Byte length of a TV parameter's value for the types we support.
std::size_t tv_value_length(std::uint16_t type);

void encode_param(ByteWriter& w, const Param& param);

/// Decodes parameters until the reader is exhausted.
std::vector<Param> decode_params(ByteReader& r);

/// Decodes exactly one parameter, leaving the reader at the next byte.
Param decode_one_param(ByteReader& r);

/// First child (recursive scan not included) of the given type, or null.
const Param* find_param(const std::vector<Param>& params, ParamType type);

// --- Reader capabilities ------------------------------------------------------

/// The capability summary a GET_READER_CAPABILITIES exchange carries in
/// this dialect (a condensed GeneralDeviceCapabilities /
/// RegulatoryCapabilities pair).
struct ReaderCapabilities {
  std::uint16_t max_antennas = 4;       // R420: 4 ports
  std::uint16_t channel_count = 10;     // active regulatory plan
  std::uint32_t first_channel_khz = 920250;
  std::uint16_t channel_spacing_khz = 500;
  bool reports_phase = true;            // vendor low-level data
  bool reports_doppler = true;
  std::uint32_t vendor_id = 25882;      // == kVendorId (declared below)
};

/// Encodes/decodes the capabilities as the body of
/// GET_READER_CAPABILITIES_RESPONSE (status + payload).
std::vector<std::uint8_t> encode_capabilities(const ReaderCapabilities& caps);
ReaderCapabilities decode_capabilities(std::span<const std::uint8_t> body);

// --- Reader events ---------------------------------------------------------------

/// READER_EVENT_NOTIFICATION payloads we emit: connection attempt
/// accepted, ROSpec lifecycle, antenna cycle.
enum class ReaderEventKind : std::uint16_t {
  ConnectionAttempt = 0,
  RoSpecStarted = 1,
  RoSpecStopped = 2,
};

std::vector<std::uint8_t> encode_reader_event(ReaderEventKind kind,
                                              std::uint64_t timestamp_us);
/// Returns the decoded kind and fills `timestamp_us`.
ReaderEventKind decode_reader_event(std::span<const std::uint8_t> body,
                                    std::uint64_t& timestamp_us);

// --- LLRPStatus -------------------------------------------------------------

enum class StatusCode : std::uint16_t {
  Success = 0,
  ParameterError = 100,
  FieldError = 101,
  DeviceError = 401,
  /// Host-side sentinel, never sent on the wire: no response of this
  /// type has been received yet. Distinguishes "never exchanged" from
  /// "reader rejected" in LlrpClient::last_status().
  NoResponse = 0xFFFF,
};

const char* status_code_name(StatusCode code) noexcept;

Param make_status(StatusCode code);
StatusCode parse_status(const std::vector<Param>& params);

// --- Typed tag reports -------------------------------------------------------

/// Vendor ID used for the low-level-data Custom parameters (Impinj's
/// IANA PEN, as real R420 reports use).
inline constexpr std::uint32_t kVendorId = 25882;

/// Custom parameter subtypes (Impinj-style).
enum class CustomSubtype : std::uint32_t {
  RfPhaseAngle = 28,       // u16: phase in units of 2*pi/4096
  PeakRssiCentiDbm = 57,   // s16: RSSI in 1/100 dBm
  RfDopplerFrequency = 68, // s16: Doppler in 1/16 Hz
};

/// One tag read as carried in a TagReportData parameter.
struct TagReportEntry {
  rfid::Epc96 epc;
  std::uint16_t antenna_id = 1;
  std::uint16_t channel_index = 0;
  std::uint64_t first_seen_utc_us = 0;
  std::int8_t peak_rssi_dbm = 0;        // standard coarse field
  std::int16_t rssi_centi_dbm = 0;      // vendor fine-grained field
  std::uint16_t phase_4096 = 0;         // 2*pi/4096 units
  std::int16_t doppler_16th_hz = 0;     // 1/16 Hz units
};

/// Encodes entries as a sequence of TagReportData parameters (the body of
/// an RO_ACCESS_REPORT message).
std::vector<std::uint8_t> encode_tag_reports(
    std::span<const TagReportEntry> entries);

/// Decodes an RO_ACCESS_REPORT body.
/// Damage-tolerant variant: decodes what it can from a corrupted report
/// body, skipping damaged entries instead of throwing. `entries_dropped`
/// counts TagReportData regions that framed but failed to decode. Used
/// by the client's receive path — one flipped byte costs one entry, not
/// the whole report batch.
std::vector<TagReportEntry> decode_tag_reports_salvage(
    std::span<const std::uint8_t> body, std::size_t& entries_dropped);

std::vector<TagReportEntry> decode_tag_reports(
    std::span<const std::uint8_t> body);

/// Converts a simulator/core read into a wire entry (quantising to the
/// wire units) and back. The channel plan maps channel index to carrier
/// frequency on the way out, exactly as LTK-based software does.
TagReportEntry to_wire(const core::TagRead& read);
core::TagRead from_wire(const TagReportEntry& entry,
                        const rfid::ChannelPlan& plan);

}  // namespace tagbreathe::llrp
