// Big-endian byte codec for the llrp-lite wire format.
//
// LLRP (EPCglobal Low Level Reader Protocol) is a big-endian binary
// protocol of framed messages containing nested TLV/TV parameters. This
// module provides the bounds-checked primitive reads/writes everything
// above is built from.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace tagbreathe::llrp {

/// Thrown on truncated or malformed wire data.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Signed 16-bit (RSSI fields are signed in LLRP).
  void i16(std::int16_t v);
  void bytes(std::span<const std::uint8_t> data);

  /// Patches a previously written u32 at `offset` (message/parameter
  /// lengths are back-filled once the body size is known).
  void patch_u32(std::size_t offset, std::uint32_t v);
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int16_t i16();
  std::vector<std::uint8_t> bytes(std::size_t count);

  /// Reader over the next `count` bytes; advances this reader past them.
  ByteReader sub(std::size_t count);

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool empty() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t count) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace tagbreathe::llrp
