#include "llrp/supervisor.hpp"

#include <algorithm>

#include "core/ingest.hpp"
#include "obs/observability.hpp"

namespace tagbreathe::llrp {

const char* session_state_name(SessionState state) noexcept {
  switch (state) {
    case SessionState::Disconnected: return "Disconnected";
    case SessionState::Connecting: return "Connecting";
    case SessionState::Configuring: return "Configuring";
    case SessionState::Streaming: return "Streaming";
    case SessionState::Degraded: return "Degraded";
  }
  return "?";
}

SessionSupervisor::SessionSupervisor(SupervisorConfig config,
                                     LlrpClient& client,
                                     FaultyChannel* channel)
    : config_(config),
      client_(client),
      channel_(channel),
      rng_(config.seed),
      backoff_(config.backoff_initial_s) {}

void SessionSupervisor::route_reads_to(core::IngestQueue& queue) {
  client_.set_read_callback([&queue](const core::TagRead& read) {
    queue.try_push(read);
  });
}

bool SessionSupervisor::transport_connected() const noexcept {
  return channel_ == nullptr || channel_->connected();
}

bool SessionSupervisor::dial() noexcept {
  return channel_ == nullptr || channel_->try_reconnect();
}

void SessionSupervisor::enter(SessionState next, double now_s) {
  if (next == state_) return;
  state_ = next;
  ++health_.state_changes;
  if (obs_.hub != nullptr) {
    obs_.hub->trace().record(obs_.trace_stage, obs::SpanKind::Instant, now_s,
                             static_cast<std::uint64_t>(next));
    obs_.session_state->set(static_cast<double>(next));
  }
  if (next == SessionState::Streaming || next == SessionState::Degraded) {
    // Probe promptly when entering a live state.
    next_keepalive_ = now_s;
  }
}

void SessionSupervisor::schedule_retry(double now_s) {
  const double jitter =
      1.0 + config_.backoff_jitter * (2.0 * rng_.uniform() - 1.0);
  next_attempt_ = now_s + backoff_ * std::max(jitter, 0.0);
  backoff_ = std::min(backoff_ * config_.backoff_multiplier,
                      config_.backoff_max_s);
}

void SessionSupervisor::tear_down(double now_s) {
  if (channel_ != nullptr) channel_->force_disconnect();
  enter(SessionState::Disconnected, now_s);
  schedule_retry(now_s);
}

void SessionSupervisor::observe_traffic(double now_s) {
  const std::size_t counter = client_.reports_received() +
                              client_.keepalives_received() +
                              client_.reader_events().size();
  if (counter != traffic_counter_seen_) {
    traffic_counter_seen_ = counter;
    last_traffic_s_ = now_s;
  }
}

void SessionSupervisor::drive_handshake(double now_s) {
  const StatusCode add = client_.last_status(MessageType::AddRoSpecResponse);
  const StatusCode enable =
      client_.last_status(MessageType::EnableRoSpecResponse);
  const StatusCode start =
      client_.last_status(MessageType::StartRoSpecResponse);

  const auto rejected = [](StatusCode code) {
    return code != StatusCode::Success && code != StatusCode::NoResponse;
  };
  if (rejected(add) || rejected(enable) || rejected(start) ||
      now_s >= handshake_deadline_) {
    ++health_.handshake_failures;
    ++consecutive_failures_;
    tear_down(now_s);
    return;
  }
  if (add == StatusCode::Success && !enable_sent_) {
    client_.send_enable_rospec();
    enable_sent_ = true;
    handshake_resend_ = now_s + config_.handshake_retry_s;
    return;
  }
  if (enable == StatusCode::Success && !start_sent_) {
    client_.send_start_rospec();
    start_sent_ = true;
    handshake_resend_ = now_s + config_.handshake_retry_s;
    return;
  }
  if (start == StatusCode::Success) {
    ++health_.rearm_count;
    consecutive_failures_ = 0;
    backoff_ = config_.backoff_initial_s;  // healthy again
    last_traffic_s_ = now_s;
    enter(SessionState::Streaming, now_s);
    return;
  }

  // A stage is stalled: its request or response was lost or corrupted
  // in transit. Retransmit the stalled request instead of burning the
  // whole attempt — the transport is up, only one frame died.
  if (now_s >= handshake_resend_) {
    if (add == StatusCode::NoResponse) {
      // The reader may or may not have applied the earlier ADD; DELETE
      // first so the retransmitted ADD cannot be rejected as duplicate.
      client_.send_delete_rospec();
      client_.send_add_rospec();
    } else if (!start_sent_) {
      client_.send_enable_rospec();
    } else {
      client_.send_start_rospec();
    }
    ++health_.handshake_retransmits;
    handshake_resend_ = now_s + config_.handshake_retry_s;
  }
}

SessionProbe SessionSupervisor::probe(double now_s) const noexcept {
  SessionProbe p;
  p.state = state_;
  p.streaming = streaming();
  p.backoff_s = backoff_;
  p.consecutive_failures = consecutive_failures_;
  if (streaming() && now_s >= last_traffic_s_)
    p.silence_s = now_s - last_traffic_s_;
  return p;
}

void SessionSupervisor::publish_health() {
  if (obs_.hub == nullptr) return;
  obs_.reconnects->set(health_.reconnects);
  obs_.reconnect_failures->set(health_.reconnect_failures);
  obs_.watchdog_fires->set(health_.watchdog_fires);
  obs_.handshake_failures->set(health_.handshake_failures);
  obs_.handshake_retransmits->set(health_.handshake_retransmits);
  obs_.rearms->set(health_.rearm_count);
  obs_.keepalives->set(health_.keepalives_sent);
  obs_.state_changes->set(health_.state_changes);
  obs_.session_state->set(static_cast<double>(state_));
  for (std::size_t i = 0; i < kSessionStateCount; ++i)
    obs_.time_in_state[i]->set(health_.time_in_state_s[i]);
}

void SessionSupervisor::bind_observability(obs::Observability& hub) {
  obs::MetricsRegistry& m = hub.metrics();
  obs_.reconnects = &m.counter("llrp_reconnects_total");
  obs_.reconnect_failures = &m.counter("llrp_reconnect_failures_total");
  obs_.watchdog_fires = &m.counter("llrp_watchdog_fires_total");
  obs_.handshake_failures = &m.counter("llrp_handshake_failures_total");
  obs_.handshake_retransmits = &m.counter("llrp_handshake_retransmits_total");
  obs_.rearms = &m.counter("llrp_rearms_total");
  obs_.keepalives = &m.counter("llrp_keepalives_sent_total");
  obs_.state_changes = &m.counter("llrp_state_changes_total");
  obs_.session_state = &m.gauge("llrp_session_state");
  for (std::size_t i = 0; i < kSessionStateCount; ++i) {
    obs_.time_in_state[i] =
        &m.gauge("llrp_time_in_state_seconds", "state",
                 session_state_name(static_cast<SessionState>(i)));
  }
  obs_.trace_stage = hub.trace().register_stage("llrp.session");
  obs_.hub = &hub;
  publish_health();
}

void SessionSupervisor::advance_to(double now_s) {
  now_s = std::max(now_s, last_now_);
  health_.time_in_state_s[static_cast<std::size_t>(state_)] +=
      now_s - last_now_;
  last_now_ = now_s;

  client_.poll();
  observe_traffic(now_s);

  // A severed transport is detected immediately in every live state
  // when socket errors are surfaced; silent stalls fall through to the
  // watchdog below.
  if (config_.detect_transport_loss && !transport_connected() &&
      state_ != SessionState::Disconnected) {
    enter(SessionState::Disconnected, now_s);
    schedule_retry(now_s);
    publish_health();
    return;
  }

  switch (state_) {
    case SessionState::Disconnected: {
      if (now_s < next_attempt_) break;
      if (!dial()) {
        ++health_.reconnect_failures;
        ++consecutive_failures_;
        schedule_retry(now_s);
        break;
      }
      ++health_.reconnects;
      enter(SessionState::Connecting, now_s);
      break;
    }
    case SessionState::Connecting: {
      // Fresh stream: drop any half-received frame and stale statuses,
      // clear whatever ROSpec the reader still holds, re-add ours.
      client_.reset_session_state();
      client_.send_stop_rospec();
      // STOP before DELETE mirrors LTK teardown; both are idempotent on
      // our endpoint. DELETE is sent via the raw spec ID message.
      client_.send_delete_rospec();
      client_.send_add_rospec();
      enable_sent_ = false;
      start_sent_ = false;
      handshake_deadline_ = now_s + config_.handshake_timeout_s;
      handshake_resend_ = now_s + config_.handshake_retry_s;
      enter(SessionState::Configuring, now_s);
      break;
    }
    case SessionState::Configuring: {
      drive_handshake(now_s);
      break;
    }
    case SessionState::Streaming:
    case SessionState::Degraded: {
      if (now_s >= next_keepalive_) {
        client_.send_keepalive();
        ++health_.keepalives_sent;
        next_keepalive_ = now_s + config_.keepalive_period_s;
      }
      const double silence = now_s - last_traffic_s_;
      if (silence >= config_.watchdog_timeout_s) {
        ++health_.watchdog_fires;
        ++consecutive_failures_;
        tear_down(now_s);
      } else if (silence >= config_.degraded_after_s) {
        enter(SessionState::Degraded, now_s);
      } else {
        enter(SessionState::Streaming, now_s);
      }
      break;
    }
  }
  publish_health();
}

}  // namespace tagbreathe::llrp
