// Host-side llrp-lite client — the role the LLRP Toolkit plays in the
// paper's software stack (Sec. V): configure the reader with a ROSpec,
// start continuous inventory, and decode the low-level tag reports into
// core::TagRead records for the TagBreathe algorithms.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "llrp/message.hpp"
#include "llrp/params.hpp"
#include "llrp/transport.hpp"
#include "rfid/channel_plan.hpp"

namespace tagbreathe::llrp {

struct ClientConfig {
  /// ROSpec ID used for the continuous-inventory spec.
  std::uint32_t rospec_id = 1;
  /// Channel plan used to map reported channel indexes to carriers.
  rfid::ChannelPlan plan = rfid::ChannelPlan::paper_plan();
};

class LlrpClient {
 public:
  using ReadCallback = std::function<void(const core::TagRead&)>;

  LlrpClient(ClientConfig config, ByteChannel& channel);

  /// Sends ADD_ROSPEC with a continuous-inventory ROSpec.
  std::uint32_t send_add_rospec();
  std::uint32_t send_enable_rospec();
  std::uint32_t send_start_rospec();
  std::uint32_t send_stop_rospec();
  std::uint32_t send_delete_rospec();
  std::uint32_t send_keepalive();
  std::uint32_t send_get_capabilities();

  void set_read_callback(ReadCallback callback) {
    on_read_ = std::move(callback);
  }

  /// Drains incoming messages: dispatches reports to the callback and
  /// records response statuses. Returns the number of messages handled.
  std::size_t poll();

  /// Last status received for the given response type.
  StatusCode last_status(MessageType response_type) const;

  std::size_t reports_received() const noexcept { return reports_; }
  std::size_t reads_decoded() const noexcept { return reads_; }

  /// Capabilities from the last GET_READER_CAPABILITIES exchange.
  const std::optional<ReaderCapabilities>& capabilities() const noexcept {
    return capabilities_;
  }
  /// Keepalive echoes seen (liveness evidence).
  std::size_t keepalives_received() const noexcept { return keepalives_; }
  /// Reader lifecycle events received, newest last.
  const std::vector<ReaderEventKind>& reader_events() const noexcept {
    return reader_events_;
  }

  /// Message bodies that framed correctly but failed to decode (bit
  /// corruption inside a frame). The client drops them and keeps going.
  std::size_t decode_errors() const noexcept { return decode_errors_; }

  /// Individual report entries lost to in-frame corruption (the rest of
  /// their batch was salvaged and delivered).
  std::size_t reads_dropped() const noexcept { return reads_dropped_; }

  /// Framer diagnostics (resyncs after corrupt headers, etc.).
  const MessageFramer::Stats& framer_stats() const noexcept {
    return framer_.stats();
  }

  /// Prepares for a fresh connection after a transport loss: clears the
  /// partially-buffered stream and resets response statuses to
  /// NoResponse so a new handshake is judged on its own responses.
  void reset_session_state();

 private:
  std::uint32_t send(MessageType type, std::vector<std::uint8_t> body);
  void handle(const Message& m);

  ClientConfig config_;
  ByteChannel& channel_;
  MessageFramer framer_;
  ReadCallback on_read_;
  std::uint32_t next_message_id_ = 1;
  std::size_t reports_ = 0;
  std::size_t reads_ = 0;
  std::size_t keepalives_ = 0;
  std::size_t decode_errors_ = 0;
  std::size_t reads_dropped_ = 0;
  std::optional<ReaderCapabilities> capabilities_;
  std::vector<ReaderEventKind> reader_events_;
  StatusCode add_status_ = StatusCode::NoResponse;
  StatusCode enable_status_ = StatusCode::NoResponse;
  StatusCode start_status_ = StatusCode::NoResponse;
  StatusCode stop_status_ = StatusCode::NoResponse;
};

}  // namespace tagbreathe::llrp
