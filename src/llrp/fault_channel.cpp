#include "llrp/fault_channel.hpp"

#include <algorithm>

namespace tagbreathe::llrp {

FaultyChannel::FaultyChannel(ByteChannel& inner, FaultPlan plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {
  next_disconnect_ =
      plan_.disconnect_period_s > 0.0 ? plan_.disconnect_period_s : -1.0;
}

void FaultyChannel::deliver(Side from, std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  if (plan_.byte_drop_prob <= 0.0 && plan_.bit_flip_prob <= 0.0) {
    inner_.write(from, bytes);
    return;
  }
  std::vector<std::uint8_t> damaged;
  damaged.reserve(bytes.size());
  for (std::uint8_t b : bytes) {
    if (plan_.byte_drop_prob > 0.0 && rng_.bernoulli(plan_.byte_drop_prob)) {
      ++counters_.bytes_dropped;
      continue;
    }
    if (plan_.bit_flip_prob > 0.0 && rng_.bernoulli(plan_.bit_flip_prob)) {
      b ^= static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
      ++counters_.bytes_corrupted;
    }
    damaged.push_back(b);
  }
  inner_.write(from, damaged);
}

void FaultyChannel::write(Side from, std::span<const std::uint8_t> bytes) {
  counters_.bytes_written += bytes.size();
  if (!connected_) {
    counters_.bytes_lost_to_disconnect += bytes.size();
    return;
  }
  std::span<const std::uint8_t> payload = bytes;
  if (plan_.partial_write_prob > 0.0 && !payload.empty() &&
      rng_.bernoulli(plan_.partial_write_prob)) {
    const auto keep = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(payload.size()) - 1));
    counters_.bytes_dropped += payload.size() - keep;
    ++counters_.writes_truncated;
    payload = payload.first(keep);
  }
  // A latency burst delays the STREAM, not one write: TCP never
  // reorders, so while held bytes from this side are pending, every
  // later write queues behind them (release times stay monotonic per
  // side). Letting fresh writes overtake held ones once let a stale
  // STOP_ROSPEC arrive after the next handshake's START and silently
  // disarm the reader the supervisor believed it had just started.
  double floor_s = 0.0;
  bool queued_behind = false;
  for (auto it = delayed_.rbegin(); it != delayed_.rend(); ++it) {
    if (it->from == from) {
      floor_s = it->release_s;
      queued_behind = true;
      break;
    }
  }
  const bool burst = plan_.latency_burst_prob > 0.0 && !payload.empty() &&
                     rng_.bernoulli(plan_.latency_burst_prob);
  if (burst || queued_behind) {
    if (burst) counters_.bytes_delayed += payload.size();
    const double release = std::max(
        floor_s, burst ? now_ + plan_.latency_s : now_);
    delayed_.push_back(Delayed{from, release,
                               {payload.begin(), payload.end()}});
    return;
  }
  deliver(from, payload);
}

std::vector<std::uint8_t> FaultyChannel::read(Side to, std::size_t max_bytes) {
  if (!connected_) return {};
  return inner_.read(to, max_bytes);
}

std::size_t FaultyChannel::pending(Side to) const noexcept {
  return connected_ ? inner_.pending(to) : 0;
}

void FaultyChannel::sever(bool count_scheduled) {
  // TCP RST semantics: everything in flight — queued and latency-held —
  // is gone; the next connection starts from a clean stream.
  counters_.bytes_lost_to_disconnect +=
      inner_.pending(Side::Client) + inner_.pending(Side::Reader);
  inner_.read(Side::Client);
  inner_.read(Side::Reader);
  for (const Delayed& d : delayed_)
    counters_.bytes_lost_to_disconnect += d.bytes.size();
  delayed_.clear();
  connected_ = false;
  outage_until_ = now_ + plan_.disconnect_duration_s;
  if (count_scheduled) ++counters_.disconnects;
}

void FaultyChannel::force_disconnect() {
  if (!connected_) return;
  sever(true);
}

bool FaultyChannel::try_reconnect() {
  ++counters_.reconnect_attempts;
  if (connected_) return true;
  if (now_ < outage_until_) return false;
  connected_ = true;
  ++counters_.reconnects;
  return true;
}

void FaultyChannel::advance_to(double now_s) {
  now_ = std::max(now_, now_s);
  if (next_disconnect_ >= 0.0 && connected_ && now_ >= next_disconnect_) {
    sever(true);
    while (next_disconnect_ <= now_) next_disconnect_ += plan_.disconnect_period_s;
  }
  // Release every due hold. The deque interleaves both directions; a
  // not-yet-due hold from one side must not block the other side's due
  // bytes (per-side order is already monotonic by construction).
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->release_s <= now_) {
      deliver(it->from, it->bytes);
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace tagbreathe::llrp
