#include "llrp/params.hpp"

#include <cmath>

#include "common/units.hpp"

namespace tagbreathe::llrp {

std::size_t tv_value_length(std::uint16_t type) {
  switch (static_cast<ParamType>(type)) {
    case ParamType::AntennaId: return 2;
    case ParamType::FirstSeenTimestampUtc: return 8;
    case ParamType::PeakRssi: return 1;
    case ParamType::ChannelIndex: return 2;
    case ParamType::Epc96: return 12;
    default:
      throw DecodeError("unknown TV parameter type " + std::to_string(type));
  }
}

void encode_param(ByteWriter& w, const Param& param) {
  if (param.tv) {
    if (param.type > 0x7F)
      throw std::invalid_argument("TV parameter type exceeds 7 bits");
    if (param.value.size() != tv_value_length(param.type))
      throw std::invalid_argument("TV parameter value length mismatch");
    w.u8(static_cast<std::uint8_t>(0x80 | param.type));
    w.bytes(param.value);
    return;
  }
  const std::size_t header_at = w.size();
  w.u16(param.type & 0x3FF);
  w.u16(0);  // length, patched below
  w.bytes(param.value);
  for (const Param& child : param.children) encode_param(w, child);
  const std::size_t total = w.size() - header_at;
  if (total > 0xFFFF) throw std::invalid_argument("parameter too large");
  w.patch_u16(header_at + 2, static_cast<std::uint16_t>(total));
}

namespace {

/// Fixed-size value prefix a non-leaf TLV carries before its child
/// parameters (LLRP parameters have fixed field layouts; this is the
/// subset we use). ROSpec: u32 id + u8 priority + u8 state.
std::size_t tlv_value_prefix(std::uint16_t type) {
  switch (static_cast<ParamType>(type)) {
    case ParamType::RoSpec: return 6;
    default: return 0;
  }
}

/// TLV leaf types: their payload is raw value bytes, not nested params.
bool is_leaf_tlv(std::uint16_t type) {
  switch (static_cast<ParamType>(type)) {
    case ParamType::EpcData:
    case ParamType::LlrpStatus:
    case ParamType::Custom:
    case ParamType::RoSpecStartTrigger:
    case ParamType::RoSpecStopTrigger:
    case ParamType::AiSpecStopTrigger:
    case ParamType::InventoryParameterSpec:
    case ParamType::RoReportSpec:
      return true;
    default:
      return false;
  }
}

}  // namespace

Param decode_one_param(ByteReader& r) {
  Param p;
  const std::uint8_t first = r.u8();
  if (first & 0x80) {
    p.tv = true;
    p.type = first & 0x7F;
    p.value = r.bytes(tv_value_length(p.type));
  } else {
    // TLV: we already consumed the high byte of the type field.
    const std::uint8_t second = r.u8();
    p.type = static_cast<std::uint16_t>((first & 0x03) << 8) | second;
    const std::uint16_t length = r.u16();
    if (length < 4) throw DecodeError("TLV length below header size");
    ByteReader body = r.sub(length - 4);
    if (is_leaf_tlv(p.type)) {
      p.value = body.bytes(body.remaining());
    } else {
      const std::size_t prefix = tlv_value_prefix(p.type);
      if (prefix > 0) {
        if (body.remaining() < prefix)
          throw DecodeError("TLV value prefix truncated");
        p.value = body.bytes(prefix);
      }
      p.children = decode_params(body);
    }
  }
  return p;
}

std::vector<Param> decode_params(ByteReader& r) {
  std::vector<Param> out;
  while (!r.empty()) out.push_back(decode_one_param(r));
  return out;
}

const Param* find_param(const std::vector<Param>& params, ParamType type) {
  for (const Param& p : params) {
    if (p.type == static_cast<std::uint16_t>(type)) return &p;
  }
  return nullptr;
}

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::Success: return "Success";
    case StatusCode::ParameterError: return "ParameterError";
    case StatusCode::FieldError: return "FieldError";
    case StatusCode::DeviceError: return "DeviceError";
    case StatusCode::NoResponse: return "NoResponse";
  }
  return "?";
}

Param make_status(StatusCode code) {
  Param p;
  p.type = static_cast<std::uint16_t>(ParamType::LlrpStatus);
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(code));
  w.u16(0);  // empty error description
  p.value = w.take();
  return p;
}

StatusCode parse_status(const std::vector<Param>& params) {
  const Param* status = find_param(params, ParamType::LlrpStatus);
  if (status == nullptr) throw DecodeError("missing LLRPStatus");
  ByteReader r(status->value);
  return static_cast<StatusCode>(r.u16());
}

namespace {

Param tv_param(ParamType type, std::span<const std::uint8_t> value) {
  Param p;
  p.tv = true;
  p.type = static_cast<std::uint16_t>(type);
  p.value.assign(value.begin(), value.end());
  return p;
}

Param custom_param(CustomSubtype subtype, std::uint16_t value_u16) {
  Param p;
  p.type = static_cast<std::uint16_t>(ParamType::Custom);
  ByteWriter w;
  w.u32(kVendorId);
  w.u32(static_cast<std::uint32_t>(subtype));
  w.u16(value_u16);
  p.value = w.take();
  return p;
}

}  // namespace

std::vector<std::uint8_t> encode_tag_reports(
    std::span<const TagReportEntry> entries) {
  ByteWriter w;
  for (const TagReportEntry& e : entries) {
    Param report;
    report.type = static_cast<std::uint16_t>(ParamType::TagReportData);

    Param epc;
    epc.type = static_cast<std::uint16_t>(ParamType::EpcData);
    ByteWriter epc_w;
    epc_w.u16(96);  // EPC bit count
    epc_w.bytes(e.epc.bytes());
    epc.value = epc_w.take();
    report.children.push_back(std::move(epc));

    {
      ByteWriter v;
      v.u16(e.antenna_id);
      report.children.push_back(tv_param(ParamType::AntennaId, v.data()));
    }
    {
      ByteWriter v;
      v.u8(static_cast<std::uint8_t>(e.peak_rssi_dbm));
      report.children.push_back(tv_param(ParamType::PeakRssi, v.data()));
    }
    {
      ByteWriter v;
      v.u16(e.channel_index);
      report.children.push_back(tv_param(ParamType::ChannelIndex, v.data()));
    }
    {
      ByteWriter v;
      v.u64(e.first_seen_utc_us);
      report.children.push_back(
          tv_param(ParamType::FirstSeenTimestampUtc, v.data()));
    }
    report.children.push_back(
        custom_param(CustomSubtype::RfPhaseAngle, e.phase_4096));
    report.children.push_back(custom_param(
        CustomSubtype::PeakRssiCentiDbm,
        static_cast<std::uint16_t>(e.rssi_centi_dbm)));
    report.children.push_back(custom_param(
        CustomSubtype::RfDopplerFrequency,
        static_cast<std::uint16_t>(e.doppler_16th_hz)));

    encode_param(w, report);
  }
  return w.take();
}

namespace {

TagReportEntry decode_report_entry(const Param& p) {
  TagReportEntry e;
  for (const Param& c : p.children) {
    switch (static_cast<ParamType>(c.type)) {
      case ParamType::EpcData: {
        ByteReader v(c.value);
        const std::uint16_t bits = v.u16();
        if (bits != 96) throw DecodeError("unsupported EPC length");
        const auto raw = v.bytes(12);
        std::array<std::uint8_t, 12> arr{};
        std::copy(raw.begin(), raw.end(), arr.begin());
        e.epc = rfid::Epc96(arr);
        break;
      }
      case ParamType::AntennaId: {
        ByteReader v(c.value);
        e.antenna_id = v.u16();
        break;
      }
      case ParamType::PeakRssi: {
        ByteReader v(c.value);
        e.peak_rssi_dbm = static_cast<std::int8_t>(v.u8());
        break;
      }
      case ParamType::ChannelIndex: {
        ByteReader v(c.value);
        e.channel_index = v.u16();
        break;
      }
      case ParamType::FirstSeenTimestampUtc: {
        ByteReader v(c.value);
        e.first_seen_utc_us = v.u64();
        break;
      }
      case ParamType::Custom: {
        ByteReader v(c.value);
        const std::uint32_t vendor = v.u32();
        if (vendor != kVendorId) break;
        const auto subtype = static_cast<CustomSubtype>(v.u32());
        const std::uint16_t value = v.u16();
        switch (subtype) {
          case CustomSubtype::RfPhaseAngle:
            e.phase_4096 = value;
            break;
          case CustomSubtype::PeakRssiCentiDbm:
            e.rssi_centi_dbm = static_cast<std::int16_t>(value);
            break;
          case CustomSubtype::RfDopplerFrequency:
            e.doppler_16th_hz = static_cast<std::int16_t>(value);
            break;
        }
        break;
      }
      default:
        break;  // tolerate unknown children, as LTK clients must
    }
  }
  return e;
}

}  // namespace

std::vector<TagReportEntry> decode_tag_reports(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const std::vector<Param> params = decode_params(r);
  std::vector<TagReportEntry> out;
  for (const Param& p : params) {
    if (p.type != static_cast<std::uint16_t>(ParamType::TagReportData))
      continue;
    out.push_back(decode_report_entry(p));
  }
  return out;
}

std::vector<TagReportEntry> decode_tag_reports_salvage(
    std::span<const std::uint8_t> body, std::size_t& entries_dropped) {
  std::vector<TagReportEntry> out;
  entries_dropped = 0;
  std::size_t pos = 0;
  while (pos + 4 <= body.size()) {
    // A salvageable region starts at a top-level TagReportData TLV
    // header. Anything else here is damage — scan forward one byte at a
    // time until the pattern reappears (the 16-bit type match makes
    // false positives rare).
    const std::uint16_t type = static_cast<std::uint16_t>(
        (body[pos] << 8) | body[pos + 1]);
    if ((type & 0x8000u) != 0 ||
        (type & 0x3FFu) !=
            static_cast<std::uint16_t>(ParamType::TagReportData)) {
      ++pos;
      continue;
    }
    const std::size_t len = static_cast<std::size_t>(
        (body[pos + 2] << 8) | body[pos + 3]);
    if (len < 4 || pos + len > body.size()) {
      ++pos;  // corrupted length: treat as a false header and scan on
      continue;
    }
    try {
      ByteReader region(body.subspan(pos, len));
      for (const Param& p : decode_params(region)) {
        if (p.type == static_cast<std::uint16_t>(ParamType::TagReportData))
          out.push_back(decode_report_entry(p));
      }
    } catch (const DecodeError&) {
      ++entries_dropped;  // this entry is damaged; the next may be fine
    }
    pos += len;
  }
  return out;
}

std::vector<std::uint8_t> encode_capabilities(
    const ReaderCapabilities& caps) {
  ByteWriter w;
  encode_param(w, make_status(StatusCode::Success));
  w.u16(caps.max_antennas);
  w.u16(caps.channel_count);
  w.u32(caps.first_channel_khz);
  w.u16(caps.channel_spacing_khz);
  w.u8(static_cast<std::uint8_t>((caps.reports_phase ? 1 : 0) |
                                 (caps.reports_doppler ? 2 : 0)));
  w.u32(caps.vendor_id);
  return w.take();
}

ReaderCapabilities decode_capabilities(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const std::vector<Param> status_params{decode_one_param(r)};
  if (parse_status(status_params) != StatusCode::Success)
    throw DecodeError("capabilities response carries an error status");
  ReaderCapabilities caps;
  caps.max_antennas = r.u16();
  caps.channel_count = r.u16();
  caps.first_channel_khz = r.u32();
  caps.channel_spacing_khz = r.u16();
  const std::uint8_t flags = r.u8();
  caps.reports_phase = (flags & 1) != 0;
  caps.reports_doppler = (flags & 2) != 0;
  caps.vendor_id = r.u32();
  return caps;
}

std::vector<std::uint8_t> encode_reader_event(ReaderEventKind kind,
                                              std::uint64_t timestamp_us) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(kind));
  w.u64(timestamp_us);
  return w.take();
}

ReaderEventKind decode_reader_event(std::span<const std::uint8_t> body,
                                    std::uint64_t& timestamp_us) {
  ByteReader r(body);
  const auto kind = static_cast<ReaderEventKind>(r.u16());
  timestamp_us = r.u64();
  return kind;
}

TagReportEntry to_wire(const core::TagRead& read) {
  TagReportEntry e;
  e.epc = read.epc;
  e.antenna_id = read.antenna_id;
  e.channel_index = read.channel_index;
  e.first_seen_utc_us =
      static_cast<std::uint64_t>(std::llround(read.time_s * 1e6));
  e.peak_rssi_dbm = static_cast<std::int8_t>(std::lround(read.rssi_dbm));
  e.rssi_centi_dbm =
      static_cast<std::int16_t>(std::lround(read.rssi_dbm * 100.0));
  const double frac = read.phase_rad / common::kTwoPi;
  e.phase_4096 = static_cast<std::uint16_t>(
      static_cast<std::uint32_t>(std::llround(frac * 4096.0)) % 4096u);
  e.doppler_16th_hz =
      static_cast<std::int16_t>(std::lround(read.doppler_hz * 16.0));
  return e;
}

core::TagRead from_wire(const TagReportEntry& entry,
                        const rfid::ChannelPlan& plan) {
  core::TagRead read;
  read.epc = entry.epc;
  read.antenna_id = static_cast<std::uint8_t>(entry.antenna_id);
  read.channel_index = entry.channel_index;
  read.frequency_hz = plan.frequency_hz(entry.channel_index);
  read.time_s = static_cast<double>(entry.first_seen_utc_us) * 1e-6;
  read.rssi_dbm = static_cast<double>(entry.rssi_centi_dbm) / 100.0;
  read.phase_rad =
      static_cast<double>(entry.phase_4096) / 4096.0 * common::kTwoPi;
  read.doppler_hz = static_cast<double>(entry.doppler_16th_hz) / 16.0;
  return read;
}

}  // namespace tagbreathe::llrp
