#include "llrp/transport.hpp"

namespace tagbreathe::llrp {

void DuplexChannel::write(Side from, std::span<const std::uint8_t> bytes) {
  auto& queue =
      queue_to(from == Side::Client ? Side::Reader : Side::Client);
  queue.insert(queue.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> DuplexChannel::read(Side to, std::size_t max_bytes) {
  auto& queue = queue_to(to);
  const std::size_t count =
      max_bytes == 0 ? queue.size() : std::min(max_bytes, queue.size());
  std::vector<std::uint8_t> out(queue.begin(),
                                queue.begin() + static_cast<std::ptrdiff_t>(count));
  queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(count));
  return out;
}

std::size_t DuplexChannel::pending(Side to) const noexcept {
  return queue_to(to).size();
}

void DuplexChannel::clear() noexcept {
  to_client_.clear();
  to_reader_.clear();
}

}  // namespace tagbreathe::llrp
