// Fault-injecting transport decorator.
//
// Wraps an inner ByteChannel and applies a seeded, configurable fault
// plan on the way through: per-byte drops, per-byte bit corruption,
// truncated (partial) writes, latency bursts that hold bytes back, and
// scheduled hard disconnects that sever the link until the host dials
// back in. Every fault draw comes from one Rng seeded by the plan, so a
// failure scenario reproduces exactly from its seed — tests and benches
// can replay the precise byte stream that broke something.
//
// Time: the channel has no clock of its own; the harness advances it
// with advance_to(now_s) using the same simulated clock that drives the
// reader. Latency release and the disconnect schedule key off that.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "llrp/transport.hpp"

namespace tagbreathe::llrp {

/// Knobs of the reproducible fault plan. All probabilities are per byte
/// unless stated; 0 disables the corresponding fault.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Per-byte probability of silently dropping the byte in transit (the
  /// classic framer killer: everything after it mis-aligns).
  double byte_drop_prob = 0.0;
  /// Per-byte probability of flipping one random bit.
  double bit_flip_prob = 0.0;
  /// Per-write probability of truncating the write to a random prefix,
  /// as a socket send() interrupted mid-frame would.
  double partial_write_prob = 0.0;
  /// Per-write probability of entering a latency burst: bytes written
  /// during the burst are held and delivered `latency_s` later. Later
  /// writes from the same side queue behind held bytes — a delayed
  /// stream stays a stream; it never reorders.
  double latency_burst_prob = 0.0;
  double latency_s = 0.0;
  /// Hard disconnect every `disconnect_period_s` (0 = never), severing
  /// the link for `disconnect_duration_s`. In-flight bytes are lost and
  /// reconnect attempts fail until the outage window ends.
  double disconnect_period_s = 0.0;
  double disconnect_duration_s = 0.5;

  /// A quiet plan (no faults) — wraps the channel transparently.
  static FaultPlan none() noexcept { return FaultPlan{}; }
};

/// Observability: everything the plan did, for assertions and health
/// reporting.
struct FaultCounters {
  std::size_t bytes_written = 0;
  std::size_t bytes_dropped = 0;
  std::size_t bytes_corrupted = 0;
  std::size_t writes_truncated = 0;
  std::size_t bytes_delayed = 0;
  std::size_t disconnects = 0;
  std::size_t bytes_lost_to_disconnect = 0;
  std::size_t reconnect_attempts = 0;
  std::size_t reconnects = 0;
};

class FaultyChannel : public ByteChannel {
 public:
  FaultyChannel(ByteChannel& inner, FaultPlan plan);

  // ByteChannel: faults are applied on the write path (the wire damages
  // bytes in transit), reads pass through the inner channel.
  void write(Side from, std::span<const std::uint8_t> bytes) override;
  std::vector<std::uint8_t> read(Side to, std::size_t max_bytes = 0) override;
  std::size_t pending(Side to) const noexcept override;

  /// Advances the fault clock: fires scheduled disconnects and releases
  /// latency-held bytes whose delivery time has come.
  void advance_to(double now_s);

  /// Severs the link immediately (in-flight bytes are lost), regardless
  /// of the schedule. The outage lasts `disconnect_duration_s`.
  void force_disconnect();

  /// Attempts to re-establish the link, as a host re-dialing the reader
  /// socket would. Fails (returns false) while the outage window is
  /// still open.
  bool try_reconnect();

  bool connected() const noexcept { return connected_; }
  double now_s() const noexcept { return now_; }
  const FaultCounters& counters() const noexcept { return counters_; }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  struct Delayed {
    Side from;
    double release_s;
    std::vector<std::uint8_t> bytes;
  };

  void sever(bool count_scheduled);
  void deliver(Side from, std::span<const std::uint8_t> bytes);

  ByteChannel& inner_;
  FaultPlan plan_;
  common::Rng rng_;
  FaultCounters counters_;
  double now_ = 0.0;
  bool connected_ = true;
  double outage_until_ = 0.0;
  double next_disconnect_ = 0.0;
  std::deque<Delayed> delayed_;
};

}  // namespace tagbreathe::llrp
