#include "llrp/bytes.hpp"

namespace tagbreathe::llrp {

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buffer_.size())
    throw std::out_of_range("ByteWriter::patch_u32 past end");
  for (int i = 0; i < 4; ++i)
    buffer_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (24 - 8 * i));
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buffer_.size())
    throw std::out_of_range("ByteWriter::patch_u16 past end");
  buffer_[offset] = static_cast<std::uint8_t>(v >> 8);
  buffer_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteReader::need(std::size_t count) const {
  if (pos_ + count > data_.size())
    throw DecodeError("truncated data: need " + std::to_string(count) +
                      " bytes, have " + std::to_string(remaining()));
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                    data_[pos_ + 1];
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::int16_t ByteReader::i16() { return static_cast<std::int16_t>(u16()); }

std::vector<std::uint8_t> ByteReader::bytes(std::size_t count) {
  need(count);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

ByteReader ByteReader::sub(std::size_t count) {
  need(count);
  ByteReader r(data_.subspan(pos_, count));
  pos_ += count;
  return r;
}

}  // namespace tagbreathe::llrp
