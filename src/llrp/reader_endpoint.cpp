#include "llrp/reader_endpoint.hpp"

#include <stdexcept>

namespace tagbreathe::llrp {

ReaderEndpoint::ReaderEndpoint(EndpointConfig config, ByteChannel& channel,
                               std::unique_ptr<rfid::ReaderSim> sim)
    : config_(config), channel_(channel), sim_(std::move(sim)) {
  if (!sim_) throw std::invalid_argument("ReaderEndpoint: null sim");
}

void ReaderEndpoint::send(MessageType type, std::uint32_t id,
                          std::vector<std::uint8_t> body) {
  Message m;
  m.type = type;
  m.message_id = id;
  m.body = std::move(body);
  const auto wire = encode_message(m);
  channel_.write(DuplexChannel::Side::Reader, wire);
}

void ReaderEndpoint::respond_status(MessageType type, std::uint32_t id,
                                    StatusCode code) {
  ByteWriter w;
  encode_param(w, make_status(code));
  send(type, id, w.take());
}

void ReaderEndpoint::process_incoming() {
  framer_.feed(channel_.read(DuplexChannel::Side::Reader));
  Message m;
  while (framer_.next(m)) {
    switch (m.type) {
      case MessageType::AddRoSpec: {
        // Accept a single ROSpec; its ID is the first u32 of the ROSpec
        // parameter body.
        StatusCode code = StatusCode::Success;
        try {
          ByteReader r(m.body);
          const auto params = decode_params(r);
          const Param* rospec = find_param(params, ParamType::RoSpec);
          if (rospec == nullptr || rospec_id_.has_value()) {
            code = StatusCode::ParameterError;
          } else {
            // The ROSpec ID is the first u32 of the ROSpec's value
            // prefix (u32 id + u8 priority + u8 state).
            if (rospec->value.size() >= 4) {
              ByteReader v(rospec->value);
              rospec_id_ = v.u32();
            } else {
              code = StatusCode::FieldError;
            }
          }
        } catch (const DecodeError&) {
          code = StatusCode::ParameterError;
        }
        respond_status(MessageType::AddRoSpecResponse, m.message_id, code);
        break;
      }
      case MessageType::EnableRoSpec: {
        const StatusCode code =
            rospec_id_.has_value() ? StatusCode::Success
                                   : StatusCode::ParameterError;
        if (rospec_id_.has_value()) enabled_ = true;
        respond_status(MessageType::EnableRoSpecResponse, m.message_id, code);
        break;
      }
      case MessageType::StartRoSpec: {
        const StatusCode code =
            enabled_ ? StatusCode::Success : StatusCode::ParameterError;
        if (enabled_) {
          started_ = true;
          next_flush_s_ = sim_->now_s() + config_.report_period_s;
          send(MessageType::ReaderEventNotification, next_message_id_++,
               encode_reader_event(
                   ReaderEventKind::RoSpecStarted,
                   static_cast<std::uint64_t>(sim_->now_s() * 1e6)));
        }
        respond_status(MessageType::StartRoSpecResponse, m.message_id, code);
        break;
      }
      case MessageType::GetReaderCapabilities: {
        ReaderCapabilities caps;
        caps.max_antennas =
            static_cast<std::uint16_t>(sim_->config().antennas.size());
        const auto& plan = sim_->hop_schedule().plan();
        caps.channel_count =
            static_cast<std::uint16_t>(plan.channel_count());
        caps.first_channel_khz =
            static_cast<std::uint32_t>(plan.frequency_hz(0) / 1e3);
        if (plan.channel_count() > 1) {
          caps.channel_spacing_khz = static_cast<std::uint16_t>(
              (plan.frequency_hz(1) - plan.frequency_hz(0)) / 1e3);
        }
        send(MessageType::GetReaderCapabilitiesResponse, m.message_id,
             encode_capabilities(caps));
        break;
      }
      case MessageType::StopRoSpec: {
        if (started_) {
          send(MessageType::ReaderEventNotification, next_message_id_++,
               encode_reader_event(
                   ReaderEventKind::RoSpecStopped,
                   static_cast<std::uint64_t>(sim_->now_s() * 1e6)));
        }
        started_ = false;
        flush_reports();
        respond_status(MessageType::StopRoSpecResponse, m.message_id,
                       StatusCode::Success);
        break;
      }
      case MessageType::DeleteRoSpec: {
        started_ = false;
        enabled_ = false;
        rospec_id_.reset();
        respond_status(MessageType::DeleteRoSpecResponse, m.message_id,
                       StatusCode::Success);
        break;
      }
      case MessageType::KeepAlive:
        // Echo: the host uses the round trip as a liveness probe.
        send(MessageType::KeepAlive, m.message_id, {});
        break;
      case MessageType::CloseConnection: {
        started_ = false;
        respond_status(MessageType::CloseConnectionResponse, m.message_id,
                       StatusCode::Success);
        break;
      }
      default:
        respond_status(MessageType::ErrorMessage, m.message_id,
                       StatusCode::FieldError);
        break;
    }
  }
}

void ReaderEndpoint::flush_reports() {
  if (pending_reports_.empty()) return;
  send(MessageType::RoAccessReport, next_message_id_++,
       encode_tag_reports(pending_reports_));
  pending_reports_.clear();
}

void ReaderEndpoint::advance(double duration_s) {
  if (!started_) {
    // Radio idle: the reader clock advances but nothing is transmitted,
    // matching a reader whose ROSpec is stopped (its report timestamps
    // still track wall time when inventory resumes).
    sim_->skip(duration_s);
    return;
  }
  const double end = sim_->now_s() + duration_s;
  while (sim_->now_s() < end) {
    const double chunk = std::min(config_.report_period_s,
                                  end - sim_->now_s());
    sim_->run(chunk, [this](const core::TagRead& read) {
      pending_reports_.push_back(to_wire(read));
    });
    if (sim_->now_s() >= next_flush_s_) {
      flush_reports();
      next_flush_s_ = sim_->now_s() + config_.report_period_s;
    }
  }
}

}  // namespace tagbreathe::llrp
