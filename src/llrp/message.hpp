// llrp-lite message framing.
//
// Messages follow the LLRP header layout: a 16-bit field carrying the
// protocol version (3 bits) and message type (10 bits), a 32-bit total
// length (header included), and a 32-bit message ID used to pair
// responses with requests. Message type numbers follow the LLRP 1.1
// assignments for the subset we implement.
#pragma once

#include <cstdint>
#include <vector>

#include "llrp/bytes.hpp"

namespace tagbreathe::llrp {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 10;

enum class MessageType : std::uint16_t {
  GetReaderCapabilities = 1,
  GetReaderCapabilitiesResponse = 11,
  AddRoSpec = 20,
  AddRoSpecResponse = 30,
  DeleteRoSpec = 21,
  DeleteRoSpecResponse = 31,
  StartRoSpec = 22,
  StartRoSpecResponse = 32,
  StopRoSpec = 23,
  StopRoSpecResponse = 33,
  EnableRoSpec = 24,
  EnableRoSpecResponse = 34,
  CloseConnection = 14,
  CloseConnectionResponse = 4,
  RoAccessReport = 61,
  KeepAlive = 62,
  ReaderEventNotification = 63,
  ErrorMessage = 100,
};

const char* message_type_name(MessageType type) noexcept;

/// True when `type` (the 10-bit wire value) is a message this dialect
/// implements. The framer uses it to tell real frame boundaries from
/// corrupted-stream coincidences.
bool is_known_message_type(std::uint16_t type) noexcept;

struct Message {
  MessageType type = MessageType::KeepAlive;
  std::uint32_t message_id = 0;
  /// Message body (everything after the 10-byte header).
  std::vector<std::uint8_t> body;
};

/// Serialises header + body.
std::vector<std::uint8_t> encode_message(const Message& message);

/// Parses one complete message. Throws DecodeError on malformed input.
Message decode_message(std::span<const std::uint8_t> wire);

/// Stream framer: accumulates bytes and yields complete messages, as a
/// TCP-borne LLRP connection would.
///
/// Robust against a damaged stream: a header whose version bits are
/// wrong or whose length field is implausible (below the header size or
/// above kMaxFrameBytes) cannot stall or desynchronize the framer — it
/// skips forward to the next byte position that could start a valid
/// header and keeps going, counting the resync. A single corrupted byte
/// therefore costs at most the frames it touched, never the connection.
class MessageFramer {
 public:
  /// Upper bound on one frame. Real LLRP reports are tens of KiB at
  /// most (TLV lengths are 16-bit); anything claiming more is damage.
  /// Kept tight so a corrupted-but-plausible length field can only make
  /// the framer wait for a bounded number of bytes before the stream
  /// self-corrects (or the session watchdog resets it).
  static constexpr std::size_t kMaxFrameBytes = 1 << 16;

  struct Stats {
    std::size_t messages = 0;      // complete frames handed out
    std::size_t resyncs = 0;       // times the framer skipped garbage
    std::size_t bytes_skipped = 0; // bytes discarded while resyncing
  };

  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete message, if any. Never throws: garbage
  /// is skipped (see class comment), not surfaced.
  bool next(Message& out);

  /// Drops all buffered bytes (a new connection starts mid-stream clean).
  void reset() noexcept;

  std::size_t buffered_bytes() const noexcept { return buffer_.size(); }
  const Stats& stats() const noexcept { return stats_; }

 private:
  /// Could `buffer_[pos..]` start a valid frame? Judged on however many
  /// header bytes are available.
  enum class HeaderCheck { Implausible, NeedMore, Plausible };
  HeaderCheck check_header(std::size_t pos) const noexcept;
  /// Drops bytes up to the next position that could start a frame.
  void resync(std::size_t from_pos);

  std::vector<std::uint8_t> buffer_;
  Stats stats_;
};

}  // namespace tagbreathe::llrp
