// llrp-lite message framing.
//
// Messages follow the LLRP header layout: a 16-bit field carrying the
// protocol version (3 bits) and message type (10 bits), a 32-bit total
// length (header included), and a 32-bit message ID used to pair
// responses with requests. Message type numbers follow the LLRP 1.1
// assignments for the subset we implement.
#pragma once

#include <cstdint>
#include <vector>

#include "llrp/bytes.hpp"

namespace tagbreathe::llrp {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 10;

enum class MessageType : std::uint16_t {
  GetReaderCapabilities = 1,
  GetReaderCapabilitiesResponse = 11,
  AddRoSpec = 20,
  AddRoSpecResponse = 30,
  DeleteRoSpec = 21,
  DeleteRoSpecResponse = 31,
  StartRoSpec = 22,
  StartRoSpecResponse = 32,
  StopRoSpec = 23,
  StopRoSpecResponse = 33,
  EnableRoSpec = 24,
  EnableRoSpecResponse = 34,
  CloseConnection = 14,
  CloseConnectionResponse = 4,
  RoAccessReport = 61,
  KeepAlive = 62,
  ReaderEventNotification = 63,
  ErrorMessage = 100,
};

const char* message_type_name(MessageType type) noexcept;

struct Message {
  MessageType type = MessageType::KeepAlive;
  std::uint32_t message_id = 0;
  /// Message body (everything after the 10-byte header).
  std::vector<std::uint8_t> body;
};

/// Serialises header + body.
std::vector<std::uint8_t> encode_message(const Message& message);

/// Parses one complete message. Throws DecodeError on malformed input.
Message decode_message(std::span<const std::uint8_t> wire);

/// Stream framer: accumulates bytes and yields complete messages, as a
/// TCP-borne LLRP connection would.
class MessageFramer {
 public:
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete message, if any.
  bool next(Message& out);

  std::size_t buffered_bytes() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace tagbreathe::llrp
