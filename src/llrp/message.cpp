#include "llrp/message.hpp"

namespace tagbreathe::llrp {

const char* message_type_name(MessageType type) noexcept {
  switch (type) {
    case MessageType::GetReaderCapabilities: return "GET_READER_CAPABILITIES";
    case MessageType::GetReaderCapabilitiesResponse:
      return "GET_READER_CAPABILITIES_RESPONSE";
    case MessageType::AddRoSpec: return "ADD_ROSPEC";
    case MessageType::AddRoSpecResponse: return "ADD_ROSPEC_RESPONSE";
    case MessageType::DeleteRoSpec: return "DELETE_ROSPEC";
    case MessageType::DeleteRoSpecResponse: return "DELETE_ROSPEC_RESPONSE";
    case MessageType::StartRoSpec: return "START_ROSPEC";
    case MessageType::StartRoSpecResponse: return "START_ROSPEC_RESPONSE";
    case MessageType::StopRoSpec: return "STOP_ROSPEC";
    case MessageType::StopRoSpecResponse: return "STOP_ROSPEC_RESPONSE";
    case MessageType::EnableRoSpec: return "ENABLE_ROSPEC";
    case MessageType::EnableRoSpecResponse: return "ENABLE_ROSPEC_RESPONSE";
    case MessageType::CloseConnection: return "CLOSE_CONNECTION";
    case MessageType::CloseConnectionResponse:
      return "CLOSE_CONNECTION_RESPONSE";
    case MessageType::RoAccessReport: return "RO_ACCESS_REPORT";
    case MessageType::KeepAlive: return "KEEPALIVE";
    case MessageType::ReaderEventNotification:
      return "READER_EVENT_NOTIFICATION";
    case MessageType::ErrorMessage: return "ERROR_MESSAGE";
  }
  return "UNKNOWN";
}

std::vector<std::uint8_t> encode_message(const Message& message) {
  ByteWriter w;
  const std::uint16_t version_type =
      static_cast<std::uint16_t>((kProtocolVersion & 0x7) << 10) |
      (static_cast<std::uint16_t>(message.type) & 0x3FF);
  w.u16(version_type);
  w.u32(static_cast<std::uint32_t>(kHeaderBytes + message.body.size()));
  w.u32(message.message_id);
  w.bytes(message.body);
  return w.take();
}

Message decode_message(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const std::uint16_t version_type = r.u16();
  const std::uint8_t version = (version_type >> 10) & 0x7;
  if (version != kProtocolVersion)
    throw DecodeError("unsupported protocol version " +
                      std::to_string(version));
  Message m;
  m.type = static_cast<MessageType>(version_type & 0x3FF);
  const std::uint32_t length = r.u32();
  if (length < kHeaderBytes)
    throw DecodeError("message length below header size");
  if (length != wire.size())
    throw DecodeError("message length mismatch");
  m.message_id = r.u32();
  m.body = r.bytes(length - kHeaderBytes);
  return m;
}

void MessageFramer::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void MessageFramer::reset() noexcept { buffer_.clear(); }

bool is_known_message_type(std::uint16_t type) noexcept {
  switch (static_cast<MessageType>(type)) {
    case MessageType::GetReaderCapabilities:
    case MessageType::GetReaderCapabilitiesResponse:
    case MessageType::AddRoSpec:
    case MessageType::AddRoSpecResponse:
    case MessageType::DeleteRoSpec:
    case MessageType::DeleteRoSpecResponse:
    case MessageType::StartRoSpec:
    case MessageType::StartRoSpecResponse:
    case MessageType::StopRoSpec:
    case MessageType::StopRoSpecResponse:
    case MessageType::EnableRoSpec:
    case MessageType::EnableRoSpecResponse:
    case MessageType::CloseConnection:
    case MessageType::CloseConnectionResponse:
    case MessageType::RoAccessReport:
    case MessageType::KeepAlive:
    case MessageType::ReaderEventNotification:
    case MessageType::ErrorMessage:
      return true;
  }
  return false;
}

MessageFramer::HeaderCheck MessageFramer::check_header(
    std::size_t pos) const noexcept {
  const std::size_t avail = buffer_.size() - pos;
  if (avail == 0) return HeaderCheck::NeedMore;
  // Version bits live in the top of the first byte.
  if (((buffer_[pos] >> 2) & 0x7) != kProtocolVersion)
    return HeaderCheck::Implausible;
  if (avail < 2) return HeaderCheck::NeedMore;
  // Requiring a known message type makes false sync points rare (a
  // random byte pair passes version+type with probability ~2e-3, not
  // 1/8), so a resync almost always lands on a true frame boundary
  // instead of mid-body garbage that stalls the stream.
  const std::uint16_t version_type = static_cast<std::uint16_t>(
      (buffer_[pos] << 8) | buffer_[pos + 1]);
  if (!is_known_message_type(version_type & 0x3FF))
    return HeaderCheck::Implausible;
  if (avail < 6) return HeaderCheck::NeedMore;  // length not visible yet
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i)
    length = (length << 8) | buffer_[pos + 2 + i];
  if (length < kHeaderBytes || length > kMaxFrameBytes)
    return HeaderCheck::Implausible;
  return HeaderCheck::Plausible;
}

void MessageFramer::resync(std::size_t from_pos) {
  std::size_t pos = from_pos;
  while (pos < buffer_.size() &&
         check_header(pos) == HeaderCheck::Implausible)
    ++pos;
  ++stats_.resyncs;
  stats_.bytes_skipped += pos;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
}

bool MessageFramer::next(Message& out) {
  while (!buffer_.empty()) {
    switch (check_header(0)) {
      case HeaderCheck::Implausible:
        resync(1);
        continue;
      case HeaderCheck::NeedMore:
        return false;
      case HeaderCheck::Plausible:
        break;
    }
    std::uint32_t length = 0;
    for (std::size_t i = 0; i < 4; ++i)
      length = (length << 8) | buffer_[2 + i];
    if (buffer_.size() < length) return false;
    try {
      out = decode_message(
          std::span<const std::uint8_t>(buffer_.data(), length));
    } catch (const DecodeError&) {
      // Header looked fine but the frame is damaged; shift one byte and
      // hunt for the next frame boundary.
      resync(1);
      continue;
    }
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(length));
    ++stats_.messages;
    return true;
  }
  return false;
}

}  // namespace tagbreathe::llrp
