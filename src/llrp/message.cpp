#include "llrp/message.hpp"

namespace tagbreathe::llrp {

const char* message_type_name(MessageType type) noexcept {
  switch (type) {
    case MessageType::GetReaderCapabilities: return "GET_READER_CAPABILITIES";
    case MessageType::GetReaderCapabilitiesResponse:
      return "GET_READER_CAPABILITIES_RESPONSE";
    case MessageType::AddRoSpec: return "ADD_ROSPEC";
    case MessageType::AddRoSpecResponse: return "ADD_ROSPEC_RESPONSE";
    case MessageType::DeleteRoSpec: return "DELETE_ROSPEC";
    case MessageType::DeleteRoSpecResponse: return "DELETE_ROSPEC_RESPONSE";
    case MessageType::StartRoSpec: return "START_ROSPEC";
    case MessageType::StartRoSpecResponse: return "START_ROSPEC_RESPONSE";
    case MessageType::StopRoSpec: return "STOP_ROSPEC";
    case MessageType::StopRoSpecResponse: return "STOP_ROSPEC_RESPONSE";
    case MessageType::EnableRoSpec: return "ENABLE_ROSPEC";
    case MessageType::EnableRoSpecResponse: return "ENABLE_ROSPEC_RESPONSE";
    case MessageType::CloseConnection: return "CLOSE_CONNECTION";
    case MessageType::CloseConnectionResponse:
      return "CLOSE_CONNECTION_RESPONSE";
    case MessageType::RoAccessReport: return "RO_ACCESS_REPORT";
    case MessageType::KeepAlive: return "KEEPALIVE";
    case MessageType::ReaderEventNotification:
      return "READER_EVENT_NOTIFICATION";
    case MessageType::ErrorMessage: return "ERROR_MESSAGE";
  }
  return "UNKNOWN";
}

std::vector<std::uint8_t> encode_message(const Message& message) {
  ByteWriter w;
  const std::uint16_t version_type =
      static_cast<std::uint16_t>((kProtocolVersion & 0x7) << 10) |
      (static_cast<std::uint16_t>(message.type) & 0x3FF);
  w.u16(version_type);
  w.u32(static_cast<std::uint32_t>(kHeaderBytes + message.body.size()));
  w.u32(message.message_id);
  w.bytes(message.body);
  return w.take();
}

Message decode_message(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const std::uint16_t version_type = r.u16();
  const std::uint8_t version = (version_type >> 10) & 0x7;
  if (version != kProtocolVersion)
    throw DecodeError("unsupported protocol version " +
                      std::to_string(version));
  Message m;
  m.type = static_cast<MessageType>(version_type & 0x3FF);
  const std::uint32_t length = r.u32();
  if (length < kHeaderBytes)
    throw DecodeError("message length below header size");
  if (length != wire.size())
    throw DecodeError("message length mismatch");
  m.message_id = r.u32();
  m.body = r.bytes(length - kHeaderBytes);
  return m;
}

void MessageFramer::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

bool MessageFramer::next(Message& out) {
  if (buffer_.size() < kHeaderBytes) return false;
  // Peek at the length field (bytes 2..5).
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length = (length << 8) | buffer_[2 + static_cast<std::size_t>(i)];
  if (length < kHeaderBytes)
    throw DecodeError("framer: message length below header size");
  if (buffer_.size() < length) return false;
  out = decode_message(
      std::span<const std::uint8_t>(buffer_.data(), length));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(length));
  return true;
}

}  // namespace tagbreathe::llrp
