// Reader-side llrp-lite endpoint.
//
// Wraps a ReaderSim behind the protocol: accepts ADD/ENABLE/START_ROSPEC
// from the client, and while the ROSpec is running converts the
// simulator's reads into RO_ACCESS_REPORT messages batched on a report
// period — the configuration the paper uses (continuous inventory,
// low-level data reporting on).
#pragma once

#include <memory>
#include <optional>

#include "llrp/message.hpp"
#include "llrp/params.hpp"
#include "llrp/transport.hpp"
#include "rfid/reader.hpp"

namespace tagbreathe::llrp {

struct EndpointConfig {
  /// Reports are flushed at this cadence (R420 default-ish).
  double report_period_s = 0.1;
};

class ReaderEndpoint {
 public:
  ReaderEndpoint(EndpointConfig config, ByteChannel& channel,
                 std::unique_ptr<rfid::ReaderSim> sim);

  /// Handles any pending client messages (configuration plane).
  void process_incoming();

  /// Advances the radio simulation; emits RO_ACCESS_REPORTs while
  /// started. No-op (time still advances) when stopped.
  void advance(double duration_s);

  /// Drops any half-received frame, as the reader side of a TCP session
  /// would when the connection is torn down and re-established. Without
  /// this a truncated request with a plausible length field would leave
  /// the framer waiting for bytes that belong to the *next* connection.
  void reset_link() { framer_.reset(); }

  bool rospec_added() const noexcept { return rospec_id_.has_value(); }
  bool rospec_enabled() const noexcept { return enabled_; }
  bool rospec_started() const noexcept { return started_; }
  const rfid::ReaderSim& sim() const noexcept { return *sim_; }

 private:
  void send(MessageType type, std::uint32_t id,
            std::vector<std::uint8_t> body);
  void respond_status(MessageType type, std::uint32_t id, StatusCode code);
  void flush_reports();

  EndpointConfig config_;
  ByteChannel& channel_;
  std::unique_ptr<rfid::ReaderSim> sim_;
  MessageFramer framer_;

  std::optional<std::uint32_t> rospec_id_;
  bool enabled_ = false;
  bool started_ = false;
  std::vector<TagReportEntry> pending_reports_;
  double next_flush_s_ = 0.0;
  std::uint32_t next_message_id_ = 1000;
};

}  // namespace tagbreathe::llrp
