// In-memory duplex byte transport.
//
// Stands in for the TCP connection between the LTK host software and the
// reader (DESIGN.md substitution table). Bytes written on one side are
// readable on the other, preserving stream semantics — the framing layer
// above must reassemble messages exactly as it would over TCP.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace tagbreathe::llrp {

class DuplexChannel {
 public:
  enum class Side { Client, Reader };

  void write(Side from, std::span<const std::uint8_t> bytes);

  /// Reads up to `max_bytes` pending bytes destined for `to` (0 = all).
  std::vector<std::uint8_t> read(Side to, std::size_t max_bytes = 0);

  std::size_t pending(Side to) const noexcept;

 private:
  std::deque<std::uint8_t>& queue_to(Side side) noexcept {
    return side == Side::Client ? to_client_ : to_reader_;
  }
  const std::deque<std::uint8_t>& queue_to(Side side) const noexcept {
    return side == Side::Client ? to_client_ : to_reader_;
  }

  std::deque<std::uint8_t> to_client_;
  std::deque<std::uint8_t> to_reader_;
};

}  // namespace tagbreathe::llrp
