// In-memory duplex byte transport.
//
// Stands in for the TCP connection between the LTK host software and the
// reader (DESIGN.md substitution table). Bytes written on one side are
// readable on the other, preserving stream semantics — the framing layer
// above must reassemble messages exactly as it would over TCP.
//
// ByteChannel is the seam the protocol endpoints speak through: the
// perfect DuplexChannel below, or a FaultyChannel (fault_channel.hpp)
// that decorates it with reproducible transport faults.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace tagbreathe::llrp {

enum class Side { Client, Reader };

/// Abstract duplex byte stream between the two protocol endpoints.
class ByteChannel {
 public:
  using Side = llrp::Side;

  virtual ~ByteChannel() = default;

  virtual void write(Side from, std::span<const std::uint8_t> bytes) = 0;

  /// Reads up to `max_bytes` pending bytes destined for `to` (0 = all).
  virtual std::vector<std::uint8_t> read(Side to, std::size_t max_bytes = 0) = 0;

  virtual std::size_t pending(Side to) const noexcept = 0;
};

/// Lossless in-memory channel (the seed behaviour).
class DuplexChannel : public ByteChannel {
 public:
  void write(Side from, std::span<const std::uint8_t> bytes) override;
  std::vector<std::uint8_t> read(Side to, std::size_t max_bytes = 0) override;
  std::size_t pending(Side to) const noexcept override;

  /// Drops everything in flight (a hard connection reset).
  void clear() noexcept;

 private:
  std::deque<std::uint8_t>& queue_to(Side side) noexcept {
    return side == Side::Client ? to_client_ : to_reader_;
  }
  const std::deque<std::uint8_t>& queue_to(Side side) const noexcept {
    return side == Side::Client ? to_client_ : to_reader_;
  }

  std::deque<std::uint8_t> to_client_;
  std::deque<std::uint8_t> to_reader_;
};

}  // namespace tagbreathe::llrp
