// Self-healing LLRP session supervisor.
//
// The paper's measurement chain hangs off one fragile TCP/LLRP stream
// from the reader (Sec. V); in deployment that stream drops reads,
// stalls and disconnects. The supervisor wraps LlrpClient in a liveness
// state machine so reader faults degrade one user's estimate instead of
// killing the process:
//
//   Disconnected -> Connecting -> Configuring -> Streaming <-> Degraded
//        ^                |             |            |            |
//        +---- backoff ---+-- timeout --+            +- watchdog -+
//
// - Disconnected: dial the transport with exponential backoff + jitter.
// - Connecting: transport up; flush stale session state, clear the
//   reader's ROSpec (DELETE) and begin a fresh ADD/ENABLE/START.
// - Configuring: drive the handshake response by response; a rejection
//   or timeout tears the link down and backs off.
// - Streaming: reports flowing; keepalives on a timer probe liveness.
// - Degraded: traffic went quiet but the watchdog has not fired yet —
//   the session is kept while the supervisor probes harder; traffic
//   resumption restores Streaming, watchdog expiry forces a reconnect.
//
// Time is injected via advance_to(now_s) on the same clock that drives
// the reader simulation, so every recovery scenario is deterministic.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "llrp/client.hpp"
#include "llrp/fault_channel.hpp"

namespace tagbreathe::core {
class IngestQueue;
}

namespace tagbreathe::obs {
class Observability;
class Counter;
class Gauge;
}  // namespace tagbreathe::obs

namespace tagbreathe::llrp {

enum class SessionState : std::uint8_t {
  Disconnected = 0,
  Connecting = 1,
  Configuring = 2,
  Streaming = 3,
  Degraded = 4,
};
inline constexpr std::size_t kSessionStateCount = 5;

const char* session_state_name(SessionState state) noexcept;

struct SupervisorConfig {
  /// Liveness probe cadence while Streaming/Degraded.
  double keepalive_period_s = 1.0;
  /// Total silence (no reports, keepalive echoes or events) for this
  /// long => the link is declared dead and torn down.
  double watchdog_timeout_s = 3.0;
  /// Silence before Streaming is downgraded to Degraded (must be below
  /// the watchdog timeout to be observable).
  double degraded_after_s = 1.5;
  /// ADD/ENABLE/START must complete within this budget per attempt.
  /// The budget spans all three stages; it must hold several retry
  /// rounds (handshake_retry_s each) so per-frame corruption does not
  /// burn whole attempts.
  double handshake_timeout_s = 4.0;
  /// A handshake request whose response has not arrived after this long
  /// is retransmitted in place (its frame was likely corrupted in
  /// transit) rather than costing the whole attempt. Must be well below
  /// handshake_timeout_s to buy several tries per attempt.
  double handshake_retry_s = 0.4;
  /// Reconnect backoff: initial delay, growth factor, cap, and the
  /// jitter fraction (+-) applied to each delay so a fleet of hosts
  /// does not redial in lockstep.
  double backoff_initial_s = 0.25;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 5.0;
  double backoff_jitter = 0.25;
  /// Treat a severed transport as immediately detected (a socket write
  /// error), rather than waiting for the watchdog. Silent stalls are
  /// always left to the watchdog.
  bool detect_transport_loss = true;
  std::uint64_t seed = 0x5EED;
};

/// Point-in-time liveness sample for an external health authority (the
/// fleet coordinator, ISSUE 6): enough signal to classify a session as
/// up, degraded or dead without reaching into the state machine.
struct SessionProbe {
  SessionState state = SessionState::Disconnected;
  /// Seconds since the session last saw any traffic (reports,
  /// keepalive echoes, events). 0 while not yet streaming.
  double silence_s = 0.0;
  /// Current reconnect backoff delay (grows with failures).
  double backoff_s = 0.0;
  /// Dial / watchdog / handshake failures since the last completed
  /// ADD/ENABLE/START cycle. Resets to 0 on re-arm, so a supervisor
  /// stuck in a redial loop reads as monotonically worsening.
  std::size_t consecutive_failures = 0;
  bool streaming = false;
};

/// Exported health counters (the observability surface of the ISSUE).
struct SupervisorHealth {
  std::size_t reconnects = 0;          // successful transport dials
  std::size_t reconnect_failures = 0;  // dial attempts that failed
  std::size_t watchdog_fires = 0;
  std::size_t handshake_failures = 0;
  std::size_t handshake_retransmits = 0;  // lost-request resends
  std::size_t rearm_count = 0;         // completed ADD/ENABLE/START cycles
  std::size_t keepalives_sent = 0;
  std::size_t state_changes = 0;
  double time_in_state_s[kSessionStateCount] = {};
};

class SessionSupervisor {
 public:
  /// `channel` may be null when the transport has no failure modes (a
  /// plain DuplexChannel): the dial step then always succeeds.
  SessionSupervisor(SupervisorConfig config, LlrpClient& client,
                    FaultyChannel* channel);

  /// Drives the state machine up to `now_s`: polls the client, probes
  /// liveness, dials/re-arms as needed. Call at the pump cadence.
  void advance_to(double now_s);

  /// Routes every read the client decodes into a bounded ingest queue
  /// (core/ingest.hpp) instead of a raw callback: the reader pump
  /// thread enqueues without ever blocking (a full queue sheds per the
  /// queue's backpressure policy; under Block it counts would-block),
  /// and the analysis thread drains via IngestFrontEnd::pump. The
  /// queue must outlive the supervised client. Replaces any callback
  /// previously installed on the client.
  void route_reads_to(core::IngestQueue& queue);

  SessionState state() const noexcept { return state_; }
  const SupervisorHealth& health() const noexcept { return health_; }
  bool streaming() const noexcept {
    return state_ == SessionState::Streaming ||
           state_ == SessionState::Degraded;
  }
  /// Current reconnect delay (diagnostic; grows with failures).
  double backoff_s() const noexcept { return backoff_; }

  /// Health sample at `now_s` for an external authority (fleet
  /// coordinator). Pure observation: does not advance the machine.
  SessionProbe probe(double now_s) const noexcept;

  /// Registers llrp_* instruments on `hub`. SupervisorHealth stays the
  /// source of truth; the counters mirror it (Counter::set) at every
  /// advance_to, and state transitions emit "llrp.session" Instant trace
  /// events stamped with the supervisor's injected clock.
  void bind_observability(obs::Observability& hub);

 private:
  void publish_health();
  void enter(SessionState next, double now_s);
  void tear_down(double now_s);
  bool transport_connected() const noexcept;
  bool dial() noexcept;
  void schedule_retry(double now_s);
  /// Updates last_traffic_s_ from the client's receive counters.
  void observe_traffic(double now_s);
  void drive_handshake(double now_s);

  SupervisorConfig config_;
  LlrpClient& client_;
  FaultyChannel* channel_;
  common::Rng rng_;
  SupervisorHealth health_;

  SessionState state_ = SessionState::Disconnected;
  double last_now_ = 0.0;
  double backoff_ = 0.0;
  double next_attempt_ = 0.0;
  double handshake_deadline_ = 0.0;
  double handshake_resend_ = 0.0;
  bool enable_sent_ = false;
  bool start_sent_ = false;
  double next_keepalive_ = 0.0;
  double last_traffic_s_ = 0.0;
  std::size_t traffic_counter_seen_ = 0;
  /// Failures (dial, watchdog, handshake) since the last re-arm.
  std::size_t consecutive_failures_ = 0;

  // Null until bind_observability; `hub` is the is-bound sentinel.
  struct Instruments {
    obs::Observability* hub = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* reconnect_failures = nullptr;
    obs::Counter* watchdog_fires = nullptr;
    obs::Counter* handshake_failures = nullptr;
    obs::Counter* handshake_retransmits = nullptr;
    obs::Counter* rearms = nullptr;
    obs::Counter* keepalives = nullptr;
    obs::Counter* state_changes = nullptr;
    obs::Gauge* session_state = nullptr;
    obs::Gauge* time_in_state[kSessionStateCount] = {};
    std::uint16_t trace_stage = 0;
  } obs_;
};

}  // namespace tagbreathe::llrp
