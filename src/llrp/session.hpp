// Convenience wiring of an LlrpClient to a ReaderEndpoint over an
// in-memory channel: the full "host <-> reader" loop in one object.
// Examples and integration tests drive the system through this seam, so
// every TagRead they consume has round-tripped the wire format.
//
// Two harnesses live here: LlrpSession (perfect transport, explicit
// handshake — the seed behaviour) and SupervisedSession (FaultyChannel
// transport + SessionSupervisor, the self-healing deployment loop).
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "llrp/client.hpp"
#include "llrp/fault_channel.hpp"
#include "llrp/reader_endpoint.hpp"
#include "llrp/supervisor.hpp"

namespace tagbreathe::llrp {

class LlrpSession {
 public:
  LlrpSession(ClientConfig client_config, EndpointConfig endpoint_config,
              std::unique_ptr<rfid::ReaderSim> sim)
      : channel_(),
        endpoint_(endpoint_config, channel_, std::move(sim)),
        client_(std::move(client_config), channel_) {}

  /// Performs the ADD/ENABLE/START handshake. Throws on a non-success
  /// status from the reader.
  void start() {
    client_.send_add_rospec();
    pump();
    client_.send_enable_rospec();
    pump();
    client_.send_start_rospec();
    pump();
    if (client_.last_status(MessageType::AddRoSpecResponse) !=
            StatusCode::Success ||
        client_.last_status(MessageType::EnableRoSpecResponse) !=
            StatusCode::Success ||
        client_.last_status(MessageType::StartRoSpecResponse) !=
            StatusCode::Success) {
      throw std::runtime_error("LLRP handshake failed");
    }
  }

  /// Runs the radio for `duration_s`, delivering decoded reads to the
  /// client callback.
  void advance(double duration_s) {
    endpoint_.advance(duration_s);
    client_.poll();
  }

  void stop() {
    client_.send_stop_rospec();
    pump();
  }

  LlrpClient& client() noexcept { return client_; }
  ReaderEndpoint& endpoint() noexcept { return endpoint_; }

 private:
  void pump() {
    endpoint_.process_incoming();
    client_.poll();
  }

  DuplexChannel channel_;
  ReaderEndpoint endpoint_;
  LlrpClient client_;
};

struct SupervisedSessionConfig {
  ClientConfig client{};
  EndpointConfig endpoint{};
  SupervisorConfig supervisor{};
  FaultPlan faults{};
  /// Event-loop slice: radio advance + supervisor tick cadence (a
  /// socket loop would wake at roughly this rate on report batches).
  double pump_period_s = 0.05;
};

/// The deployment loop: reader sim behind a fault-injecting transport,
/// driven by the self-healing supervisor. There is no start()/stop() —
/// the supervisor dials, configures and re-arms on its own; advance()
/// just runs the world.
class SupervisedSession {
 public:
  SupervisedSession(SupervisedSessionConfig config,
                    std::unique_ptr<rfid::ReaderSim> sim)
      : config_(config),
        inner_(),
        faulty_(inner_, config.faults),
        endpoint_(config.endpoint, faulty_, std::move(sim)),
        client_(config.client, faulty_),
        supervisor_(config.supervisor, client_, &faulty_) {}

  /// Runs radio, transport faults and supervision for `duration_s`.
  void advance(double duration_s) {
    double remaining = duration_s;
    while (remaining > 1e-9) {
      const double slice = std::min(config_.pump_period_s, remaining);
      endpoint_.advance(slice);
      const double now = endpoint_.sim().now_s();
      faulty_.advance_to(now);       // scheduled disconnects, latency
      sync_link_state();
      endpoint_.process_incoming();  // answer anything still queued
      supervisor_.advance_to(now);   // polls client, probes, re-arms
      sync_link_state();             // supervisor may have torn down
      endpoint_.process_incoming();  // answer what the supervisor sent
      remaining -= slice;
    }
  }

  double now_s() const noexcept { return endpoint_.sim().now_s(); }
  LlrpClient& client() noexcept { return client_; }
  ReaderEndpoint& endpoint() noexcept { return endpoint_; }
  SessionSupervisor& supervisor() noexcept { return supervisor_; }
  FaultyChannel& channel() noexcept { return faulty_; }

 private:
  /// The reader observes connection loss too: whenever the channel has
  /// gone through a disconnect since the last pump, drop its
  /// half-received frame so the stale bytes cannot poison the next
  /// connection's framing.
  void sync_link_state() {
    const std::size_t disconnects = faulty_.counters().disconnects;
    if (disconnects != disconnects_seen_) {
      disconnects_seen_ = disconnects;
      endpoint_.reset_link();
    }
  }

  SupervisedSessionConfig config_;
  DuplexChannel inner_;
  FaultyChannel faulty_;
  ReaderEndpoint endpoint_;
  LlrpClient client_;
  SessionSupervisor supervisor_;
  std::size_t disconnects_seen_ = 0;
};

}  // namespace tagbreathe::llrp
