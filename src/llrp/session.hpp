// Convenience wiring of an LlrpClient to a ReaderEndpoint over an
// in-memory channel: the full "host <-> reader" loop in one object.
// Examples and integration tests drive the system through this seam, so
// every TagRead they consume has round-tripped the wire format.
#pragma once

#include <memory>
#include <stdexcept>

#include "llrp/client.hpp"
#include "llrp/reader_endpoint.hpp"

namespace tagbreathe::llrp {

class LlrpSession {
 public:
  LlrpSession(ClientConfig client_config, EndpointConfig endpoint_config,
              std::unique_ptr<rfid::ReaderSim> sim)
      : channel_(),
        endpoint_(endpoint_config, channel_, std::move(sim)),
        client_(std::move(client_config), channel_) {}

  /// Performs the ADD/ENABLE/START handshake. Throws on a non-success
  /// status from the reader.
  void start() {
    client_.send_add_rospec();
    pump();
    client_.send_enable_rospec();
    pump();
    client_.send_start_rospec();
    pump();
    if (client_.last_status(MessageType::AddRoSpecResponse) !=
            StatusCode::Success ||
        client_.last_status(MessageType::EnableRoSpecResponse) !=
            StatusCode::Success ||
        client_.last_status(MessageType::StartRoSpecResponse) !=
            StatusCode::Success) {
      throw std::runtime_error("LLRP handshake failed");
    }
  }

  /// Runs the radio for `duration_s`, delivering decoded reads to the
  /// client callback.
  void advance(double duration_s) {
    endpoint_.advance(duration_s);
    client_.poll();
  }

  void stop() {
    client_.send_stop_rospec();
    pump();
  }

  LlrpClient& client() noexcept { return client_; }
  ReaderEndpoint& endpoint() noexcept { return endpoint_; }

 private:
  void pump() {
    endpoint_.process_incoming();
    client_.poll();
  }

  DuplexChannel channel_;
  ReaderEndpoint endpoint_;
  LlrpClient client_;
};

}  // namespace tagbreathe::llrp
