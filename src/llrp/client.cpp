#include "llrp/client.hpp"

namespace tagbreathe::llrp {

LlrpClient::LlrpClient(ClientConfig config, ByteChannel& channel)
    : config_(std::move(config)), channel_(channel) {}

void LlrpClient::reset_session_state() {
  framer_.reset();
  add_status_ = StatusCode::NoResponse;
  enable_status_ = StatusCode::NoResponse;
  start_status_ = StatusCode::NoResponse;
  stop_status_ = StatusCode::NoResponse;
}

std::uint32_t LlrpClient::send(MessageType type,
                               std::vector<std::uint8_t> body) {
  Message m;
  m.type = type;
  m.message_id = next_message_id_++;
  m.body = std::move(body);
  channel_.write(DuplexChannel::Side::Client, encode_message(m));
  return m.message_id;
}

std::uint32_t LlrpClient::send_add_rospec() {
  // Continuous-inventory ROSpec: null start trigger (started explicitly),
  // null stop trigger (runs until stopped), single AISpec over all
  // antennas. Field layout is simplified but the parameter skeleton is
  // the real one.
  Param rospec;
  rospec.type = static_cast<std::uint16_t>(ParamType::RoSpec);
  {
    ByteWriter v;
    v.u32(config_.rospec_id);
    v.u8(0);  // priority
    v.u8(0);  // current state: disabled
    rospec.value = v.take();
  }
  {
    Param boundary;
    boundary.type = static_cast<std::uint16_t>(ParamType::RoBoundarySpec);
    Param start;
    start.type = static_cast<std::uint16_t>(ParamType::RoSpecStartTrigger);
    start.value = {0};  // null trigger
    Param stop;
    stop.type = static_cast<std::uint16_t>(ParamType::RoSpecStopTrigger);
    stop.value = {0};  // null trigger
    boundary.children.push_back(std::move(start));
    boundary.children.push_back(std::move(stop));
    rospec.children.push_back(std::move(boundary));
  }
  {
    Param aispec;
    aispec.type = static_cast<std::uint16_t>(ParamType::AiSpec);
    Param stop;
    stop.type = static_cast<std::uint16_t>(ParamType::AiSpecStopTrigger);
    stop.value = {0};
    aispec.children.push_back(std::move(stop));
    Param inv;
    inv.type = static_cast<std::uint16_t>(ParamType::InventoryParameterSpec);
    ByteWriter v;
    v.u16(1);  // spec id
    v.u8(1);   // protocol: EPCGlobal C1G2
    inv.value = v.take();
    aispec.children.push_back(std::move(inv));
    rospec.children.push_back(std::move(aispec));
  }
  {
    Param report;
    report.type = static_cast<std::uint16_t>(ParamType::RoReportSpec);
    ByteWriter v;
    v.u8(1);  // report on N tags / timer
    v.u16(0);
    report.value = v.take();
    rospec.children.push_back(std::move(report));
  }

  // NOTE: the endpoint reads the ROSpec ID from the value region when
  // present; we encode the value-bearing variant.
  Param wire_rospec;
  wire_rospec.type = rospec.type;
  wire_rospec.value = rospec.value;
  // Children are appended after the value bytes; the endpoint treats the
  // ROSpec as opaque except for the leading ID.
  wire_rospec.children = rospec.children;

  ByteWriter w;
  encode_param(w, wire_rospec);
  return send(MessageType::AddRoSpec, w.take());
}

std::uint32_t LlrpClient::send_enable_rospec() {
  ByteWriter w;
  w.u32(config_.rospec_id);
  return send(MessageType::EnableRoSpec, w.take());
}

std::uint32_t LlrpClient::send_start_rospec() {
  ByteWriter w;
  w.u32(config_.rospec_id);
  return send(MessageType::StartRoSpec, w.take());
}

std::uint32_t LlrpClient::send_stop_rospec() {
  ByteWriter w;
  w.u32(config_.rospec_id);
  return send(MessageType::StopRoSpec, w.take());
}

std::uint32_t LlrpClient::send_delete_rospec() {
  ByteWriter w;
  w.u32(config_.rospec_id);
  return send(MessageType::DeleteRoSpec, w.take());
}

std::uint32_t LlrpClient::send_keepalive() {
  return send(MessageType::KeepAlive, {});
}

std::uint32_t LlrpClient::send_get_capabilities() {
  return send(MessageType::GetReaderCapabilities, {});
}

void LlrpClient::handle(const Message& m) {
  switch (m.type) {
    case MessageType::RoAccessReport: {
      ++reports_;
      std::size_t dropped = 0;
      const auto entries = decode_tag_reports_salvage(m.body, dropped);
      reads_dropped_ += dropped;
      for (const TagReportEntry& e : entries) {
        core::TagRead read;
        try {
          read = from_wire(e, config_.plan);
        } catch (const std::exception&) {
          // Entry decoded but a field fails validation (e.g. corrupted
          // channel index) — drop this read, keep its batch-mates.
          ++reads_dropped_;
          continue;
        }
        ++reads_;
        if (on_read_) on_read_(read);
      }
      break;
    }
    case MessageType::AddRoSpecResponse:
    case MessageType::EnableRoSpecResponse:
    case MessageType::StartRoSpecResponse:
    case MessageType::StopRoSpecResponse: {
      ByteReader r(m.body);
      const auto params = decode_params(r);
      const StatusCode code = parse_status(params);
      if (m.type == MessageType::AddRoSpecResponse) add_status_ = code;
      if (m.type == MessageType::EnableRoSpecResponse)
        enable_status_ = code;
      if (m.type == MessageType::StartRoSpecResponse) start_status_ = code;
      if (m.type == MessageType::StopRoSpecResponse) stop_status_ = code;
      break;
    }
    case MessageType::GetReaderCapabilitiesResponse: {
      capabilities_ = decode_capabilities(m.body);
      break;
    }
    case MessageType::KeepAlive: {
      ++keepalives_;
      break;
    }
    case MessageType::ReaderEventNotification: {
      std::uint64_t ts_us = 0;
      reader_events_.push_back(decode_reader_event(m.body, ts_us));
      break;
    }
    default:
      break;
  }
}

std::size_t LlrpClient::poll() {
  framer_.feed(channel_.read(ByteChannel::Side::Client));
  Message m;
  std::size_t handled = 0;
  while (framer_.next(m)) {
    ++handled;
    try {
      handle(m);
    } catch (const std::exception&) {
      // A frame that framed correctly but carries a damaged body — a
      // DecodeError, or a decoded field that fails validation further
      // up (e.g. a bit-flipped channel index rejected by the channel
      // plan): drop it and keep the connection — one bad report must
      // not cost the session (the pipeline treats it as a momentary
      // read gap).
      ++decode_errors_;
    }
  }
  return handled;
}

StatusCode LlrpClient::last_status(MessageType response_type) const {
  switch (response_type) {
    case MessageType::AddRoSpecResponse: return add_status_;
    case MessageType::EnableRoSpecResponse: return enable_status_;
    case MessageType::StartRoSpecResponse: return start_status_;
    case MessageType::StopRoSpecResponse: return stop_status_;
    default: return StatusCode::NoResponse;
  }
}

}  // namespace tagbreathe::llrp
