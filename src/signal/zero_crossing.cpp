#include "signal/zero_crossing.hpp"

#include <cmath>

namespace tagbreathe::signal {

std::vector<ZeroCrossing> detect_zero_crossings(
    std::span<const TimedSample> series, double hysteresis) {
  std::vector<ZeroCrossing> crossings;
  if (series.size() < 2) return crossings;

  // State machine: track the last *armed* polarity. A crossing in the
  // other direction is only emitted once the signal has previously
  // exceeded the hysteresis threshold on this side.
  int armed = 0;  // +1: above +hyst seen; -1: below -hyst seen; 0: unknown
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double v = series[i].value;
    if (armed >= 0 && v > hysteresis) armed = 1;
    if (armed <= 0 && v < -hysteresis) armed = -1;

    if (i == 0) continue;
    const double prev = series[i - 1].value;
    const bool falling = prev > 0.0 && v <= 0.0 && armed == 1;
    const bool rising = prev < 0.0 && v >= 0.0 && armed == -1;
    if (!falling && !rising) continue;

    // Linear interpolation for the crossing instant.
    const double dv = v - prev;
    double t = series[i].time_s;
    if (std::abs(dv) > 1e-300) {
      const double frac = -prev / dv;
      t = series[i - 1].time_s +
          frac * (series[i].time_s - series[i - 1].time_s);
    }
    crossings.push_back(ZeroCrossing{
        t, falling ? CrossingDirection::Falling : CrossingDirection::Rising});
    // Re-arm on the new side only after exceeding the threshold there.
    armed = 0;
  }
  return crossings;
}

std::vector<ZeroCrossing> detect_zero_crossings(std::span<const double> values,
                                                double sample_rate_hz,
                                                double t0, double hysteresis) {
  std::vector<TimedSample> series(values.size());
  const double dt = sample_rate_hz > 0.0 ? 1.0 / sample_rate_hz : 1.0;
  for (std::size_t i = 0; i < values.size(); ++i)
    series[i] = TimedSample{t0 + static_cast<double>(i) * dt, values[i]};
  return detect_zero_crossings(series, hysteresis);
}

double hysteresis_from_peak(std::span<const double> values,
                            double fraction) noexcept {
  double peak = 0.0;
  for (double v : values) peak = std::max(peak, std::abs(v));
  return fraction * peak;
}

}  // namespace tagbreathe::signal
