// FIR filter design and application.
//
// The paper notes "a finite impulse response (FIR) low pass filter can
// also be adopted to extract breathing signals" (Sec. IV-B). We implement
// windowed-sinc design and zero-phase (forward-backward) filtering so the
// FIR path is a drop-in alternative to the FFT low-pass filter, and
// ablation benches can compare the two.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "signal/window.hpp"

namespace tagbreathe::signal {

/// Windowed-sinc low-pass design. `cutoff_hz` is the -6 dB edge;
/// `num_taps` must be odd (type-I linear phase) and >= 3.
std::vector<double> design_lowpass(double cutoff_hz, double sample_rate_hz,
                                   std::size_t num_taps,
                                   WindowType window = WindowType::Hamming);

/// Windowed-sinc high-pass via spectral inversion of the low-pass.
std::vector<double> design_highpass(double cutoff_hz, double sample_rate_hz,
                                    std::size_t num_taps,
                                    WindowType window = WindowType::Hamming);

/// Band-pass as high-pass cascaded with low-pass (designed directly as
/// the difference of two low-pass kernels).
std::vector<double> design_bandpass(double low_hz, double high_hz,
                                    double sample_rate_hz,
                                    std::size_t num_taps,
                                    WindowType window = WindowType::Hamming);

/// Direct-form convolution, "same" length output: y[n] = sum_k h[k] x[n-k]
/// with zero padding at the edges and the kernel's group delay removed
/// (odd-length symmetric kernels only introduce integer delay).
std::vector<double> filter_same(std::span<const double> x,
                                std::span<const double> taps);

/// Zero-phase filtering: forward pass, reverse, forward pass, reverse.
/// Doubles the magnitude response in dB but cancels phase distortion —
/// important because breathing-rate estimation reads zero-crossing *times*.
std::vector<double> filtfilt(std::span<const double> x,
                             std::span<const double> taps);

/// Complex frequency response magnitude of the kernel at `freq_hz`.
double frequency_response_mag(std::span<const double> taps, double freq_hz,
                              double sample_rate_hz) noexcept;

/// Suggested tap count for a transition band width [Hz] using the Harris
/// approximation for a Hamming window; always returns an odd count >= 3.
std::size_t suggest_num_taps(double transition_hz, double sample_rate_hz);

/// Streaming FIR filter holding its own delay line. Used by the realtime
/// pipeline where samples arrive one at a time.
class StreamingFir {
 public:
  explicit StreamingFir(std::vector<double> taps);

  /// Pushes one input sample, returns the filtered output (with the
  /// kernel's inherent group delay).
  double push(double x) noexcept;

  void reset() noexcept;
  std::size_t num_taps() const noexcept { return taps_.size(); }
  /// Group delay in samples for a symmetric kernel.
  double group_delay() const noexcept {
    return (static_cast<double>(taps_.size()) - 1.0) / 2.0;
  }

 private:
  std::vector<double> taps_;
  std::vector<double> history_;  // circular delay line
  std::size_t pos_ = 0;
};

}  // namespace tagbreathe::signal
