// Peak detection.
//
// Used for the FFT-peak baseline rate estimator and for breath-to-breath
// interval analysis (apnea / irregularity extension).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tagbreathe::signal {

struct Peak {
  std::size_t index = 0;
  double value = 0.0;
  double prominence = 0.0;
};

/// Finds local maxima separated by at least `min_distance` samples and
/// with prominence >= `min_prominence`. Prominence is the height of the
/// peak above the higher of the two deepest valleys separating it from
/// higher terrain (standard topographic definition, evaluated within the
/// series).
std::vector<Peak> find_peaks(std::span<const double> x,
                             std::size_t min_distance = 1,
                             double min_prominence = 0.0);

}  // namespace tagbreathe::signal
