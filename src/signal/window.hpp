// Window functions for spectral analysis and FIR design.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tagbreathe::signal {

enum class WindowType { Rectangular, Hann, Hamming, Blackman, BlackmanHarris };

/// Generates an n-point symmetric window.
std::vector<double> make_window(WindowType type, std::size_t n);

/// Multiplies the signal by the window element-wise (sizes must match).
void apply_window(std::span<double> data, std::span<const double> window);

/// Sum of window coefficients (for periodogram amplitude correction).
double window_gain(std::span<const double> window) noexcept;

const char* window_name(WindowType type) noexcept;

}  // namespace tagbreathe::signal
