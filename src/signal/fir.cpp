#include "signal/fir.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace tagbreathe::signal {

using tagbreathe::common::kPi;
using tagbreathe::common::kTwoPi;

namespace {

void check_design_args(double cutoff_hz, double sample_rate_hz,
                       std::size_t num_taps) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("FIR design: sample rate must be positive");
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument("FIR design: cutoff must be in (0, fs/2)");
  if (num_taps < 3 || num_taps % 2 == 0)
    throw std::invalid_argument("FIR design: tap count must be odd and >= 3");
}

double sinc(double x) noexcept {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

}  // namespace

std::vector<double> design_lowpass(double cutoff_hz, double sample_rate_hz,
                                   std::size_t num_taps, WindowType window) {
  check_design_args(cutoff_hz, sample_rate_hz, num_taps);
  const double fc = cutoff_hz / sample_rate_hz;  // normalised cutoff
  const auto mid = static_cast<std::ptrdiff_t>(num_taps / 2);
  const std::vector<double> w = make_window(window, num_taps);

  std::vector<double> taps(num_taps);
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double n = static_cast<double>(static_cast<std::ptrdiff_t>(i) - mid);
    taps[i] = 2.0 * fc * sinc(2.0 * fc * n) * w[i];
  }
  // Normalise DC gain to exactly 1 so the pass band is unity.
  double dc = 0.0;
  for (double t : taps) dc += t;
  for (double& t : taps) t /= dc;
  return taps;
}

std::vector<double> design_highpass(double cutoff_hz, double sample_rate_hz,
                                    std::size_t num_taps, WindowType window) {
  std::vector<double> taps =
      design_lowpass(cutoff_hz, sample_rate_hz, num_taps, window);
  // Spectral inversion: delta at centre minus the low-pass kernel.
  for (double& t : taps) t = -t;
  taps[num_taps / 2] += 1.0;
  return taps;
}

std::vector<double> design_bandpass(double low_hz, double high_hz,
                                    double sample_rate_hz,
                                    std::size_t num_taps, WindowType window) {
  if (low_hz >= high_hz)
    throw std::invalid_argument("design_bandpass: low edge must be < high edge");
  const std::vector<double> lp_high =
      design_lowpass(high_hz, sample_rate_hz, num_taps, window);
  const std::vector<double> lp_low =
      design_lowpass(low_hz, sample_rate_hz, num_taps, window);
  std::vector<double> taps(num_taps);
  for (std::size_t i = 0; i < num_taps; ++i) taps[i] = lp_high[i] - lp_low[i];
  return taps;
}

std::vector<double> filter_same(std::span<const double> x,
                                std::span<const double> taps) {
  if (taps.empty()) throw std::invalid_argument("filter_same: empty kernel");
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const auto m = static_cast<std::ptrdiff_t>(taps.size());
  const std::ptrdiff_t delay = m / 2;
  std::vector<double> y(x.size(), 0.0);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::ptrdiff_t k = 0; k < m; ++k) {
      const std::ptrdiff_t j = i + delay - k;
      if (j >= 0 && j < n) acc += taps[static_cast<std::size_t>(k)] *
                                  x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

std::vector<double> filtfilt(std::span<const double> x,
                             std::span<const double> taps) {
  std::vector<double> forward = filter_same(x, taps);
  std::reverse(forward.begin(), forward.end());
  std::vector<double> backward = filter_same(forward, taps);
  std::reverse(backward.begin(), backward.end());
  return backward;
}

double frequency_response_mag(std::span<const double> taps, double freq_hz,
                              double sample_rate_hz) noexcept {
  double re = 0.0, im = 0.0;
  const double omega = kTwoPi * freq_hz / sample_rate_hz;
  for (std::size_t k = 0; k < taps.size(); ++k) {
    re += taps[k] * std::cos(omega * static_cast<double>(k));
    im -= taps[k] * std::sin(omega * static_cast<double>(k));
  }
  return std::sqrt(re * re + im * im);
}

std::size_t suggest_num_taps(double transition_hz, double sample_rate_hz) {
  if (transition_hz <= 0.0 || sample_rate_hz <= 0.0)
    throw std::invalid_argument("suggest_num_taps: args must be positive");
  // Harris rule of thumb for ~53 dB attenuation (Hamming): N ~ 3.3 / dF.
  const double normalised = transition_hz / sample_rate_hz;
  auto n = static_cast<std::size_t>(std::ceil(3.3 / normalised));
  if (n < 3) n = 3;
  if (n % 2 == 0) ++n;
  return n;
}

StreamingFir::StreamingFir(std::vector<double> taps)
    : taps_(std::move(taps)), history_(taps_.size(), 0.0) {
  if (taps_.empty())
    throw std::invalid_argument("StreamingFir: empty kernel");
}

double StreamingFir::push(double x) noexcept {
  history_[pos_] = x;
  double acc = 0.0;
  std::size_t idx = pos_;
  for (double tap : taps_) {
    acc += tap * history_[idx];
    idx = (idx == 0) ? history_.size() - 1 : idx - 1;
  }
  pos_ = (pos_ + 1) % history_.size();
  return acc;
}

void StreamingFir::reset() noexcept {
  std::fill(history_.begin(), history_.end(), 0.0);
  pos_ = 0;
}

}  // namespace tagbreathe::signal
