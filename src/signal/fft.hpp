// Fast Fourier transform.
//
// The paper's breath-signal extraction is an FFT-based low-pass filter
// (Sec. IV-B): FFT -> zero bins above 0.67 Hz -> IFFT. This module
// provides an iterative radix-2 Cooley-Tukey transform for power-of-two
// sizes and Bluestein's chirp-z algorithm for arbitrary sizes (experiment
// windows are arbitrary lengths: 25 s at irregular read rates).
//
// Two API layers:
//  - One-shot helpers (fft/ifft/fft_real/ifft_real): allocate their
//    result, convenient for tests and offline analysis.
//  - Plan-based (FftPlan / RealFftPlan + FftScratch): the realtime
//    engine re-runs the same-size transform every update tick for every
//    user, so bit-reversal tables, per-stage twiddles and the Bluestein
//    chirp + kernel spectrum are precomputed once per (size, direction)
//    and cached process-wide; with caller-owned scratch the steady-state
//    transform performs no heap allocation. The one-shot helpers
//    delegate to the cached plans.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace tagbreathe::signal {

using cdouble = std::complex<double>;

/// Smallest power of two >= n. Contract: next_pow2(0) == next_pow2(1)
/// == 1 (an empty transform rounds up to the trivial size); throws
/// std::overflow_error when the result is not representable in size_t
/// (n > 2^63 on 64-bit) instead of looping forever or wrapping.
std::size_t next_pow2(std::size_t n);

/// True if n is a nonzero power of two.
bool is_pow2(std::size_t n) noexcept;

/// In-place radix-2 DIT FFT. Requires data.size() to be a power of two.
/// `inverse` applies the conjugate transform and the 1/N scale, so
/// fft_pow2(x); fft_pow2(x, true) is the identity. This is the legacy
/// planless kernel (twiddles recomputed per call); the plan-based path
/// below is preferred on hot paths.
void fft_pow2(std::vector<cdouble>& data, bool inverse = false);

enum class FftDirection : std::uint8_t { Forward = 0, Inverse = 1 };

/// Caller-owned scratch for plan execution. Buffers grow to the plan's
/// working-set size on first use and are reused afterwards, so repeated
/// transforms of one size allocate nothing. One scratch per thread; a
/// scratch may be shared across plans of different sizes (it keeps the
/// high-water capacity). Cache-line aligned so arrays of per-worker
/// scratches (AnalysisPool slots) never share a line across workers.
struct alignas(64) FftScratch {
  std::vector<cdouble> a;  // Bluestein convolution buffer (size m)
  std::vector<cdouble> b;  // staging: real packing / widening buffer
};

/// Precomputed transform plan for one (size, direction).
///
/// Power-of-two sizes store the bit-reversal permutation and per-stage
/// twiddle tables; other sizes store the Bluestein chirp and the
/// kernel's FFT (computed once), plus the two inner power-of-two plans.
/// Plans are immutable after construction and safe to execute from any
/// number of threads concurrently (each execution only touches the
/// caller's scratch and output).
class FftPlan {
 public:
  /// Cached lookup: returns the process-wide shared plan, building it on
  /// first request. Thread-safe. The cache is capacity-bounded; beyond
  /// the bound, plans are built per call and not retained.
  static std::shared_ptr<const FftPlan> get(std::size_t n, FftDirection dir);

  std::size_t size() const noexcept { return n_; }
  FftDirection direction() const noexcept { return dir_; }
  bool uses_bluestein() const noexcept { return !chirp_.empty(); }

  /// Out-of-place transform of exactly size() samples. `out` may alias
  /// `in` (the pow2 path then works fully in place). Allocation-free
  /// once `scratch` has warmed up to this plan's working-set size.
  void execute(std::span<const cdouble> in, std::span<cdouble> out,
               FftScratch& scratch) const;

  /// In-place convenience overload.
  void execute(std::span<cdouble> data, FftScratch& scratch) const {
    execute(data, data, scratch);
  }

  /// Cache introspection (tests / metrics).
  static std::size_t cache_size();
  static void clear_cache();

 private:
  FftPlan(std::size_t n, FftDirection dir);
  void run_pow2(std::span<cdouble> data) const;

  std::size_t n_ = 0;
  FftDirection dir_ = FftDirection::Forward;
  // Power-of-two path.
  std::vector<std::uint32_t> rev_;   // bit-reversal permutation
  std::vector<cdouble> twiddles_;    // stage tables (len 2,4,..,n), flattened
  // Bluestein path (empty chirp_ => pow2 path).
  std::vector<cdouble> chirp_;       // exp(sign*i*pi*k^2/n), size n
  std::vector<cdouble> kernel_fft_;  // FFT of the chirp kernel, size m
  std::size_t m_ = 0;                // inner pow2 convolution size
  std::shared_ptr<const FftPlan> fwd_m_;  // forward plan of size m
  std::shared_ptr<const FftPlan> inv_m_;  // inverse plan of size m
};

/// Plan for the forward DFT of a real signal of even length N via the
/// packing trick: the N reals are packed into N/2 complex samples, one
/// N/2-point complex FFT runs, and the halves are untangled with the
/// precomputed packing twiddles — roughly halving the cost of the
/// full-complex transform. Produces all N (conjugate-symmetric) bins.
class RealFftPlan {
 public:
  /// n must be even and >= 2 (odd lengths fall back to the complex plan
  /// inside fft_real_into). Cached and thread-safe like FftPlan::get.
  static std::shared_ptr<const RealFftPlan> get(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// out.size() must be n. Allocation-free once scratch is warm.
  void execute(std::span<const double> in, std::span<cdouble> out,
               FftScratch& scratch) const;

  static std::size_t cache_size();
  static void clear_cache();

 private:
  explicit RealFftPlan(std::size_t n);

  std::size_t n_ = 0;
  std::shared_ptr<const FftPlan> half_;  // N/2-point forward plan
  std::vector<cdouble> twiddles_;        // exp(-2*pi*i*k/N), k in [0, N/2]
};

/// Forward DFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). Returns a new vector of the same length. Delegates to
/// the cached plan for the size.
std::vector<cdouble> fft(std::span<const cdouble> input);

/// Inverse DFT (1/N-scaled) of arbitrary length.
std::vector<cdouble> ifft(std::span<const cdouble> input);

/// Forward DFT of a real signal; returns all N complex bins (conjugate
/// symmetric). Even lengths use the half-size packing trick.
std::vector<cdouble> fft_real(std::span<const double> input);

/// Plan-based fft_real into a caller buffer (resized to input.size());
/// allocation-free once `scratch` and `out` are warm.
void fft_real_into(std::span<const double> input, std::vector<cdouble>& out,
                   FftScratch& scratch);

/// Real part of the inverse DFT — for conjugate-symmetric spectra of real
/// signals (the imaginary residue is numerical noise and is dropped).
std::vector<double> ifft_real(std::span<const cdouble> spectrum);

/// Plan-based ifft_real into caller buffers: `time` holds the complex
/// inverse transform, `out` its real part (both resized to
/// spectrum.size()). Allocation-free once warm.
void ifft_real_into(std::span<const cdouble> spectrum,
                    std::vector<cdouble>& time, std::vector<double>& out,
                    FftScratch& scratch);

// ---------------------------------------------------------------------------
// Batched transform sweeps
//
// The realtime engine's update tick runs the SAME-size transform for
// every dirty user of a shard (the fusion grid fixes the track length
// per tick). The *_many entry points run a whole batch through one
// cached plan in a single sweep: the plan-cache mutex is taken once per
// size change instead of once per user, and the plan's twiddle/chirp
// tables stay hot in cache across the batch. Results are bit-identical
// to issuing the single-job calls one at a time — the single-job
// helpers above delegate here with a one-element batch, so there is
// exactly one code path.

/// One complex transform: out.size() == in.size(); out may alias in.
struct FftJob {
  std::span<const cdouble> in;
  std::span<cdouble> out;
};

/// One real forward transform: `out` is resized to in.size().
struct RealFftJob {
  std::span<const double> in;
  std::vector<cdouble>* out = nullptr;
};

/// One real inverse transform: `time` stages the complex inverse and
/// `out` receives its real part (both resized to spectrum.size()).
/// `time` may be shared between jobs of one batch (jobs run in order).
struct RealIfftJob {
  std::span<const cdouble> spectrum;
  std::vector<cdouble>* time = nullptr;
  std::vector<double>* out = nullptr;
};

/// Transforms every job with direction `dir`. Empty jobs pass through
/// untouched; mixed sizes are legal (the plan is re-fetched on change).
void fft_many(FftDirection dir, std::span<const FftJob> jobs,
              FftScratch& scratch);

/// Batched fft_real_into: forward-transforms every job's real signal.
void fft_real_many(std::span<const RealFftJob> jobs, FftScratch& scratch);

/// Batched ifft_real_into: inverse-transforms every job's spectrum.
void ifft_real_many(std::span<const RealIfftJob> jobs, FftScratch& scratch);

/// Magnitude of each bin.
std::vector<double> magnitude(std::span<const cdouble> spectrum);

/// Frequency of bin k for an N-point transform at sample rate fs,
/// mapping bins above N/2 to their negative frequencies.
double bin_frequency(std::size_t k, std::size_t n, double sample_rate_hz) noexcept;

}  // namespace tagbreathe::signal
