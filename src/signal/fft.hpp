// Fast Fourier transform.
//
// The paper's breath-signal extraction is an FFT-based low-pass filter
// (Sec. IV-B): FFT -> zero bins above 0.67 Hz -> IFFT. This module
// provides an iterative radix-2 Cooley-Tukey transform for power-of-two
// sizes and Bluestein's chirp-z algorithm for arbitrary sizes (experiment
// windows are arbitrary lengths: 25 s at irregular read rates).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace tagbreathe::signal {

using cdouble = std::complex<double>;

/// Smallest power of two >= n (n = 0 maps to 1).
std::size_t next_pow2(std::size_t n) noexcept;

/// True if n is a nonzero power of two.
bool is_pow2(std::size_t n) noexcept;

/// In-place radix-2 DIT FFT. Requires data.size() to be a power of two.
/// `inverse` applies the conjugate transform and the 1/N scale, so
/// fft_pow2(x); fft_pow2(x, true) is the identity.
void fft_pow2(std::vector<cdouble>& data, bool inverse = false);

/// Forward DFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). Returns a new vector of the same length.
std::vector<cdouble> fft(std::span<const cdouble> input);

/// Inverse DFT (1/N-scaled) of arbitrary length.
std::vector<cdouble> ifft(std::span<const cdouble> input);

/// Forward DFT of a real signal; returns all N complex bins (conjugate
/// symmetric).
std::vector<cdouble> fft_real(std::span<const double> input);

/// Real part of the inverse DFT — for conjugate-symmetric spectra of real
/// signals (the imaginary residue is numerical noise and is dropped).
std::vector<double> ifft_real(std::span<const cdouble> spectrum);

/// Magnitude of each bin.
std::vector<double> magnitude(std::span<const cdouble> spectrum);

/// Frequency of bin k for an N-point transform at sample rate fs,
/// mapping bins above N/2 to their negative frequencies.
double bin_frequency(std::size_t k, std::size_t n, double sample_rate_hz) noexcept;

}  // namespace tagbreathe::signal
