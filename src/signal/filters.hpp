// Time-domain conditioning filters.
//
// Displacement tracks integrate phase deltas (Eq. 4), so they carry slow
// drift (integrated noise, posture shifts) and occasional spikes (phase
// outliers from multipath flicker). These helpers condition the track
// before spectral analysis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tagbreathe::signal {

/// Centred moving average of the given (odd) window length.
std::vector<double> moving_average(std::span<const double> x,
                                   std::size_t window);

/// Centred moving median of the given (odd) window length.
std::vector<double> moving_median(std::span<const double> x,
                                  std::size_t window);

/// Removes the least-squares linear trend in place.
void detrend_linear(std::vector<double>& x);

/// Hampel filter: replaces samples further than `n_sigmas` scaled MADs
/// from the local median with the local median. Returns the number of
/// samples replaced.
std::size_t hampel_filter(std::vector<double>& x, std::size_t window,
                          double n_sigmas = 3.0);

/// One-pole exponential smoother, alpha in (0, 1]; alpha = 1 is identity.
std::vector<double> exponential_smooth(std::span<const double> x,
                                       double alpha);

/// First difference: y[i] = x[i+1] - x[i] (length n-1).
std::vector<double> diff(std::span<const double> x);

/// Cumulative sum with initial value 0: y[i] = sum_{k<=i} x[k].
std::vector<double> cumulative_sum(std::span<const double> x);

}  // namespace tagbreathe::signal
