// Spectral analysis: periodogram, dominant frequency, the paper's
// FFT-based low-pass filter, and Goertzel single-bin evaluation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "signal/fft.hpp"
#include "signal/window.hpp"

namespace tagbreathe::signal {

/// Reusable buffers for the plan-based spectral filters. One workspace
/// per thread; after the first call of a given size, repeated filtering
/// through the same workspace performs no heap allocation (the analysis
/// engine keeps one per worker). Buffers never shrink (high-water
/// sizing), so a steady-state batch of any previously seen shape stays
/// allocation-free.
struct FftWorkspace {
  FftScratch scratch;
  std::vector<cdouble> spectrum;  // forward-transform bins (single calls)
  std::vector<cdouble> time;      // inverse-transform staging
  /// Per-job bins for batched filters (fft_bandlimit_many): the whole
  /// batch's forward transforms must be live at once between the
  /// forward and inverse sweeps.
  std::vector<std::vector<cdouble>> spectra;
  std::vector<RealFftJob> fwd_jobs;   // batched-sweep staging
  std::vector<RealIfftJob> inv_jobs;  // batched-sweep staging
};

/// The f_lo used to knock out the DC bin when a low-pass asks for
/// remove_dc: any positive value below the first bin's frequency works;
/// shared so single and batched paths agree exactly.
inline constexpr double kDcRejectHz = 1e-12;

/// One-sided power spectrum sample: frequency [Hz] and power.
struct SpectrumBin {
  double frequency_hz = 0.0;
  double power = 0.0;
};

/// Windowed periodogram: one-sided power spectral estimate of `x` sampled
/// at `sample_rate_hz`. Bin spacing is fs/N — the 1/w resolution the paper
/// calls out (25 s window -> 0.04 Hz -> 2.4 bpm quantisation).
std::vector<SpectrumBin> periodogram(std::span<const double> x,
                                     double sample_rate_hz,
                                     WindowType window = WindowType::Hann);

/// Frequency [Hz] of the strongest bin within [f_lo, f_hi]; refined by
/// quadratic interpolation of the peak and its neighbours. Returns 0 if
/// no bin falls in the band.
double dominant_frequency(std::span<const double> x, double sample_rate_hz,
                          double f_lo, double f_hi,
                          WindowType window = WindowType::Hann);

/// Like dominant_frequency, but each bin's power is weighted by f^2
/// before the peak search. Integrated (random-walk) noise has a 1/f^2
/// spectrum, so the weighting whitens it — equivalent to searching the
/// spectrum of the differenced signal — and keeps a genuine oscillation
/// peak from being buried by low-frequency drift.
double dominant_frequency_whitened(std::span<const double> x,
                                   double sample_rate_hz, double f_lo,
                                   double f_hi,
                                   WindowType window = WindowType::Hann);

/// Short-time Fourier transform magnitude (spectrogram): one one-sided
/// power spectrum per hop. Used by rate-trajectory analysis to follow a
/// breathing rate that changes over the recording.
struct Spectrogram {
  /// frames[t][k] = power of bin k in frame t.
  std::vector<std::vector<double>> frames;
  /// Centre time [s] of each frame (relative to the input's first
  /// sample at t = 0).
  std::vector<double> frame_times_s;
  /// Frequency [Hz] of each bin.
  std::vector<double> bin_frequencies_hz;
};

/// Computes the spectrogram with `segment`-sample windows advanced by
/// `hop` samples. Requires segment >= 8 and 1 <= hop <= segment; returns
/// an empty spectrogram when the signal is shorter than one segment.
Spectrogram stft(std::span<const double> x, double sample_rate_hz,
                 std::size_t segment, std::size_t hop,
                 WindowType window = WindowType::Hann);

/// Welch PSD estimate: the signal is split into `segment` overlapping
/// windows (50% overlap), each windowed and periodogram'd, and the
/// per-segment spectra averaged. Trades frequency resolution for a
/// `~sqrt(K)` variance reduction — useful for the quality metrics that
/// compare band powers on short noisy windows. `segment` must be >= 8;
/// a segment longer than the signal degrades to a plain periodogram.
std::vector<SpectrumBin> welch_psd(std::span<const double> x,
                                   double sample_rate_hz,
                                   std::size_t segment,
                                   WindowType window = WindowType::Hann);

/// Fundamental-frequency estimate via the normalised autocorrelation
/// (pitch-detection style). The ACF concentrates evidence from the
/// fundamental *and* all harmonics at the true period, tolerates both
/// white and random-walk noise, and resolves the period-multiple
/// ambiguity by taking the smallest peak lag within 90% of the best.
/// Searches periods in [1/f_hi, 1/f_lo]; returns 0 when no peak exists.
/// `x` should be detrended / low-passed to f_hi by the caller.
double autocorrelation_fundamental(std::span<const double> x,
                                   double sample_rate_hz, double f_lo,
                                   double f_hi);

/// Noise-colour-agnostic peak search: ranks bins by their power relative
/// to a local median background (the smoothed spectrum with the bin's own
/// neighbourhood excluded). A narrow oscillation peak stands far above
/// its local background whatever the broadband noise slope (white
/// boundary noise, 1/f^2 random walk, or a mix — the displacement tracks
/// of this system carry both).
double dominant_frequency_significant(std::span<const double> x,
                                      double sample_rate_hz, double f_lo,
                                      double f_hi,
                                      WindowType window = WindowType::Hann);

/// The paper's breath-extraction filter (Sec. IV-B): FFT the series, zero
/// every bin whose |frequency| exceeds `cutoff_hz` (0.67 Hz in the paper,
/// i.e. 40 bpm), inverse FFT back to the time domain. Zero-phase by
/// construction. The DC bin is also removed: the breathing signal is an
/// oscillation around the rest chest position.
std::vector<double> fft_lowpass(std::span<const double> x,
                                double sample_rate_hz, double cutoff_hz,
                                bool remove_dc = true);

/// Band-pass variant used by the robustness extensions: keeps bins with
/// f_lo <= |f| <= f_hi.
std::vector<double> fft_bandpass(std::span<const double> x,
                                 double sample_rate_hz, double f_lo,
                                 double f_hi);

/// Plan-based fft_lowpass into a caller buffer. `out` is resized to
/// x.size(); steady-state calls (warm workspace, same window length)
/// perform zero heap allocations. The one-shot overload above delegates
/// here with a throwaway workspace.
void fft_lowpass_into(std::span<const double> x, double sample_rate_hz,
                      double cutoff_hz, bool remove_dc, FftWorkspace& ws,
                      std::vector<double>& out);

/// Plan-based fft_bandpass into a caller buffer (see fft_lowpass_into).
void fft_bandpass_into(std::span<const double> x, double sample_rate_hz,
                       double f_lo, double f_hi, FftWorkspace& ws,
                       std::vector<double>& out);

/// One signal of a batched band-limit sweep: keep bins with
/// f_lo <= |f| <= f_hi, zero the rest. `out` is resized to x.size().
struct BandLimitJob {
  std::span<const double> x;
  double sample_rate_hz = 0.0;
  double f_lo = 0.0;
  double f_hi = 0.0;
  std::vector<double>* out = nullptr;
};

/// Batched band-limit filter: one forward sweep over every job (shared
/// plan, fetched once per size change), per-job bin zeroing, one inverse
/// sweep. Bit-identical to running fft_lowpass_into / fft_bandpass_into
/// per job — the single-job helpers delegate here — and allocation-free
/// once `ws` has seen the batch shape.
void fft_bandlimit_many(std::span<const BandLimitJob> jobs, FftWorkspace& ws);

/// Goertzel algorithm: power of the single DFT bin nearest `freq_hz`.
/// O(N) per frequency — cheaper than a full FFT when the pipeline only
/// needs the power in a handful of candidate breathing bins.
double goertzel_power(std::span<const double> x, double sample_rate_hz,
                      double freq_hz);

/// Ratio of band power in [f_lo, f_hi] to total power (DC excluded).
/// Used as a signal-quality metric by the antenna selector.
double band_power_ratio(std::span<const double> x, double sample_rate_hz,
                        double f_lo, double f_hi);

}  // namespace tagbreathe::signal
