#include "signal/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "signal/fft.hpp"

namespace tagbreathe::signal {

using tagbreathe::common::kTwoPi;

std::vector<SpectrumBin> periodogram(std::span<const double> x,
                                     double sample_rate_hz,
                                     WindowType window) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("periodogram: sample rate must be positive");
  if (x.empty()) return {};

  std::vector<double> data(x.begin(), x.end());
  const std::vector<double> w = make_window(window, data.size());
  apply_window(data, w);

  const std::vector<cdouble> spectrum = fft_real(data);
  const std::size_t n = spectrum.size();
  const double wsum = window_gain(w);
  const double norm = wsum > 0.0 ? 1.0 / (wsum * wsum) : 0.0;

  std::vector<SpectrumBin> bins;
  bins.reserve(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    SpectrumBin bin;
    bin.frequency_hz = static_cast<double>(k) * sample_rate_hz /
                       static_cast<double>(n);
    const double mag2 = std::norm(spectrum[k]);
    // One-sided: double the interior bins to account for negative
    // frequencies.
    const bool interior = k != 0 && (n % 2 != 0 || k != n / 2);
    bin.power = (interior ? 2.0 : 1.0) * mag2 * norm;
    bins.push_back(bin);
  }
  return bins;
}

namespace {

double peak_search(const std::vector<SpectrumBin>& bins, double f_lo,
                   double f_hi, bool whiten);

}  // namespace

double dominant_frequency(std::span<const double> x, double sample_rate_hz,
                          double f_lo, double f_hi, WindowType window) {
  return peak_search(periodogram(x, sample_rate_hz, window), f_lo, f_hi,
                     /*whiten=*/false);
}

double dominant_frequency_whitened(std::span<const double> x,
                                   double sample_rate_hz, double f_lo,
                                   double f_hi, WindowType window) {
  return peak_search(periodogram(x, sample_rate_hz, window), f_lo, f_hi,
                     /*whiten=*/true);
}

Spectrogram stft(std::span<const double> x, double sample_rate_hz,
                 std::size_t segment, std::size_t hop, WindowType window) {
  if (segment < 8) throw std::invalid_argument("stft: segment must be >= 8");
  if (hop == 0 || hop > segment)
    throw std::invalid_argument("stft: hop must be in [1, segment]");
  Spectrogram out;
  if (x.size() < segment) return out;

  bool bins_done = false;
  for (std::size_t start = 0; start + segment <= x.size(); start += hop) {
    const auto bins =
        periodogram(x.subspan(start, segment), sample_rate_hz, window);
    if (!bins_done) {
      out.bin_frequencies_hz.reserve(bins.size());
      for (const auto& b : bins)
        out.bin_frequencies_hz.push_back(b.frequency_hz);
      bins_done = true;
    }
    std::vector<double> powers;
    powers.reserve(bins.size());
    for (const auto& b : bins) powers.push_back(b.power);
    out.frames.push_back(std::move(powers));
    out.frame_times_s.push_back(
        (static_cast<double>(start) + static_cast<double>(segment) / 2.0) /
        sample_rate_hz);
  }
  return out;
}

std::vector<SpectrumBin> welch_psd(std::span<const double> x,
                                   double sample_rate_hz,
                                   std::size_t segment, WindowType window) {
  if (segment < 8)
    throw std::invalid_argument("welch_psd: segment must be >= 8");
  if (x.size() <= segment) return periodogram(x, sample_rate_hz, window);

  const std::size_t hop = segment / 2;  // 50% overlap
  std::vector<SpectrumBin> avg;
  std::size_t count = 0;
  for (std::size_t start = 0; start + segment <= x.size(); start += hop) {
    const auto bins =
        periodogram(x.subspan(start, segment), sample_rate_hz, window);
    if (avg.empty()) {
      avg = bins;
    } else {
      for (std::size_t k = 0; k < avg.size(); ++k)
        avg[k].power += bins[k].power;
    }
    ++count;
  }
  for (auto& b : avg) b.power /= static_cast<double>(count);
  return avg;
}

double autocorrelation_fundamental(std::span<const double> x,
                                   double sample_rate_hz, double f_lo,
                                   double f_hi) {
  if (sample_rate_hz <= 0.0 || f_lo <= 0.0 || f_hi <= f_lo)
    throw std::invalid_argument("autocorrelation_fundamental: bad band");
  const std::size_t nx = x.size();
  if (nx < 16) return 0.0;

  // Unbiased ACF via FFT (zero-padded to avoid circular wrap).
  std::vector<cdouble> padded(next_pow2(2 * nx));
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(nx);
  for (std::size_t i = 0; i < nx; ++i)
    padded[i] = cdouble(x[i] - mean, 0.0);
  fft_pow2(padded);
  for (auto& c : padded) c = cdouble(std::norm(c), 0.0);
  fft_pow2(padded, /*inverse=*/true);

  const double r0 = padded[0].real();
  if (r0 <= 0.0) return 0.0;

  const auto lag_min = static_cast<std::size_t>(
      std::ceil(sample_rate_hz / f_hi));
  auto lag_max = static_cast<std::size_t>(
      std::floor(sample_rate_hz / f_lo));
  if (lag_max >= nx) lag_max = nx - 1;
  if (lag_min + 2 > lag_max) return 0.0;

  // Normalised, bias-corrected ACF over the admissible lags.
  std::vector<double> acf(lag_max + 1, 0.0);
  for (std::size_t lag = lag_min > 1 ? lag_min - 1 : 1; lag <= lag_max;
       ++lag) {
    const double unbias =
        static_cast<double>(nx) / static_cast<double>(nx - lag);
    acf[lag] = padded[lag].real() / r0 * unbias;
  }

  // Collect local maxima in [lag_min, lag_max].
  double best_val = -2.0;
  for (std::size_t lag = lag_min; lag <= lag_max; ++lag) {
    const bool is_peak =
        (lag > lag_min && lag + 1 <= lag_max)
            ? acf[lag] >= acf[lag - 1] && acf[lag] >= acf[lag + 1]
            : false;
    if (is_peak) best_val = std::max(best_val, acf[lag]);
  }
  if (best_val <= 0.0) return 0.0;

  // Smallest peak lag within 90% of the best peak resolves multiples.
  for (std::size_t lag = lag_min + 1; lag + 1 <= lag_max; ++lag) {
    if (acf[lag] >= acf[lag - 1] && acf[lag] >= acf[lag + 1] &&
        acf[lag] >= 0.9 * best_val) {
      // Parabolic refinement of the peak lag.
      const double p0 = acf[lag - 1];
      const double p1 = acf[lag];
      const double p2 = acf[lag + 1];
      const double denom = p0 - 2.0 * p1 + p2;
      double delta = 0.0;
      if (std::abs(denom) > 1e-30) delta = 0.5 * (p0 - p2) / denom;
      delta = std::clamp(delta, -0.5, 0.5);
      return sample_rate_hz / (static_cast<double>(lag) + delta);
    }
  }
  return 0.0;
}

double dominant_frequency_significant(std::span<const double> x,
                                      double sample_rate_hz, double f_lo,
                                      double f_hi, WindowType window) {
  std::vector<SpectrumBin> bins = periodogram(x, sample_rate_hz, window);
  if (bins.size() < 8) return 0.0;

  // Work on f^2-whitened powers: integrated (1/f^2) noise becomes locally
  // flat, so the median background is meaningful even at the band's low
  // edge where raw walk power dwarfs everything. Peak positions are
  // unchanged by the monotone per-bin weight.
  for (SpectrumBin& b : bins)
    b.power *= b.frequency_hz * b.frequency_hz;

  // Local median background: for each bin, the median power of the
  // surrounding window with the bin's immediate neighbourhood (the peak
  // itself) excluded.
  const std::ptrdiff_t half = 12;   // background window half-width [bins]
  const std::ptrdiff_t guard = 2;   // bins excluded around the candidate
  const auto n = static_cast<std::ptrdiff_t>(bins.size());

  // Significance of one bin: power over the local median background.
  std::vector<double> neigh;
  const auto significance = [&](std::ptrdiff_t k) -> double {
    const auto ku = static_cast<std::size_t>(k);
    neigh.clear();
    for (std::ptrdiff_t j = std::max<std::ptrdiff_t>(1, k - half);
         j <= std::min(n - 1, k + half); ++j) {
      if (std::abs(j - k) <= guard) continue;
      neigh.push_back(bins[static_cast<std::size_t>(j)].power);
    }
    if (neigh.empty()) return 0.0;
    std::nth_element(neigh.begin(), neigh.begin() + neigh.size() / 2,
                     neigh.end());
    const double background = neigh[neigh.size() / 2];
    return background > 0.0 ? bins[ku].power / background : bins[ku].power;
  };

  // Harmonic-sum scoring: a true breathing fundamental accumulates
  // evidence from its (asymmetric-waveform) second harmonic, while an
  // isolated noise spike does not.
  std::size_t best = 0;
  double best_ratio = -1.0;
  for (std::ptrdiff_t k = 0; k < n; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    if (bins[ku].frequency_hz < f_lo || bins[ku].frequency_hz > f_hi)
      continue;
    double score = significance(k);
    if (2 * k < n) {
      // Best significance within +-1 bin of the second harmonic.
      double harm = 0.0;
      for (std::ptrdiff_t j = std::max<std::ptrdiff_t>(1, 2 * k - 1);
           j <= std::min(n - 1, 2 * k + 1); ++j)
        harm = std::max(harm, significance(j));
      score += 0.5 * harm;
    }
    if (score > best_ratio) {
      best_ratio = score;
      best = ku;
    }
  }
  if (best_ratio <= 0.0) return 0.0;

  // Harmonic disambiguation: breathing waveforms are asymmetric, so the
  // second harmonic carries real power and can out-score the fundamental
  // when low-frequency noise raises the fundamental's local background.
  // If a clearly significant peak exists near half the winning frequency,
  // prefer it.
  {
    const double half_f = bins[best].frequency_hz / 2.0;
    if (half_f >= f_lo) {
      const double bin_width = bins[1].frequency_hz - bins[0].frequency_hz;
      const auto centre = static_cast<std::ptrdiff_t>(
          std::llround(half_f / bin_width));
      std::size_t sub_best = 0;
      double sub_ratio = -1.0;
      for (std::ptrdiff_t k = std::max<std::ptrdiff_t>(1, centre - 2);
           k <= std::min(n - 1, centre + 2); ++k) {
        const auto ku = static_cast<std::size_t>(k);
        if (bins[ku].frequency_hz < f_lo) continue;
        neigh.clear();
        for (std::ptrdiff_t j = std::max<std::ptrdiff_t>(1, k - half);
             j <= std::min(n - 1, k + half); ++j) {
          if (std::abs(j - k) <= guard) continue;
          neigh.push_back(bins[static_cast<std::size_t>(j)].power);
        }
        if (neigh.empty()) continue;
        std::nth_element(neigh.begin(), neigh.begin() + neigh.size() / 2,
                         neigh.end());
        const double background = neigh[neigh.size() / 2];
        const double ratio =
            background > 0.0 ? bins[ku].power / background : bins[ku].power;
        if (ratio > sub_ratio) {
          sub_ratio = ratio;
          sub_best = ku;
        }
      }
      if (sub_ratio >= std::max(3.0, 0.25 * best_ratio)) best = sub_best;
    }
  }

  // Parabolic refinement as in the plain search.
  if (best == 0 || best + 1 >= bins.size()) return bins[best].frequency_hz;
  const double p0 = bins[best - 1].power;
  const double p1 = bins[best].power;
  const double p2 = bins[best + 1].power;
  const double denom = p0 - 2.0 * p1 + p2;
  double delta = 0.0;
  if (std::abs(denom) > 1e-30) delta = 0.5 * (p0 - p2) / denom;
  delta = std::clamp(delta, -0.5, 0.5);
  const double bin_width = bins[1].frequency_hz - bins[0].frequency_hz;
  return bins[best].frequency_hz + delta * bin_width;
}

namespace {

double peak_search(const std::vector<SpectrumBin>& bins, double f_lo,
                   double f_hi, bool whiten) {
  const auto weight = [whiten](const SpectrumBin& b) {
    return whiten ? b.power * b.frequency_hz * b.frequency_hz : b.power;
  };
  std::size_t best = 0;
  bool found = false;
  for (std::size_t k = 0; k < bins.size(); ++k) {
    if (bins[k].frequency_hz < f_lo || bins[k].frequency_hz > f_hi) continue;
    if (!found || weight(bins[k]) > weight(bins[best])) {
      best = k;
      found = true;
    }
  }
  if (!found) return 0.0;

  // Quadratic (parabolic) interpolation around the peak bin to refine
  // beyond the fs/N grid.
  if (best == 0 || best + 1 >= bins.size()) return bins[best].frequency_hz;
  const double p0 = bins[best - 1].power;
  const double p1 = bins[best].power;
  const double p2 = bins[best + 1].power;
  const double denom = p0 - 2.0 * p1 + p2;
  double delta = 0.0;
  if (std::abs(denom) > 1e-30) delta = 0.5 * (p0 - p2) / denom;
  delta = std::clamp(delta, -0.5, 0.5);
  const double bin_width = bins[1].frequency_hz - bins[0].frequency_hz;
  return bins[best].frequency_hz + delta * bin_width;
}

}  // namespace

void fft_bandlimit_many(std::span<const BandLimitJob> jobs, FftWorkspace& ws) {
  const std::size_t count = jobs.size();
  if (count == 0) return;
  for (const BandLimitJob& job : jobs) {
    if (job.sample_rate_hz <= 0.0)
      throw std::invalid_argument("fft filter: sample rate must be positive");
  }

  // High-water staging: nothing here ever shrinks, so a warm workspace
  // runs any previously-seen batch shape without allocating.
  if (ws.spectra.size() < count) ws.spectra.resize(count);
  ws.fwd_jobs.clear();
  ws.inv_jobs.clear();

  // Forward sweep: all transforms of the batch through one cached plan.
  for (std::size_t j = 0; j < count; ++j) {
    if (jobs[j].x.empty()) {
      jobs[j].out->clear();
      continue;
    }
    ws.fwd_jobs.push_back(RealFftJob{jobs[j].x, &ws.spectra[j]});
  }
  fft_real_many(ws.fwd_jobs, ws.scratch);

  // Per-job bin zeroing, then the inverse sweep.
  for (std::size_t j = 0; j < count; ++j) {
    const BandLimitJob& job = jobs[j];
    if (job.x.empty()) continue;
    std::vector<cdouble>& spectrum = ws.spectra[j];
    const std::size_t n = spectrum.size();
    for (std::size_t k = 0; k < n; ++k) {
      const double f = std::abs(bin_frequency(k, n, job.sample_rate_hz));
      if (f < job.f_lo || f > job.f_hi) spectrum[k] = cdouble(0.0, 0.0);
    }
    ws.inv_jobs.push_back(RealIfftJob{spectrum, &ws.time, job.out});
  }
  ifft_real_many(ws.inv_jobs, ws.scratch);
}

namespace {

void fft_bandlimit_into(std::span<const double> x, double sample_rate_hz,
                        double f_lo, double f_hi, FftWorkspace& ws,
                        std::vector<double>& out) {
  const BandLimitJob job{x, sample_rate_hz, f_lo, f_hi, &out};
  fft_bandlimit_many({&job, 1}, ws);
}

}  // namespace

void fft_lowpass_into(std::span<const double> x, double sample_rate_hz,
                      double cutoff_hz, bool remove_dc, FftWorkspace& ws,
                      std::vector<double>& out) {
  if (cutoff_hz <= 0.0)
    throw std::invalid_argument("fft_lowpass: cutoff must be positive");
  const double f_lo = remove_dc ? kDcRejectHz : 0.0;
  fft_bandlimit_into(x, sample_rate_hz, f_lo, cutoff_hz, ws, out);
}

void fft_bandpass_into(std::span<const double> x, double sample_rate_hz,
                       double f_lo, double f_hi, FftWorkspace& ws,
                       std::vector<double>& out) {
  if (f_lo < 0.0 || f_hi <= f_lo)
    throw std::invalid_argument("fft_bandpass: need 0 <= f_lo < f_hi");
  fft_bandlimit_into(x, sample_rate_hz, f_lo, f_hi, ws, out);
}

std::vector<double> fft_lowpass(std::span<const double> x,
                                double sample_rate_hz, double cutoff_hz,
                                bool remove_dc) {
  FftWorkspace ws;
  std::vector<double> out;
  fft_lowpass_into(x, sample_rate_hz, cutoff_hz, remove_dc, ws, out);
  return out;
}

std::vector<double> fft_bandpass(std::span<const double> x,
                                 double sample_rate_hz, double f_lo,
                                 double f_hi) {
  FftWorkspace ws;
  std::vector<double> out;
  fft_bandpass_into(x, sample_rate_hz, f_lo, f_hi, ws, out);
  return out;
}

double goertzel_power(std::span<const double> x, double sample_rate_hz,
                      double freq_hz) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("goertzel: sample rate must be positive");
  const std::size_t n = x.size();
  if (n == 0) return 0.0;
  // Nearest integer bin.
  const double k = std::round(freq_hz / sample_rate_hz * static_cast<double>(n));
  const double omega = kTwoPi * k / static_cast<double>(n);
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0, s_prev2 = 0.0;
  for (double v : x) {
    const double s = v + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const double power =
      s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
  return power / (static_cast<double>(n) * static_cast<double>(n));
}

double band_power_ratio(std::span<const double> x, double sample_rate_hz,
                        double f_lo, double f_hi) {
  const std::vector<SpectrumBin> bins =
      periodogram(x, sample_rate_hz, WindowType::Hann);
  double band = 0.0, total = 0.0;
  for (const SpectrumBin& bin : bins) {
    if (bin.frequency_hz <= 0.0) continue;  // exclude DC
    total += bin.power;
    if (bin.frequency_hz >= f_lo && bin.frequency_hz <= f_hi)
      band += bin.power;
  }
  return total > 0.0 ? band / total : 0.0;
}

}  // namespace tagbreathe::signal
