#include "signal/interpolate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagbreathe::signal {

double interp_linear(std::span<const TimedSample> samples, double t) {
  if (samples.empty())
    throw std::invalid_argument("interp_linear: empty series");
  if (t <= samples.front().time_s) return samples.front().value;
  if (t >= samples.back().time_s) return samples.back().value;
  // First sample with time >= t.
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), t,
      [](const TimedSample& s, double query) { return s.time_s < query; });
  const auto hi = static_cast<std::size_t>(it - samples.begin());
  const std::size_t lo = hi - 1;
  const double span = samples[hi].time_s - samples[lo].time_s;
  if (span <= 0.0) return samples[lo].value;
  const double frac = (t - samples[lo].time_s) / span;
  return samples[lo].value + frac * (samples[hi].value - samples[lo].value);
}

std::vector<TimedSample> resample_uniform(std::span<const TimedSample> samples,
                                          double rate_hz, double t0, double t1,
                                          double max_gap_s) {
  if (rate_hz <= 0.0)
    throw std::invalid_argument("resample_uniform: rate must be positive");
  if (samples.empty() || t1 < t0) return {};
  const double dt = 1.0 / rate_hz;
  const auto count = static_cast<std::size_t>((t1 - t0) / dt) + 1;
  std::vector<TimedSample> out;
  out.reserve(count);
  std::size_t cursor = 0;  // index of the last sample with time <= t
  for (std::size_t i = 0; i < count; ++i) {
    const double t = t0 + static_cast<double>(i) * dt;
    while (cursor + 1 < samples.size() && samples[cursor + 1].time_s <= t)
      ++cursor;
    double value;
    if (t <= samples.front().time_s) {
      value = samples.front().value;
    } else if (t >= samples.back().time_s) {
      value = samples.back().value;
    } else {
      const TimedSample& a = samples[cursor];
      const TimedSample& b = samples[cursor + 1];
      const double gap = b.time_s - a.time_s;
      if (max_gap_s > 0.0 && gap > max_gap_s) {
        // Hold-last across dropouts instead of fabricating a ramp.
        value = a.value;
      } else if (gap <= 0.0) {
        value = a.value;
      } else {
        const double frac = (t - a.time_s) / gap;
        value = a.value + frac * (b.value - a.value);
      }
    }
    out.push_back(TimedSample{t, value});
  }
  return out;
}

std::vector<TimedSample> resample_uniform(std::span<const TimedSample> samples,
                                          double rate_hz, double max_gap_s) {
  if (samples.empty()) return {};
  return resample_uniform(samples, rate_hz, samples.front().time_s,
                          samples.back().time_s, max_gap_s);
}

void split_series(std::span<const TimedSample> samples,
                  std::vector<double>& times, std::vector<double>& values) {
  times.clear();
  values.clear();
  times.reserve(samples.size());
  values.reserve(samples.size());
  for (const TimedSample& s : samples) {
    times.push_back(s.time_s);
    values.push_back(s.value);
  }
}

double mean_sample_rate(std::span<const TimedSample> samples) noexcept {
  if (samples.size() < 2) return 0.0;
  const double span = samples.back().time_s - samples.front().time_s;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(samples.size() - 1) / span;
}

bool is_time_sorted(std::span<const TimedSample> samples) noexcept {
  for (std::size_t i = 1; i < samples.size(); ++i)
    if (samples[i].time_s < samples[i - 1].time_s) return false;
  return true;
}

}  // namespace tagbreathe::signal
