// Zero-crossing detection.
//
// The paper estimates the instantaneous breathing rate from the time
// stamps of zero crossings of the extracted breath signal (Eq. 5, Fig. 8).
// Each full breath contributes two crossings; M buffered crossings span
// (M-1)/2 breaths.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "signal/interpolate.hpp"

namespace tagbreathe::signal {

enum class CrossingDirection { Rising, Falling };

struct ZeroCrossing {
  double time_s = 0.0;  // linearly interpolated crossing instant
  CrossingDirection direction = CrossingDirection::Rising;
};

/// Detects zero crossings of a uniformly/irregularly sampled series with
/// hysteresis: after a crossing is emitted, the signal must exceed
/// ±`hysteresis` before the next opposite crossing is accepted. This
/// rejects noise chatter around zero that would otherwise inflate the
/// estimated rate. `hysteresis` = 0 degenerates to plain sign-change
/// detection.
std::vector<ZeroCrossing> detect_zero_crossings(
    std::span<const TimedSample> series, double hysteresis = 0.0);

/// Convenience for a uniformly sampled series starting at t0.
std::vector<ZeroCrossing> detect_zero_crossings(std::span<const double> values,
                                                double sample_rate_hz,
                                                double t0 = 0.0,
                                                double hysteresis = 0.0);

/// Relative hysteresis helper: `fraction` of the series' peak magnitude.
double hysteresis_from_peak(std::span<const double> values,
                            double fraction) noexcept;

}  // namespace tagbreathe::signal
