#include "signal/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace tagbreathe::signal {

using tagbreathe::common::kPi;
using tagbreathe::common::kTwoPi;

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

void fft_pow2(std::vector<cdouble>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft_pow2: size not a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const cdouble wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cdouble w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble u = data[i + k];
        const cdouble v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

namespace {

/// Bluestein's algorithm: expresses an N-point DFT as a convolution, which
/// is evaluated with a power-of-two FFT of size >= 2N-1.
std::vector<cdouble> bluestein(std::span<const cdouble> input, bool inverse) {
  const std::size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp: w_k = exp(sign * i * pi * k^2 / n). Compute k^2 mod 2n to keep
  // the angle argument small and precise for large k.
  std::vector<cdouble> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = cdouble(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<cdouble> a(m, cdouble(0.0, 0.0));
  std::vector<cdouble> b(m, cdouble(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    if (k != 0) b[m - k] = std::conj(chirp[k]);
  }

  fft_pow2(a);
  fft_pow2(b);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, /*inverse=*/true);

  std::vector<cdouble> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : out) x *= scale;
  }
  return out;
}

std::vector<cdouble> transform(std::span<const cdouble> input, bool inverse) {
  if (input.empty()) return {};
  if (is_pow2(input.size())) {
    std::vector<cdouble> data(input.begin(), input.end());
    fft_pow2(data, inverse);
    return data;
  }
  return bluestein(input, inverse);
}

}  // namespace

std::vector<cdouble> fft(std::span<const cdouble> input) {
  return transform(input, /*inverse=*/false);
}

std::vector<cdouble> ifft(std::span<const cdouble> input) {
  return transform(input, /*inverse=*/true);
}

std::vector<cdouble> fft_real(std::span<const double> input) {
  std::vector<cdouble> data(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) data[i] = cdouble(input[i], 0.0);
  return fft(data);
}

std::vector<double> ifft_real(std::span<const cdouble> spectrum) {
  const std::vector<cdouble> time = ifft(spectrum);
  std::vector<double> out(time.size());
  for (std::size_t i = 0; i < time.size(); ++i) out[i] = time[i].real();
  return out;
}

std::vector<double> magnitude(std::span<const cdouble> spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::abs(spectrum[i]);
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate_hz) noexcept {
  if (n == 0) return 0.0;
  const double fk = static_cast<double>(k) * sample_rate_hz / static_cast<double>(n);
  if (k <= n / 2) return fk;
  return fk - sample_rate_hz;
}

}  // namespace tagbreathe::signal
