#include "signal/fft.hpp"

#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/flat_map.hpp"
#include "common/units.hpp"
#include "signal/simd/kernels.hpp"

namespace tagbreathe::signal {

using tagbreathe::common::kPi;
using tagbreathe::common::kTwoPi;

std::size_t next_pow2(std::size_t n) {
  if (n <= 1) return 1;  // next_pow2(0) == 1 by contract (trivial size)
  constexpr std::size_t kMaxPow2 =
      (std::numeric_limits<std::size_t>::max() >> 1) + 1;
  if (n > kMaxPow2)
    throw std::overflow_error("next_pow2: result not representable");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

void fft_pow2(std::vector<cdouble>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft_pow2: size not a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const cdouble wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cdouble w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble u = data[i + k];
        const cdouble v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

// ---------------------------------------------------------------------------
// FftPlan

namespace {

// Beyond this many distinct (size, direction) plans the cache stops
// retaining new ones (they are built per call instead). The realtime
// engine cycles through a handful of window sizes; the bound only
// guards against pathological workloads with unbounded size diversity.
constexpr std::size_t kMaxCachedPlans = 128;

// Packed (size, direction) key: direction in bit 0, size above it. Keys
// are small and dense, so the flat map (ISSUE 10) serves the per-tick
// lookups with one hash and a short scan instead of a tree walk. All
// access stays under plan_cache_mutex — test_capacity races lookups
// under TSan to pin that.
using PlanKey = std::uint64_t;

inline PlanKey plan_key(std::size_t n, FftDirection dir) noexcept {
  return (static_cast<PlanKey>(n) << 1) |
         static_cast<PlanKey>(dir == FftDirection::Inverse ? 1 : 0);
}

std::mutex& plan_cache_mutex() {
  static std::mutex m;
  return m;
}

common::FlatMap<PlanKey, std::shared_ptr<const FftPlan>>& plan_cache() {
  static common::FlatMap<PlanKey, std::shared_ptr<const FftPlan>> cache;
  return cache;
}

}  // namespace

FftPlan::FftPlan(std::size_t n, FftDirection dir) : n_(n), dir_(dir) {
  if (n == 0) throw std::invalid_argument("FftPlan: size must be positive");
  const double sign = dir == FftDirection::Inverse ? 1.0 : -1.0;

  if (is_pow2(n)) {
    // Bit-reversal permutation table.
    rev_.resize(n);
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      rev_[i] = static_cast<std::uint32_t>(j);
    }
    // Per-stage twiddles, flattened: stage len has len/2 entries, so the
    // total across len = 2, 4, ..., n is n - 1. Direct cos/sin per entry
    // (no incremental rotation => no accumulated rounding).
    twiddles_.reserve(n - 1);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double base = sign * kTwoPi / static_cast<double>(len);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const double angle = base * static_cast<double>(k);
        twiddles_.emplace_back(std::cos(angle), std::sin(angle));
      }
    }
    return;
  }

  // Bluestein: chirp w_k = exp(sign * i * pi * k^2 / n), with k^2 mod 2n
  // to keep the angle argument small and precise for large k.
  chirp_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp_[k] = cdouble(std::cos(angle), std::sin(angle));
  }

  m_ = next_pow2(2 * n - 1);
  fwd_m_ = FftPlan::get(m_, FftDirection::Forward);
  inv_m_ = FftPlan::get(m_, FftDirection::Inverse);

  // Kernel spectrum, computed once per plan: b[k] = conj(chirp[k]) laid
  // out circularly, then FFT'd with the inner forward plan.
  kernel_fft_.assign(m_, cdouble(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    kernel_fft_[k] = std::conj(chirp_[k]);
    if (k != 0) kernel_fft_[m_ - k] = std::conj(chirp_[k]);
  }
  FftScratch scratch;
  fwd_m_->execute(kernel_fft_, scratch);
}

void FftPlan::run_pow2(std::span<cdouble> data) const {
  // The butterfly stages and the inverse scale run through the dispatched
  // kernel table (simd/kernels.hpp): AVX2/NEON where available, scalar
  // fallback otherwise, all bit-identical by contract.
  const simd::DspKernels& kn = simd::kernels();
  const std::size_t n = n_;
  cdouble* const d = data.data();
  const std::uint32_t* const rev = rev_.data();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(d[i], d[j]);
  }
  const cdouble* tw = twiddles_.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    kn.butterfly_stage(d, n, half, tw);
    tw += half;
  }
  if (dir_ == FftDirection::Inverse)
    kn.complex_scale(d, n, 1.0 / static_cast<double>(n));
}

void FftPlan::execute(std::span<const cdouble> in, std::span<cdouble> out,
                      FftScratch& scratch) const {
  if (in.size() != n_ || out.size() != n_)
    throw std::invalid_argument("FftPlan::execute: span size mismatch");
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }

  if (chirp_.empty()) {
    if (out.data() != in.data())
      std::copy(in.begin(), in.end(), out.begin());
    run_pow2(out);
    return;
  }

  // Bluestein via the precomputed kernel spectrum: only one forward and
  // one inverse inner transform per call (the legacy one-shot path paid
  // for a second forward FFT of the kernel every time). The pointwise
  // chirp/kernel products and the final scale run through the dispatched
  // kernel table.
  const simd::DspKernels& kn = simd::kernels();
  std::vector<cdouble>& a = scratch.a;
  a.assign(m_, cdouble(0.0, 0.0));
  cdouble* const ap = a.data();
  const cdouble* const ip = in.data();
  cdouble* const op = out.data();
  const cdouble* const chirp = chirp_.data();
  const cdouble* const kernel = kernel_fft_.data();
  kn.complex_mul(ap, ip, chirp, n_);
  fwd_m_->execute(a, scratch);  // pow2: scratch unused, in-place
  kn.complex_mul(ap, ap, kernel, m_);
  inv_m_->execute(a, scratch);  // includes the 1/m scale
  kn.complex_mul(op, ap, chirp, n_);
  if (dir_ == FftDirection::Inverse)
    kn.complex_scale(op, n_, 1.0 / static_cast<double>(n_));
}

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n, FftDirection dir) {
  const PlanKey key = plan_key(n, dir);
  {
    std::lock_guard<std::mutex> lock(plan_cache_mutex());
    if (const auto* hit = plan_cache().find(key)) return *hit;
  }
  // Build outside the lock: Bluestein construction recursively fetches
  // the inner pow2 plans, and plan building is idempotent, so a racing
  // duplicate build is wasted work at worst.
  std::shared_ptr<const FftPlan> plan(new FftPlan(n, dir));
  std::lock_guard<std::mutex> lock(plan_cache_mutex());
  auto& cache = plan_cache();
  if (const auto* hit = cache.find(key)) return *hit;  // racing build won
  if (cache.size() < kMaxCachedPlans) cache[key] = plan;
  return plan;
}

std::size_t FftPlan::cache_size() {
  std::lock_guard<std::mutex> lock(plan_cache_mutex());
  return plan_cache().size();
}

void FftPlan::clear_cache() {
  std::lock_guard<std::mutex> lock(plan_cache_mutex());
  plan_cache().clear();
}

// ---------------------------------------------------------------------------
// RealFftPlan

namespace {

std::mutex& real_plan_cache_mutex() {
  static std::mutex m;
  return m;
}

common::FlatMap<std::uint64_t, std::shared_ptr<const RealFftPlan>>&
real_plan_cache() {
  static common::FlatMap<std::uint64_t, std::shared_ptr<const RealFftPlan>>
      cache;
  return cache;
}

}  // namespace

RealFftPlan::RealFftPlan(std::size_t n) : n_(n) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("RealFftPlan: size must be even and >= 2");
  half_ = FftPlan::get(n / 2, FftDirection::Forward);
  // Packing twiddles exp(-2*pi*i*k/N) for k in [0, N/2].
  twiddles_.resize(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddles_[k] = cdouble(std::cos(angle), std::sin(angle));
  }
}

void RealFftPlan::execute(std::span<const double> in, std::span<cdouble> out,
                          FftScratch& scratch) const {
  if (in.size() != n_ || out.size() != n_)
    throw std::invalid_argument("RealFftPlan::execute: span size mismatch");
  const std::size_t h = n_ / 2;

  // Pack adjacent reals into complex samples: z[k] = x[2k] + i*x[2k+1].
  // Raw pointers in the element loops — see FftPlan::run_pow2.
  std::vector<cdouble>& zv = scratch.b;
  zv.resize(h);
  cdouble* const z = zv.data();
  const double* const x = in.data();
  for (std::size_t k = 0; k < h; ++k)
    z[k] = cdouble(x[2 * k], x[2 * k + 1]);
  half_->execute(zv, scratch);

  // Untangle the even/odd spectra and recombine:
  //   Fe[k] = (Z[k] + conj(Z[h-k])) / 2        (spectrum of x_even)
  //   Fo[k] = (Z[k] - conj(Z[h-k])) / (2i)     (spectrum of x_odd)
  //   X[k]  = Fe[k] + W^k * Fo[k],  W = exp(-2*pi*i/N)
  // for k in [0, h] with Z[h] == Z[0], then conjugate symmetry fills
  // the upper half.
  cdouble* const o = out.data();
  const cdouble* const tw = twiddles_.data();
  for (std::size_t k = 0; k <= h; ++k) {
    const cdouble zk = k == h ? z[0] : z[k];
    const cdouble zc = std::conj(k == 0 ? z[0] : z[h - k]);
    const cdouble fe = 0.5 * (zk + zc);
    const cdouble fo = cdouble(0.0, -0.5) * (zk - zc);
    const cdouble xk = fe + tw[k] * fo;
    if (k == h) {
      o[h] = xk;
    } else if (k == 0) {
      o[0] = xk;
    } else {
      o[k] = xk;
      o[n_ - k] = std::conj(xk);
    }
  }
}

std::shared_ptr<const RealFftPlan> RealFftPlan::get(std::size_t n) {
  {
    std::lock_guard<std::mutex> lock(real_plan_cache_mutex());
    if (const auto* hit = real_plan_cache().find(n)) return *hit;
  }
  std::shared_ptr<const RealFftPlan> plan(new RealFftPlan(n));
  std::lock_guard<std::mutex> lock(real_plan_cache_mutex());
  auto& cache = real_plan_cache();
  if (const auto* hit = cache.find(n)) return *hit;
  if (cache.size() < kMaxCachedPlans) cache[n] = plan;
  return plan;
}

std::size_t RealFftPlan::cache_size() {
  std::lock_guard<std::mutex> lock(real_plan_cache_mutex());
  return real_plan_cache().size();
}

void RealFftPlan::clear_cache() {
  std::lock_guard<std::mutex> lock(real_plan_cache_mutex());
  real_plan_cache().clear();
}

// ---------------------------------------------------------------------------
// One-shot helpers (delegate to the cached plans)

namespace {

std::vector<cdouble> transform(std::span<const cdouble> input,
                               FftDirection dir) {
  if (input.empty()) return {};
  const auto plan = FftPlan::get(input.size(), dir);
  std::vector<cdouble> out(input.size());
  FftScratch scratch;
  plan->execute(input, out, scratch);
  return out;
}

}  // namespace

std::vector<cdouble> fft(std::span<const cdouble> input) {
  return transform(input, FftDirection::Forward);
}

std::vector<cdouble> ifft(std::span<const cdouble> input) {
  return transform(input, FftDirection::Inverse);
}

void fft_many(FftDirection dir, std::span<const FftJob> jobs,
              FftScratch& scratch) {
  std::shared_ptr<const FftPlan> plan;
  for (const FftJob& job : jobs) {
    const std::size_t n = job.in.size();
    if (n == 0) continue;
    if (plan == nullptr || plan->size() != n) plan = FftPlan::get(n, dir);
    plan->execute(job.in, job.out, scratch);
  }
}

void fft_real_many(std::span<const RealFftJob> jobs, FftScratch& scratch) {
  // Plans are re-fetched only when the size changes between consecutive
  // jobs; the engine's batches are all one size, so the plan-cache mutex
  // is taken once per sweep.
  std::shared_ptr<const RealFftPlan> even_plan;
  std::shared_ptr<const FftPlan> odd_plan;
  for (const RealFftJob& job : jobs) {
    const std::size_t n = job.in.size();
    std::vector<cdouble>& out = *job.out;
    out.resize(n);
    if (n == 0) continue;
    if (n == 1) {
      out[0] = cdouble(job.in[0], 0.0);
      continue;
    }
    if (n % 2 == 0) {
      if (even_plan == nullptr || even_plan->size() != n)
        even_plan = RealFftPlan::get(n);
      even_plan->execute(job.in, out, scratch);
      continue;
    }
    // Odd length: widen to complex and run the full plan. The widened
    // input stages through scratch.b (the Bluestein path only uses
    // scratch.a, so the buffers do not collide).
    std::vector<cdouble>& wide = scratch.b;
    wide.resize(n);
    cdouble* const w = wide.data();
    const double* const x = job.in.data();
    for (std::size_t i = 0; i < n; ++i) w[i] = cdouble(x[i], 0.0);
    if (odd_plan == nullptr || odd_plan->size() != n)
      odd_plan = FftPlan::get(n, FftDirection::Forward);
    odd_plan->execute(wide, out, scratch);
  }
}

void ifft_real_many(std::span<const RealIfftJob> jobs, FftScratch& scratch) {
  std::shared_ptr<const FftPlan> plan;
  for (const RealIfftJob& job : jobs) {
    const std::size_t n = job.spectrum.size();
    std::vector<cdouble>& time = *job.time;
    std::vector<double>& out = *job.out;
    time.resize(n);
    out.resize(n);
    if (n == 0) continue;
    if (plan == nullptr || plan->size() != n)
      plan = FftPlan::get(n, FftDirection::Inverse);
    plan->execute(job.spectrum, time, scratch);
    const cdouble* const t = time.data();
    double* const o = out.data();
    for (std::size_t i = 0; i < n; ++i) o[i] = t[i].real();
  }
}

void fft_real_into(std::span<const double> input, std::vector<cdouble>& out,
                   FftScratch& scratch) {
  const RealFftJob job{input, &out};
  fft_real_many({&job, 1}, scratch);
}

std::vector<cdouble> fft_real(std::span<const double> input) {
  std::vector<cdouble> out;
  FftScratch scratch;
  fft_real_into(input, out, scratch);
  return out;
}

void ifft_real_into(std::span<const cdouble> spectrum,
                    std::vector<cdouble>& time, std::vector<double>& out,
                    FftScratch& scratch) {
  const RealIfftJob job{spectrum, &time, &out};
  ifft_real_many({&job, 1}, scratch);
}

std::vector<double> ifft_real(std::span<const cdouble> spectrum) {
  std::vector<cdouble> time;
  std::vector<double> out;
  FftScratch scratch;
  ifft_real_into(spectrum, time, out, scratch);
  return out;
}

std::vector<double> magnitude(std::span<const cdouble> spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::abs(spectrum[i]);
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate_hz) noexcept {
  if (n == 0) return 0.0;
  const double fk = static_cast<double>(k) * sample_rate_hz / static_cast<double>(n);
  if (k <= n / 2) return fk;
  return fk - sample_rate_hz;
}

}  // namespace tagbreathe::signal
