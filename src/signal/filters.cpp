#include "signal/filters.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace tagbreathe::signal {

namespace {

void check_window(std::size_t window) {
  if (window == 0 || window % 2 == 0)
    throw std::invalid_argument("window length must be odd and positive");
}

}  // namespace

std::vector<double> moving_average(std::span<const double> x,
                                   std::size_t window) {
  check_window(window);
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window) / 2;
  std::vector<double> y(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + half);
    double acc = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j)
      acc += x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] =
        acc / static_cast<double>(hi - lo + 1);
  }
  return y;
}

std::vector<double> moving_median(std::span<const double> x,
                                  std::size_t window) {
  check_window(window);
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window) / 2;
  std::vector<double> y(x.size());
  std::vector<double> scratch;
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + half);
    scratch.assign(x.begin() + lo, x.begin() + hi + 1);
    auto mid = scratch.begin() + scratch.size() / 2;
    std::nth_element(scratch.begin(), mid, scratch.end());
    double med = *mid;
    if (scratch.size() % 2 == 0) {
      auto lower = std::max_element(scratch.begin(), mid);
      med = (med + *lower) / 2.0;
    }
    y[static_cast<std::size_t>(i)] = med;
  }
  return y;
}

void detrend_linear(std::vector<double>& x) {
  if (x.size() < 2) return;
  // Allocation-free least-squares fit against the implicit sample index
  // t = 0..n-1 (this runs per track inside the batched extraction
  // sweep). The loops replicate common::linear_fit's summation order
  // exactly, so the result is bit-identical to fitting a materialized
  // index vector.
  double st = 0.0, sx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) st += static_cast<double>(i);
  for (const double v : x) sx += v;
  const double mt = st / static_cast<double>(x.size());
  const double mx = sx / static_cast<double>(x.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dt = static_cast<double>(i) - mt;
    num += dt * (x[i] - mx);
    den += dt * dt;
  }
  const double slope = den > 0.0 ? num / den : 0.0;
  const double intercept = mx - slope * mt;
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] -= slope * static_cast<double>(i) + intercept;
}

std::size_t hampel_filter(std::vector<double>& x, std::size_t window,
                          double n_sigmas) {
  check_window(window);
  if (x.empty()) return 0;
  constexpr double kMadToSigma = 1.4826;
  const std::vector<double> original = x;
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window) / 2;
  std::size_t replaced = 0;
  std::vector<double> block, deviations;
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + half);
    block.assign(original.begin() + lo, original.begin() + hi + 1);
    const double med = common::median(block);
    deviations.clear();
    for (double v : block) deviations.push_back(std::abs(v - med));
    const double mad = common::median(deviations);
    const double threshold = n_sigmas * kMadToSigma * mad;
    const double dev = std::abs(original[static_cast<std::size_t>(i)] - med);
    if (mad > 0.0 && dev > threshold) {
      x[static_cast<std::size_t>(i)] = med;
      ++replaced;
    }
  }
  return replaced;
}

std::vector<double> exponential_smooth(std::span<const double> x,
                                       double alpha) {
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("exponential_smooth: alpha in (0, 1]");
  std::vector<double> y(x.size());
  if (x.empty()) return y;
  y[0] = x[0];
  for (std::size_t i = 1; i < x.size(); ++i)
    y[i] = alpha * x[i] + (1.0 - alpha) * y[i - 1];
  return y;
}

std::vector<double> diff(std::span<const double> x) {
  if (x.size() < 2) return {};
  std::vector<double> y(x.size() - 1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i) y[i] = x[i + 1] - x[i];
  return y;
}

std::vector<double> cumulative_sum(std::span<const double> x) {
  std::vector<double> y(x.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    y[i] = acc;
  }
  return y;
}

}  // namespace tagbreathe::signal
