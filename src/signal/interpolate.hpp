// Resampling of irregularly sampled series onto uniform grids.
//
// RFID reads arrive asynchronously (MAC slot outcomes, hopping gaps,
// blockage dropouts), but FFT analysis needs uniform sampling. The fusion
// stage (Eq. 6) bins displacements onto a Δt grid; this module provides
// the interpolation primitives under that, plus gap-aware resampling used
// by single-stream analysis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tagbreathe::signal {

/// A timestamped scalar sample.
struct TimedSample {
  double time_s = 0.0;
  double value = 0.0;
};

/// Linear interpolation of (t, x) at query time `t`. Clamps outside the
/// domain. `samples` must be sorted by time and non-empty.
double interp_linear(std::span<const TimedSample> samples, double t);

/// Resamples a sorted irregular series onto a uniform grid of period
/// 1/rate_hz covering [t0, t1]. Gaps longer than `max_gap_s` are bridged
/// by holding the last value before the gap (linear interpolation across
/// a long dropout would fabricate a spurious ramp). max_gap_s <= 0
/// disables gap handling.
std::vector<TimedSample> resample_uniform(std::span<const TimedSample> samples,
                                          double rate_hz, double t0, double t1,
                                          double max_gap_s = 0.0);

/// Convenience: resamples over the series' own time span.
std::vector<TimedSample> resample_uniform(std::span<const TimedSample> samples,
                                          double rate_hz,
                                          double max_gap_s = 0.0);

/// Splits a TimedSample series into separate time/value vectors.
void split_series(std::span<const TimedSample> samples,
                  std::vector<double>& times, std::vector<double>& values);

/// Average sample rate [Hz] of a sorted series (0 for fewer than 2 points).
double mean_sample_rate(std::span<const TimedSample> samples) noexcept;

/// True if the series is sorted by non-decreasing time.
bool is_time_sorted(std::span<const TimedSample> samples) noexcept;

}  // namespace tagbreathe::signal
