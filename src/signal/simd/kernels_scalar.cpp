// Scalar reference kernels. These loops are the extracted bodies of the
// original FftPlan::run_pow2 / FftPlan::execute / PhasePreprocessor hot
// loops and define the bitwise contract the vector back ends must match.
// The TU is built with -ffp-contract=off on every platform so the
// reference semantics (no fused multiply-add) are pinned even where the
// compiler would otherwise contract.
#include <cstddef>

#include "common/units.hpp"
#include "signal/simd/kernels.hpp"

namespace tagbreathe::signal::simd {

namespace {

void butterfly_stage_scalar(cdouble* d, std::size_t n, std::size_t half,
                            const cdouble* tw) {
  const std::size_t len = 2 * half;
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const cdouble u = d[i + k];
      const cdouble v = d[i + k + half] * tw[k];
      d[i + k] = u + v;
      d[i + k + half] = u - v;
    }
  }
}

void complex_mul_scalar(cdouble* dst, const cdouble* a, const cdouble* b,
                        std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) dst[k] = a[k] * b[k];
}

void complex_scale_scalar(cdouble* d, std::size_t n, double s) {
  for (std::size_t k = 0; k < n; ++k) d[k] *= s;
}

void phase_deltas_scalar(const double* dphase, const double* scale,
                         double* out, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k)
    out[k] = scale[k] * common::wrap_phase_pi(dphase[k]);
}

}  // namespace

const DspKernels& scalar_kernels() noexcept {
  static constexpr DspKernels k{
      &butterfly_stage_scalar,
      &complex_mul_scalar,
      &complex_scale_scalar,
      &phase_deltas_scalar,
  };
  return k;
}

}  // namespace tagbreathe::signal::simd
