// NEON (AArch64) kernels: one complex double (float64x2) per vector for
// the complex loops, two reals per vector for phase deltas.
//
// Same bitwise contract as kernels_avx2.cpp: multiplies and adds/subs
// only (no vfma — the TU is also built with -ffp-contract=off so the
// compiler cannot fuse the intrinsic pairs) and selection by bit-select
// (vbsl). NEON has no addsub, so the complex product's real lane uses
// a + (-b), which is bitwise a - b in IEEE 754. Inputs are assumed
// finite, matching the scalar reference's non-NaN fast path.
#include <cstddef>

#if defined(TAGBREATHE_HAVE_NEON_TU)

#include <arm_neon.h>

#include <cstdint>

#include "common/units.hpp"
#include "signal/simd/kernels.hpp"

namespace tagbreathe::signal::simd {

namespace {

// Flips the sign of lane 0 only: [a, b] -> [-a, b].
inline float64x2_t negate_lane0(float64x2_t v) {
  const uint64x2_t sign = {0x8000000000000000ull, 0ull};
  return vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v), sign));
}

// Complex product of the packed complex value v by w.
inline float64x2_t mul_complex(float64x2_t v, float64x2_t w) {
  const float64x2_t t1 = vmulq_f64(v, vdupq_laneq_f64(w, 0));  // [re*wre im*wre]
  const float64x2_t vs = vextq_f64(v, v, 1);                   // [im re]
  const float64x2_t t2 = vmulq_f64(vs, vdupq_laneq_f64(w, 1)); // [im*wim re*wim]
  // [re*wre - im*wim, im*wre + re*wim]
  return vaddq_f64(t1, negate_lane0(t2));
}

void butterfly_stage_neon(cdouble* d, std::size_t n, std::size_t half,
                          const cdouble* tw) {
  double* const dd = reinterpret_cast<double*>(d);
  const double* const twd = reinterpret_cast<const double*>(tw);
  const std::size_t len = 2 * half;
  for (std::size_t i = 0; i < n; i += len) {
    double* const a = dd + 2 * i;
    double* const b = dd + 2 * (i + half);
    for (std::size_t k = 0; k < half; ++k) {
      const float64x2_t u = vld1q_f64(a + 2 * k);
      const float64x2_t v = vld1q_f64(b + 2 * k);
      const float64x2_t w = vld1q_f64(twd + 2 * k);
      const float64x2_t t = mul_complex(v, w);
      vst1q_f64(a + 2 * k, vaddq_f64(u, t));
      vst1q_f64(b + 2 * k, vsubq_f64(u, t));
    }
  }
}

void complex_mul_neon(cdouble* dst, const cdouble* a, const cdouble* b,
                      std::size_t n) {
  double* const dp = reinterpret_cast<double*>(dst);
  const double* const ap = reinterpret_cast<const double*>(a);
  const double* const bp = reinterpret_cast<const double*>(b);
  for (std::size_t k = 0; k < n; ++k)
    vst1q_f64(dp + 2 * k,
              mul_complex(vld1q_f64(ap + 2 * k), vld1q_f64(bp + 2 * k)));
}

void complex_scale_neon(cdouble* d, std::size_t n, double s) {
  double* const dp = reinterpret_cast<double*>(d);
  const float64x2_t vs = vdupq_n_f64(s);
  for (std::size_t k = 0; k < n; ++k)
    vst1q_f64(dp + 2 * k, vmulq_f64(vld1q_f64(dp + 2 * k), vs));
}

void phase_deltas_neon(const double* dphase, const double* scale, double* out,
                       std::size_t n) {
  using tagbreathe::common::kPi;
  using tagbreathe::common::kTwoPi;
  // Same range split as the AVX2 kernel: y = x + pi wraps exactly with
  // one conditional +/- 2pi for y in (-2pi, 4pi); out-of-range lanes
  // take the scalar fmod path.
  const float64x2_t vpi = vdupq_n_f64(kPi);
  const float64x2_t vtwo_pi = vdupq_n_f64(kTwoPi);
  const float64x2_t vneg_two_pi = vdupq_n_f64(-kTwoPi);
  const float64x2_t vfour_pi = vaddq_f64(vtwo_pi, vtwo_pi);  // exact: 2*2pi
  const float64x2_t vzero = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2_t x = vld1q_f64(dphase + k);
    const float64x2_t y = vaddq_f64(x, vpi);
    const uint64x2_t in_range =
        vandq_u64(vcgtq_f64(y, vneg_two_pi), vcltq_f64(y, vfour_pi));
    if (vgetq_lane_u64(in_range, 0) == 0 || vgetq_lane_u64(in_range, 1) == 0) {
      for (std::size_t j = k; j < k + 2; ++j)
        out[j] = scale[j] * common::wrap_phase_pi(dphase[j]);
      continue;
    }
    float64x2_t r = y;
    r = vbslq_f64(vcltq_f64(y, vzero), vaddq_f64(y, vtwo_pi), r);
    r = vbslq_f64(vcgeq_f64(y, vtwo_pi), vsubq_f64(y, vtwo_pi), r);
    const float64x2_t wrapped = vsubq_f64(r, vpi);
    vst1q_f64(out + k, vmulq_f64(vld1q_f64(scale + k), wrapped));
  }
  for (; k < n; ++k) out[k] = scale[k] * common::wrap_phase_pi(dphase[k]);
}

}  // namespace

const DspKernels& neon_kernels() noexcept {
  static constexpr DspKernels k{
      &butterfly_stage_neon,
      &complex_mul_neon,
      &complex_scale_neon,
      &phase_deltas_neon,
  };
  return k;
}

}  // namespace tagbreathe::signal::simd

#endif  // TAGBREATHE_HAVE_NEON_TU
