// Dispatched DSP kernel table (see simd/dispatch.hpp for the selection
// contract).
//
// Each entry is one inner loop of the FFT / phase-preprocess hot path,
// implemented per ISA in kernels_scalar.cpp / kernels_avx2.cpp /
// kernels_neon.cpp. The implementations are REQUIRED to be bit-identical
// to the scalar reference: same arithmetic operations applied in the
// same per-element order, no fused multiply-add, no reassociation. The
// vector forms win by doing 2 complex doubles (AVX2) or 1 complex / 2
// reals (NEON) per instruction, not by changing the math — which is what
// lets the realtime engine keep byte-identical event logs across
// scalar/vector and lets tests assert exact equality.
#pragma once

#include <complex>
#include <cstddef>

namespace tagbreathe::signal::simd {

using cdouble = std::complex<double>;

/// One inner loop each; pointers follow the FFT plan's layouts.
struct DspKernels {
  /// One radix-2 DIT butterfly stage over the whole array: for every
  /// block of `2*half` elements starting at i, and every k < half,
  ///   u = d[i+k]; v = d[i+k+half] * tw[k];
  ///   d[i+k] = u + v; d[i+k+half] = u - v;
  /// `n` is a power of two, `half` divides n.
  void (*butterfly_stage)(cdouble* d, std::size_t n, std::size_t half,
                          const cdouble* tw);

  /// dst[k] = a[k] * b[k] for k < n. dst may alias a (the Bluestein
  /// pointwise products run both in-place and out-of-place).
  void (*complex_mul)(cdouble* dst, const cdouble* a, const cdouble* b,
                      std::size_t n);

  /// d[k] *= s for k < n (inverse-transform 1/N scaling).
  void (*complex_scale)(cdouble* d, std::size_t n, double s);

  /// out[k] = scale[k] * wrap_pi(dphase[k]) for k < n, where wrap_pi is
  /// common::wrap_phase_pi (principal value in (-pi, pi]). Inputs are
  /// same-channel phase differences, so |dphase| < 2*pi on the hot path;
  /// lanes outside that range take the exact scalar wrap.
  void (*phase_deltas)(const double* dphase, const double* scale,
                       double* out, std::size_t n);
};

/// The live kernel table. First call resolves the dispatch (thread-safe,
/// lock-free after init); subsequent calls are an atomic load.
const DspKernels& kernels() noexcept;

/// Per-ISA tables (exposed for the equivalence tests and benchmarks).
const DspKernels& scalar_kernels() noexcept;
#if defined(TAGBREATHE_HAVE_AVX2_TU)
const DspKernels& avx2_kernels() noexcept;
#endif
#if defined(TAGBREATHE_HAVE_NEON_TU)
const DspKernels& neon_kernels() noexcept;
#endif

}  // namespace tagbreathe::signal::simd
