#include "signal/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "signal/simd/kernels.hpp"

namespace tagbreathe::signal::simd {

namespace {

/// Resolved dispatch state, published with release semantics so readers
/// see a fully-initialized entry after the acquire load. Null until the
/// first kernels()/active_level() call (or after a testing reset).
struct Dispatch {
  const DspKernels* table;
  SimdLevel level;
};

std::atomic<const Dispatch*> g_dispatch{nullptr};

// Slots for the probe result and the testing override. Static storage:
// dispatch state is process-lifetime, never freed.
Dispatch g_probed;
Dispatch g_override;

bool hardware_supports_avx2() noexcept {
#if defined(TAGBREATHE_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(_M_X64))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool hardware_supports_neon() noexcept {
#if defined(TAGBREATHE_HAVE_NEON_TU) && defined(__aarch64__)
  return true;  // AdvSIMD is architecturally mandatory on AArch64
#else
  return false;
#endif
}

Dispatch probe() noexcept {
  if (!env_requests_scalar(std::getenv("TAGBREATHE_FORCE_SCALAR"))) {
#if defined(TAGBREATHE_HAVE_AVX2_TU)
    if (hardware_supports_avx2()) return {&avx2_kernels(), SimdLevel::Avx2};
#endif
#if defined(TAGBREATHE_HAVE_NEON_TU)
    if (hardware_supports_neon()) return {&neon_kernels(), SimdLevel::Neon};
#endif
  }
  return {&scalar_kernels(), SimdLevel::Scalar};
}

const Dispatch& resolved() noexcept {
  const Dispatch* d = g_dispatch.load(std::memory_order_acquire);
  if (d != nullptr) return *d;
  // First call (possibly racing): the probe is idempotent and both
  // racers write identical values into g_probed before publishing, so
  // whichever CAS wins, readers observe a consistent entry.
  const Dispatch fresh = probe();
  const Dispatch* expected = nullptr;
  g_probed = fresh;
  if (g_dispatch.compare_exchange_strong(expected, &g_probed,
                                         std::memory_order_release,
                                         std::memory_order_acquire)) {
    return g_probed;
  }
  return *expected;
}

}  // namespace

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Neon: return "neon";
    default: return "unknown";
  }
}

bool env_requests_scalar(const char* value) noexcept {
  if (value == nullptr || value[0] == '\0') return false;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "false") != 0 &&
         std::strcmp(value, "off") != 0;
}

SimdLevel detected_level() noexcept {
  // Probe without consulting (or installing) the override/dispatch
  // state: detected_level() must report the environment truth even
  // while a test override pins the table elsewhere.
  static const SimdLevel level = probe().level;
  return level;
}

SimdLevel active_level() noexcept { return resolved().level; }

int active_level_value() noexcept {
  return static_cast<int>(active_level());
}

const DspKernels& kernels() noexcept { return *resolved().table; }

SimdLevel override_level_for_testing(SimdLevel level) noexcept {
  Dispatch next{&scalar_kernels(), SimdLevel::Scalar};
  switch (level) {
    case SimdLevel::Avx2:
#if defined(TAGBREATHE_HAVE_AVX2_TU)
      if (hardware_supports_avx2()) next = {&avx2_kernels(), SimdLevel::Avx2};
#endif
      break;
    case SimdLevel::Neon:
#if defined(TAGBREATHE_HAVE_NEON_TU)
      if (hardware_supports_neon()) next = {&neon_kernels(), SimdLevel::Neon};
#endif
      break;
    case SimdLevel::Scalar:
    default:
      break;
  }
  g_override = next;
  g_dispatch.store(&g_override, std::memory_order_release);
  return next.level;
}

void reset_dispatch_for_testing() noexcept {
  g_dispatch.store(nullptr, std::memory_order_release);
}

}  // namespace tagbreathe::signal::simd
