// Runtime SIMD dispatch for the DSP hot path.
//
// The FFT butterflies, the Bluestein pointwise products and the phase
// unwrap/scale loops run through a kernel table (simd/kernels.hpp)
// selected ONCE per process: AVX2 where the build carries the AVX2
// translation unit and cpuid reports support, NEON on AArch64 builds,
// and a portable scalar fallback everywhere else. The selection is
// observable (obs gauge `dsp_simd_level`, examples print it) and
// overridable:
//
//   - environment: TAGBREATHE_FORCE_SCALAR=1 pins the scalar kernels —
//     CI runs the whole suite this way on AVX2 runners so the fallback
//     stays exercised;
//   - tests: override_level_for_testing() swaps the live table (used by
//     the vector-vs-scalar equivalence suite and the benchmarks'
//     scalar-baseline fixtures).
//
// Every kernel pair is bit-identical by construction (same operations,
// same order, no FMA contraction), so flipping the level never changes
// a single output byte — the equivalence tests assert exact equality,
// and the realtime event logs are byte-identical across levels.
#pragma once

#include <cstdint>

namespace tagbreathe::signal::simd {

enum class SimdLevel : std::uint8_t {
  Scalar = 0,
  Avx2 = 1,
  Neon = 2,
};

/// Stable human-readable name ("scalar", "avx2", "neon").
const char* simd_level_name(SimdLevel level) noexcept;

/// Level the process would select from the environment + hardware probe
/// alone (ignores any testing override). Cheap after the first call.
SimdLevel detected_level() noexcept;

/// Level currently driving the kernel table: detected_level() unless a
/// testing override is in force. This is what the obs gauge exports.
SimdLevel active_level() noexcept;

/// Numeric value of active_level() for metric export.
int active_level_value() noexcept;

/// True when the given environment-variable value requests the scalar
/// fallback: anything non-empty except "0", "false", "off" (exposed for
/// tests; the probe applies it to TAGBREATHE_FORCE_SCALAR).
bool env_requests_scalar(const char* value) noexcept;

/// Test hook: pin the kernel table to `level`. Requesting a level the
/// build/hardware cannot run (e.g. Avx2 on a non-AVX2 machine) falls
/// back to Scalar and returns the level actually installed.
SimdLevel override_level_for_testing(SimdLevel level) noexcept;

/// Test hook: drop any override and re-run the probe on next use (the
/// dispatch-init thread-safety hammer uses this to re-create the
/// first-call race).
void reset_dispatch_for_testing() noexcept;

}  // namespace tagbreathe::signal::simd
