// AVX2 kernels: 2 complex doubles (4 lanes) per 256-bit vector.
//
// Bitwise contract with kernels_scalar.cpp: every lane performs exactly
// the scalar operation sequence — multiplies and adds/subs only, no FMA
// (the TU is built with -ffp-contract=off and uses no fma intrinsics),
// and value selection is done with blends, never with arithmetic
// identities like x + 0.0 (which would turn -0.0 into +0.0). The complex
// product uses addsub to land
//   re' = a.re*b.re - a.im*b.im
//   im' = a.im*b.re + a.re*b.im
// which matches std::complex's non-NaN fast path exactly (the imaginary
// sum is the same two addends, and IEEE addition is commutative). Like
// the scalar reference, inputs are assumed finite: the C99 Inf-recovery
// fixup of std::complex multiplication is out of contract.
#include <cstddef>

#if defined(TAGBREATHE_HAVE_AVX2_TU)

#include <immintrin.h>

#include "common/units.hpp"
#include "signal/simd/kernels.hpp"

namespace tagbreathe::signal::simd {

namespace {

// Complex product of the two packed complex values in `v` by those in
// `w`: [v0*w0, v1*w1].
inline __m256d mul_packed(__m256d v, __m256d w) {
  const __m256d wr = _mm256_unpacklo_pd(w, w);       // [w0.re w0.re w1.re w1.re]
  const __m256d wi = _mm256_unpackhi_pd(w, w);       // [w0.im w0.im w1.im w1.im]
  const __m256d vs = _mm256_shuffle_pd(v, v, 0x5);   // [v0.im v0.re v1.im v1.re]
  return _mm256_addsub_pd(_mm256_mul_pd(v, wr), _mm256_mul_pd(vs, wi));
}

void butterfly_stage_avx2(cdouble* d, std::size_t n, std::size_t half,
                          const cdouble* tw) {
  double* const dd = reinterpret_cast<double*>(d);
  const double* const twd = reinterpret_cast<const double*>(tw);
  if (half == 1) {
    // len == 2: u/v are adjacent, tw[0] == (1, 0). Keep the multiply —
    // v * (1,0) is not a bitwise no-op for every v, and the scalar
    // reference performs it.
    for (std::size_t i = 0; i < n; i += 2) {
      const cdouble u = d[i];
      const cdouble v = d[i + 1] * tw[0];
      d[i] = u + v;
      d[i + 1] = u - v;
    }
    return;
  }
  // half >= 2 and even: the k loop vectorizes with no tail.
  const std::size_t len = 2 * half;
  for (std::size_t i = 0; i < n; i += len) {
    double* const a = dd + 2 * i;
    double* const b = dd + 2 * (i + half);
    for (std::size_t k = 0; k < half; k += 2) {
      const __m256d u = _mm256_loadu_pd(a + 2 * k);
      const __m256d v = _mm256_loadu_pd(b + 2 * k);
      const __m256d w = _mm256_loadu_pd(twd + 2 * k);
      const __m256d t = mul_packed(v, w);
      _mm256_storeu_pd(a + 2 * k, _mm256_add_pd(u, t));
      _mm256_storeu_pd(b + 2 * k, _mm256_sub_pd(u, t));
    }
  }
}

void complex_mul_avx2(cdouble* dst, const cdouble* a, const cdouble* b,
                      std::size_t n) {
  double* const dp = reinterpret_cast<double*>(dst);
  const double* const ap = reinterpret_cast<const double*>(a);
  const double* const bp = reinterpret_cast<const double*>(b);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d va = _mm256_loadu_pd(ap + 2 * k);
    const __m256d vb = _mm256_loadu_pd(bp + 2 * k);
    _mm256_storeu_pd(dp + 2 * k, mul_packed(va, vb));
  }
  for (; k < n; ++k) dst[k] = a[k] * b[k];
}

void complex_scale_avx2(cdouble* d, std::size_t n, double s) {
  double* const dp = reinterpret_cast<double*>(d);
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2)
    _mm256_storeu_pd(dp + 2 * k, _mm256_mul_pd(_mm256_loadu_pd(dp + 2 * k), vs));
  for (; k < n; ++k) d[k] *= s;
}

void phase_deltas_avx2(const double* dphase, const double* scale, double* out,
                       std::size_t n) {
  using tagbreathe::common::kPi;
  using tagbreathe::common::kTwoPi;
  // wrap_phase_pi(x) = r(x + pi) - pi with r = fmod into [0, 2pi). For
  // y = x + pi in (-2pi, 0) the fmod reduces to y + 2pi, for [0, 2pi)
  // to y itself, and for [2pi, 4pi) to y - 2pi (exact by Sterbenz since
  // 2pi <= y < 2*2pi) — all reproduced here with blends. Lanes with y
  // outside (-2pi, 4pi) take the scalar fmod path.
  const __m256d vpi = _mm256_set1_pd(kPi);
  const __m256d vtwo_pi = _mm256_set1_pd(kTwoPi);
  const __m256d vneg_two_pi = _mm256_set1_pd(-kTwoPi);
  const __m256d vfour_pi = _mm256_add_pd(vtwo_pi, vtwo_pi);  // exact: 2*2pi
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d x = _mm256_loadu_pd(dphase + k);
    const __m256d y = _mm256_add_pd(x, vpi);
    const __m256d in_range =
        _mm256_and_pd(_mm256_cmp_pd(y, vneg_two_pi, _CMP_GT_OQ),
                      _mm256_cmp_pd(y, vfour_pi, _CMP_LT_OQ));
    if (_mm256_movemask_pd(in_range) != 0xF) {
      for (std::size_t j = k; j < k + 4; ++j)
        out[j] = scale[j] * common::wrap_phase_pi(dphase[j]);
      continue;
    }
    __m256d r = y;
    r = _mm256_blendv_pd(r, _mm256_add_pd(y, vtwo_pi),
                         _mm256_cmp_pd(y, _mm256_setzero_pd(), _CMP_LT_OQ));
    r = _mm256_blendv_pd(r, _mm256_sub_pd(y, vtwo_pi),
                         _mm256_cmp_pd(y, vtwo_pi, _CMP_GE_OQ));
    const __m256d wrapped = _mm256_sub_pd(r, vpi);
    _mm256_storeu_pd(out + k,
                     _mm256_mul_pd(_mm256_loadu_pd(scale + k), wrapped));
  }
  for (; k < n; ++k) out[k] = scale[k] * common::wrap_phase_pi(dphase[k]);
}

}  // namespace

const DspKernels& avx2_kernels() noexcept {
  static constexpr DspKernels k{
      &butterfly_stage_avx2,
      &complex_mul_avx2,
      &complex_scale_avx2,
      &phase_deltas_avx2,
  };
  return k;
}

}  // namespace tagbreathe::signal::simd

#endif  // TAGBREATHE_HAVE_AVX2_TU
