#include "signal/window.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace tagbreathe::signal {

using tagbreathe::common::kTwoPi;

std::vector<double> make_window(WindowType type, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;  // in [0, 1]
    switch (type) {
      case WindowType::Rectangular:
        w[i] = 1.0;
        break;
      case WindowType::Hann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowType::Hamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowType::Blackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) +
               0.08 * std::cos(2.0 * kTwoPi * x);
        break;
      case WindowType::BlackmanHarris:
        w[i] = 0.35875 - 0.48829 * std::cos(kTwoPi * x) +
               0.14128 * std::cos(2.0 * kTwoPi * x) -
               0.01168 * std::cos(3.0 * kTwoPi * x);
        break;
    }
  }
  return w;
}

void apply_window(std::span<double> data, std::span<const double> window) {
  if (data.size() != window.size())
    throw std::invalid_argument("apply_window: size mismatch");
  for (std::size_t i = 0; i < data.size(); ++i) data[i] *= window[i];
}

double window_gain(std::span<const double> window) noexcept {
  double s = 0.0;
  for (double w : window) s += w;
  return s;
}

const char* window_name(WindowType type) noexcept {
  switch (type) {
    case WindowType::Rectangular: return "rectangular";
    case WindowType::Hann: return "hann";
    case WindowType::Hamming: return "hamming";
    case WindowType::Blackman: return "blackman";
    case WindowType::BlackmanHarris: return "blackman-harris";
  }
  return "?";
}

}  // namespace tagbreathe::signal
