#include "signal/peaks.hpp"

#include <algorithm>

namespace tagbreathe::signal {

namespace {

double peak_prominence(std::span<const double> x, std::size_t idx) {
  const double height = x[idx];
  // Walk left until terrain rises above the peak (or the edge); the
  // lowest point on that walk is the left base. Same on the right.
  double left_base = height;
  for (std::size_t i = idx; i-- > 0;) {
    if (x[i] > height) break;
    left_base = std::min(left_base, x[i]);
  }
  double right_base = height;
  for (std::size_t i = idx + 1; i < x.size(); ++i) {
    if (x[i] > height) break;
    right_base = std::min(right_base, x[i]);
  }
  return height - std::max(left_base, right_base);
}

}  // namespace

std::vector<Peak> find_peaks(std::span<const double> x,
                             std::size_t min_distance,
                             double min_prominence) {
  std::vector<Peak> candidates;
  if (x.size() < 3) return candidates;
  if (min_distance == 0) min_distance = 1;

  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    if (!(x[i] > x[i - 1])) continue;
    // Handle flat tops: advance to the end of the plateau.
    std::size_t j = i;
    while (j + 1 < x.size() && x[j + 1] == x[i]) ++j;
    if (j + 1 >= x.size() || x[j + 1] >= x[i]) {
      i = j;
      continue;
    }
    const std::size_t centre = (i + j) / 2;
    const double prom = peak_prominence(x, centre);
    if (prom >= min_prominence)
      candidates.push_back(Peak{centre, x[centre], prom});
    i = j;
  }

  // Enforce min_distance greedily, keeping taller peaks first.
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });
  std::vector<Peak> kept;
  for (const Peak& p : candidates) {
    const bool clash = std::any_of(
        kept.begin(), kept.end(), [&](const Peak& q) {
          const std::size_t gap =
              p.index > q.index ? p.index - q.index : q.index - p.index;
          return gap < min_distance;
        });
    if (!clash) kept.push_back(p);
  }
  std::sort(kept.begin(), kept.end(),
            [](const Peak& a, const Peak& b) { return a.index < b.index; });
  return kept;
}

}  // namespace tagbreathe::signal
