// Experiment runner: repeated trials -> aggregate accuracy, the way the
// paper's evaluation reports each figure point ("we repeat the
// experiments ... and compute the average breathing rates").
#pragma once

#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "core/monitor.hpp"
#include "experiments/scenario.hpp"

namespace tagbreathe::experiments {

struct TrialUserResult {
  std::uint64_t user_id = 0;
  double true_bpm = 0.0;
  double estimated_bpm = 0.0;
  double accuracy = 0.0;  // Eq. 8
  double error_bpm = 0.0;
  bool reliable = false;
};

struct TrialResult {
  std::vector<TrialUserResult> users;
  std::size_t total_reads = 0;
  double read_rate_hz = 0.0;  // total low-level data rate
  double monitor_read_rate_hz = 0.0;  // rate from monitoring tags only
  double mean_rssi_dbm = -120.0;      // monitoring tags only
};

struct AggregateResult {
  common::RunningStats accuracy;
  common::RunningStats error_bpm;
  common::RunningStats read_rate_hz;
  common::RunningStats monitor_read_rate_hz;
  common::RunningStats mean_rssi_dbm;
  std::size_t trials = 0;
  std::size_t unreliable = 0;
};

/// Runs one trial: simulate, analyse, compare to ground truth.
TrialResult run_trial(const ScenarioConfig& config,
                      const core::MonitorConfig& monitor_config = {});

/// Runs `trials` trials with distinct seeds derived from config.seed.
AggregateResult run_trials(ScenarioConfig config, int trials,
                           const core::MonitorConfig& monitor_config = {});

}  // namespace tagbreathe::experiments
