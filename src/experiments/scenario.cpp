#include "experiments/scenario.hpp"

#include <stdexcept>

#include "common/units.hpp"

namespace tagbreathe::experiments {

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)) {
  if (config_.users.empty())
    throw std::invalid_argument("Scenario: need at least one user");
  if (config_.tags_per_user < 1 || config_.tags_per_user > 3)
    throw std::invalid_argument("Scenario: tags per user in [1, 3]");

  // Subjects sit side by side at the configured distance, facing the
  // antenna (plus their individual orientation offset).
  for (std::size_t u = 0; u < config_.users.size(); ++u) {
    const UserSpec& spec = config_.users[u];
    body::SubjectConfig sc;
    sc.user_id = u + 1;
    const double side = spec.side_offset_m != 0.0
                            ? spec.side_offset_m
                            : 0.8 * static_cast<double>(u);
    sc.position = {config_.distance_m, side, 0.0};
    sc.heading_rad =
        common::kPi + common::deg_to_rad(spec.orientation_deg);
    sc.posture = spec.posture;
    sc.chest_style = spec.chest_style;
    sc.sway_seed = config_.seed * 131 + u;

    body::MetronomeSchedule schedule =
        spec.schedule.empty() ? body::MetronomeSchedule(spec.rate_bpm)
                              : body::MetronomeSchedule(spec.schedule);
    subjects_.push_back(std::make_unique<body::Subject>(
        sc, body::BreathingModel(std::move(schedule), body::BreathShape{},
                                 spec.apneas)));
  }

  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  const auto& sites = body::Subject::all_sites();
  for (const auto& subject : subjects_) {
    for (int i = 0; i < config_.tags_per_user; ++i) {
      tags.push_back(std::make_unique<rfid::BodyTag>(
          rfid::Epc96::from_user_tag(subject->user_id(),
                                     static_cast<std::uint32_t>(i + 1)),
          subject.get(), sites[static_cast<std::size_t>(i) % sites.size()]));
    }
  }
  // Item-labelling tags scattered through the room (Fig. 14 workload):
  // on shelves and furniture within communication range.
  for (int i = 0; i < config_.contending_tags; ++i) {
    const double x = 1.0 + 0.12 * i;
    const double y = (i % 2 == 0) ? 1.5 : -1.2;
    const double z = 0.5 + 0.07 * (i % 7);
    tags.push_back(std::make_unique<rfid::StaticTag>(
        rfid::Epc96::from_user_tag(0xFFFFFFFFULL,
                                   static_cast<std::uint32_t>(i + 1)),
        common::Vec3{x, y, z}));
  }

  rfid::ReaderConfig rc;
  rc.plan = config_.us_channel_plan ? rfid::ChannelPlan::us_plan()
                                    : rfid::ChannelPlan::paper_plan();
  if (config_.select_monitoring_only) {
    const std::uint64_t max_user = config_.users.size();
    rc.select_filter = [max_user](const rfid::Epc96& epc) {
      const std::uint64_t user = epc.user_id();
      return user >= 1 && user <= max_user;
    };
  }
  rc.link.tx_power_dbm = config_.tx_power_dbm;
  rc.seed = config_.seed * 7919 + 13;
  rc.hop_seed = config_.seed * 31 + 5;
  rc.antennas.clear();
  for (int a = 0; a < config_.num_antennas; ++a) {
    rfid::Antenna ant;
    ant.port = static_cast<std::uint8_t>(a + 1);
    // Antennas spread laterally to cover side-by-side users.
    ant.position = {0.0, 1.2 * static_cast<double>(a),
                    config_.antenna_height_m};
    rc.antennas.push_back(ant);
  }
  reader_ = std::make_unique<rfid::ReaderSim>(rc, std::move(tags));
}

core::ReadStream Scenario::run() { return reader_->run(config_.duration_s); }

double Scenario::true_rate_bpm(std::size_t user_index) const {
  const auto& model = subjects_.at(user_index)->breathing();
  return model.schedule().mean_rate_bpm(0.0, config_.duration_s);
}

}  // namespace tagbreathe::experiments
