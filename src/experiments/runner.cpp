#include "experiments/runner.hpp"

#include "core/metrics.hpp"

namespace tagbreathe::experiments {

TrialResult run_trial(const ScenarioConfig& config,
                      const core::MonitorConfig& monitor_config) {
  Scenario scenario(config);
  const core::ReadStream reads = scenario.run();

  TrialResult result;
  result.total_reads = reads.size();
  result.read_rate_hz =
      config.duration_s > 0.0
          ? static_cast<double>(reads.size()) / config.duration_s
          : 0.0;

  std::size_t monitor_reads = 0;
  double rssi_sum = 0.0;
  for (const core::TagRead& r : reads) {
    const std::uint64_t user = r.epc.user_id();
    if (user >= 1 && user <= config.users.size()) {
      ++monitor_reads;
      rssi_sum += r.rssi_dbm;
    }
  }
  result.monitor_read_rate_hz =
      config.duration_s > 0.0
          ? static_cast<double>(monitor_reads) / config.duration_s
          : 0.0;
  if (monitor_reads > 0)
    result.mean_rssi_dbm = rssi_sum / static_cast<double>(monitor_reads);

  core::BreathMonitor monitor(monitor_config);
  const auto analyses = monitor.analyze(reads);
  for (const core::UserAnalysis& a : analyses) {
    if (a.user_id < 1 || a.user_id > config.users.size())
      continue;  // item-labelling tags are not users
    TrialUserResult u;
    u.user_id = a.user_id;
    u.true_bpm = scenario.true_rate_bpm(a.user_id - 1);
    u.estimated_bpm = a.rate.rate_bpm;
    u.accuracy = core::breathing_rate_accuracy(u.estimated_bpm, u.true_bpm);
    u.error_bpm = core::rate_error_bpm(u.estimated_bpm, u.true_bpm);
    u.reliable = a.rate.reliable;
    result.users.push_back(u);
  }
  return result;
}

AggregateResult run_trials(ScenarioConfig config, int trials,
                           const core::MonitorConfig& monitor_config) {
  AggregateResult agg;
  const std::uint64_t base_seed = config.seed;
  for (int t = 0; t < trials; ++t) {
    config.seed = base_seed + static_cast<std::uint64_t>(t) * 1009 + 1;
    const TrialResult trial = run_trial(config, monitor_config);
    for (const TrialUserResult& u : trial.users) {
      agg.accuracy.add(u.accuracy);
      agg.error_bpm.add(u.error_bpm);
      if (!u.reliable) ++agg.unreliable;
    }
    agg.read_rate_hz.add(trial.read_rate_hz);
    agg.monitor_read_rate_hz.add(trial.monitor_read_rate_hz);
    agg.mean_rssi_dbm.add(trial.mean_rssi_dbm);
    ++agg.trials;
  }
  return agg;
}

}  // namespace tagbreathe::experiments
