// Experiment scenarios mirroring Table I of the paper.
//
// A Scenario owns the subjects and builds the tag population + reader
// for one trial. Defaults are the paper's defaults: 10-channel hopping,
// 30 dBm, 4 m, facing, 1 user x 3 tags, 10 bpm, sitting, LOS.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "body/subject.hpp"
#include "rfid/reader.hpp"

namespace tagbreathe::experiments {

struct UserSpec {
  double rate_bpm = 10.0;                      // Table I default
  body::Posture posture = body::Posture::Sitting;
  double orientation_deg = 0.0;                // 0 = facing the antenna
  double chest_style = 0.5;
  /// Lateral offset from the first user's seat [m] (users sit side by
  /// side in the multi-user experiments).
  double side_offset_m = 0.0;
  /// Apnea episodes (extension scenarios).
  std::vector<body::ApneaEvent> apneas;
  /// Optional piecewise rate schedule; overrides rate_bpm when nonempty.
  std::vector<body::RateSegment> schedule;
};

struct ScenarioConfig {
  double distance_m = 4.0;       // Table I default
  int tags_per_user = 3;         // Table I default
  std::vector<UserSpec> users{UserSpec{}};
  int contending_tags = 0;       // item-labelling tags (Fig. 14)
  double tx_power_dbm = 30.0;    // Table I default
  int num_antennas = 1;
  /// Antenna mounting height [m] (paper: ~1 m above ground). Overhead
  /// mounting (e.g. above a crib) uses larger values.
  double antenna_height_m = 1.0;
  /// Regulatory channel plan: false = the paper's 10-channel plan,
  /// true = FCC 50-channel.
  bool us_channel_plan = false;
  /// Issue a Gen2 SELECT so only the monitoring tags are inventoried;
  /// contending item tags stop costing air time (ablation for Fig. 14).
  bool select_monitoring_only = false;
  double duration_s = 120.0;     // "each experiment lasts two minutes"
  std::uint64_t seed = 1;
};

/// A fully built trial: subjects (owned) + a ready reader simulator.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  /// Runs the trial and returns the collected low-level reads.
  core::ReadStream run();

  rfid::ReaderSim& reader() noexcept { return *reader_; }
  const ScenarioConfig& config() const noexcept { return config_; }

  /// Ground-truth mean commanded rate for a user over the trial.
  double true_rate_bpm(std::size_t user_index) const;

  const body::Subject& subject(std::size_t user_index) const {
    return *subjects_.at(user_index);
  }

 private:
  ScenarioConfig config_;
  std::vector<std::unique_ptr<body::Subject>> subjects_;
  std::unique_ptr<rfid::ReaderSim> reader_;
};

}  // namespace tagbreathe::experiments
