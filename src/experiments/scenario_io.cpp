#include "experiments/scenario_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/ini.hpp"

namespace tagbreathe::experiments {

namespace {

body::Posture parse_posture(const std::string& name) {
  if (name == "sitting") return body::Posture::Sitting;
  if (name == "standing") return body::Posture::Standing;
  if (name == "lying") return body::Posture::Lying;
  throw std::runtime_error("scenario: unknown posture '" + name +
                           "' (sitting|standing|lying)");
}

/// Parses "a:b, c:d" pair lists (apnea start:duration, schedule
/// start:rate).
std::vector<std::pair<double, double>> parse_pairs(const std::string& text,
                                                   const char* what) {
  std::vector<std::pair<double, double>> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos)
      throw std::runtime_error(std::string("scenario: ") + what +
                               " entries must be 'a:b', got '" + item + "'");
    try {
      out.emplace_back(std::stod(item.substr(0, colon)),
                       std::stod(item.substr(colon + 1)));
    } catch (const std::exception&) {
      throw std::runtime_error(std::string("scenario: bad number in ") +
                               what + ": '" + item + "'");
    }
  }
  return out;
}

void check_known_keys(const common::IniSection& section,
                      std::initializer_list<const char*> known) {
  for (const auto& [key, value] : section.values) {
    bool ok = false;
    for (const char* k : known)
      if (key == k) ok = true;
    if (!ok)
      throw std::runtime_error("scenario: unknown key '" + key +
                               "' in [" + section.name + "]");
  }
}

}  // namespace

ScenarioConfig scenario_from_ini(std::istream& in) {
  const common::IniFile ini = common::IniFile::parse(in);
  ScenarioConfig cfg;

  if (const auto* s = ini.find("scenario")) {
    check_known_keys(*s, {"distance_m", "tags_per_user", "contending_tags",
                          "tx_power_dbm", "num_antennas",
                          "antenna_height_m", "duration_s", "seed"});
    cfg.distance_m = s->get_double("distance_m", cfg.distance_m);
    cfg.tags_per_user =
        static_cast<int>(s->get_int("tags_per_user", cfg.tags_per_user));
    cfg.contending_tags = static_cast<int>(
        s->get_int("contending_tags", cfg.contending_tags));
    cfg.tx_power_dbm = s->get_double("tx_power_dbm", cfg.tx_power_dbm);
    cfg.num_antennas =
        static_cast<int>(s->get_int("num_antennas", cfg.num_antennas));
    cfg.antenna_height_m =
        s->get_double("antenna_height_m", cfg.antenna_height_m);
    cfg.duration_s = s->get_double("duration_s", cfg.duration_s);
    cfg.seed = static_cast<std::uint64_t>(
        s->get_int("seed", static_cast<long>(cfg.seed)));
  }

  const auto users = ini.find_all("user");
  if (!users.empty()) cfg.users.clear();
  for (const auto* u : users) {
    check_known_keys(*u, {"rate_bpm", "posture", "orientation_deg",
                          "chest_style", "side_offset_m", "apnea",
                          "schedule"});
    UserSpec spec;
    spec.rate_bpm = u->get_double("rate_bpm", spec.rate_bpm);
    spec.posture = parse_posture(u->get_string("posture", "sitting"));
    spec.orientation_deg =
        u->get_double("orientation_deg", spec.orientation_deg);
    spec.chest_style = u->get_double("chest_style", spec.chest_style);
    spec.side_offset_m = u->get_double("side_offset_m", spec.side_offset_m);
    if (const auto apnea = u->get("apnea")) {
      for (const auto& [start, duration] : parse_pairs(*apnea, "apnea"))
        spec.apneas.push_back(body::ApneaEvent{start, duration});
    }
    if (const auto schedule = u->get("schedule")) {
      for (const auto& [start, rate] : parse_pairs(*schedule, "schedule"))
        spec.schedule.push_back(body::RateSegment{start, rate});
    }
    cfg.users.push_back(std::move(spec));
  }
  // Validate by constructing once (Scenario's constructor checks).
  Scenario probe(cfg);
  return cfg;
}

ScenarioConfig scenario_from_ini_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("scenario: cannot open " + path);
  return scenario_from_ini(in);
}

std::string scenario_to_ini(const ScenarioConfig& config) {
  std::ostringstream out;
  out << "[scenario]\n";
  out << "distance_m = " << config.distance_m << "\n";
  out << "tags_per_user = " << config.tags_per_user << "\n";
  out << "contending_tags = " << config.contending_tags << "\n";
  out << "tx_power_dbm = " << config.tx_power_dbm << "\n";
  out << "num_antennas = " << config.num_antennas << "\n";
  out << "antenna_height_m = " << config.antenna_height_m << "\n";
  out << "duration_s = " << config.duration_s << "\n";
  out << "seed = " << config.seed << "\n";
  for (const UserSpec& u : config.users) {
    out << "\n[user]\n";
    out << "rate_bpm = " << u.rate_bpm << "\n";
    out << "posture = " << body::posture_name(u.posture) << "\n";
    out << "orientation_deg = " << u.orientation_deg << "\n";
    out << "chest_style = " << u.chest_style << "\n";
    out << "side_offset_m = " << u.side_offset_m << "\n";
    if (!u.apneas.empty()) {
      out << "apnea = ";
      for (std::size_t i = 0; i < u.apneas.size(); ++i) {
        if (i) out << ", ";
        out << u.apneas[i].start_s << ":" << u.apneas[i].duration_s;
      }
      out << "\n";
    }
    if (!u.schedule.empty()) {
      out << "schedule = ";
      for (std::size_t i = 0; i < u.schedule.size(); ++i) {
        if (i) out << ", ";
        out << u.schedule[i].start_s << ":" << u.schedule[i].rate_bpm;
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace tagbreathe::experiments
