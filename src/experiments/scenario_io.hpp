// Scenario (de)serialisation: INI files -> ScenarioConfig.
//
// Lets the CLI tool and downstream users describe deployments in plain
// text instead of C++:
//
//   [scenario]
//   distance_m = 4.0
//   duration_s = 120
//   contending_tags = 10
//
//   [user]
//   rate_bpm = 12
//   posture = sitting            ; sitting | standing | lying
//   apnea = 90:8, 180:25         ; start:duration pairs [s]
//
//   [user]
//   schedule = 0:18, 90:12       ; start:rate pairs (s : bpm)
//
// Every key is optional; defaults are the Table-I defaults. Unknown keys
// are rejected (catching typos beats silently ignoring them).
#pragma once

#include <iosfwd>
#include <string>

#include "experiments/scenario.hpp"

namespace tagbreathe::experiments {

/// Parses a scenario description. Throws std::runtime_error with a
/// helpful message on syntax errors, unknown keys, or invalid values.
ScenarioConfig scenario_from_ini(std::istream& in);
ScenarioConfig scenario_from_ini_file(const std::string& path);

/// Writes a config back out as INI (round-trips through
/// scenario_from_ini).
std::string scenario_to_ini(const ScenarioConfig& config);

}  // namespace tagbreathe::experiments
