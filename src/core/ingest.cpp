#include "core/ingest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/observability.hpp"

namespace tagbreathe::core {

const char* backpressure_policy_name(BackpressurePolicy policy) noexcept {
  switch (policy) {
    case BackpressurePolicy::Block: return "block";
    case BackpressurePolicy::DropOldest: return "drop-oldest";
    case BackpressurePolicy::Coalesce: return "coalesce";
    default: return "unknown-policy";
  }
}

const char* enqueue_result_name(EnqueueResult result) noexcept {
  switch (result) {
    case EnqueueResult::Enqueued: return "enqueued";
    case EnqueueResult::DroppedOldest: return "dropped-oldest";
    case EnqueueResult::Coalesced: return "coalesced";
    case EnqueueResult::WouldBlock: return "would-block";
    case EnqueueResult::Closed: return "closed";
    default: return "unknown-result";
  }
}

const char* quarantine_reason_name(QuarantineReason reason) noexcept {
  switch (reason) {
    case QuarantineReason::MalformedEpc: return "malformed-epc";
    case QuarantineReason::UnknownUser: return "unknown-user";
    case QuarantineReason::NonFiniteField: return "non-finite-field";
    case QuarantineReason::TimestampRegression: return "timestamp-regression";
    case QuarantineReason::DuplicateRead: return "duplicate-read";
    default: return "unknown-reason";
  }
}

void IngestConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("IngestConfig: " + what);
  };
  if (queue_capacity == 0) bad("queue_capacity must be positive");
  if (static_cast<std::size_t>(policy) >= kBackpressurePolicyCount)
    bad("policy out of range");
  if (!(repair_skew_s >= 0.0) || !std::isfinite(repair_skew_s))
    bad("repair_skew_s must be non-negative and finite");
  if (!(duplicate_window_s >= 0.0) || !std::isfinite(duplicate_window_s))
    bad("duplicate_window_s must be non-negative and finite");
}

// ---------------------------------------------------------------------------
// IngestQueue

IngestQueue::IngestQueue(std::size_t capacity, BackpressurePolicy policy)
    : capacity_(capacity), policy_(policy), buffer_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("IngestQueue capacity must be positive");
}

EnqueueResult IngestQueue::push_locked(const TagRead& read, double now_s) {
  if (closed_) {
    ++counters_.closed_rejects;
    if (obs_.enqueued != nullptr) obs_.closed_rejects->add();
    return EnqueueResult::Closed;
  }
  EnqueueResult result = EnqueueResult::Enqueued;
  if (buffer_.full()) {
    if (policy_ == BackpressurePolicy::Coalesce) {
      // Newest-first scan: under overload the freshest queued sample of
      // this tag is the one worth replacing.
      const std::uint64_t user = read.epc.user_id();
      const std::uint32_t tag = read.epc.tag_id();
      for (std::size_t i = buffer_.size(); i-- > 0;) {
        Slot& slot = buffer_[i];
        if (slot.read.epc.user_id() == user &&
            slot.read.epc.tag_id() == tag &&
            slot.read.antenna_id == read.antenna_id) {
          slot.read = read;
          slot.enqueued_at = now_s;
          ++counters_.coalesced;
          ++counters_.enqueued;
          if (obs_.enqueued != nullptr) {
            obs_.coalesced->add();
            obs_.enqueued->add();
          }
          return EnqueueResult::Coalesced;
        }
      }
    }
    // DropOldest, or Coalesce with no same-tag entry queued.
    buffer_.pop_front();
    ++counters_.shed_oldest;
    if (obs_.enqueued != nullptr) obs_.shed->add();
    result = EnqueueResult::DroppedOldest;
  }
  buffer_.push(Slot{read, now_s});
  ++counters_.enqueued;
  counters_.peak_depth = std::max(counters_.peak_depth, buffer_.size());
  if (obs_.enqueued != nullptr) {
    obs_.enqueued->add();
    obs_.depth->set(static_cast<double>(buffer_.size()));
  }
  return result;
}

EnqueueResult IngestQueue::push(const TagRead& read, double now_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (policy_ == BackpressurePolicy::Block && buffer_.full() && !closed_) {
    ++counters_.blocked_pushes;
    if (obs_.enqueued != nullptr) obs_.blocked->add();
    room_.wait(lock, [this] { return !buffer_.full() || closed_; });
  }
  return push_locked(read, now_s);
}

EnqueueResult IngestQueue::try_push(const TagRead& read, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (policy_ == BackpressurePolicy::Block && buffer_.full() && !closed_) {
    ++counters_.would_block;
    if (obs_.enqueued != nullptr) obs_.would_block->add();
    return EnqueueResult::WouldBlock;
  }
  return push_locked(read, now_s);
}

std::size_t IngestQueue::drain(std::vector<TagRead>& out, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = buffer_.size();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    Slot slot = buffer_.pop_front();
    const double delay_s = std::max(0.0, now_s - slot.enqueued_at);
    counters_.queue_delay.record(delay_s);
    if (obs_.enqueued != nullptr) obs_.delay->observe(delay_s);
    out.push_back(std::move(slot.read));
  }
  counters_.drained += n;
  if (obs_.enqueued != nullptr) {
    obs_.drained->add(n);
    obs_.depth->set(0.0);
  }
  if (n > 0) room_.notify_all();
  return n;
}

void IngestQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  room_.notify_all();
}

std::size_t IngestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.size();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

IngestQueueCounters IngestQueue::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void IngestQueue::bind_observability(obs::Observability& hub) {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsRegistry& m = hub.metrics();
  // `enqueued` doubles as the is-bound flag, so it is assigned last.
  obs_.shed = &m.counter("ingest_queue_shed_total");
  obs_.coalesced = &m.counter("ingest_queue_coalesced_total");
  obs_.would_block = &m.counter("ingest_queue_would_block_total");
  obs_.blocked = &m.counter("ingest_queue_blocked_pushes_total");
  obs_.closed_rejects = &m.counter("ingest_queue_closed_rejects_total");
  obs_.drained = &m.counter("ingest_queue_drained_total");
  obs_.depth = &m.gauge("ingest_queue_depth");
  obs_.delay =
      &m.histogram("ingest_queue_delay_seconds", obs::default_latency_bounds());
  obs_.enqueued = &m.counter("ingest_queue_enqueued_total");
}

// ---------------------------------------------------------------------------
// ReadValidator

ReadValidator::ReadValidator(IngestConfig config)
    : config_(std::move(config)),
      last_admitted_s_(-std::numeric_limits<double>::infinity()) {
  config_.validate();
  std::sort(config_.monitored_users.begin(), config_.monitored_users.end());
}

ReadValidator::Verdict ReadValidator::quarantine(QuarantineReason reason) {
  ++counters_.quarantined_total;
  ++counters_.quarantined[static_cast<std::size_t>(reason)];
  if (obs_.admitted != nullptr)
    obs_.quarantined[static_cast<std::size_t>(reason)]->add();
  return Verdict{false, false, reason};
}

void ReadValidator::touch_user(std::uint64_t user_id) {
  if (auto* pos = lru_index_.find(user_id)) {
    lru_order_.splice(lru_order_.end(), lru_order_, *pos);
    return;
  }
  lru_index_[user_id] = lru_order_.insert(lru_order_.end(), user_id);
  if (config_.max_users == 0 || lru_index_.size() <= config_.max_users)
    return;
  const std::uint64_t victim = lru_order_.front();
  lru_order_.pop_front();
  lru_index_.erase(victim);
  // Release the victim's per-stream state too, or the streams_ map
  // would keep growing across eviction churn.
  streams_.erase_if([victim](const LruKey& key, const StreamState&) {
    return key.user_id == victim;
  });
  pending_evictions_.push_back(victim);
  ++counters_.users_evicted;
  if (obs_.admitted != nullptr) obs_.users_evicted->add();
}

std::vector<std::uint64_t> ReadValidator::take_evicted_users() {
  std::vector<std::uint64_t> out;
  out.swap(pending_evictions_);
  return out;
}

void ReadValidator::bind_observability(obs::Observability& hub) {
  obs::MetricsRegistry& m = hub.metrics();
  // `admitted` doubles as the is-bound flag, so it is assigned last.
  obs_.repaired = &m.counter("ingest_repaired_timestamps_total");
  for (std::size_t i = 0; i < kQuarantineReasonCount; ++i) {
    obs_.quarantined[i] =
        &m.counter("ingest_quarantined_total", "reason",
                   quarantine_reason_name(static_cast<QuarantineReason>(i)));
  }
  obs_.users_evicted = &m.counter("ingest_users_evicted_total");
  obs_.tracked_users = &m.gauge("ingest_tracked_users");
  obs_.tracked_users->set(static_cast<double>(lru_index_.size()));
  obs_.admitted = &m.counter("ingest_admitted_total");
}

ReadValidator::Verdict ReadValidator::admit(TagRead& read) {
  if (!read_is_finite(read)) return quarantine(QuarantineReason::NonFiniteField);

  const std::uint64_t user = read.epc.user_id();
  const std::uint32_t tag = read.epc.tag_id();
  // Monitoring EPCs are written as nonzero user + nonzero tag (Fig. 9);
  // an all-zero field means the decode is not one of ours.
  if (user == 0 || tag == 0) return quarantine(QuarantineReason::MalformedEpc);
  if (!config_.monitored_users.empty() &&
      !std::binary_search(config_.monitored_users.begin(),
                          config_.monitored_users.end(), user))
    return quarantine(QuarantineReason::UnknownUser);

  // Timestamp discipline: the pipeline needs a non-decreasing stream.
  // Small regressions (reorder jitter, reader clock steps) are clamped
  // to the admission frontier; large ones are rejected outright.
  bool repaired = false;
  if (read.time_s < last_admitted_s_) {
    if (last_admitted_s_ - read.time_s > config_.repair_skew_s)
      return quarantine(QuarantineReason::TimestampRegression);
    read.time_s = last_admitted_s_;
    repaired = true;
  }

  const LruKey key{user, tag, read.antenna_id};
  const StreamState* stream = streams_.find(key);
  if (stream != nullptr &&
      std::abs(read.time_s - stream->last_time_s) <=
          config_.duplicate_window_s &&
      read.phase_rad == stream->last_phase_rad)
    return quarantine(QuarantineReason::DuplicateRead);

  streams_[key] = StreamState{read.time_s, read.phase_rad};
  last_admitted_s_ = read.time_s;
  touch_user(user);
  ++counters_.admitted;
  if (repaired) ++counters_.repaired_timestamps;
  if (obs_.admitted != nullptr) {
    obs_.admitted->add();
    if (repaired) obs_.repaired->add();
    obs_.tracked_users->set(static_cast<double>(lru_index_.size()));
  }
  return Verdict{true, repaired, QuarantineReason::MalformedEpc};
}

ValidatorState ReadValidator::export_state() const {
  ValidatorState state;
  state.any_admitted = std::isfinite(last_admitted_s_);
  state.last_admitted_s = state.any_admitted ? last_admitted_s_ : 0.0;
  state.streams.reserve(streams_.size());
  // Ordered walk: the snapshot image must not depend on table layout.
  streams_.for_each_ordered([&state](const LruKey& key,
                                     const StreamState& stream) {
    state.streams.push_back(ValidatorState::Stream{
        key.user_id, key.tag_id, key.antenna_id, stream.last_time_s,
        stream.last_phase_rad});
  });
  state.lru_order.assign(lru_order_.begin(), lru_order_.end());
  return state;
}

void ReadValidator::import_state(const ValidatorState& state) {
  last_admitted_s_ = state.any_admitted
                         ? state.last_admitted_s
                         : -std::numeric_limits<double>::infinity();
  streams_.clear();
  for (const ValidatorState::Stream& s : state.streams) {
    streams_[LruKey{s.user_id, s.tag_id, s.antenna_id}] =
        StreamState{s.last_time_s, s.last_phase_rad};
  }
  lru_order_.clear();
  lru_index_.clear();
  for (const std::uint64_t user : state.lru_order)
    lru_index_[user] = lru_order_.insert(lru_order_.end(), user);
  pending_evictions_.clear();
}

// ---------------------------------------------------------------------------
// IngestFrontEnd

IngestFrontEnd::IngestFrontEnd(IngestConfig config, RealtimePipeline& pipeline)
    : queue_(config.queue_capacity, config.policy),
      validator_(config),  // ReadValidator runs config.validate()
      pipeline_(pipeline) {}

EnqueueResult IngestFrontEnd::offer(const TagRead& read, double now_s) {
  return queue_.try_push(read, now_s);
}

void IngestFrontEnd::bind_observability(obs::Observability& hub) {
  queue_.bind_observability(hub);
  validator_.bind_observability(hub);
}

std::size_t IngestFrontEnd::pump(double now_s) {
  scratch_.clear();
  queue_.drain(scratch_, now_s);
  std::size_t admitted = 0;
  for (TagRead& read : scratch_) {
    if (validator_.admit(read).admitted) {
      if (tap_) tap_(read);
      pipeline_.push(read);
      ++admitted;
    }
  }
  for (const std::uint64_t user : validator_.take_evicted_users())
    pipeline_.forget_user(user);
  pipeline_.advance_to(now_s);
  return admitted;
}

}  // namespace tagbreathe::core
