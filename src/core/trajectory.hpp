// Rate trajectory: breathing rate as a function of time.
//
// The trial runner reports one rate per window, but real subjects change
// rate (the intro's "alternating between fast and slow"). This helper
// slides the full BreathMonitor analysis across a recording and returns
// the per-window rate series — the batch counterpart of the realtime
// pipeline's RateUpdate stream, convenient for offline captures.
#pragma once

#include <span>
#include <vector>

#include "core/monitor.hpp"

namespace tagbreathe::core {

struct TrajectoryConfig {
  MonitorConfig monitor{};
  /// Analysis window length [s]. Must exceed a couple of breaths at the
  /// slowest expected rate.
  double window_s = 30.0;
  /// Window advance [s].
  double hop_s = 5.0;
};

struct RatePointAt {
  double time_s = 0.0;  // window centre
  double rate_bpm = 0.0;
  bool reliable = false;
};

struct RateTrajectory {
  std::uint64_t user_id = 0;
  std::vector<RatePointAt> points;

  /// Linear interpolation of the reliable points at time t; 0 when no
  /// reliable point exists.
  double rate_at(double t) const noexcept;
};

/// Computes one trajectory per user present in the reads.
std::vector<RateTrajectory> compute_rate_trajectories(
    std::span<const TagRead> reads, const TrajectoryConfig& config = {});

}  // namespace tagbreathe::core
