// Versioned pipeline snapshots: periodic checksummed serialization of
// the whole analysis state (RealtimePipeline + StreamDemux window +
// ReadValidator), written atomically so a crash at any instant leaves
// either the previous snapshot or the new one — never a half-written
// hybrid that parses.
//
// On-disk format (all integers little-endian):
//
//   8 B  magic "TBSNAP01"
//   u32  format version (kSnapshotFormatVersion)
//   u64  last journal sequence number the snapshot covers
//   f64  pipeline stream clock at capture
//   u32  section count
//   u32  CRC-32 of the 24 bytes above (version .. section count)
//   per section:
//     u32  section id (SnapshotSection)
//     u32  payload length
//     u32  CRC-32 of the payload
//     payload
//
// Write discipline: encode fully in memory, write to
// `<name>.tbs.tmp`, fsync, rename() into place, fsync the directory.
// Retention keeps the newest `keep` snapshots. The loader walks
// newest-first and falls back: a snapshot with a bad magic, an unknown
// format version, or any section CRC mismatch is rejected with a
// recorded reason and the next-older file is tried — corruption costs
// recency, never availability.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ingest.hpp"
#include "core/journal.hpp"
#include "core/metrics.hpp"
#include "core/pipeline.hpp"

namespace tagbreathe::core {

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

enum class SnapshotSection : std::uint32_t {
  Pipeline = 1,   // clock, event state machine, dirty-window bookkeeping
  Demux = 2,      // buffered read window per (user, tag, antenna)
  Validator = 3,  // admission frontier, duplicate windows, LRU order
};

/// One decoded snapshot: everything recovery needs to resume.
struct SnapshotData {
  std::uint64_t last_journal_seq = 0;
  double now_s = 0.0;
  PipelineState pipeline;
  ValidatorState validator;
};

struct SnapshotConfig {
  /// Directory holding the snapshot files (created if missing).
  std::string directory;
  /// Newest snapshots kept on disk (>= 2 so a corrupt newest can fall
  /// back to a good predecessor).
  std::size_t keep = 2;
  /// fsync the temp file before rename and the directory after. Off is
  /// only for benchmarks; recovery guarantees assume on.
  bool fsync = true;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Write side. Same wedge discipline as JournalWriter: any mid-write
/// failure (I/O or injected crash) permanently disables the writer so
/// a torn temp file is never finished by a code path the real crash
/// would have killed.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(SnapshotConfig config,
                          const DurabilityHooks* hooks = nullptr);

  /// Serializes, writes atomically, prunes old snapshots. Returns the
  /// final path. Throws DurabilityError on I/O failure.
  std::string write(const SnapshotData& data);

  bool wedged() const noexcept { return wedged_; }
  const DurabilityCounters& counters() const noexcept { return counters_; }

 private:
  SnapshotConfig config_;
  const DurabilityHooks* hooks_;
  std::uint64_t next_ordinal_ = 1;
  bool wedged_ = false;
  DurabilityCounters counters_;
};

/// Newest-first snapshot load with fallback.
struct SnapshotLoadReport {
  std::optional<SnapshotData> data;
  std::string loaded_file;  // empty when nothing valid was found
  /// "file: reason" for every newer snapshot that was rejected.
  std::vector<std::string> rejected;
  DurabilityCounters counters;
};

/// Scans `directory` for snapshot files, newest first; returns the
/// first one that passes magic, version and every section CRC. A
/// missing directory loads as empty. Never throws on file content.
SnapshotLoadReport load_newest_snapshot(const std::string& directory);

/// Byte-level codec, exposed for tests (format-evolution coverage
/// crafts snapshots with mismatched versions / CRCs from these).
std::vector<std::uint8_t> encode_snapshot(const SnapshotData& data);
/// Throws DurabilityError with a precise reason on any integrity
/// failure (magic, version, header CRC, section CRC, truncation).
SnapshotData decode_snapshot(const std::uint8_t* bytes, std::size_t size);

}  // namespace tagbreathe::core
