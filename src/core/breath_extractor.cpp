#include "core/breath_extractor.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"
#include "signal/filters.hpp"
#include "signal/fir.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe::core {

const char* filter_kind_name(FilterKind kind) noexcept {
  switch (kind) {
    case FilterKind::FftLowpass: return "fft-lowpass";
    case FilterKind::FirLowpass: return "fir-lowpass";
  }
  return "?";
}

std::vector<double> BreathSignal::values() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.value);
  return out;
}

std::vector<double> BreathSignal::times() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.time_s);
  return out;
}

BreathExtractor::BreathExtractor(ExtractorConfig config) : config_(config) {
  if (config_.cutoff_hz <= 0.0)
    throw std::invalid_argument("BreathExtractor: cutoff must be positive");
  if (config_.low_cut_hz < 0.0 || config_.low_cut_hz >= config_.cutoff_hz)
    throw std::invalid_argument(
        "BreathExtractor: low cut must be in [0, cutoff)");
}

BreathSignal BreathExtractor::extract(
    std::span<const signal::TimedSample> track, double sample_rate_hz,
    signal::FftWorkspace* workspace) const {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("BreathExtractor: bad sample rate");

  BreathSignal out;
  out.sample_rate_hz = sample_rate_hz;
  if (track.size() < 4) return out;

  signal::FftWorkspace local_ws;
  signal::FftWorkspace& ws = workspace != nullptr ? *workspace : local_ws;

  std::vector<double> values;
  values.reserve(track.size());
  for (const auto& s : track) values.push_back(s.value);

  if (config_.detrend) signal::detrend_linear(values);

  // Effective pass band: the configured [low_cut, cutoff], optionally
  // narrowed around the located spectral peak.
  double band_lo = config_.low_cut_hz;
  double band_hi = config_.cutoff_hz;
  if (config_.adaptive_band) {
    const double floor_hz =
        std::max(config_.low_cut_hz, config_.peak_search_floor_hz);
    // Seed the band from the autocorrelation fundamental of the
    // coarse-low-passed track: the ACF pools the fundamental and its
    // harmonics at the true period and tolerates the track's mixed
    // white + random-walk noise far better than spectral peak-picking.
    std::vector<double> coarse;
    signal::fft_lowpass_into(values, sample_rate_hz, config_.cutoff_hz,
                             /*remove_dc=*/true, ws, coarse);
    const double f0 = signal::autocorrelation_fundamental(
        coarse, sample_rate_hz, floor_hz, config_.cutoff_hz);
    if (f0 > 0.0) {
      band_lo = std::max(band_lo, config_.adaptive_lo_frac * f0);
      band_hi = std::min(band_hi, config_.adaptive_hi_frac * f0);
      if (band_hi <= band_lo) {  // degenerate: fall back to full band
        band_lo = config_.low_cut_hz;
        band_hi = config_.cutoff_hz;
      }
    }
  }

  std::vector<double> filtered;
  switch (config_.filter) {
    case FilterKind::FftLowpass: {
      if (band_lo > 0.0) {
        signal::fft_bandpass_into(values, sample_rate_hz, band_lo, band_hi,
                                  ws, filtered);
      } else {
        signal::fft_lowpass_into(values, sample_rate_hz, band_hi,
                                 /*remove_dc=*/true, ws, filtered);
      }
      break;
    }
    case FilterKind::FirLowpass: {
      // Nyquist guard: with very slow fused streams the requested cutoff
      // may not fit; clamp into the valid design range.
      const double nyquist = sample_rate_hz / 2.0;
      const double cutoff = std::min(band_hi, 0.9 * nyquist);
      std::size_t taps =
          signal::suggest_num_taps(config_.fir_transition_hz, sample_rate_hz);
      // Keep the kernel shorter than the window (filtfilt needs room).
      const std::size_t max_taps =
          track.size() % 2 == 0 ? track.size() - 1 : track.size();
      if (taps > max_taps) taps = max_taps % 2 == 0 ? max_taps - 1 : max_taps;
      if (taps < 3) return out;
      const auto kernel =
          band_lo > 0.0
              ? signal::design_bandpass(band_lo, cutoff, sample_rate_hz, taps)
              : signal::design_lowpass(cutoff, sample_rate_hz, taps);
      filtered = signal::filtfilt(values, kernel);
      // The FIR band-pass does not remove DC exactly when low_cut = 0;
      // subtract the mean for a symmetric zero-crossing signal.
      common::remove_mean(filtered);
      break;
    }
  }

  out.samples.reserve(track.size());
  for (std::size_t i = 0; i < track.size(); ++i)
    out.samples.push_back(signal::TimedSample{track[i].time_s, filtered[i]});
  return out;
}

}  // namespace tagbreathe::core
