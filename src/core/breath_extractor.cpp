#include "core/breath_extractor.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"
#include "signal/filters.hpp"
#include "signal/fir.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe::core {

const char* filter_kind_name(FilterKind kind) noexcept {
  switch (kind) {
    case FilterKind::FftLowpass: return "fft-lowpass";
    case FilterKind::FirLowpass: return "fir-lowpass";
  }
  return "?";
}

std::vector<double> BreathSignal::values() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.value);
  return out;
}

std::vector<double> BreathSignal::times() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.time_s);
  return out;
}

BreathExtractor::BreathExtractor(ExtractorConfig config) : config_(config) {
  if (config_.cutoff_hz <= 0.0)
    throw std::invalid_argument("BreathExtractor: cutoff must be positive");
  if (config_.low_cut_hz < 0.0 || config_.low_cut_hz >= config_.cutoff_hz)
    throw std::invalid_argument(
        "BreathExtractor: low cut must be in [0, cutoff)");
}

BreathSignal BreathExtractor::extract(
    std::span<const signal::TimedSample> track, double sample_rate_hz,
    signal::FftWorkspace* workspace) const {
  BreathSignal out;
  signal::FftWorkspace local_ws;
  signal::FftWorkspace& ws = workspace != nullptr ? *workspace : local_ws;
  ExtractScratch scratch;  // staging is throwaway; the plans in `ws` stay warm
  const ExtractJob job{track, sample_rate_hz, &out};
  extract_many({&job, 1}, ws, scratch);
  return out;
}

void BreathExtractor::extract_many(std::span<const ExtractJob> jobs,
                                   signal::FftWorkspace& ws,
                                   ExtractScratch& scratch) const {
  const std::size_t count = jobs.size();
  if (count == 0) return;
  for (const ExtractJob& job : jobs) {
    if (job.sample_rate_hz <= 0.0)
      throw std::invalid_argument("BreathExtractor: bad sample rate");
  }

  // High-water staging (outer arrays never shrink; inner buffers keep
  // their capacity across assigns).
  if (scratch.values.size() < count) {
    scratch.values.resize(count);
    scratch.coarse.resize(count);
    scratch.filtered.resize(count);
  }
  scratch.band_lo.assign(count, config_.low_cut_hz);
  scratch.band_hi.assign(count, config_.cutoff_hz);
  scratch.active.assign(count, 1);

  // Stage 1 (per job): condition the track values.
  for (std::size_t j = 0; j < count; ++j) {
    const ExtractJob& job = jobs[j];
    BreathSignal& out = *job.out;
    out.samples.clear();
    out.sample_rate_hz = job.sample_rate_hz;
    if (job.track.size() < 4) {
      scratch.active[j] = 0;
      continue;
    }
    std::vector<double>& values = scratch.values[j];
    values.resize(job.track.size());
    for (std::size_t i = 0; i < job.track.size(); ++i)
      values[i] = job.track[i].value;
    if (config_.detrend) signal::detrend_linear(values);
  }

  // Stage 2: effective pass band — the configured [low_cut, cutoff],
  // optionally narrowed around the located spectral peak. The coarse
  // low-pass that feeds the peak search runs as ONE batched transform
  // sweep; the ACF peak search stays per job.
  if (config_.adaptive_band) {
    scratch.filter_jobs.clear();
    for (std::size_t j = 0; j < count; ++j) {
      if (scratch.active[j] == 0) continue;
      scratch.filter_jobs.push_back(signal::BandLimitJob{
          scratch.values[j], jobs[j].sample_rate_hz, signal::kDcRejectHz,
          config_.cutoff_hz, &scratch.coarse[j]});
    }
    signal::fft_bandlimit_many(scratch.filter_jobs, ws);

    const double floor_hz =
        std::max(config_.low_cut_hz, config_.peak_search_floor_hz);
    for (std::size_t j = 0; j < count; ++j) {
      if (scratch.active[j] == 0) continue;
      // Seed the band from the autocorrelation fundamental of the
      // coarse-low-passed track: the ACF pools the fundamental and its
      // harmonics at the true period and tolerates the track's mixed
      // white + random-walk noise far better than spectral peak-picking.
      const double f0 = signal::autocorrelation_fundamental(
          scratch.coarse[j], jobs[j].sample_rate_hz, floor_hz,
          config_.cutoff_hz);
      if (f0 > 0.0) {
        double lo = std::max(scratch.band_lo[j], config_.adaptive_lo_frac * f0);
        double hi = std::min(scratch.band_hi[j], config_.adaptive_hi_frac * f0);
        if (hi <= lo) {  // degenerate: fall back to full band
          lo = config_.low_cut_hz;
          hi = config_.cutoff_hz;
        }
        scratch.band_lo[j] = lo;
        scratch.band_hi[j] = hi;
      }
    }
  }

  // Stage 3: the main filter.
  switch (config_.filter) {
    case FilterKind::FftLowpass: {
      // One batched band-limit sweep; a zero low cut becomes the DC
      // reject exactly as fft_lowpass_into(remove_dc=true) would.
      scratch.filter_jobs.clear();
      for (std::size_t j = 0; j < count; ++j) {
        if (scratch.active[j] == 0) continue;
        const double f_lo = scratch.band_lo[j] > 0.0 ? scratch.band_lo[j]
                                                     : signal::kDcRejectHz;
        scratch.filter_jobs.push_back(signal::BandLimitJob{
            scratch.values[j], jobs[j].sample_rate_hz, f_lo,
            scratch.band_hi[j], &scratch.filtered[j]});
      }
      signal::fft_bandlimit_many(scratch.filter_jobs, ws);
      break;
    }
    case FilterKind::FirLowpass: {
      for (std::size_t j = 0; j < count; ++j) {
        if (scratch.active[j] == 0) continue;
        const ExtractJob& job = jobs[j];
        // Nyquist guard: with very slow fused streams the requested
        // cutoff may not fit; clamp into the valid design range.
        const double nyquist = job.sample_rate_hz / 2.0;
        const double cutoff = std::min(scratch.band_hi[j], 0.9 * nyquist);
        std::size_t taps = signal::suggest_num_taps(config_.fir_transition_hz,
                                                    job.sample_rate_hz);
        // Keep the kernel shorter than the window (filtfilt needs room).
        const std::size_t max_taps =
            job.track.size() % 2 == 0 ? job.track.size() - 1
                                      : job.track.size();
        if (taps > max_taps)
          taps = max_taps % 2 == 0 ? max_taps - 1 : max_taps;
        if (taps < 3) {
          scratch.active[j] = 0;  // too short: empty signal, like single
          continue;
        }
        const auto kernel =
            scratch.band_lo[j] > 0.0
                ? signal::design_bandpass(scratch.band_lo[j], cutoff,
                                          job.sample_rate_hz, taps)
                : signal::design_lowpass(cutoff, job.sample_rate_hz, taps);
        scratch.filtered[j] = signal::filtfilt(scratch.values[j], kernel);
        // The FIR band-pass does not remove DC exactly when low_cut = 0;
        // subtract the mean for a symmetric zero-crossing signal.
        common::remove_mean(scratch.filtered[j]);
      }
      break;
    }
  }

  // Stage 4 (per job): emit the filtered samples on the track's grid.
  for (std::size_t j = 0; j < count; ++j) {
    if (scratch.active[j] == 0) continue;
    const ExtractJob& job = jobs[j];
    BreathSignal& out = *job.out;
    const std::vector<double>& filtered = scratch.filtered[j];
    out.samples.reserve(job.track.size());
    for (std::size_t i = 0; i < job.track.size(); ++i)
      out.samples.push_back(
          signal::TimedSample{job.track[i].time_s, filtered[i]});
  }
}

}  // namespace tagbreathe::core
