// Crash recovery: glues the journal (core/journal) and snapshots
// (core/snapshot) to the live ingest + analysis path.
//
// DurableMonitor owns the full durable pipeline. Construction IS
// recovery: load the newest valid snapshot, restore pipeline +
// validator state from it, replay the journal tail (records with
// sequence numbers beyond the snapshot) through the normal
// admission/ingest path, then resume journaling new reads at the next
// sequence number. A cold start (empty directory) degenerates to an
// ordinary monitor. Recovery never throws on corrupt *content* —
// torn tails, bit flips and bad snapshots are skipped and counted —
// only on unusable configuration or I/O errors (unwritable dir).
//
// Semantics are at-least-once: the snapshot marks a prefix of the
// journal as applied, everything after it is replayed, and reads that
// were admitted but never group-committed are lost with the crash
// (bounded by commit_batch / commit_interval_s). Replay re-emits
// pipeline events for the replayed window; downstream consumers see
// the same events twice across a crash, never a gap in state.
//
// run_crash_soak() is the deterministic crash-injection harness: one
// golden (uninterrupted) run and one run killed at a seeded
// CrashPoint mid-I/O, recovered, and driven to completion on the same
// read stream. The two event streams must converge once the sliding
// analysis window refills past the crash.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "core/ingest.hpp"
#include "core/journal.hpp"
#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "core/snapshot.hpp"

namespace tagbreathe::core {

struct DurabilityConfig {
  /// Root directory; the journal lives in `<directory>/journal`, the
  /// snapshots in `<directory>/snapshots`, unless the sub-configs name
  /// their own directories explicitly.
  std::string directory;
  JournalConfig journal{};
  SnapshotConfig snapshot{};
  /// Stream-time cadence between snapshots (each snapshot also prunes
  /// journal segments the snapshot has made redundant).
  double snapshot_period_s = 30.0;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;

  /// Sub-configs with directory defaults applied.
  JournalConfig resolved_journal() const;
  SnapshotConfig resolved_snapshot() const;
};

/// What recovery found and did, for logs and assertions.
struct RecoveryReport {
  bool snapshot_loaded = false;
  std::string snapshot_file;        // empty on cold start
  std::uint64_t snapshot_seq = 0;   // journal prefix the snapshot covers
  /// "file: reason" for newer snapshots rejected before the loaded one.
  std::vector<std::string> snapshots_rejected;
  std::uint64_t replayed_reads = 0;       // journal records re-admitted
  std::uint64_t replay_quarantined = 0;   // replayed but rejected by admission
  std::uint64_t corrupt_records_skipped = 0;
  std::uint64_t truncated_tails = 0;
  double resume_time_s = 0.0;  // pipeline stream clock after recovery
};

/// A RealtimePipeline + IngestFrontEnd wrapped in the durability
/// layer. Same offer/pump surface as IngestFrontEnd, plus journaling
/// of every admitted read and periodic snapshots.
class DurableMonitor {
 public:
  /// Performs recovery (see file comment). `hooks` threads the
  /// crash-injection kill points into the journal and snapshot
  /// writers; pass nullptr outside the harness. The hooks object must
  /// outlive the monitor.
  DurableMonitor(DurabilityConfig durability, IngestConfig ingest,
                 PipelineConfig pipeline,
                 RealtimePipeline::EventCallback callback,
                 const DurabilityHooks* hooks = nullptr);

  DurableMonitor(const DurableMonitor&) = delete;
  DurableMonitor& operator=(const DurableMonitor&) = delete;

  /// Producer side: thread-safe, never blocks (same as
  /// IngestFrontEnd::offer).
  EnqueueResult offer(const TagRead& read, double now_s);

  /// Analysis tick: drains the queue, journals + admits reads, runs
  /// the pipeline, group-commits on interval and snapshots on cadence.
  /// Returns the number of reads admitted.
  std::size_t pump(double now_s);

  /// Commits any buffered journal tail (graceful-shutdown aid; the
  /// destructor also does this best-effort).
  void flush();

  /// Commit + snapshot + prune right now, off-cadence.
  void checkpoint();

  /// True only while the constructor is replaying the journal —
  /// event callbacks can use it to tag re-emitted events.
  bool recovering() const noexcept { return recovering_; }

  const RecoveryReport& recovery() const noexcept { return recovery_; }
  RealtimePipeline& pipeline() noexcept { return pipeline_; }
  const RealtimePipeline& pipeline() const noexcept { return pipeline_; }
  IngestFrontEnd& frontend() noexcept { return frontend_; }
  const IngestFrontEnd& frontend() const noexcept { return frontend_; }

  /// Journal + snapshot + recovery counters, merged.
  DurabilityCounters counters() const;

  /// Registers durability_* counters on `hub` and forwards the bind to
  /// the wrapped pipeline and front-end. The DurabilityCounters structs
  /// stay the source of truth (counters() is unchanged); the registry
  /// mirrors them via Counter::set at every pump/flush/checkpoint.
  void bind_observability(obs::Observability& hub);

 private:
  void replay_journal(std::uint64_t after_seq, const DurabilityHooks* hooks);
  void publish_counters();

  DurabilityConfig config_;
  RealtimePipeline pipeline_;
  IngestFrontEnd frontend_;
  std::unique_ptr<JournalWriter> journal_;
  std::unique_ptr<SnapshotWriter> snapshot_;
  RecoveryReport recovery_;
  DurabilityCounters recovery_counters_;
  double next_snapshot_s_;
  bool recovering_ = false;

  // Null until bind_observability; `records_appended` is the sentinel.
  // One mirror per DurabilityCounters field, same order.
  struct Instruments {
    obs::Counter* records_appended = nullptr;
    obs::Counter* commits = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* segments_created = nullptr;
    obs::Counter* segments_pruned = nullptr;
    obs::Counter* replay_records = nullptr;
    obs::Counter* replay_quarantined = nullptr;
    obs::Counter* records_corrupt = nullptr;
    obs::Counter* truncated_tails = nullptr;
    obs::Counter* segments_scanned = nullptr;
    obs::Counter* segments_rejected = nullptr;
    obs::Counter* snapshots_written = nullptr;
    obs::Counter* snapshot_bytes = nullptr;
    obs::Counter* snapshots_pruned = nullptr;
    obs::Counter* snapshots_loaded = nullptr;
    obs::Counter* snapshots_rejected = nullptr;
  } obs_;
};

// ---------------------------------------------------------------------------
// Crash-injection harness

struct CrashSoakConfig {
  /// Population + drive parameters. chaos defaults to all-off: the
  /// crash harness compares a golden and a recovered run, and a clean
  /// feed keeps the comparison exact (chaos is still applied
  /// deterministically to both runs when enabled).
  SoakConfig soak{};
  DurabilityConfig durability{};
  /// Which seeded kill point to arm, and the earliest stream time at
  /// which it may fire.
  CrashPoint point = CrashPoint::MidJournalAppend;
  double crash_after_s = 60.0;
  /// Convergence slack past the analysis-window refill: recovered
  /// events are compared to golden events from
  /// crash time + window_s + converge_margin_s onward.
  double converge_margin_s = 15.0;

  void validate() const;
};

struct CrashSoakReport {
  bool crashed = false;    // the armed kill point actually fired
  bool recovered = false;  // the post-crash monitor constructed cleanly
  double crash_time_s = 0.0;
  RecoveryReport recovery;
  std::size_t golden_events = 0;
  std::size_t recovered_run_events = 0;
  /// Events inside the convergence window (per run; equal when ok).
  std::size_t compared_events = 0;
  std::vector<std::string> violations;
  DurabilityCounters counters;  // both lives of the crashed run, merged

  bool ok() const noexcept { return violations.empty(); }
};

/// Golden run vs crash-at-kill-point-then-recover run over the same
/// deterministic read stream; asserts the recovered event stream
/// converges with the golden one. Never lets SimulatedCrash escape.
CrashSoakReport run_crash_soak(const CrashSoakConfig& config);

/// run_soak's scenario driven through a DurableMonitor instead of a
/// bare front-end: same chaos, same invariants, plus journaling and
/// snapshotting overhead and their counters in the report.
SoakReport run_durable_soak(const SoakConfig& config,
                            const DurabilityConfig& durability);

}  // namespace tagbreathe::core
