// Phase preprocessing: raw phase reports -> displacement deltas
// (Sec. IV-A.3, Eqs. 3-4).
//
// Raw phase is discontinuous at every channel hop (different λ and offset
// c per channel, Fig. 4), so displacement is computed from consecutive
// readings *in the same channel*:
//
//     Δd_{i+1} = λ/(4π) · wrap(θ_{i+1} − θ_i)          (Eq. 3)
//
// The wrap to (−π, π] is safe because body motion between consecutive
// readings is far below λ/4 at the reader's sampling rates. Integrating
// the deltas (Eq. 4) yields a hop-free displacement track (Fig. 6).
//
// Robustness guards beyond the paper's formula:
//   - a delta spanning more than `max_same_channel_gap_s` is dropped
//     (after a long dropout the λ/4 assumption can fail and the noise of
//     one delta doubles);
//   - deltas implying a speed above `max_speed_mps` are rejected as
//     outliers (multipath flicker produces occasional wild phases).
//
// Layout: per-channel state is structure-of-arrays (flat time/phase
// arrays indexed by channel, epoch-stamped for O(1) reset), and the
// batch path stages candidate pairs into flat arrays so the Eq. 3
// wrap + scale runs through the dispatched SIMD kernel
// (signal/simd/kernels.hpp). The streaming push() routes the same
// kernel with n = 1, so batch and streaming deltas are bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "signal/interpolate.hpp"

namespace tagbreathe::core {

struct PreprocessConfig {
  /// Longest same-channel gap still differenced. "Consecutive readings in
  /// the same frequency channel" means *within one dwell* (~0.2 s):
  /// within-dwell deltas telescope across back-to-back dwells into the
  /// physical displacement. Linking across channel *revisits* (~2 s apart
  /// on the paper plan) must be avoided — it would sum ten stale
  /// sample-and-hold copies of the displacement, acting as a ~2 s comb
  /// filter that distorts faster breathing.
  double max_same_channel_gap_s = 0.3;
  /// Slow-stream fallback: when contention starves a tag to ~1 read per
  /// dwell (Figs. 13-14), within-dwell pairs vanish, so deltas across one
  /// channel *revisit* are accepted instead. A revisit-linked chain holds
  /// each channel's contribution stale for up to the revisit period
  /// (~2 s), which is acceptable at the slow default breathing rates that
  /// dominate contended deployments but would alias fast breathing —
  /// hence the rate-based switch, not a single large gap.
  double fallback_gap_s = 2.5;
  /// Streams reading at or above this rate use the strict within-dwell
  /// gap; slower streams use the fallback. ~8 Hz gives >= 1.6 reads per
  /// dwell, enough for within-dwell pairs to carry the track. The switch
  /// carries +-25% hysteresis so streams near the threshold don't
  /// flicker between modes (mixing crisp and stale chains distorts the
  /// track).
  double fast_stream_hz = 8.0;
  /// Enables the rate-adaptive gap switch.
  bool adaptive_gap = true;
  /// Reject deltas implying faster radial motion than this. Breathing
  /// wall speed is < 0.05 m/s; 0.5 m/s tolerates posture shifts while
  /// killing phase outliers.
  double max_speed_mps = 0.5;
  /// Despike gate: reject deltas with |Δd| > spike_floor_m +
  /// spike_speed_mps * dt. Chest-wall peak velocity is A·2πf — under
  /// 0.05 m/s even for deep fast breathing — so a legitimate pair can
  /// only move speed*dt plus phase-noise jitter (the floor). A phase
  /// word corrupted in transit (bit flip above the low bits) jumps the
  /// apparent displacement 0.5-8 cm in one step, which sails under the
  /// coarse max_speed_mps gate whenever dt is not tiny but cannot pass
  /// this physical budget. spike_floor_m <= 0 disables.
  double spike_floor_m = 0.003;
  double spike_speed_mps = 0.015;
};

struct PreprocessStats {
  std::size_t reads_in = 0;
  std::size_t deltas_out = 0;
  std::size_t dropped_gap = 0;
  std::size_t dropped_outlier = 0;
  std::size_t dropped_spike = 0;
  std::size_t first_in_channel = 0;
};

/// Streaming phase-to-displacement converter for ONE (user, tag, antenna)
/// stream. Feed reads in time order; displacement deltas come out as
/// timestamped samples. An instance may be pooled: reconfigure() swaps
/// the config and resets the state in O(1) while keeping every buffer's
/// high-water capacity, so a per-worker instance reused across streams
/// performs no steady-state allocation.
class PhasePreprocessor {
 public:
  explicit PhasePreprocessor(PreprocessConfig config = {});

  /// Processes one read; returns true and fills `delta_out` when the read
  /// completes a valid same-channel pair.
  bool push(const TagRead& read, signal::TimedSample& delta_out);

  /// Batch helper: displacement deltas for a whole stream.
  std::vector<signal::TimedSample> process(std::span<const TagRead> reads);

  /// Batch path into a caller buffer (cleared first): stages candidate
  /// pairs, runs the wrap+scale through the dispatched SIMD kernel, then
  /// applies the speed/spike gates. Emits exactly the deltas the
  /// streaming push() would — bit-identical values in the same order.
  void process_into(std::span<const TagRead> reads,
                    std::vector<signal::TimedSample>& out);

  const PreprocessStats& stats() const noexcept { return stats_; }
  void reset() noexcept;

  /// reset() plus a config swap (for pooled per-worker instances).
  void reconfigure(const PreprocessConfig& config) noexcept;

  /// Gap limit currently in force (diagnostic; depends on the observed
  /// stream rate when adaptive_gap is set).
  double effective_gap_s() const noexcept;

 private:
  /// Shared gate stage of push()/process_into(): rate tracking, channel
  /// state update, dt/gap gating. True => the read completes a candidate
  /// pair; `dt_out`/`dphase_out` carry its time and raw phase deltas.
  bool pair_gate(const TagRead& read, double& dt_out, double& dphase_out);

  PreprocessConfig config_;
  PreprocessStats stats_;

  // Per-channel state, structure-of-arrays: flat arrays indexed by
  // channel, grown lazily to the highest index seen. A channel's entry
  // is live only when its epoch stamp matches epoch_ — reset is a bump
  // of epoch_, never a sweep.
  std::vector<double> chan_time_;
  std::vector<double> chan_phase_;
  std::vector<std::uint32_t> chan_epoch_;
  std::uint32_t epoch_ = 1;

  // Batch staging (high-water capacity, reused across process_into).
  std::vector<double> stage_time_;
  std::vector<double> stage_dt_;
  std::vector<double> stage_dphase_;
  std::vector<double> stage_scale_;
  std::vector<double> stage_delta_;

  // EWMA of the inter-read interval (any channel) drives the adaptive
  // gap selection.
  double ewma_dt_s_ = 0.0;
  std::size_t dt_samples_ = 0;
  double last_read_time_s_ = 0.0;
  bool has_last_time_ = false;
  mutable bool fast_mode_ = false;
  mutable bool mode_init_ = false;
};

/// Eq. 4: integrates deltas into a displacement track anchored at 0.
/// Stays scalar by design: the running sum is a serial dependency chain
/// (each output feeds the next), so there is nothing to vectorize
/// without reassociating — which would break bitwise reproducibility.
std::vector<signal::TimedSample> integrate_displacement(
    std::span<const signal::TimedSample> deltas);

/// Gap-aware Eq. 4: a delta separated from its predecessor by more than
/// `reset_gap_s` spans a dropout — the motion it encodes is the net
/// drift across the outage, not breathing — so its value is discarded
/// and the track continues flat from the held displacement instead of
/// integrating a bogus step (which the band-pass filter would ring on
/// for seconds). reset_gap_s <= 0 disables the guard (plain Eq. 4).
std::vector<signal::TimedSample> integrate_displacement(
    std::span<const signal::TimedSample> deltas, double reset_gap_s);

}  // namespace tagbreathe::core
