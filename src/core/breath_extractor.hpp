// Breath-signal extraction (Sec. IV-B, Fig. 8).
//
// The fused displacement track is conditioned (detrended — integrated
// phase noise drifts), then low-pass filtered below the maximum plausible
// breathing frequency. The paper's primary filter is FFT-based: FFT ->
// zero all bins above 0.67 Hz (40 breaths/min) -> IFFT; it also notes an
// FIR low-pass works. Both are implemented; a band-pass variant that also
// suppresses sub-breathing drift (< ~3 bpm) is the default low cut.
#pragma once

#include <span>
#include <vector>

#include "signal/interpolate.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe::core {

enum class FilterKind {
  FftLowpass,  // the paper's filter
  FirLowpass,  // the paper's stated alternative (zero-phase filtfilt)
};

const char* filter_kind_name(FilterKind kind) noexcept;

struct ExtractorConfig {
  FilterKind filter = FilterKind::FftLowpass;
  /// Upper cutoff: 0.67 Hz = 40 bpm (paper value).
  double cutoff_hz = 0.67;
  /// Lower cutoff to reject integrated-noise drift below any plausible
  /// breathing rate (0.05 Hz = 3 bpm). Set to 0 for the paper's pure
  /// low-pass behaviour (DC is always removed).
  double low_cut_hz = 0.05;
  /// Remove the least-squares linear trend before filtering.
  bool detrend = true;
  /// FIR transition band width [Hz] (tap count follows from it).
  double fir_transition_hz = 0.2;
  /// Adaptive band: first locate the spectral peak inside the breathing
  /// band, then pass only [adaptive_lo_frac, adaptive_hi_frac] x peak
  /// before zero-crossing detection. Sharpens the paper's "prior
  /// knowledge of breathing rates" argument: integrated phase noise is
  /// strongest at the band's low edge, and a 25 s window resolves the
  /// peak well enough to centre the band even though it is too coarse to
  /// *be* the estimate. Disable for the paper's plain 0.67 Hz low-pass.
  bool adaptive_band = true;
  double adaptive_lo_frac = 0.6;
  double adaptive_hi_frac = 1.5;
  /// Floor of the adaptive peak search [Hz]: 0.075 Hz ~ 4.5 bpm, just
  /// below the slowest rate the paper evaluates (5 bpm), so sub-breathing
  /// drift cannot capture the band.
  double peak_search_floor_hz = 0.075;
};

/// Extracted breath signal on the fused track's uniform grid.
struct BreathSignal {
  std::vector<signal::TimedSample> samples;
  double sample_rate_hz = 0.0;

  std::vector<double> values() const;
  std::vector<double> times() const;
};

/// One track of a batched extraction sweep.
struct ExtractJob {
  std::span<const signal::TimedSample> track;
  double sample_rate_hz = 0.0;
  BreathSignal* out = nullptr;
};

/// Reusable staging for extract_many: per-job conditioned values, coarse
/// low-pass outputs and filter outputs (all live at once across the
/// batched transform sweeps), plus the filter-job array. High-water
/// sized — nothing shrinks — so a warm scratch runs any previously-seen
/// batch shape without allocating.
struct ExtractScratch {
  std::vector<std::vector<double>> values;
  std::vector<std::vector<double>> coarse;
  std::vector<std::vector<double>> filtered;
  std::vector<signal::BandLimitJob> filter_jobs;
  std::vector<double> band_lo;
  std::vector<double> band_hi;
  std::vector<unsigned char> active;
};

class BreathExtractor {
 public:
  explicit BreathExtractor(ExtractorConfig config = {});

  /// `track` must be uniformly sampled at `sample_rate_hz` (the fusion
  /// stage guarantees this). `workspace` (optional) is the caller's
  /// reusable FFT workspace: the realtime engine passes one per worker
  /// so the filter's transforms run through cached plans without
  /// per-call allocation; nullptr uses a local throwaway workspace.
  /// Delegates to extract_many with a one-job batch — single and
  /// batched extraction share one code path and produce bit-identical
  /// signals.
  BreathSignal extract(std::span<const signal::TimedSample> track,
                       double sample_rate_hz,
                       signal::FftWorkspace* workspace = nullptr) const;

  /// Batched extraction: conditions every track, runs the coarse
  /// adaptive-band low-pass and the main band filter as batched
  /// transform sweeps (fft_bandlimit_many) through the shared plan, and
  /// fills every job's `out`. Thread-safe for distinct workspaces and
  /// scratches.
  void extract_many(std::span<const ExtractJob> jobs,
                    signal::FftWorkspace& workspace,
                    ExtractScratch& scratch) const;

  const ExtractorConfig& config() const noexcept { return config_; }

 private:
  ExtractorConfig config_;
};

}  // namespace tagbreathe::core
