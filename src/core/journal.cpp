#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <stdexcept>

#include "common/crc32.hpp"

namespace tagbreathe::core {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentMagic[8] = {'T', 'B', 'J', 'S', 'E', 'G', '0', '1'};
constexpr std::uint32_t kFrameMagic = 0x54424A52u;  // "TBJR" little-endian
constexpr std::size_t kSegmentHeaderBytes = 8 + 4 + 8 + 4;
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 4;
// u64 seq + TagRead (f64 time, 12 B EPC, u8 antenna, u16 channel,
// 4×f64 radio fields).
constexpr std::size_t kRecordPayloadBytes = 8 + 8 + 12 + 1 + 2 + 4 * 8;
// Sanity bound on the length field: one flipped bit must not make the
// scanner treat megabytes of file as a single frame.
constexpr std::uint32_t kMaxPayloadBytes = 4096;

void maybe_hook(const DurabilityHooks* hooks, CrashPoint point) {
  if (hooks != nullptr && hooks->at_point) hooks->at_point(point);
}

std::string segment_name(std::uint64_t ordinal) {
  char name[32];
  std::snprintf(name, sizeof(name), "journal-%016llx.tbj",
                static_cast<unsigned long long>(ordinal));
  return name;
}

/// Ordinal from a segment filename; nullopt for anything else.
std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  if (name.size() != 28 || name.rfind("journal-", 0) != 0 ||
      name.compare(24, 4, ".tbj") != 0)
    return std::nullopt;
  std::uint64_t ordinal = 0;
  for (std::size_t i = 8; i < 24; ++i) {
    const char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
    ordinal = (ordinal << 4) | digit;
  }
  return ordinal;
}

/// Segment files in the directory, ordered by ordinal (append order).
std::vector<std::pair<std::uint64_t, fs::path>> list_segments(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, fs::path>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto ordinal = parse_segment_name(entry.path().filename().string());
    if (ordinal) segments.emplace_back(*ordinal, entry.path());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

const char* crash_point_name(CrashPoint point) noexcept {
  switch (point) {
    case CrashPoint::MidJournalAppend: return "mid-journal-append";
    case CrashPoint::PostJournalCommit: return "post-journal-commit";
    case CrashPoint::MidSnapshotWrite: return "mid-snapshot-write";
    case CrashPoint::MidSnapshotRename: return "mid-snapshot-rename";
    case CrashPoint::PostSnapshotFsync: return "post-snapshot-fsync";
    default: return "unknown-crash-point";
  }
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::put_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void ByteReader::need(std::size_t n) const {
  if (size_ - pos_ < n)
    throw DurabilityError("ByteReader: truncated input (need " +
                          std::to_string(n) + " bytes, have " +
                          std::to_string(size_ - pos_) + ")");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

void ByteReader::bytes(void* out, std::size_t size) {
  need(size);
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
}

void encode_tag_read(ByteWriter& out, const TagRead& read) {
  out.put_f64(read.time_s);
  out.put_bytes(read.epc.bytes().data(), rfid::Epc96::kBytes);
  out.put_u8(read.antenna_id);
  out.put_u16(read.channel_index);
  out.put_f64(read.frequency_hz);
  out.put_f64(read.rssi_dbm);
  out.put_f64(read.phase_rad);
  out.put_f64(read.doppler_hz);
}

TagRead decode_tag_read(ByteReader& in) {
  TagRead read;
  read.time_s = in.f64();
  std::array<std::uint8_t, rfid::Epc96::kBytes> epc_bytes;
  in.bytes(epc_bytes.data(), epc_bytes.size());
  read.epc = rfid::Epc96(epc_bytes);
  read.antenna_id = in.u8();
  read.channel_index = in.u16();
  read.frequency_hz = in.f64();
  read.rssi_dbm = in.f64();
  read.phase_rad = in.f64();
  read.doppler_hz = in.f64();
  return read;
}

// ---------------------------------------------------------------------------
// JournalConfig

void JournalConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("JournalConfig: " + what);
  };
  if (directory.empty()) bad("directory must be set");
  if (segment_max_bytes < kSegmentHeaderBytes + kFrameHeaderBytes +
                              kRecordPayloadBytes)
    bad("segment_max_bytes too small to hold one record");
  if (max_segments == 0) bad("max_segments must be positive");
  if (commit_batch == 0) bad("commit_batch must be positive");
  if (!(commit_interval_s > 0.0) || !std::isfinite(commit_interval_s))
    bad("commit_interval_s must be positive and finite");
}

// ---------------------------------------------------------------------------
// JournalWriter

JournalWriter::JournalWriter(JournalConfig config, std::uint64_t next_seq,
                             const DurabilityHooks* hooks)
    : config_(std::move(config)), hooks_(hooks), next_seq_(next_seq) {
  config_.validate();
  if (next_seq_ == 0) next_seq_ = 1;
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  if (ec)
    throw DurabilityError("JournalWriter: cannot create directory " +
                          config_.directory + ": " + ec.message());
  const auto existing = list_segments(config_.directory);
  segment_ordinal_ = existing.empty() ? 1 : existing.back().first + 1;
  pending_.reserve((kFrameHeaderBytes + kRecordPayloadBytes) *
                   config_.commit_batch);
  open_segment();
}

JournalWriter::~JournalWriter() {
  // Best effort: a graceful shutdown keeps the tail; a wedged writer
  // (crash already simulated or I/O already failed) keeps its hands off.
  try {
    commit();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
  if (fd_ >= 0) {
    if (!wedged_) ::fsync(fd_);
    ::close(fd_);
  }
}

void JournalWriter::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DurabilityError(std::string("JournalWriter: write failed: ") +
                            std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

void JournalWriter::open_segment() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  const fs::path path =
      fs::path(config_.directory) / segment_name(segment_ordinal_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw DurabilityError("JournalWriter: cannot open " + path.string() +
                          ": " + std::strerror(errno));
  ByteWriter header;
  header.put_u32(kJournalFormatVersion);
  header.put_u64(next_seq_);
  const std::uint32_t crc = common::crc32(header.data(), header.size());
  ByteWriter full;
  full.put_bytes(kSegmentMagic, sizeof(kSegmentMagic));
  full.put_bytes(header.data(), header.size());
  full.put_u32(crc);
  write_all(full.data(), full.size());
  segment_bytes_ = full.size();
  counters_.journal_bytes_written += full.size();
  ++counters_.journal_segments_created;
  ++segment_ordinal_;
}

std::uint64_t JournalWriter::append(const TagRead& read) {
  if (wedged_) return 0;
  const std::uint64_t seq = next_seq_++;

  frame_.clear();
  frame_.put_u64(seq);
  encode_tag_read(frame_, read);
  const std::uint32_t crc = common::crc32(frame_.data(), frame_.size());

  pending_.put_u32(kFrameMagic);
  pending_.put_u32(static_cast<std::uint32_t>(frame_.size()));
  pending_.put_u32(crc);
  pending_.put_bytes(frame_.data(), frame_.size());
  ++pending_records_;
  buffered_seq_ = seq;
  newest_stream_s_ = std::max(newest_stream_s_, read.time_s);
  if (last_commit_stream_s_ < 0.0) last_commit_stream_s_ = read.time_s;

  if (pending_records_ >= config_.commit_batch ||
      newest_stream_s_ - last_commit_stream_s_ >= config_.commit_interval_s)
    commit();
  return seq;
}

void JournalWriter::commit() {
  if (wedged_ || pending_records_ == 0) return;

  // Rotate at commit boundaries only, so a frame never spans segments.
  if (segment_bytes_ + pending_.size() > config_.segment_max_bytes &&
      segment_bytes_ > kSegmentHeaderBytes)
    open_segment();

  // Wedge before touching the file: if anything below throws (I/O error
  // or injected crash) the writer stays dead, exactly like the process.
  wedged_ = true;
  const std::size_t half = pending_.size() / 2;
  write_all(pending_.data(), half);
  maybe_hook(hooks_, CrashPoint::MidJournalAppend);
  write_all(pending_.data() + half, pending_.size() - half);
  if (config_.fsync_on_commit && ::fsync(fd_) != 0)
    throw DurabilityError(std::string("JournalWriter: fsync failed: ") +
                          std::strerror(errno));
  maybe_hook(hooks_, CrashPoint::PostJournalCommit);
  wedged_ = false;

  segment_bytes_ += pending_.size();
  counters_.journal_bytes_written += pending_.size();
  counters_.journal_records_appended += pending_records_;
  ++counters_.journal_commits;
  committed_seq_ = buffered_seq_;
  last_commit_stream_s_ = newest_stream_s_;
  pending_.clear();
  pending_records_ = 0;
}

void JournalWriter::maybe_commit(double now_s) {
  if (wedged_ || pending_records_ == 0) return;
  if (now_s - last_commit_stream_s_ >= config_.commit_interval_s) commit();
}

void JournalWriter::prune(std::uint64_t upto_seq) {
  const auto segments = list_segments(config_.directory);
  if (segments.size() <= 1) return;

  // First-seq of each segment, from its header (0 = unreadable).
  std::vector<std::uint64_t> first_seq(segments.size(), 0);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    std::ifstream in(segments[i].second, std::ios::binary);
    char magic[8];
    std::uint8_t rest[12];
    if (in.read(magic, 8) &&
        std::memcmp(magic, kSegmentMagic, 8) == 0 &&
        in.read(reinterpret_cast<char*>(rest), sizeof(rest))) {
      ByteReader r(rest, sizeof(rest));
      r.u32();  // version
      first_seq[i] = r.u64();
    }
  }

  std::size_t keep_from = 0;
  // Segment i is fully covered by the snapshot when the *next* segment
  // starts at or below upto_seq + 1 (records are sequential).
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (first_seq[i + 1] != 0 && first_seq[i + 1] <= upto_seq + 1)
      keep_from = i + 1;
  }
  // Hard retention cap, oldest first (bounded disk wins over history).
  if (segments.size() - keep_from > config_.max_segments)
    keep_from = segments.size() - config_.max_segments;

  for (std::size_t i = 0; i < keep_from; ++i) {
    std::error_code ec;
    if (fs::remove(segments[i].second, ec)) ++counters_.journal_segments_pruned;
  }
}

// ---------------------------------------------------------------------------
// Scanner

JournalScanResult scan_journal(
    const std::string& directory, std::uint64_t after_seq,
    const std::function<void(const JournalRecord&)>& sink) {
  JournalScanResult result;
  std::error_code ec;
  if (!fs::exists(directory, ec)) return result;

  for (const auto& [ordinal, path] : list_segments(directory)) {
    (void)ordinal;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++result.counters.journal_segments_rejected;
      continue;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    ++result.counters.journal_segments_scanned;

    // Segment header: magic + version + first_seq + CRC.
    if (bytes.size() < kSegmentHeaderBytes ||
        std::memcmp(bytes.data(), kSegmentMagic, 8) != 0) {
      ++result.counters.journal_segments_rejected;
      continue;
    }
    {
      ByteReader header(bytes.data() + 8, kSegmentHeaderBytes - 8);
      const std::uint8_t* body = bytes.data() + 8;
      const std::uint32_t expect = common::crc32(body, 12);
      const std::uint32_t version = header.u32();
      header.u64();  // first_seq (informational; records carry their own)
      ByteReader crc_reader(bytes.data() + 20, 4);
      if (crc_reader.u32() != expect || version != kJournalFormatVersion) {
        ++result.counters.journal_segments_rejected;
        continue;
      }
    }

    std::size_t pos = kSegmentHeaderBytes;
    bool tail_torn = false;
    while (pos < bytes.size()) {
      const std::size_t left = bytes.size() - pos;
      if (left < kFrameHeaderBytes) {
        tail_torn = true;
        break;
      }
      // Resync: hunt for the frame magic byte-by-byte after corruption.
      ByteReader peek(bytes.data() + pos, 4);
      if (peek.u32() != kFrameMagic) {
        ++pos;
        continue;
      }
      ByteReader head(bytes.data() + pos, kFrameHeaderBytes);
      head.u32();  // magic
      const std::uint32_t len = head.u32();
      const std::uint32_t crc = head.u32();
      if (len == 0 || len > kMaxPayloadBytes) {
        ++result.counters.journal_records_corrupt;
        ++pos;  // bogus length: resync from the next byte
        continue;
      }
      if (left < kFrameHeaderBytes + len) {
        // Frame runs past the file: a torn append at the tail.
        tail_torn = true;
        break;
      }
      const std::uint8_t* payload = bytes.data() + pos + kFrameHeaderBytes;
      if (common::crc32(payload, len) != crc) {
        ++result.counters.journal_records_corrupt;
        ++pos;  // bit flip somewhere in the frame: resync
        continue;
      }
      try {
        ByteReader body(payload, len);
        JournalRecord record;
        record.seq = body.u64();
        record.read = decode_tag_read(body);
        result.max_seq = std::max(result.max_seq, record.seq);
        if (record.seq > after_seq) {
          sink(record);
          ++result.delivered;
          ++result.counters.replay_records;
        }
      } catch (const DurabilityError&) {
        // CRC passed but the payload is shorter than the codec needs —
        // only possible with a hand-truncated record; count, don't die.
        ++result.counters.journal_records_corrupt;
      }
      pos += kFrameHeaderBytes + len;
    }
    if (tail_torn) ++result.counters.journal_truncated_tails;
  }
  return result;
}

}  // namespace tagbreathe::core
