#include "core/analysis_pool.hpp"

namespace tagbreathe::core {

AnalysisPool::AnalysisPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_loop(i + 1); });  // caller = 0
}

AnalysisPool::~AnalysisPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void AnalysisPool::work_through(
    const std::function<void(std::size_t, std::size_t)>& job, std::size_t n,
    std::size_t slot) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      job(i, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void AnalysisPool::worker_loop(std::size_t slot) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = job_;
      n = batch_n_;
    }
    work_through(*job, n, slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void AnalysisPool::run(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& job) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    // Serial engine (or a batch too small to be worth waking anyone).
    for (std::size_t i = 0; i < n; ++i) job(i, 0);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    batch_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_active_ = threads_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();

  work_through(job, n, /*slot=*/0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    const std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace tagbreathe::core
