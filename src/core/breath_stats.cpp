#include "core/breath_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace tagbreathe::core {

BreathStats analyze_breaths(std::span<const signal::TimedSample> breath,
                            const RateEstimate& estimate) {
  BreathStats stats;

  // Rising crossing times delimit full cycles.
  std::vector<double> rising;
  for (const auto& c : estimate.crossings) {
    if (c.direction == signal::CrossingDirection::Rising)
      rising.push_back(c.time_s);
  }
  if (rising.size() < 2) return stats;

  std::size_t cursor = 0;
  for (std::size_t i = 1; i < rising.size(); ++i) {
    Breath b;
    b.start_s = rising[i - 1];
    b.duration_s = rising[i] - rising[i - 1];
    // Peak |signal| within the cycle.
    while (cursor < breath.size() && breath[cursor].time_s < b.start_s)
      ++cursor;
    double peak = 0.0;
    for (std::size_t j = cursor;
         j < breath.size() && breath[j].time_s < rising[i]; ++j)
      peak = std::max(peak, std::abs(breath[j].value));
    b.amplitude = peak;
    stats.breaths.push_back(b);
  }

  std::vector<double> durations, amplitudes;
  for (const Breath& b : stats.breaths) {
    durations.push_back(b.duration_s);
    amplitudes.push_back(b.amplitude);
  }
  const double mean_duration = common::mean(durations);
  if (mean_duration > 0.0)
    stats.mean_rate_bpm = 60.0 / mean_duration;
  stats.interval_sd_s = common::stddev(durations);
  stats.interval_cv =
      mean_duration > 0.0 ? stats.interval_sd_s / mean_duration : 0.0;

  if (durations.size() >= 2) {
    double acc = 0.0;
    for (std::size_t i = 1; i < durations.size(); ++i) {
      const double d = durations[i] - durations[i - 1];
      acc += d * d;
    }
    stats.interval_rmssd_s =
        std::sqrt(acc / static_cast<double>(durations.size() - 1));
  }

  stats.mean_amplitude = common::mean(amplitudes);
  const double lo = common::min_value(amplitudes);
  const double hi = common::max_value(amplitudes);
  stats.amplitude_range_ratio = lo > 0.0 ? hi / lo : 1.0;
  return stats;
}

std::vector<BreathPause> detect_pauses(const BreathStats& stats,
                                       const BreathStatsConfig& config) {
  std::vector<BreathPause> pauses;
  if (stats.breaths.size() < 3) return pauses;
  std::vector<double> durations;
  for (const Breath& b : stats.breaths) durations.push_back(b.duration_s);
  const double typical = common::median(durations);
  if (typical <= 0.0) return pauses;

  for (const Breath& b : stats.breaths) {
    if (b.duration_s > config.pause_factor * typical) {
      // The pause is the stretch of the over-long cycle beyond a normal
      // breath.
      BreathPause p;
      p.start_s = b.start_s + typical;
      p.duration_s = b.duration_s - typical;
      pauses.push_back(p);
    }
  }
  return pauses;
}

bool is_irregular(const BreathStats& stats,
                  const BreathStatsConfig& config) {
  if (stats.breaths.size() < 4) return false;
  return stats.interval_cv > config.irregular_cv;
}

}  // namespace tagbreathe::core
