#include "core/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/units.hpp"

namespace tagbreathe::core {

namespace {

// Enough violation lines to diagnose a failure without letting a broken
// run allocate without bound.
constexpr std::size_t kMaxViolations = 50;

void add_violation(std::vector<std::string>& violations, std::string line) {
  if (violations.size() < kMaxViolations) {
    violations.push_back(std::move(line));
  } else if (violations.size() == kMaxViolations) {
    violations.push_back("... further violations suppressed");
  }
}

}  // namespace

void ChaosConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("ChaosConfig: " + what);
  };
  const auto check_prob = [&](double p, const char* name) {
    if (!(p >= 0.0 && p <= 1.0))
      bad(std::string(name) + " must be a probability in [0, 1]");
  };
  check_prob(dropout_prob, "dropout_prob");
  check_prob(duplicate_prob, "duplicate_prob");
  check_prob(reorder_prob, "reorder_prob");
  check_prob(skew_prob, "skew_prob");
  check_prob(epc_corrupt_prob, "epc_corrupt_prob");
  const auto check_dur = [&](double s, const char* name) {
    if (!(s >= 0.0) || !std::isfinite(s))
      bad(std::string(name) + " must be non-negative and finite");
  };
  check_dur(reorder_max_delay_s, "reorder_max_delay_s");
  check_dur(skew_max_s, "skew_max_s");
  check_dur(blackout_period_s, "blackout_period_s");
  check_dur(blackout_duration_s, "blackout_duration_s");
  check_dur(burst_period_s, "burst_period_s");
  if (blackout_period_s > 0.0 && blackout_duration_s >= blackout_period_s)
    bad("blackout_duration_s must be below blackout_period_s");
  if (reorder_prob > 0.0 && reorder_max_delay_s <= 0.0)
    bad("reorder_prob needs a positive reorder_max_delay_s");
}

ChaosConfig ChaosConfig::composite(std::uint64_t seed) {
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.dropout_prob = 0.02;
  cfg.duplicate_prob = 0.02;
  cfg.reorder_prob = 0.05;
  cfg.reorder_max_delay_s = 0.15;  // mostly inside the repair-skew band
  cfg.skew_prob = 0.01;
  cfg.skew_max_s = 1.0;  // some regressions beyond repair => quarantine
  cfg.epc_corrupt_prob = 0.01;
  cfg.blackout_period_s = 60.0;
  cfg.blackout_duration_s = 8.0;  // above the default signal_loss_s
  cfg.burst_period_s = 45.0;
  cfg.burst_copies = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// ChaosInjector

ChaosInjector::ChaosInjector(ChaosConfig config)
    : config_(config),
      rng_(config.seed),
      recent_(32),
      next_burst_s_(config.burst_period_s > 0.0
                        ? config.burst_period_s
                        : std::numeric_limits<double>::infinity()) {
  config_.validate();
}

bool ChaosInjector::in_blackout(double time_s) const noexcept {
  if (config_.blackout_period_s <= 0.0 || config_.blackout_duration_s <= 0.0)
    return false;
  const double into = std::fmod(time_s, config_.blackout_period_s);
  // The blackout window sits at the end of each period, so delivery
  // starts clean at t = 0.
  return into >= config_.blackout_period_s - config_.blackout_duration_s;
}

void ChaosInjector::deliver(const TagRead& read, std::vector<TagRead>& out) {
  out.push_back(read);
  ++stats_.total_out;
  recent_.push(read);
}

void ChaosInjector::release_due(double now_s, std::vector<TagRead>& out) {
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->deliver_at_s <= now_s) {
      deliver(it->read, out);
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChaosInjector::feed(const TagRead& read, std::vector<TagRead>& out) {
  release_due(read.time_s, out);
  ++stats_.total_in;

  // Burst overload fires on schedule even while individual reads drop.
  while (read.time_s >= next_burst_s_) {
    const std::size_t backlog = recent_.size();
    for (std::size_t copy = 0; copy < config_.burst_copies; ++copy) {
      for (std::size_t i = 0; i < backlog; ++i) {
        deliver(recent_[i], out);
        ++stats_.burst_injected;
      }
    }
    next_burst_s_ += config_.burst_period_s;
  }

  if (in_blackout(read.time_s)) {
    ++stats_.blackout_dropped;
    return;
  }
  if (config_.dropout_prob > 0.0 && rng_.bernoulli(config_.dropout_prob)) {
    ++stats_.dropped;
    return;
  }

  TagRead r = read;
  if (config_.skew_prob > 0.0 && rng_.bernoulli(config_.skew_prob)) {
    r.time_s += rng_.uniform(-config_.skew_max_s, config_.skew_max_s);
    ++stats_.skewed;
  }
  if (config_.epc_corrupt_prob > 0.0 &&
      rng_.bernoulli(config_.epc_corrupt_prob)) {
    auto bytes = r.epc.bytes();
    const int bit = rng_.uniform_int(0, 95);
    bytes[static_cast<std::size_t>(bit) / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    r.epc = rfid::Epc96(bytes);
    ++stats_.corrupted;
  }

  if (config_.reorder_prob > 0.0 && rng_.bernoulli(config_.reorder_prob)) {
    const double delay = rng_.uniform(0.0, config_.reorder_max_delay_s);
    delayed_.push_back(Delayed{read.time_s + delay, r});
    ++stats_.reordered;
    return;
  }

  deliver(r, out);
  if (config_.duplicate_prob > 0.0 && rng_.bernoulli(config_.duplicate_prob)) {
    deliver(r, out);
    ++stats_.duplicated;
  }
}

void ChaosInjector::flush(std::vector<TagRead>& out) {
  for (const Delayed& d : delayed_) deliver(d.read, out);
  delayed_.clear();
}

// ---------------------------------------------------------------------------
// Reader-scoped chaos

void ReaderChaosConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("ReaderChaosConfig: " + what);
  };
  chaos.validate();
  for (const ReaderOutage& o : outages) {
    if (!(o.start_s >= 0.0) || !std::isfinite(o.start_s))
      bad("outage start_s must be non-negative and finite");
    if (!(o.duration_s > 0.0) || !std::isfinite(o.duration_s))
      bad("outage duration_s must be positive and finite");
  }
}

ReaderChaosConfig ReaderChaosConfig::blackout(std::size_t reader,
                                              double start_s,
                                              double duration_s,
                                              std::uint64_t seed) {
  ReaderChaosConfig cfg;
  cfg.reader = reader;
  cfg.chaos.seed = seed;
  cfg.outages.push_back(ReaderOutage{start_s, duration_s});
  return cfg;
}

ReaderChaosConfig ReaderChaosConfig::flap(std::size_t reader, double start_s,
                                          double up_s, double down_s,
                                          std::size_t cycles,
                                          std::uint64_t seed) {
  ReaderChaosConfig cfg;
  cfg.reader = reader;
  cfg.chaos.seed = seed;
  cfg.outages.reserve(cycles);
  for (std::size_t i = 0; i < cycles; ++i) {
    const double down_at =
        start_s + up_s + static_cast<double>(i) * (up_s + down_s);
    cfg.outages.push_back(ReaderOutage{down_at, down_s});
  }
  return cfg;
}

ReaderChaosConfig ReaderChaosConfig::burst_overload(std::size_t reader,
                                                    double period_s,
                                                    std::size_t copies,
                                                    std::uint64_t seed) {
  ReaderChaosConfig cfg;
  cfg.reader = reader;
  cfg.chaos.seed = seed;
  cfg.chaos.burst_period_s = period_s;
  cfg.chaos.burst_copies = copies;
  return cfg;
}

ReaderChaos::ReaderChaos(ReaderChaosConfig config)
    : config_(std::move(config)), injector_(config_.chaos) {
  config_.validate();
}

bool ReaderChaos::offline(double time_s) const noexcept {
  for (const ReaderOutage& o : config_.outages) {
    if (time_s >= o.start_s && time_s < o.start_s + o.duration_s) return true;
  }
  return false;
}

void ReaderChaos::feed(const TagRead& read, std::vector<TagRead>& out) {
  if (offline(read.time_s)) {
    ++outage_dropped_;
    return;
  }
  injector_.feed(read, out);
}

void ReaderChaos::flush(std::vector<TagRead>& out) { injector_.flush(out); }

// ---------------------------------------------------------------------------
// Soak harness

std::string format_soak_event(const PipelineEvent& event) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "t=%010.3f user=%03llu %s rate=%07.3f reliable=%d "
                "health=%s",
                event.time_s, static_cast<unsigned long long>(event.user_id),
                pipeline_event_name(event.kind), event.rate_bpm,
                event.reliable ? 1 : 0, signal_health_name(event.health));
  return std::string(line);
}

ReadStream make_soak_population(const SoakConfig& config) {
  // One read stream per (user, tag) on a staggered grid; the phase is a
  // breathing sinusoid on top of a per-tag static offset, matching what
  // the demux/preprocess layers expect from a real array.
  const std::size_t total_tags = config.n_users * config.tags_per_user;
  const double period = 1.0 / config.read_rate_hz;
  ReadStream clean;
  clean.reserve(static_cast<std::size_t>(config.duration_s *
                                         config.read_rate_hz) *
                    total_tags +
                total_tags);
  for (std::size_t u = 0; u < config.n_users; ++u) {
    const double f_hz =
        common::bpm_to_hz(config.base_rate_bpm + 1.5 * static_cast<double>(u));
    for (std::size_t tag = 0; tag < config.tags_per_user; ++tag) {
      const std::size_t slot = u * config.tags_per_user + tag;
      const double offset =
          period * static_cast<double>(slot) / static_cast<double>(total_tags);
      const double static_phase =
          1.1 + 0.7 * static_cast<double>(tag) + 0.3 * static_cast<double>(u);
      for (double t = offset; t <= config.duration_s; t += period) {
        TagRead read;
        read.time_s = t;
        read.epc = rfid::Epc96::from_user_tag(
            static_cast<std::uint64_t>(u + 1),
            static_cast<std::uint32_t>(tag + 1));
        read.antenna_id = 1;
        read.channel_index = 1;
        read.frequency_hz = 920.625e6;
        read.rssi_dbm = -55.0;
        read.phase_rad = common::wrap_phase_2pi(
            static_phase +
            0.35 * std::sin(common::kTwoPi * f_hz * t +
                            0.9 * static_cast<double>(slot)));
        clean.push_back(read);
      }
    }
  }
  std::stable_sort(clean.begin(), clean.end(),
                   [](const TagRead& a, const TagRead& b) {
                     return a.time_s < b.time_s;
                   });
  return clean;
}

SoakInvariantSink::SoakInvariantSink(std::vector<std::uint64_t> roster,
                                     std::size_t user_cap,
                                     std::size_t validator_cap,
                                     SoakReport& report)
    : roster_(std::move(roster)),
      user_cap_(user_cap),
      validator_cap_(validator_cap),
      report_(report),
      last_event_s_(-std::numeric_limits<double>::infinity()) {}

void SoakInvariantSink::violation(std::string line) {
  add_violation(report_.violations, std::move(line));
}

void SoakInvariantSink::on_event(const PipelineEvent& event) {
  ++report_.events;
  if (event.kind == PipelineEventKind::SignalLost)
    ++report_.signal_lost_events;
  if (event.kind == PipelineEventKind::SignalRecovered)
    ++report_.signal_recovered_events;

  if (event.time_s < last_event_s_)
    violation("non-monotonic event time at t=" + std::to_string(event.time_s));
  last_event_s_ = std::max(last_event_s_, event.time_s);
  report_.last_event_time_s = last_event_s_;

  if (!std::binary_search(roster_.begin(), roster_.end(), event.user_id))
    violation("event for unadmitted user " + std::to_string(event.user_id) +
              " (quarantine breached)");

  report_.event_log.push_back(format_soak_event(event));
}

void SoakInvariantSink::after_pump(const RealtimePipeline& pipeline,
                                   std::size_t validator_tracked_users) {
  report_.peak_tracked_users =
      std::max(report_.peak_tracked_users, pipeline.tracked_users());
  if (user_cap_ > 0 && pipeline.tracked_users() > user_cap_)
    violation("tracked users " + std::to_string(pipeline.tracked_users()) +
              " exceed cap " + std::to_string(user_cap_));
  if (validator_cap_ > 0 && validator_tracked_users > validator_cap_)
    violation("validator user state exceeds cap");
}

void SoakConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("SoakConfig: " + what);
  };
  if (n_users == 0) bad("n_users must be positive");
  if (tags_per_user == 0) bad("tags_per_user must be positive");
  if (!(duration_s > 0.0) || !std::isfinite(duration_s))
    bad("duration_s must be positive and finite");
  if (!(read_rate_hz > 0.0) || !std::isfinite(read_rate_hz))
    bad("read_rate_hz must be positive and finite");
  if (!(pump_period_s > 0.0) || !std::isfinite(pump_period_s))
    bad("pump_period_s must be positive and finite");
  ingest.validate();
  pipeline.validate();
  chaos.validate();
}

void append_queue_invariant_violations(const IngestQueueCounters& queue,
                                       std::size_t capacity,
                                       std::vector<std::string>& violations,
                                       const std::string& context) {
  if (queue.peak_depth > capacity)
    add_violation(violations, context + "queue depth exceeded capacity");
  // Conservation: every read accepted into the queue is either still
  // queued (none, after the final pump), drained, shed or coalesced.
  if (queue.enqueued !=
      queue.drained + queue.shed_oldest + queue.coalesced)
    add_violation(violations, context + "queue counter conservation broken");
}

SoakReport run_soak(const SoakConfig& config) {
  config.validate();
  SoakReport report;

  // Roster: user IDs 1..n. The ingest layer quarantines anything else
  // (corrupted EPCs), unless the caller supplied an explicit roster.
  std::vector<std::uint64_t> roster;
  roster.reserve(config.n_users);
  for (std::size_t u = 0; u < config.n_users; ++u)
    roster.push_back(static_cast<std::uint64_t>(u + 1));

  IngestConfig ingest_cfg = config.ingest;
  if (ingest_cfg.monitored_users.empty()) ingest_cfg.monitored_users = roster;

  PipelineConfig pipeline_cfg = config.pipeline;
  if (pipeline_cfg.max_users == 0) pipeline_cfg.max_users = ingest_cfg.max_users;

  // --- invariant-checking event sink -------------------------------------
  const std::size_t user_cap =
      pipeline_cfg.max_users > 0 ? pipeline_cfg.max_users : config.n_users;
  SoakInvariantSink sink(roster, user_cap, ingest_cfg.max_users, report);
  RealtimePipeline pipeline(pipeline_cfg, [&](const PipelineEvent& event) {
    sink.on_event(event);
  });

  IngestFrontEnd frontend(ingest_cfg, pipeline);
  if (config.observability != nullptr) {
    pipeline.bind_observability(*config.observability);
    frontend.bind_observability(*config.observability);
  }
  ChaosInjector injector(config.chaos);

  const ReadStream clean = make_soak_population(config);

  // --- drive -------------------------------------------------------------
  std::vector<TagRead> delivered;
  double next_pump = config.pump_period_s;
  const auto pump_and_check = [&](double now_s) {
    frontend.pump(now_s);
    sink.after_pump(pipeline, frontend.validator().tracked_users());
  };

  for (const TagRead& read : clean) {
    delivered.clear();
    injector.feed(read, delivered);
    for (const TagRead& r : delivered) frontend.offer(r, read.time_s);
    while (read.time_s >= next_pump) {
      pump_and_check(next_pump);
      next_pump += config.pump_period_s;
    }
  }
  delivered.clear();
  injector.flush(delivered);
  for (const TagRead& r : delivered) frontend.offer(r, config.duration_s);
  pump_and_check(config.duration_s);

  // --- post-run invariants ------------------------------------------------
  report.chaos = injector.stats();
  report.queue = frontend.queue_counters();
  report.validation = frontend.validation();

  append_queue_invariant_violations(report.queue, frontend.queue().capacity(),
                                    report.violations);

  // SignalHealth vs injected gaps: a blackout longer than the loss
  // threshold must produce Lost transitions (and recoveries, since
  // delivery resumes), and every Lost transition must be attributable
  // to a blackout window when blackouts are the only gap source.
  const ChaosConfig& chaos = config.chaos;
  const bool long_blackouts =
      chaos.blackout_period_s > 0.0 &&
      chaos.blackout_duration_s >
          pipeline_cfg.signal_loss_s + pipeline_cfg.update_period_s &&
      config.duration_s >= chaos.blackout_period_s;
  if (long_blackouts) {
    if (report.signal_lost_events == 0)
      add_violation(report.violations,
                    "blackouts above signal_loss_s produced no SignalLost");
    if (report.signal_recovered_events == 0)
      add_violation(report.violations,
                    "delivery resumed after blackouts but no SignalRecovered");
  }

  return report;
}

}  // namespace tagbreathe::core
