// Breathing-rate estimation (Sec. IV-B, Eq. 5).
//
// Primary method: zero crossings of the extracted breath signal. With M
// buffered crossing timestamps t_{i-M+1..i}, the instantaneous rate is
//
//     f_BR(t_i) = (M − 1) / (2 (t_i − t_{i−M+1}))            (Eq. 5)
//
// (two crossings per breath). The paper buffers M = 7 crossings = 3
// breaths for realtime display. Baseline: reading the FFT peak directly,
// which the paper rejects because a w-second window quantises the rate to
// 1/w Hz (25 s -> 2.4 bpm); kept here for the ablation benches.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/ring_buffer.hpp"
#include "signal/interpolate.hpp"
#include "signal/zero_crossing.hpp"

namespace tagbreathe::core {

struct RateEstimatorConfig {
  /// M of Eq. 5.
  int buffered_crossings = 7;
  /// Hysteresis for crossing detection, as a fraction of the signal's
  /// peak magnitude (rejects noise chatter around zero).
  double hysteresis_fraction = 0.15;
  /// Rates outside [min, max] bpm are reported as unreliable.
  double min_rate_bpm = 3.0;
  double max_rate_bpm = 45.0;
  /// Period-consistency gate on `reliable`: with >= 3 full periods in
  /// the window, require (max - min) <= this fraction of the median
  /// period. Genuine breathing is near-periodic — a steady metronome
  /// spreads ~0.05, natural variability ~0.3 — while noise-injected or
  /// missed crossings mix half-length and double-length periods into
  /// the same window (spread >= ~0.7), so the window still reports a
  /// rate but refuses to vouch for it. A spread measure is used rather
  /// than MAD because the degenerate 3-period windows where bogus
  /// crossings hide always put a zero in the deviation list, which
  /// makes the median deviation blind to them. <= 0 disables.
  double max_period_dispersion = 0.6;
};

/// One instantaneous rate sample (at a zero-crossing instant).
struct RatePoint {
  double time_s = 0.0;
  double rate_bpm = 0.0;
};

struct RateEstimate {
  /// Window-average breathing rate [bpm]; 0 when not enough crossings.
  double rate_bpm = 0.0;
  /// Instantaneous Eq. 5 rates at each crossing once M are buffered.
  std::vector<RatePoint> instantaneous;
  /// All detected crossings.
  std::vector<signal::ZeroCrossing> crossings;
  /// True when at least M crossings were available and the average rate
  /// lies in the configured plausible band.
  bool reliable = false;
};

/// Batch zero-crossing estimator over an extracted breath signal.
class ZeroCrossingRateEstimator {
 public:
  explicit ZeroCrossingRateEstimator(RateEstimatorConfig config = {});

  RateEstimate estimate(std::span<const signal::TimedSample> breath) const;

  const RateEstimatorConfig& config() const noexcept { return config_; }

 private:
  RateEstimatorConfig config_;
};

/// Streaming variant: push crossings as they are detected; Eq. 5 over the
/// last M gives the realtime display value.
class StreamingRateTracker {
 public:
  explicit StreamingRateTracker(RateEstimatorConfig config = {});

  /// Pushes a crossing timestamp; returns the new instantaneous rate once
  /// M crossings are buffered.
  std::optional<RatePoint> push_crossing(double time_s);

  /// Seconds since the most recent crossing, given the current time.
  double silence_s(double now_s) const noexcept;

  std::optional<double> current_rate_bpm() const noexcept;
  void reset();

 private:
  RateEstimatorConfig config_;
  common::RingBuffer<double> times_;
  std::optional<double> current_rate_;
};

/// FFT-peak baseline. `raw_bin` reads the peak bin directly (the paper's
/// criticised 1/w-resolution estimator); otherwise the peak is refined by
/// parabolic interpolation.
struct FftPeakConfig {
  double min_rate_bpm = 3.0;
  double max_rate_bpm = 45.0;
  bool raw_bin = true;
};

double fft_peak_rate_bpm(std::span<const signal::TimedSample> track,
                         double sample_rate_hz,
                         const FftPeakConfig& config = {});

}  // namespace tagbreathe::core
