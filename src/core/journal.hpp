// Write-ahead read journal: crash-safe capture of every admitted
// TagRead.
//
// The realtime pipeline keeps all per-user state in RAM; a process
// crash would silently restart the ward cold through a full warm-up —
// exactly the window where an apnea event would be missed. The journal
// is the first half of the durability answer (core/snapshot is the
// second): every read the ingest validator admits is appended, and on
// restart the recovery manager (core/recovery) replays the tail past
// the newest snapshot to rebuild the exact pre-crash window.
//
// On-disk format (all integers little-endian):
//
//   segment file  journal-<ordinal:016x>.tbj
//     8 B  magic "TBJSEG01"
//     u32  format version (kJournalFormatVersion)
//     u64  first record sequence number of the segment
//     u32  CRC-32 of the 12 bytes above (version + first_seq)
//   record frame  (repeated; never split across segments)
//     u32  frame magic 0x54424A52 ("TBJR")
//     u32  payload length
//     u32  CRC-32 of the payload
//     payload: u64 seq, then the TagRead fields
//
// Durability discipline: appends are group-committed — encoded into a
// preallocated buffer (allocation-free once warm) and written to the OS
// in one batch per `commit_batch` records / `commit_interval_s` of
// stream time — so the hot path never waits on the disk per read.
// Segments rotate at a byte cap and retention is bounded (prune by
// snapshot progress + a hard max_segments cap). The scanner never
// trusts the file: bad headers, bit-flipped records, torn tails and
// inter-frame garbage are skipped, counted and resynced past, never
// fatal.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/types.hpp"

namespace tagbreathe::core {

inline constexpr std::uint32_t kJournalFormatVersion = 1;

/// Unrecoverable durability-layer failure (I/O error, unusable
/// directory). Data corruption is *not* reported this way — corrupt
/// records are skipped and counted by the scanner.
struct DurabilityError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown by a crash-injection hook to simulate the process dying at a
/// seeded kill point. Writers treat it like any other mid-write failure
/// (the file is left torn); the harness catches it and recovers.
struct SimulatedCrash : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Seeded kill points the crash-injection harness can fire at.
enum class CrashPoint : std::uint8_t {
  MidJournalAppend = 0,   // half a commit batch written, frame torn
  PostJournalCommit = 1,  // batch fully durable, process dies after
  MidSnapshotWrite = 2,   // half the snapshot temp file written
  MidSnapshotRename = 3,  // temp durable but never renamed into place
  PostSnapshotFsync = 4,  // snapshot fully durable, dies after
};
inline constexpr std::size_t kCrashPointCount = 5;
const char* crash_point_name(CrashPoint point) noexcept;

/// Test-only hooks threaded through the writers. `at_point` is invoked
/// at each kill point; throwing SimulatedCrash from it leaves the file
/// in exactly the torn state a real crash there would.
struct DurabilityHooks {
  std::function<void(CrashPoint)> at_point;
};

// ---------------------------------------------------------------------------
// Byte-level codec shared by journal frames and snapshot sections.

/// Append-only little-endian byte buffer.
class ByteWriter {
 public:
  void clear() noexcept { buf_.clear(); }
  std::size_t size() const noexcept { return buf_.size(); }
  const std::uint8_t* data() const noexcept { return buf_.data(); }
  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_bytes(const void* data, std::size_t size);

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte range; throws DurabilityError on
/// underrun (a truncated section must fail loudly, not read garbage).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  void bytes(void* out, std::size_t size);

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// TagRead wire codec (fixed 55 bytes) shared by journal and snapshot.
void encode_tag_read(ByteWriter& out, const TagRead& read);
TagRead decode_tag_read(ByteReader& in);

// ---------------------------------------------------------------------------
// Writer

struct JournalConfig {
  /// Directory holding the segment files (created if missing).
  std::string directory;
  /// Rotate to a new segment once the current one reaches this size.
  std::size_t segment_max_bytes = 1u << 20;
  /// Hard retention cap: oldest segments beyond this are deleted even
  /// if un-snapshotted (bounded disk beats unbounded history).
  std::size_t max_segments = 16;
  /// Group commit: flush to the OS after this many buffered appends...
  std::size_t commit_batch = 64;
  /// ...or once stream time advances this far past the last commit.
  double commit_interval_s = 1.0;
  /// fsync on every commit (true) or only on rotation/shutdown (false).
  /// Commit without fsync survives a process crash but not a kernel
  /// panic — the right default for a monitoring feed.
  bool fsync_on_commit = false;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Append side. Single-threaded (runs on the analysis thread, inside
/// the ingest pump). After any failure mid-write — a real I/O error or
/// an injected crash — the writer wedges itself: every later append and
/// commit is a no-op, so a torn file is never "repaired" by a
/// destructor flush the real crash would not have run.
class JournalWriter {
 public:
  /// `next_seq` is the first sequence number this writer will assign
  /// (recovery passes max-replayed + 1). Always starts a fresh segment;
  /// a torn tail from a previous life is left for the scanner to skip.
  JournalWriter(JournalConfig config, std::uint64_t next_seq = 1,
                const DurabilityHooks* hooks = nullptr);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Buffers one read; group-commits when the batch or the stream-time
  /// interval fills. Returns the assigned sequence number (0 if wedged).
  std::uint64_t append(const TagRead& read);

  /// Flushes everything buffered (no-op when empty or wedged).
  void commit();

  /// Time-based commit trigger for quiet periods: commits iff records
  /// are buffered and `now_s` is past the commit interval. Append
  /// triggers cover the busy case; the pump calls this so a tail never
  /// sits unflushed just because the reader went silent.
  void maybe_commit(double now_s);

  /// Deletes segments whose every record is <= `upto_seq` (the newest
  /// snapshot already covers them), then enforces max_segments.
  void prune(std::uint64_t upto_seq);

  std::uint64_t next_seq() const noexcept { return next_seq_; }
  /// Highest sequence number known flushed to the OS (0 = none).
  std::uint64_t last_committed_seq() const noexcept { return committed_seq_; }
  bool wedged() const noexcept { return wedged_; }
  const DurabilityCounters& counters() const noexcept { return counters_; }

 private:
  void open_segment();
  void write_all(const std::uint8_t* data, std::size_t size);

  JournalConfig config_;
  const DurabilityHooks* hooks_;
  int fd_ = -1;
  std::uint64_t segment_ordinal_ = 0;
  std::size_t segment_bytes_ = 0;
  std::uint64_t next_seq_;
  std::uint64_t committed_seq_ = 0;
  std::uint64_t buffered_seq_ = 0;
  std::size_t pending_records_ = 0;
  double last_commit_stream_s_ = -1.0;
  double newest_stream_s_ = -1.0;
  bool wedged_ = false;
  ByteWriter pending_;
  ByteWriter frame_;  // per-record scratch, reused
  DurabilityCounters counters_;
};

// ---------------------------------------------------------------------------
// Scanner

struct JournalRecord {
  std::uint64_t seq = 0;
  TagRead read;
};

struct JournalScanResult {
  /// Records delivered to the sink (intact and past `after_seq`).
  std::uint64_t delivered = 0;
  /// Highest intact sequence number seen anywhere (0 = none).
  std::uint64_t max_seq = 0;
  /// Skip/corruption accounting (replay_* and journal_* fields).
  DurabilityCounters counters;
};

/// Replays every intact record with seq > `after_seq`, in segment/file
/// order, through `sink`. Corruption — unreadable headers, CRC
/// mismatches, torn tails, inter-frame garbage — is skipped, counted
/// and resynced past; a missing directory scans as empty. Never throws
/// on file *content*; only on environmental failure (unreadable dir).
JournalScanResult scan_journal(
    const std::string& directory, std::uint64_t after_seq,
    const std::function<void(const JournalRecord&)>& sink);

}  // namespace tagbreathe::core
