// Baseline extractors from the other low-level fields (Sec. IV-A.1/2 and
// IV-D.2).
//
// The paper characterises RSSI (periodic but coarse: 0.5 dBm resolution)
// and raw Doppler (periodic envelope but very noisy: the intra-packet Δθ
// divides by a tiny 4πΔT) before settling on phase. These baselines make
// that comparison executable: the same fusion/filter/zero-crossing tail
// fed from RSSI or Doppler instead of phase-derived displacement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/breath_extractor.hpp"
#include "core/rate_estimator.hpp"
#include "core/types.hpp"

namespace tagbreathe::core {

enum class BaselineKind {
  Rssi,     // breath from RSSI readings directly
  Doppler,  // breath from integrated raw Doppler (velocity -> displacement)
};

const char* baseline_kind_name(BaselineKind kind) noexcept;

struct BaselineConfig {
  BaselineKind kind = BaselineKind::Rssi;
  /// Uniform resampling rate for the irregular report stream.
  double resample_hz = 20.0;
  /// Gaps longer than this are bridged by hold-last instead of a ramp.
  double max_gap_s = 1.0;
  ExtractorConfig extractor{};
  RateEstimatorConfig rate{};
};

struct BaselineResult {
  std::uint64_t user_id = 0;
  double rate_bpm = 0.0;
  bool reliable = false;
  BreathSignal breath;
  std::size_t reads_used = 0;
};

/// Runs the baseline for every user in the window.
std::vector<BaselineResult> analyze_baseline(std::span<const TagRead> reads,
                                             const BaselineConfig& config);

}  // namespace tagbreathe::core
