// Breath-to-breath analysis (extension).
//
// The paper's introduction motivates more than a mean rate: deep vs
// shallow breathing, "irregular breathing patterns alternating between
// fast and slow with occasional pauses". This module derives per-breath
// intervals from the extracted signal's rising zero crossings and
// computes the standard interval-variability statistics (by analogy to
// heart-rate variability), a regularity classification, and pause
// detection.
#pragma once

#include <span>
#include <vector>

#include "core/rate_estimator.hpp"

namespace tagbreathe::core {

/// One detected breath (a full cycle between consecutive rising
/// crossings).
struct Breath {
  double start_s = 0.0;
  double duration_s = 0.0;
  /// Peak |amplitude| of the breath signal within the cycle [same units
  /// as the displacement track, metres].
  double amplitude = 0.0;
};

struct BreathStats {
  std::vector<Breath> breaths;

  double mean_rate_bpm = 0.0;
  /// Standard deviation of breath durations [s] (the "SDNN" analogue).
  double interval_sd_s = 0.0;
  /// Root mean square of successive duration differences [s] ("RMSSD").
  double interval_rmssd_s = 0.0;
  /// Coefficient of variation of durations (SD / mean).
  double interval_cv = 0.0;
  /// Mean breath amplitude.
  double mean_amplitude = 0.0;
  /// Ratio of the deepest to the shallowest breath amplitude.
  double amplitude_range_ratio = 1.0;
};

struct BreathPause {
  double start_s = 0.0;
  double duration_s = 0.0;
};

struct BreathStatsConfig {
  /// A gap between breaths longer than this multiple of the median
  /// breath duration is reported as a pause.
  double pause_factor = 1.8;
  /// Regularity: CV above this is classified irregular.
  double irregular_cv = 0.25;
};

/// Derives per-breath statistics from an extracted breath signal and its
/// crossing set (as produced by ZeroCrossingRateEstimator).
BreathStats analyze_breaths(std::span<const signal::TimedSample> breath,
                            const RateEstimate& estimate);

/// Pauses: inter-breath gaps far longer than the median breath.
std::vector<BreathPause> detect_pauses(const BreathStats& stats,
                                       const BreathStatsConfig& config = {});

/// True if the interval variability marks the pattern irregular.
bool is_irregular(const BreathStats& stats,
                  const BreathStatsConfig& config = {});

}  // namespace tagbreathe::core
