// Fixed-size worker pool for the per-user analysis fan-out.
//
// The realtime engine re-runs the Fig. 10 workflow for every tracked
// user once per update tick; the per-user analyses are independent
// (BreathMonitor::analyze_user is const over a const demux), so they
// parallelise embarrassingly. The pool owns N persistent threads; the
// caller participates too, so `run` uses N+1 execution slots. Work is
// claimed from a shared atomic index (dynamic load balancing — user
// windows vary wildly in read count), and each job invocation receives
// the executing slot id so callers can maintain per-slot scratch arenas
// (FFT workspaces) without locking.
//
// Determinism: the pool schedules *which thread* computes each index
// nondeterministically, but callers write results into per-index slots
// and consume them in index order, so the observable output is
// independent of thread count and interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tagbreathe::core {

class AnalysisPool {
 public:
  /// Spawns `threads` persistent workers. 0 => no threads; run() then
  /// executes inline on the caller (the serial engine).
  explicit AnalysisPool(std::size_t threads);
  ~AnalysisPool();

  AnalysisPool(const AnalysisPool&) = delete;
  AnalysisPool& operator=(const AnalysisPool&) = delete;

  /// Worker threads owned by the pool.
  std::size_t threads() const noexcept { return threads_.size(); }

  /// Execution slots: workers + the participating caller. Size per-slot
  /// scratch arenas with this.
  std::size_t slots() const noexcept { return threads_.size() + 1; }

  /// Runs job(index, slot) for every index in [0, n), blocking until
  /// all complete. slot < slots(); the caller runs as slot 0. If any
  /// invocation throws, the first exception is rethrown here after the
  /// batch drains. Not reentrant: one run() at a time per pool.
  void run(std::size_t n,
           const std::function<void(std::size_t index, std::size_t slot)>& job);

 private:
  void worker_loop(std::size_t slot);
  void work_through(const std::function<void(std::size_t, std::size_t)>& job,
                    std::size_t n, std::size_t slot);

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t batch_n_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t workers_active_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;

  /// Shared work-claim index, hammered by every slot during a batch.
  /// Own cache line: without the alignment it shares a line with the
  /// cold batch bookkeeping above, and each claim's RMW would bounce
  /// that line through every core reading the bookkeeping.
  alignas(64) std::atomic<std::size_t> next_{0};
};

}  // namespace tagbreathe::core
