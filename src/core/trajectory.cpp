#include "core/trajectory.hpp"

#include <algorithm>
#include <stdexcept>

namespace tagbreathe::core {

double RateTrajectory::rate_at(double t) const noexcept {
  const RatePointAt* prev = nullptr;
  for (const auto& p : points) {
    if (!p.reliable) continue;
    if (p.time_s >= t) {
      if (prev == nullptr) return p.rate_bpm;
      const double span = p.time_s - prev->time_s;
      if (span <= 0.0) return p.rate_bpm;
      const double frac = (t - prev->time_s) / span;
      return prev->rate_bpm + frac * (p.rate_bpm - prev->rate_bpm);
    }
    prev = &p;
  }
  return prev != nullptr ? prev->rate_bpm : 0.0;
}

std::vector<RateTrajectory> compute_rate_trajectories(
    std::span<const TagRead> reads, const TrajectoryConfig& config) {
  if (config.window_s <= 0.0 || config.hop_s <= 0.0)
    throw std::invalid_argument("trajectory: window and hop must be positive");
  std::vector<RateTrajectory> out;
  if (reads.empty()) return out;

  StreamDemux demux;
  demux.add(reads);
  double t0 = reads.front().time_s, t1 = t0;
  for (const TagRead& r : reads) {
    t0 = std::min(t0, r.time_s);
    t1 = std::max(t1, r.time_s);
  }
  if (t1 - t0 < config.window_s) {
    // Too short for even one window: fall back to a single whole-span
    // analysis.
    BreathMonitor monitor(config.monitor);
    for (std::uint64_t user : demux.users()) {
      RateTrajectory traj;
      traj.user_id = user;
      const auto a = monitor.analyze_user(demux, user, t0, t1);
      traj.points.push_back(RatePointAt{(t0 + t1) / 2.0, a.rate.rate_bpm,
                                        a.rate.reliable});
      out.push_back(std::move(traj));
    }
    return out;
  }

  BreathMonitor monitor(config.monitor);
  for (std::uint64_t user : demux.users()) {
    RateTrajectory traj;
    traj.user_id = user;
    for (double start = t0; start + config.window_s <= t1 + 1e-9;
         start += config.hop_s) {
      const double end = start + config.window_s;
      const auto a = monitor.analyze_user(demux, user, start, end);
      traj.points.push_back(RatePointAt{(start + end) / 2.0,
                                        a.rate.rate_bpm, a.rate.reliable});
    }
    out.push_back(std::move(traj));
  }
  return out;
}

}  // namespace tagbreathe::core
