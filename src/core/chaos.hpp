// Deterministic chaos-scenario harness for the ingest front-end.
//
// The transport layer's FaultPlan (llrp/fault_channel) models wire
// faults — disconnects, latency, frame corruption. This layer composes
// the failure modes the transport cannot express because they happen to
// *decoded reads*: tag dropout, duplicate and out-of-order delivery,
// timestamp skew and regression, EPC bit corruption, burst overload,
// reader blackouts. Every mode is driven by a seeded Rng and stream
// time, so a scenario replays bit-identically from its seed.
//
// run_soak() drives a multi-user synthetic breathing population through
// a ChaosInjector into an IngestFrontEnd + RealtimePipeline and checks
// the data-plane invariants the admission layer exists to guarantee:
// bounded queue depth and per-user state, monotonic emitted timestamps,
// no events for users outside the roster (i.e. nothing estimated from
// quarantined reads), and SignalLost/Recovered transitions consistent
// with injected blackouts. The event log uses fixed-precision
// formatting so two runs with one seed produce identical logs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "core/ingest.hpp"
#include "core/pipeline.hpp"
#include "core/types.hpp"

namespace tagbreathe::core {

struct ChaosConfig {
  std::uint64_t seed = 0xC4A05;
  /// Per-read probability of silent loss (tag dropout / missed slot).
  double dropout_prob = 0.0;
  /// Per-read probability of a second, identical delivery.
  double duplicate_prob = 0.0;
  /// Per-read probability of delayed delivery (=> out-of-order), with a
  /// uniform hold-back in (0, reorder_max_delay_s].
  double reorder_prob = 0.0;
  double reorder_max_delay_s = 0.0;
  /// Per-read probability of a timestamp step, uniform in
  /// [-skew_max_s, +skew_max_s] (negative steps are regressions).
  double skew_prob = 0.0;
  double skew_max_s = 0.0;
  /// Per-read probability of flipping one random bit of the EPC.
  double epc_corrupt_prob = 0.0;
  /// Reader blackout: every `blackout_period_s` of stream time, all
  /// delivery stops for `blackout_duration_s` (line-of-sight blockage,
  /// reader reboot). 0 disables.
  double blackout_period_s = 0.0;
  double blackout_duration_s = 0.0;
  /// Burst overload: every `burst_period_s`, the most recent delivered
  /// reads are replayed `burst_copies` times back-to-back (a reader
  /// flushing a stale report backlog). 0 disables.
  double burst_period_s = 0.0;
  std::size_t burst_copies = 0;

  /// Throws std::invalid_argument on nonsensical values (probabilities
  /// outside [0, 1], negative durations).
  void validate() const;

  /// Every failure mode enabled at moderate rates — the composite
  /// scenario the acceptance soak runs.
  static ChaosConfig composite(std::uint64_t seed);
};

struct ChaosStats {
  std::size_t total_in = 0;          // clean reads fed
  std::size_t total_out = 0;         // reads delivered downstream
  std::size_t dropped = 0;           // per-read dropout
  std::size_t blackout_dropped = 0;  // lost to blackout windows
  std::size_t duplicated = 0;        // extra deliveries injected
  std::size_t reordered = 0;         // reads delivered late
  std::size_t skewed = 0;            // timestamps perturbed
  std::size_t corrupted = 0;         // EPC bits flipped
  std::size_t burst_injected = 0;    // overload replays injected
};

/// Applies the configured failure modes to a clean, time-ordered read
/// stream. Feed reads in order; delivered (possibly mangled) reads are
/// appended to the caller's vector.
class ChaosInjector {
 public:
  explicit ChaosInjector(ChaosConfig config);

  /// Feeds one clean read; appends 0..n deliveries to `out`.
  void feed(const TagRead& read, std::vector<TagRead>& out);

  /// Delivers any reads still held back for reordering.
  void flush(std::vector<TagRead>& out);

  const ChaosStats& stats() const noexcept { return stats_; }

 private:
  struct Delayed {
    double deliver_at_s = 0.0;
    TagRead read;
  };

  bool in_blackout(double time_s) const noexcept;
  void deliver(const TagRead& read, std::vector<TagRead>& out);
  void release_due(double now_s, std::vector<TagRead>& out);

  ChaosConfig config_;
  common::Rng rng_;
  ChaosStats stats_;
  std::vector<Delayed> delayed_;
  common::RingBuffer<TagRead> recent_;  // replay source for bursts
  double next_burst_s_;
};

// ---------------------------------------------------------------------------
// Reader-scoped chaos (fleet failover, ISSUE 6)
//
// The modes above mangle individual reads; a reader fleet additionally
// fails at the granularity of a whole reader: one reader goes dark
// (power loss, network partition), flaps (die/revive cycles from a bad
// cable or overheating), or bursts (one reader flushing a stale
// backlog while its peers stay healthy). ReaderChaos scripts those as
// deterministic outage windows layered over a per-reader ChaosInjector,
// so fleet failover soaks replay bit-identically from their seeds.

/// One scripted delivery gap: the reader is dark in
/// [start_s, start_s + duration_s).
struct ReaderOutage {
  double start_s = 0.0;
  double duration_s = 0.0;
};

struct ReaderChaosConfig {
  /// Which fleet reader this scenario applies to.
  std::size_t reader = 0;
  /// Per-read faults (dropout, dup, skew, bursts...) for this reader.
  ChaosConfig chaos{};
  /// Scripted blackouts. Overlaps are allowed (union semantics).
  std::vector<ReaderOutage> outages;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;

  /// One reader dark for [start_s, start_s + duration_s).
  static ReaderChaosConfig blackout(std::size_t reader, double start_s,
                                    double duration_s, std::uint64_t seed);
  /// Die/revive cycling: `cycles` repetitions of `up_s` alive then
  /// `down_s` dark, beginning at start_s + up_s.
  static ReaderChaosConfig flap(std::size_t reader, double start_s,
                                double up_s, double down_s,
                                std::size_t cycles, std::uint64_t seed);
  /// One reader replaying its recent backlog `copies` times every
  /// `period_s` (burst overload) while the rest of the fleet is clean.
  static ReaderChaosConfig burst_overload(std::size_t reader, double period_s,
                                          std::size_t copies,
                                          std::uint64_t seed);
};

/// Per-reader injector: scripted outages + the per-read failure modes.
/// Reads fed while the reader is offline are dropped and counted; the
/// fleet soak also uses offline() to drive its health probes (the
/// supervisor-side view of the same outage).
class ReaderChaos {
 public:
  explicit ReaderChaos(ReaderChaosConfig config);

  bool offline(double time_s) const noexcept;
  void feed(const TagRead& read, std::vector<TagRead>& out);
  void flush(std::vector<TagRead>& out);

  std::size_t reader() const noexcept { return config_.reader; }
  const ChaosStats& stats() const noexcept { return injector_.stats(); }
  /// Reads swallowed by scripted outage windows.
  std::size_t outage_dropped() const noexcept { return outage_dropped_; }

 private:
  ReaderChaosConfig config_;
  ChaosInjector injector_;
  std::size_t outage_dropped_ = 0;
};

/// Multi-user end-to-end soak under chaos.
struct SoakConfig {
  std::size_t n_users = 3;
  std::size_t tags_per_user = 2;
  /// Simulated duration (the acceptance scenario runs 600 s).
  double duration_s = 600.0;
  /// Clean per-tag read cadence.
  double read_rate_hz = 8.0;
  /// User u breathes at base + 1.5·u bpm.
  double base_rate_bpm = 10.0;
  /// Analysis-thread pump cadence.
  double pump_period_s = 0.25;
  IngestConfig ingest{};
  PipelineConfig pipeline{};
  ChaosConfig chaos{};
  /// Optional observability hub the soak's pipeline + front-end bind to
  /// (the golden-snapshot determinism test exports it after the run).
  /// Must outlive the soak call. Null = no instrumentation.
  obs::Observability* observability = nullptr;

  void validate() const;
};

struct SoakReport {
  /// Fixed-precision, deterministic log of every pipeline event.
  std::vector<std::string> event_log;
  /// Invariant violations (empty on a healthy run).
  std::vector<std::string> violations;
  ChaosStats chaos;
  IngestQueueCounters queue;
  ValidationCounters validation;
  /// Journal/snapshot/recovery counters — populated by the durability
  /// soak (core/recovery run_durable_soak); all-zero for a plain soak.
  DurabilityCounters durability;
  std::size_t events = 0;
  std::size_t signal_lost_events = 0;
  std::size_t signal_recovered_events = 0;
  std::size_t peak_tracked_users = 0;
  double last_event_time_s = 0.0;

  bool ok() const noexcept { return violations.empty(); }
};

/// Fixed-precision one-line rendering of a pipeline event. All soak
/// logs (chaos and crash-recovery) format through this, so two
/// deterministic runs — or a golden run and a recovered run — can be
/// compared byte for byte.
std::string format_soak_event(const PipelineEvent& event);

/// The clean synthetic population run_soak feeds: n_users breathing
/// sinusoids, tags_per_user staggered read streams each, time-sorted.
/// Exposed for the durability layer's crash harness, whose
/// golden-vs-recovered comparison needs the identical population.
ReadStream make_soak_population(const SoakConfig& config);

/// Event sink + invariant bookkeeping shared by run_soak and the
/// durability soaks (core/recovery): event counting and logging,
/// monotonic event time, roster membership, and tracked-user caps.
class SoakInvariantSink {
 public:
  /// `roster` must be sorted ascending. Caps of 0 disable their checks.
  SoakInvariantSink(std::vector<std::uint64_t> roster, std::size_t user_cap,
                    std::size_t validator_cap, SoakReport& report);

  void on_event(const PipelineEvent& event);

  /// Tracking-state checks, run after every pump.
  void after_pump(const RealtimePipeline& pipeline,
                  std::size_t validator_tracked_users);

  void violation(std::string line);

 private:
  std::vector<std::uint64_t> roster_;
  std::size_t user_cap_;
  std::size_t validator_cap_;
  SoakReport& report_;
  double last_event_s_;
};

/// Queue-counter conservation gate shared by every soak harness
/// (run_soak, run_durable_soak, run_fleet_soak): bounded depth and the
/// law `enqueued == drained + shed_oldest + coalesced`. Violation lines
/// are appended to `violations`; `context` prefixes them (e.g.
/// "reader 3: ") so fleet reports attribute the broken reader.
void append_queue_invariant_violations(const IngestQueueCounters& queue,
                                       std::size_t capacity,
                                       std::vector<std::string>& violations,
                                       const std::string& context = {});

/// Runs the soak and checks invariants. Deterministic: two calls with
/// equal configs return identical reports (event logs included).
SoakReport run_soak(const SoakConfig& config);

}  // namespace tagbreathe::core
