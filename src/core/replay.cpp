#include "core/replay.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace tagbreathe::core {

const char* const kReplayCsvHeader =
    "time_s,epc_hex,antenna_id,channel_index,frequency_hz,rssi_dbm,"
    "phase_rad,doppler_hz";

namespace {

void write_row(std::ostream& out, const TagRead& r) {
  std::ostringstream line;
  line.precision(std::numeric_limits<double>::max_digits10);
  line << r.time_s << ',' << r.epc.to_hex() << ','
       << static_cast<int>(r.antenna_id) << ',' << r.channel_index << ','
       << r.frequency_hz << ',' << r.rssi_dbm << ',' << r.phase_rad << ','
       << r.doppler_hz;
  out << line.str() << '\n';
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void save_reads_csv(std::ostream& out, std::span<const TagRead> reads) {
  out << kReplayCsvHeader << '\n';
  for (const TagRead& r : reads) write_row(out, r);
}

void save_reads_csv(const std::string& path, std::span<const TagRead> reads) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_reads_csv: cannot open " + path);
  save_reads_csv(out, reads);
  if (!out) throw std::runtime_error("save_reads_csv: write failed " + path);
}

ReadStream load_reads_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("load_reads_csv: empty input");
  // Tolerate a UTF-8 BOM and trailing CR.
  if (line.size() >= 3 && line.compare(0, 3, "\xEF\xBB\xBF") == 0)
    line.erase(0, 3);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kReplayCsvHeader)
    throw std::runtime_error("load_reads_csv: unexpected header: " + line);

  ReadStream reads;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 8)
      throw std::runtime_error("load_reads_csv: line " +
                               std::to_string(line_no) + ": expected 8 cells");
    try {
      TagRead r;
      r.time_s = std::stod(cells[0]);
      const auto epc = rfid::Epc96::from_hex(cells[1]);
      if (!epc)
        throw std::invalid_argument("bad EPC hex: " + cells[1]);
      r.epc = *epc;
      const int antenna = std::stoi(cells[2]);
      if (antenna < 0 || antenna > 255)
        throw std::invalid_argument("antenna out of range");
      r.antenna_id = static_cast<std::uint8_t>(antenna);
      const int channel = std::stoi(cells[3]);
      if (channel < 0 || channel > 0xFFFF)
        throw std::invalid_argument("channel out of range");
      r.channel_index = static_cast<std::uint16_t>(channel);
      r.frequency_hz = std::stod(cells[4]);
      r.rssi_dbm = std::stod(cells[5]);
      r.phase_rad = std::stod(cells[6]);
      r.doppler_hz = std::stod(cells[7]);
      reads.push_back(r);
    } catch (const std::exception& e) {
      throw std::runtime_error("load_reads_csv: line " +
                               std::to_string(line_no) + ": " + e.what());
    }
  }
  return reads;
}

ReadStream load_reads_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_reads_csv: cannot open " + path);
  return load_reads_csv(in);
}

struct ReadRecorder::Impl {
  std::ofstream out;
};

ReadRecorder::ReadRecorder(const std::string& path, std::size_t flush_every)
    : impl_(std::make_unique<Impl>()), flush_every_(flush_every) {
  impl_->out.open(path);
  if (!impl_->out)
    throw std::runtime_error("ReadRecorder: cannot open " + path);
  impl_->out << kReplayCsvHeader << '\n';
}

ReadRecorder::~ReadRecorder() = default;

void ReadRecorder::record(const TagRead& read) {
  write_row(impl_->out, read);
  ++count_;
  if (flush_every_ > 0 && ++since_flush_ >= flush_every_) flush();
}

void ReadRecorder::flush() {
  since_flush_ = 0;
  impl_->out.flush();
  if (!impl_->out)
    throw std::runtime_error("ReadRecorder: flush failed");
}

std::size_t replay_reads(std::span<const TagRead> reads,
                         const std::function<void(const TagRead&)>& sink) {
  // Recordings are normally already time-ordered; enforce it so replay
  // into the realtime pipeline (which requires monotone time) is safe.
  std::vector<const TagRead*> order;
  order.reserve(reads.size());
  for (const TagRead& r : reads) order.push_back(&r);
  std::stable_sort(order.begin(), order.end(),
                   [](const TagRead* a, const TagRead* b) {
                     return a->time_s < b->time_s;
                   });
  for (const TagRead* r : order) sink(*r);
  return order.size();
}

}  // namespace tagbreathe::core
