// Evaluation metrics (Sec. VI-B, Eq. 8).
#pragma once

#include <cstdint>
#include <span>

namespace tagbreathe::core {

/// Eq. 8: accuracy = 1 − |R̂ − R| / R. Clamped to [0, 1] (a wildly wrong
/// estimate cannot score below zero, matching how such plots are read).
double breathing_rate_accuracy(double estimated_bpm, double true_bpm) noexcept;

/// Absolute error in breaths per minute.
double rate_error_bpm(double estimated_bpm, double true_bpm) noexcept;

/// Mean Eq. 8 accuracy over paired estimates/truths.
double mean_accuracy(std::span<const double> estimated_bpm,
                     std::span<const double> true_bpm);

/// Mean Eq. 8 accuracy over the pairs whose mask entry is non-zero.
/// Degradation analyses compare a faulty run to a fault-free run on the
/// non-gap windows only (mask = SignalHealth::Ok), since gap windows
/// are flagged rather than scored. Returns 0 when nothing is included.
double mean_accuracy_masked(std::span<const double> estimated_bpm,
                            std::span<const double> true_bpm,
                            std::span<const std::uint8_t> include);

/// Largest |estimate − truth| [bpm] over the included pairs (0 when
/// nothing is included).
double max_rate_error_masked(std::span<const double> estimated_bpm,
                             std::span<const double> true_bpm,
                             std::span<const std::uint8_t> include);

}  // namespace tagbreathe::core
