// Evaluation metrics (Sec. VI-B, Eq. 8).
#pragma once

#include <span>

namespace tagbreathe::core {

/// Eq. 8: accuracy = 1 − |R̂ − R| / R. Clamped to [0, 1] (a wildly wrong
/// estimate cannot score below zero, matching how such plots are read).
double breathing_rate_accuracy(double estimated_bpm, double true_bpm) noexcept;

/// Absolute error in breaths per minute.
double rate_error_bpm(double estimated_bpm, double true_bpm) noexcept;

/// Mean Eq. 8 accuracy over paired estimates/truths.
double mean_accuracy(std::span<const double> estimated_bpm,
                     std::span<const double> true_bpm);

}  // namespace tagbreathe::core
