// Evaluation metrics (Sec. VI-B, Eq. 8) and runtime counter primitives
// shared by the observability surfaces (ingest queue delay, etc.).
#pragma once

#include <cstdint>
#include <span>

namespace tagbreathe::core {

/// Streaming latency accumulator: constant space, deterministic, cheap
/// enough for per-read accounting. The ingest queue records the
/// stream-time delay between enqueue and drain through one of these.
struct LatencyStats {
  std::uint64_t samples = 0;
  double total_s = 0.0;
  double max_s = 0.0;

  void record(double seconds) noexcept;
  double mean_s() const noexcept;
  void merge(const LatencyStats& other) noexcept;
};

/// Durability-layer observability (core/journal, core/snapshot,
/// core/recovery): what was persisted, what was skipped as corrupt, and
/// what recovery rebuilt. Each component fills the fields it owns;
/// DurableMonitor::counters() merges them into one view (the chaos-soak
/// summary prints it). Corruption counters matter most: a bit-flipped
/// journal record or a rejected snapshot must surface here, never as a
/// crash.
struct DurabilityCounters {
  // Journal write path.
  std::uint64_t journal_records_appended = 0;
  std::uint64_t journal_commits = 0;
  std::uint64_t journal_bytes_written = 0;
  std::uint64_t journal_segments_created = 0;
  std::uint64_t journal_segments_pruned = 0;
  // Journal scan / replay path.
  std::uint64_t replay_records = 0;           // intact records replayed
  std::uint64_t replay_quarantined = 0;       // replayed, refused by validation
  std::uint64_t journal_records_corrupt = 0;  // CRC/frame failures skipped
  std::uint64_t journal_truncated_tails = 0;  // torn segment tails skipped
  std::uint64_t journal_segments_scanned = 0;
  std::uint64_t journal_segments_rejected = 0;  // unreadable segment headers
  // Snapshot path.
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshot_bytes_written = 0;
  std::uint64_t snapshots_pruned = 0;
  std::uint64_t snapshots_loaded = 0;    // accepted at recovery
  std::uint64_t snapshots_rejected = 0;  // bad magic/version/CRC, skipped

  /// Field-wise sum (all counters are monotonic totals).
  void merge(const DurabilityCounters& other) noexcept;
};

/// Eq. 8: accuracy = 1 − |R̂ − R| / R. Clamped to [0, 1] (a wildly wrong
/// estimate cannot score below zero, matching how such plots are read).
///
/// Edge contract (tested in test_rate_metrics):
/// - true_bpm <= 0 (including negative): the relative error is
///   undefined, so the score is exact-match only — 1 when the estimate
///   is exactly 0, else 0. No division by zero ever happens.
/// - NaN in either argument (with true_bpm > 0 or true_bpm NaN)
///   propagates: the result is NaN, never silently clamped to a valid
///   score. Callers averaging accuracies must filter non-finite inputs.
/// - Every finite result lies in [0, 1]; a negative estimate against a
///   positive truth just clamps to 0.
double breathing_rate_accuracy(double estimated_bpm, double true_bpm) noexcept;

/// Absolute error in breaths per minute. |est − true|; NaN propagates.
double rate_error_bpm(double estimated_bpm, double true_bpm) noexcept;

/// Mean Eq. 8 accuracy over paired estimates/truths.
double mean_accuracy(std::span<const double> estimated_bpm,
                     std::span<const double> true_bpm);

/// Mean Eq. 8 accuracy over the pairs whose mask entry is non-zero.
/// Degradation analyses compare a faulty run to a fault-free run on the
/// non-gap windows only (mask = SignalHealth::Ok), since gap windows
/// are flagged rather than scored. Returns 0 when nothing is included.
double mean_accuracy_masked(std::span<const double> estimated_bpm,
                            std::span<const double> true_bpm,
                            std::span<const std::uint8_t> include);

/// Largest |estimate − truth| [bpm] over the included pairs (0 when
/// nothing is included).
double max_rate_error_masked(std::span<const double> estimated_bpm,
                             std::span<const double> true_bpm,
                             std::span<const std::uint8_t> include);

}  // namespace tagbreathe::core
