// Realtime streaming pipeline (Sec. V: "executed in a pipelined manner
// ... visualised in realtime").
//
// Wraps BreathMonitor in a sliding window: reads are pushed as the reader
// reports them; every update period the window is re-analysed and events
// are emitted per user — rate updates (Eq. 5 over the last M crossings),
// apnea alerts when a previously-breathing user's signal stops crossing
// zero, and signal-lost warnings when a user's tags stop being read
// (blocked line of sight, out of range).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/demux.hpp"
#include "core/monitor.hpp"

namespace tagbreathe::core {

struct PipelineConfig {
  MonitorConfig monitor{};
  /// Analysis window length.
  double window_s = 30.0;
  /// Re-analysis cadence.
  double update_period_s = 1.0;
  /// Minimum window fill before estimates are emitted.
  double warmup_s = 10.0;
  /// No zero crossing for this long while reads keep arriving => apnea.
  double apnea_silence_s = 10.0;
  /// No reads at all for this long => signal lost.
  double signal_loss_s = 5.0;
};

enum class PipelineEventKind : std::uint8_t {
  RateUpdate,
  ApneaAlert,
  SignalLost,
  SignalRecovered,
};

const char* pipeline_event_name(PipelineEventKind kind) noexcept;

struct PipelineEvent {
  PipelineEventKind kind = PipelineEventKind::RateUpdate;
  std::uint64_t user_id = 0;
  double time_s = 0.0;
  /// Rate for RateUpdate events [bpm].
  double rate_bpm = 0.0;
  /// Whether the estimator flagged the rate reliable.
  bool reliable = false;
  /// Signal condition at emission time: a RateUpdate carrying Stale is
  /// coasting on a gappy window and should be rendered accordingly.
  SignalHealth health = SignalHealth::Ok;
};

class RealtimePipeline {
 public:
  using EventCallback = std::function<void(const PipelineEvent&)>;

  explicit RealtimePipeline(PipelineConfig config = {},
                            EventCallback callback = nullptr);

  /// Feeds one low-level read. Reads must arrive in time order; the
  /// pipeline re-analyses and fires events whenever the stream clock
  /// crosses the next update boundary.
  void push(const TagRead& read);

  /// Advances the stream clock without data (lets loss detection fire
  /// when the reader goes silent).
  void advance_to(double time_s);

  /// Most recent analysis per user (empty before warm-up).
  const std::map<std::uint64_t, UserAnalysis>& latest() const noexcept {
    return latest_;
  }

  /// Current signal condition of a user (Lost for unknown users).
  SignalHealth health(std::uint64_t user_id) const noexcept;

  double now_s() const noexcept { return now_; }

 private:
  void update(double time_s);
  void emit(const PipelineEvent& event);

  PipelineConfig config_;
  EventCallback callback_;
  BreathMonitor monitor_;
  StreamDemux demux_;

  double now_ = 0.0;
  double start_ = 0.0;
  bool started_ = false;
  double next_update_ = 0.0;

  struct UserState {
    double last_read_s = -1.0;
    double last_crossing_s = -1.0;
    bool in_apnea = false;
    bool lost = false;
    bool ever_reliable = false;
    SignalHealth health = SignalHealth::Lost;
  };
  std::map<std::uint64_t, UserState> user_state_;
  std::map<std::uint64_t, UserAnalysis> latest_;
};

}  // namespace tagbreathe::core
