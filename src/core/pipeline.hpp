// Realtime streaming pipeline (Sec. V: "executed in a pipelined manner
// ... visualised in realtime").
//
// Wraps BreathMonitor in a sliding window: reads are pushed as the reader
// reports them; every update period the window is re-analysed and events
// are emitted per user — rate updates (Eq. 5 over the last M crossings),
// apnea alerts when a previously-breathing user's signal stops crossing
// zero, and signal-lost warnings when a user's tags stop being read
// (blocked line of sight, out of range).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/flat_map.hpp"
#include "common/slab_arena.hpp"
#include "core/analysis_pool.hpp"
#include "core/demux.hpp"
#include "core/monitor.hpp"

namespace tagbreathe::core {

struct PipelineConfig {
  MonitorConfig monitor{};
  /// Analysis window length.
  double window_s = 30.0;
  /// Re-analysis cadence.
  double update_period_s = 1.0;
  /// Minimum window fill before estimates are emitted.
  double warmup_s = 10.0;
  /// No zero crossing for this long while reads keep arriving => apnea.
  double apnea_silence_s = 10.0;
  /// No reads at all for this long => signal lost.
  double signal_loss_s = 5.0;
  /// Admission control: at most this many users are tracked at once;
  /// adding one more evicts the least-recently-read user (state, latest
  /// analysis and buffered reads). Caps memory against adversarial or
  /// corrupted EPC streams that mint new user IDs. 0 = unlimited.
  std::size_t max_users = 0;
  /// Per-(user, tag, antenna) cap on buffered reads, forwarded to the
  /// demux (StreamDemux::set_max_reads_per_stream). 0 = unlimited.
  std::size_t max_reads_per_stream = 0;
  /// Worker threads for the per-user analysis fan-out each update tick.
  /// 0 = serial in the caller's thread (the legacy engine, default).
  /// N > 0 spawns a fixed AnalysisPool of N threads; results are
  /// gathered and emitted in user-id order, so the event stream is
  /// byte-identical to the serial engine's.
  std::size_t analysis_threads = 0;
  /// Dirty-window tracking: skip re-analysis of users whose streams
  /// received no new reads since their last analysis; they coast on the
  /// cached UserAnalysis (rate/health frozen) until data resumes or the
  /// signal-loss detector fires. Purely data-dependent, so determinism
  /// across thread counts is unaffected. Default off: the legacy engine
  /// re-analyses every user every tick.
  bool skip_clean_users = false;
  /// Users per batched BreathMonitor::analyze_users call in the update
  /// tick fan-out. Every user in a chunk runs its transforms through one
  /// extract_many sweep (shared FFT plan, one plan-cache hit per size)
  /// on one warm per-slot scratch. Chunks — not individual users — are
  /// the work items handed to the analysis pool. Results are
  /// bit-identical for any batch size (batched and single analysis share
  /// every arithmetic path), so the event stream does not depend on this
  /// knob. 0 or 1 = one user per call (the legacy fan-out shape).
  std::size_t analysis_batch = 16;

  /// Throws std::invalid_argument on nonsensical values (non-positive
  /// window or update period, negative warm-up, warm-up beyond the
  /// window, negative alarm thresholds). RealtimePipeline validates on
  /// construction so misconfiguration fails loudly instead of silently
  /// emitting garbage.
  void validate() const;
};

enum class PipelineEventKind : std::uint8_t {
  RateUpdate,
  ApneaAlert,
  SignalLost,
  SignalRecovered,
};

const char* pipeline_event_name(PipelineEventKind kind) noexcept;

struct PipelineEvent {
  PipelineEventKind kind = PipelineEventKind::RateUpdate;
  std::uint64_t user_id = 0;
  double time_s = 0.0;
  /// Rate for RateUpdate events [bpm].
  double rate_bpm = 0.0;
  /// Whether the estimator flagged the rate reliable.
  bool reliable = false;
  /// Signal condition at emission time: a RateUpdate carrying Stale is
  /// coasting on a gappy window and should be rendered accordingly.
  SignalHealth health = SignalHealth::Ok;
};

/// Serializable image of a pipeline (core/snapshot): the stream clock,
/// the per-user event state machine, dirty-window bookkeeping and the
/// buffered demux window. The latest per-user analyses are *not* part
/// of the state — they are derived data, recomputed at the first update
/// tick after a restore.
struct PipelineState {
  struct User {
    std::uint64_t user_id = 0;
    double last_read_s = -1.0;
    double last_crossing_s = -1.0;
    bool in_apnea = false;
    bool lost = false;
    bool ever_reliable = false;
    SignalHealth health = SignalHealth::Lost;
  };
  double now_s = 0.0;
  double start_s = 0.0;
  double next_update_s = 0.0;
  bool started = false;
  std::uint64_t users_evicted = 0;
  std::vector<User> users;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> last_seen_reads;
  DemuxState demux;
};

class RealtimePipeline {
 public:
  using EventCallback = std::function<void(const PipelineEvent&)>;

  explicit RealtimePipeline(PipelineConfig config = {},
                            EventCallback callback = nullptr);

  /// Feeds one low-level read. Reads must arrive in time order; the
  /// pipeline re-analyses and fires events whenever the stream clock
  /// crosses the next update boundary.
  void push(const TagRead& read);

  /// Advances the stream clock without data (lets loss detection fire
  /// when the reader goes silent).
  void advance_to(double time_s);

  /// Pins the update grid to `t0` before any read arrives (no-op once
  /// started). The fleet coordinator starts every shard pipeline on ONE
  /// common grid so update boundaries — and therefore the merged event
  /// log — do not depend on which shard happened to hear the first
  /// read. Without this, the grid anchors to each shard's first push.
  void start_at(double t0);

  /// Most recent analysis of one user; null before warm-up or for
  /// unknown users. The pointer stays valid until the user's next
  /// analysis, eviction, or an import (slab slots never move).
  const UserAnalysis* latest_analysis(std::uint64_t user_id) const noexcept {
    const common::SlabHandle* handle = latest_.find(user_id);
    return handle == nullptr ? nullptr : latest_arena_.get(*handle);
  }
  /// Users with a cached analysis (0 before warm-up).
  std::size_t latest_size() const noexcept { return latest_.size(); }
  /// Visits (user_id, analysis) ascending by user id — the explicit
  /// ordering contract (ISSUE 10) that replaces iterating the std::map
  /// `latest()` used to expose. Dashboards and renderers that show all
  /// users go through this so their output order cannot depend on the
  /// registry's hash layout.
  template <typename F>
  void for_each_latest_ordered(F&& fn) const {
    latest_.for_each_ordered(
        [&](const std::uint64_t& user, const common::SlabHandle& handle) {
          fn(user, latest_arena_.at(handle));
        });
  }

  /// Current signal condition of a user (Lost for unknown users).
  SignalHealth health(std::uint64_t user_id) const noexcept;

  /// Drops every trace of one user: tracking state, latest analysis and
  /// buffered reads. Admission layers call this when they evict a user.
  void forget_user(std::uint64_t user_id);

  /// Users currently tracked (bounded by config.max_users when set).
  std::size_t tracked_users() const noexcept { return user_state_.size(); }

  /// Whether this user currently has tracking state (health() alone
  /// cannot distinguish "unknown" from "known but Lost").
  bool tracks(std::uint64_t user_id) const noexcept {
    return user_state_.contains(user_id);
  }

  /// Handoff hooks (fleet rebalancing): capture / merge the buffered
  /// demux window of one user. import_user also marks the user read at
  /// the newest imported timestamp so signal-loss detection restarts
  /// from the replayed tail, not from minus infinity. Returns reads
  /// imported.
  DemuxState export_user(std::uint64_t user_id) const {
    return demux_.export_user(user_id);
  }
  std::size_t import_user(const DemuxState& state);

  /// Users evicted by the max_users admission cap.
  std::size_t users_evicted() const noexcept { return users_evicted_; }

  /// Per-user re-analyses executed / skipped by dirty-window tracking.
  std::size_t analyses_run() const noexcept { return analyses_run_; }
  std::size_t analyses_skipped() const noexcept { return analyses_skipped_; }

  double now_s() const noexcept { return now_; }

  /// Durable-state hooks (crash recovery). import_state expects a
  /// freshly constructed pipeline built with the *same* PipelineConfig
  /// that produced the export; the update grid (start/next_update) is
  /// restored exactly, so post-restore ticks land on the original
  /// boundaries and the event stream continues where it left off.
  PipelineState export_state() const;
  void import_state(PipelineState state);

  /// Registers pipeline instruments (update cadence, analysis fan-out,
  /// event counts by kind, tracked-user occupancy, capacity_* gauges)
  /// on `hub` and forwards the bind to the wrapped monitor and demux.
  /// Registration may allocate; the instrumented push/update path does
  /// not.
  void bind_observability(obs::Observability& hub);

  // --- capacity accounting (ISSUE 10) --------------------------------------
  /// Resident bytes attributable to per-user state: demux streams and
  /// registry, tracking/analysis registries, and the analysis arena.
  /// O(streams); call at tick cadence, not per read.
  std::size_t footprint_bytes() const noexcept;
  /// Live / reserved occupancy of the latest-analysis arena.
  double arena_occupancy() const noexcept { return latest_arena_.occupancy(); }
  /// Free-list reuses across the pipeline's arenas (churn served
  /// without an allocation).
  std::size_t arena_reuses() const noexcept {
    return latest_arena_.reuses() + demux_.arena_reuses();
  }
  /// Longest probe chain across the pipeline's flat registries.
  std::size_t registry_max_probe() const noexcept {
    return std::max({user_state_.max_probe_length(),
                     latest_.max_probe_length(),
                     last_seen_reads_.max_probe_length(),
                     demux_.registry_max_probe()});
  }

 private:
  void update(double time_s);
  void run_update(double time_s);
  void emit(const PipelineEvent& event);

  PipelineConfig config_;
  EventCallback callback_;
  BreathMonitor monitor_;
  StreamDemux demux_;

  double now_ = 0.0;
  double start_ = 0.0;
  bool started_ = false;
  double next_update_ = 0.0;

  struct UserState {
    double last_read_s = -1.0;
    double last_crossing_s = -1.0;
    bool in_apnea = false;
    bool lost = false;
    bool ever_reliable = false;
    SignalHealth health = SignalHealth::Lost;
  };
  common::FlatUserMap<UserState> user_state_;
  /// Latest analyses live in a slab arena; the registry maps user id to
  /// a generation-tagged handle (8 B), so registry churn never moves an
  /// analysis and eviction recycles slots instead of freeing them.
  common::FlatUserMap<common::SlabHandle> latest_;
  common::SlabArena<UserAnalysis> latest_arena_;
  std::size_t users_evicted_ = 0;

  /// Parallel analysis engine (null when analysis_threads == 0) and the
  /// per-slot scratch arenas (slot 0 = the pipeline's own thread).
  std::unique_ptr<AnalysisPool> pool_;
  std::vector<AnalysisScratch> scratch_;
  /// Dirty-window tracking: demux read count at each user's last
  /// analysis (see StreamDemux::reads_seen).
  common::FlatUserMap<std::uint64_t> last_seen_reads_;
  std::size_t analyses_run_ = 0;
  std::size_t analyses_skipped_ = 0;

  // Null until bind_observability; `hub` is the is-bound sentinel. The
  // analyses/skipped/evicted counters mirror the size_t fields above
  // (still the source of truth) via Counter::set at tick cadence.
  struct Instruments {
    obs::Observability* hub = nullptr;
    obs::Counter* updates = nullptr;
    obs::Counter* analyses = nullptr;
    obs::Counter* skipped = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Counter* events[4] = {};  // indexed by PipelineEventKind
    obs::Gauge* tracked = nullptr;
    obs::Histogram* update_seconds = nullptr;
    obs::Histogram* fanout = nullptr;
    obs::Gauge* bytes_per_user = nullptr;
    obs::Gauge* arena_occupancy = nullptr;
    obs::Histogram* probe_length = nullptr;
    std::uint16_t trace_stage = 0;
  } obs_;
};

}  // namespace tagbreathe::core
