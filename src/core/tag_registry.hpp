// EPC mapping table (Sec. IV-C).
//
// "Note that overwriting tag IDs is a standard RFID operation supported
// by commodity RFID systems. If the overwriting operation is not
// supported, the reader can build a mapping table to map and lookup
// 96-bit tag IDs to user IDs and short tag IDs." — this is that table.
// Deployments that must keep factory EPCs register each physical tag
// once; the demux then resolves identities through the registry instead
// of (or on top of) the Fig. 9 bit layout.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "rfid/epc.hpp"

namespace tagbreathe::core {

struct TagIdentity {
  std::uint64_t user_id = 0;
  std::uint32_t tag_id = 0;
};

class TagRegistry {
 public:
  /// Registers a physical tag's EPC as belonging to (user, tag).
  /// Re-registering an EPC overwrites the previous assignment (tags get
  /// re-deployed between users).
  void register_tag(const rfid::Epc96& epc, std::uint64_t user_id,
                    std::uint32_t tag_id);

  /// Removes a registration; returns true if it existed.
  bool unregister_tag(const rfid::Epc96& epc);

  /// Identity for an EPC, or nullopt for unknown (item) tags.
  std::optional<TagIdentity> lookup(const rfid::Epc96& epc) const;

  std::size_t size() const noexcept { return table_.size(); }
  bool empty() const noexcept { return table_.empty(); }
  void clear() noexcept { table_.clear(); }

 private:
  std::unordered_map<rfid::Epc96, TagIdentity, rfid::Epc96Hash> table_;
};

}  // namespace tagbreathe::core
