#include "core/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "common/crc32.hpp"

namespace tagbreathe::core {

namespace fs = std::filesystem;

namespace {

constexpr char kSnapshotMagic[8] = {'T', 'B', 'S', 'N', 'A', 'P', '0', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 4 + 4;

void maybe_hook(const DurabilityHooks* hooks, CrashPoint point) {
  if (hooks != nullptr && hooks->at_point) hooks->at_point(point);
}

std::string snapshot_name(std::uint64_t ordinal) {
  char name[32];
  std::snprintf(name, sizeof(name), "snapshot-%016llx.tbs",
                static_cast<unsigned long long>(ordinal));
  return name;
}

std::optional<std::uint64_t> parse_snapshot_name(const std::string& name) {
  if (name.size() != 29 || name.rfind("snapshot-", 0) != 0 ||
      name.compare(25, 4, ".tbs") != 0)
    return std::nullopt;
  std::uint64_t ordinal = 0;
  for (std::size_t i = 9; i < 25; ++i) {
    const char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
    ordinal = (ordinal << 4) | digit;
  }
  return ordinal;
}

std::vector<std::pair<std::uint64_t, fs::path>> list_snapshots(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, fs::path>> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto ordinal = parse_snapshot_name(entry.path().filename().string());
    if (ordinal) files.emplace_back(*ordinal, entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// --- section codecs --------------------------------------------------------

void encode_reads(ByteWriter& out, const std::vector<TagRead>& reads) {
  out.put_u64(reads.size());
  for (const TagRead& r : reads) encode_tag_read(out, r);
}

std::vector<TagRead> decode_reads(ByteReader& in) {
  const std::uint64_t n = in.u64();
  std::vector<TagRead> reads;
  reads.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) reads.push_back(decode_tag_read(in));
  return reads;
}

void encode_pipeline(ByteWriter& out, const PipelineState& state) {
  out.put_f64(state.now_s);
  out.put_f64(state.start_s);
  out.put_f64(state.next_update_s);
  out.put_u8(state.started ? 1 : 0);
  out.put_u64(state.users_evicted);
  out.put_u64(state.users.size());
  for (const PipelineState::User& u : state.users) {
    out.put_u64(u.user_id);
    out.put_f64(u.last_read_s);
    out.put_f64(u.last_crossing_s);
    out.put_u8(u.in_apnea ? 1 : 0);
    out.put_u8(u.lost ? 1 : 0);
    out.put_u8(u.ever_reliable ? 1 : 0);
    out.put_u8(static_cast<std::uint8_t>(u.health));
  }
  out.put_u64(state.last_seen_reads.size());
  for (const auto& [user, seen] : state.last_seen_reads) {
    out.put_u64(user);
    out.put_u64(seen);
  }
}

PipelineState decode_pipeline(ByteReader& in) {
  PipelineState state;
  state.now_s = in.f64();
  state.start_s = in.f64();
  state.next_update_s = in.f64();
  state.started = in.u8() != 0;
  state.users_evicted = in.u64();
  const std::uint64_t n_users = in.u64();
  state.users.reserve(n_users);
  for (std::uint64_t i = 0; i < n_users; ++i) {
    PipelineState::User u;
    u.user_id = in.u64();
    u.last_read_s = in.f64();
    u.last_crossing_s = in.f64();
    u.in_apnea = in.u8() != 0;
    u.lost = in.u8() != 0;
    u.ever_reliable = in.u8() != 0;
    u.health = static_cast<SignalHealth>(in.u8());
    state.users.push_back(u);
  }
  const std::uint64_t n_seen = in.u64();
  state.last_seen_reads.reserve(n_seen);
  for (std::uint64_t i = 0; i < n_seen; ++i) {
    const std::uint64_t user = in.u64();
    const std::uint64_t seen = in.u64();
    state.last_seen_reads.emplace_back(user, seen);
  }
  return state;
}

void encode_demux(ByteWriter& out, const DemuxState& state) {
  out.put_u64(state.accepted);
  out.put_u64(state.ignored);
  out.put_u64(state.shed);
  out.put_u64(state.streams.size());
  for (const DemuxState::Stream& s : state.streams) {
    out.put_u64(s.key.user_id);
    out.put_u32(s.key.tag_id);
    out.put_u8(s.key.antenna_id);
    encode_reads(out, s.reads);
  }
  out.put_u64(state.reads_seen.size());
  for (const auto& [user, seen] : state.reads_seen) {
    out.put_u64(user);
    out.put_u64(seen);
  }
}

DemuxState decode_demux(ByteReader& in) {
  DemuxState state;
  state.accepted = in.u64();
  state.ignored = in.u64();
  state.shed = in.u64();
  const std::uint64_t n_streams = in.u64();
  state.streams.reserve(n_streams);
  for (std::uint64_t i = 0; i < n_streams; ++i) {
    DemuxState::Stream s;
    s.key.user_id = in.u64();
    s.key.tag_id = in.u32();
    s.key.antenna_id = in.u8();
    s.reads = decode_reads(in);
    state.streams.push_back(std::move(s));
  }
  const std::uint64_t n_seen = in.u64();
  state.reads_seen.reserve(n_seen);
  for (std::uint64_t i = 0; i < n_seen; ++i) {
    const std::uint64_t user = in.u64();
    const std::uint64_t seen = in.u64();
    state.reads_seen.emplace_back(user, seen);
  }
  return state;
}

void encode_validator(ByteWriter& out, const ValidatorState& state) {
  out.put_u8(state.any_admitted ? 1 : 0);
  out.put_f64(state.last_admitted_s);
  out.put_u64(state.streams.size());
  for (const ValidatorState::Stream& s : state.streams) {
    out.put_u64(s.user_id);
    out.put_u32(s.tag_id);
    out.put_u8(s.antenna_id);
    out.put_f64(s.last_time_s);
    out.put_f64(s.last_phase_rad);
  }
  out.put_u64(state.lru_order.size());
  for (const std::uint64_t user : state.lru_order) out.put_u64(user);
}

ValidatorState decode_validator(ByteReader& in) {
  ValidatorState state;
  state.any_admitted = in.u8() != 0;
  state.last_admitted_s = in.f64();
  const std::uint64_t n_streams = in.u64();
  state.streams.reserve(n_streams);
  for (std::uint64_t i = 0; i < n_streams; ++i) {
    ValidatorState::Stream s;
    s.user_id = in.u64();
    s.tag_id = in.u32();
    s.antenna_id = in.u8();
    s.last_time_s = in.f64();
    s.last_phase_rad = in.f64();
    state.streams.push_back(s);
  }
  const std::uint64_t n_lru = in.u64();
  state.lru_order.reserve(n_lru);
  for (std::uint64_t i = 0; i < n_lru; ++i)
    state.lru_order.push_back(in.u64());
  return state;
}

void append_section(ByteWriter& out, SnapshotSection id,
                    const ByteWriter& payload) {
  out.put_u32(static_cast<std::uint32_t>(id));
  out.put_u32(static_cast<std::uint32_t>(payload.size()));
  out.put_u32(common::crc32(payload.data(), payload.size()));
  out.put_bytes(payload.data(), payload.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// Whole-file codec

std::vector<std::uint8_t> encode_snapshot(const SnapshotData& data) {
  ByteWriter header_body;
  header_body.put_u32(kSnapshotFormatVersion);
  header_body.put_u64(data.last_journal_seq);
  header_body.put_f64(data.now_s);
  header_body.put_u32(3);  // section count

  ByteWriter out;
  out.put_bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  out.put_bytes(header_body.data(), header_body.size());
  out.put_u32(common::crc32(header_body.data(), header_body.size()));

  ByteWriter section;
  encode_pipeline(section, data.pipeline);
  append_section(out, SnapshotSection::Pipeline, section);
  section.clear();
  encode_demux(section, data.pipeline.demux);
  append_section(out, SnapshotSection::Demux, section);
  section.clear();
  encode_validator(section, data.validator);
  append_section(out, SnapshotSection::Validator, section);
  return std::vector<std::uint8_t>(out.data(), out.data() + out.size());
}

SnapshotData decode_snapshot(const std::uint8_t* bytes, std::size_t size) {
  if (size < kHeaderBytes)
    throw DurabilityError("snapshot: file shorter than the header");
  if (std::memcmp(bytes, kSnapshotMagic, 8) != 0)
    throw DurabilityError("snapshot: bad magic");
  ByteReader header(bytes + 8, kHeaderBytes - 8);
  const std::uint32_t version = header.u32();
  SnapshotData data;
  data.last_journal_seq = header.u64();
  data.now_s = header.f64();
  const std::uint32_t n_sections = header.u32();
  const std::uint32_t header_crc = header.u32();
  if (common::crc32(bytes + 8, kHeaderBytes - 8 - 4) != header_crc)
    throw DurabilityError("snapshot: header CRC mismatch");
  if (version != kSnapshotFormatVersion)
    throw DurabilityError("snapshot: unsupported format version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kSnapshotFormatVersion) + ")");

  std::size_t pos = kHeaderBytes;
  bool have_pipeline = false, have_demux = false, have_validator = false;
  DemuxState demux;
  for (std::uint32_t s = 0; s < n_sections; ++s) {
    ByteReader head(bytes + pos, size - pos);
    const std::uint32_t id = head.u32();
    const std::uint32_t len = head.u32();
    const std::uint32_t crc = head.u32();
    pos += 12;
    if (size - pos < len)
      throw DurabilityError("snapshot: section " + std::to_string(id) +
                            " truncated");
    if (common::crc32(bytes + pos, len) != crc)
      throw DurabilityError("snapshot: section " + std::to_string(id) +
                            " CRC mismatch");
    ByteReader body(bytes + pos, len);
    switch (static_cast<SnapshotSection>(id)) {
      case SnapshotSection::Pipeline:
        data.pipeline = decode_pipeline(body);
        have_pipeline = true;
        break;
      case SnapshotSection::Demux:
        demux = decode_demux(body);
        have_demux = true;
        break;
      case SnapshotSection::Validator:
        data.validator = decode_validator(body);
        have_validator = true;
        break;
      default:
        // Unknown sections from a newer minor writer are skippable by
        // construction (length-prefixed); ignore them.
        break;
    }
    pos += len;
  }
  if (!have_pipeline || !have_demux || !have_validator)
    throw DurabilityError("snapshot: missing required section");
  data.pipeline.demux = std::move(demux);
  return data;
}

// ---------------------------------------------------------------------------
// SnapshotConfig / SnapshotWriter

void SnapshotConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("SnapshotConfig: " + what);
  };
  if (directory.empty()) bad("directory must be set");
  if (keep < 2) bad("keep must be >= 2 (fallback needs a predecessor)");
}

SnapshotWriter::SnapshotWriter(SnapshotConfig config,
                               const DurabilityHooks* hooks)
    : config_(std::move(config)), hooks_(hooks) {
  config_.validate();
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  if (ec)
    throw DurabilityError("SnapshotWriter: cannot create directory " +
                          config_.directory + ": " + ec.message());
  const auto existing = list_snapshots(config_.directory);
  next_ordinal_ = existing.empty() ? 1 : existing.back().first + 1;
}

std::string SnapshotWriter::write(const SnapshotData& data) {
  if (wedged_)
    throw DurabilityError("SnapshotWriter: wedged after earlier failure");
  const std::vector<std::uint8_t> bytes = encode_snapshot(data);
  const fs::path final_path =
      fs::path(config_.directory) / snapshot_name(next_ordinal_);
  const fs::path tmp_path = final_path.string() + ".tmp";

  wedged_ = true;  // cleared only on full success (see JournalWriter)
  const int fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0)
    throw DurabilityError("SnapshotWriter: cannot open " + tmp_path.string() +
                          ": " + std::strerror(errno));
  try {
    const std::size_t half = bytes.size() / 2;
    std::size_t written = 0;
    const auto write_range = [&](std::size_t from, std::size_t to) {
      while (from + written < to) {
        const ssize_t n =
            ::write(fd, bytes.data() + from + written, to - from - written);
        if (n < 0) {
          if (errno == EINTR) continue;
          throw DurabilityError(
              std::string("SnapshotWriter: write failed: ") +
              std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
      }
      written = 0;
    };
    write_range(0, half);
    maybe_hook(hooks_, CrashPoint::MidSnapshotWrite);
    write_range(half, bytes.size());
    if (config_.fsync && ::fsync(fd) != 0)
      throw DurabilityError(std::string("SnapshotWriter: fsync failed: ") +
                            std::strerror(errno));
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  maybe_hook(hooks_, CrashPoint::MidSnapshotRename);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0)
    throw DurabilityError("SnapshotWriter: rename failed: " +
                          std::string(std::strerror(errno)));
  if (config_.fsync) {
    const int dir_fd = ::open(config_.directory.c_str(), O_RDONLY | O_CLOEXEC);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
  maybe_hook(hooks_, CrashPoint::PostSnapshotFsync);
  wedged_ = false;

  ++next_ordinal_;
  ++counters_.snapshots_written;
  counters_.snapshot_bytes_written += bytes.size();

  // Retention: newest `keep` survive; stale temp files go with them.
  const auto files = list_snapshots(config_.directory);
  if (files.size() > config_.keep) {
    for (std::size_t i = 0; i + config_.keep < files.size(); ++i) {
      std::error_code ec;
      if (fs::remove(files[i].second, ec)) ++counters_.snapshots_pruned;
      fs::remove(files[i].second.string() + ".tmp", ec);
    }
  }
  return final_path.string();
}

// ---------------------------------------------------------------------------
// Loader

SnapshotLoadReport load_newest_snapshot(const std::string& directory) {
  SnapshotLoadReport report;
  std::error_code ec;
  if (!fs::exists(directory, ec)) return report;

  auto files = list_snapshots(directory);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::ifstream in(it->second, std::ios::binary);
    if (!in) {
      report.rejected.push_back(it->second.filename().string() +
                                ": unreadable");
      ++report.counters.snapshots_rejected;
      continue;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    try {
      report.data = decode_snapshot(bytes.data(), bytes.size());
      report.loaded_file = it->second.string();
      ++report.counters.snapshots_loaded;
      return report;
    } catch (const DurabilityError& e) {
      report.rejected.push_back(it->second.filename().string() + ": " +
                                e.what());
      ++report.counters.snapshots_rejected;
    }
  }
  return report;
}

}  // namespace tagbreathe::core
