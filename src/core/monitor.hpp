// BreathMonitor: the TagBreathe analysis facade (Fig. 10 workflow).
//
// Data collection -> demux by user/tag/antenna -> phase preprocessing
// (Eqs. 3-4) -> low-level fusion of the user's tag array (Eqs. 6-7) ->
// breath-signal extraction (FFT low-pass) -> zero-crossing rate estimate
// (Eq. 5). Antenna selection picks the best port per user (Sec. IV-D.3).
//
// This is the batch engine: give it a window of low-level reads, get a
// per-user analysis with every intermediate artefact (the figure benches
// print them). RealtimePipeline (pipeline.hpp) wraps it for streaming.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/antenna_selector.hpp"
#include "core/breath_extractor.hpp"
#include "core/demux.hpp"
#include "core/fusion.hpp"
#include "core/phase_preprocess.hpp"
#include "core/rate_estimator.hpp"
#include "core/types.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe::obs {
class Observability;
class Histogram;
}  // namespace tagbreathe::obs

namespace tagbreathe::core {

struct MonitorConfig {
  PreprocessConfig preprocess{};
  FusionConfig fusion{};
  ExtractorConfig extractor{};
  RateEstimatorConfig rate{};
  AntennaSelectorConfig antenna{};
  /// Fuse all of the user's tag streams (the paper's design). false =
  /// use only the busiest single stream (ablation: "one tag per user").
  bool fuse_tags = true;
  /// Extract from the best-quality antenna only (the paper's design).
  /// false = fuse streams across all antennas (ablation).
  bool select_antenna = true;
  /// Signal-health thresholds: a read-silent tail of the window longer
  /// than stale_after_s marks the user Stale, longer than lost_after_s
  /// marks them Lost. Internal gaps above stale_after_s also count
  /// against coverage.
  double stale_after_s = 1.5;
  double lost_after_s = 5.0;
  /// Window coverage (gap-free fraction) below this is Stale even with
  /// a fresh tail: too much of the window is interpolation.
  double min_coverage = 0.6;
  /// A single read-free gap longer than this marks the window Stale even
  /// when coverage and tail freshness pass. The fused track holds flat
  /// through a gap, so one multi-second hole biases the zero-crossing
  /// periods of the whole window while costing little coverage (a 4 s
  /// hole in a 30 s window keeps coverage at 0.87). <= 0 disables.
  double max_gap_for_ok_s = 3.0;
};

/// Per-worker scratch for the analysis hot path. The parallel engine
/// keeps one per pool slot so the FFT filter runs through a warm,
/// allocation-free workspace; passing nullptr makes analyze_user
/// allocate a throwaway workspace (the legacy behaviour).
///
/// Cache-line aligned: slots live side by side in the pool's scratch
/// array and are written by different worker threads, so the 64-byte
/// alignment keeps two slots from sharing a line (false sharing).
struct alignas(64) AnalysisScratch {
  signal::FftWorkspace fft;
  /// Staging for the batched extract_many sweep.
  ExtractScratch extract;
  /// Pooled preprocessor, reconfigure()d per stream — reuses its
  /// channel-table and staging capacity across every stream analysed
  /// from this slot.
  PhasePreprocessor pre;
  /// Per-stream delta staging; the first working.size() entries are
  /// live for the user currently being prepared.
  std::vector<std::vector<signal::TimedSample>> deltas;
  /// Extraction jobs staged across one analyze_users batch.
  std::vector<ExtractJob> extract_jobs;
};

/// Everything TagBreathe derives for one user from one window.
struct UserAnalysis {
  std::uint64_t user_id = 0;
  /// Antenna the extraction used (0 = none/all).
  std::uint8_t antenna_used = 0;
  std::size_t reads_used = 0;
  std::size_t streams_used = 0;
  double window_s = 0.0;

  /// Signal condition over this window (all of the user's streams, not
  /// just the working set): is the estimate backed by fresh data?
  SignalHealth health = SignalHealth::Lost;
  /// Newest read of any of the user's tags in the window (-1 = none).
  double last_read_s = -1.0;
  /// Window tail with no reads at all.
  double tail_gap_s = 0.0;
  /// Largest read-free gap inside the window.
  double max_gap_s = 0.0;
  /// Fraction of the window not swallowed by gaps above stale_after_s.
  double coverage = 0.0;

  /// Fused displacement track ΔD(t) (Eq. 7) on the Δt grid.
  std::vector<signal::TimedSample> fused_track;
  double track_rate_hz = 0.0;

  /// Extracted breath signal (after the low-pass filter).
  BreathSignal breath;

  /// Rate estimate (Eq. 5) with crossings and instantaneous series.
  RateEstimate rate;

  /// Quality scores of every antenna that saw this user.
  std::vector<AntennaQuality> antenna_scores;
};

class BreathMonitor {
 public:
  explicit BreathMonitor(MonitorConfig config = {});

  /// Analyses a window of reads for every monitored user present.
  std::vector<UserAnalysis> analyze(std::span<const TagRead> reads) const;

  /// Analyses one user from an already-demuxed window spanning [t0, t1].
  /// Thread-safe: may run concurrently for different users over a demux
  /// nobody is mutating. `scratch` (optional) carries the per-worker
  /// FFT workspace reused across calls.
  UserAnalysis analyze_user(const StreamDemux& demux, std::uint64_t user_id,
                            double t0, double t1,
                            AnalysisScratch* scratch = nullptr) const;

  /// Batched analysis: runs the pre-extraction stages (health, antenna
  /// selection, preprocessing, fusion) per user, then extracts every
  /// ready fused track in ONE extract_many sweep, so the batch's
  /// transforms march through the shared FFT plan back to back with one
  /// plan-cache hit per size. `out.size()` must equal `user_ids.size()`;
  /// each slot is overwritten. Results are bit-identical to per-user
  /// analyze_user calls — the batched and single paths share every
  /// arithmetic code path. Thread-safe for distinct scratches.
  void analyze_users(const StreamDemux& demux,
                     std::span<const std::uint64_t> user_ids, double t0,
                     double t1, AnalysisScratch* scratch,
                     std::span<UserAnalysis> out) const;

  const MonitorConfig& config() const noexcept { return config_; }

  /// Registers per-stage latency histograms
  /// (analysis_stage_seconds{stage=preprocess|fuse|extract|estimate})
  /// and a "monitor.analyze" trace stage on `hub`. Registration may
  /// allocate; the instrumented analyze_user path does not. Durations
  /// come from the hub's latency clock; trace events are stamped with
  /// the window-end stream time.
  void bind_observability(obs::Observability& hub);

 private:
  /// Shared front half of analyze_user/analyze_users: resets `out`,
  /// emits the trace Enter, runs health scan, antenna selection,
  /// preprocessing and fusion. Returns true when the fused track is
  /// long enough for extraction; `stage_mark` carries the hub-time at
  /// the fuse boundary so callers can continue the stage clock chain.
  /// Does NOT emit the trace Exit — callers do, on every path.
  bool analyze_prepare(const StreamDemux& demux, std::uint64_t user_id,
                       double t0, double t1, AnalysisScratch& scratch,
                       UserAnalysis& out, double& stage_mark) const;

  MonitorConfig config_;

  // Null until bind_observability; `hub` is the is-bound sentinel.
  // Updated from concurrent analyze_user calls — instruments are atomic,
  // the trace ring takes its own short lock.
  struct Instruments {
    obs::Observability* hub = nullptr;
    obs::Histogram* preprocess = nullptr;
    obs::Histogram* fuse = nullptr;
    obs::Histogram* extract = nullptr;
    obs::Histogram* estimate = nullptr;
    std::uint16_t trace_stage = 0;
  } obs_;
};

}  // namespace tagbreathe::core
