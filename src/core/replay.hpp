// Low-level read capture and replay.
//
// Field workflow for a real deployment: record the reader's low-level
// report stream once, then tune the pipeline offline against the
// recording. The format is a plain CSV of TagRead fields (one row per
// read), so captures are diffable, trimmable with standard tools, and
// loadable into any analysis environment.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "core/types.hpp"

namespace tagbreathe::core {

/// CSV header used by recordings (also the accepted input header).
extern const char* const kReplayCsvHeader;

/// Writes reads as CSV (header + one row per read). Throws on I/O error.
void save_reads_csv(const std::string& path, std::span<const TagRead> reads);
void save_reads_csv(std::ostream& out, std::span<const TagRead> reads);

/// Loads a recording. Validates the header and every row; throws
/// std::runtime_error with a line number on malformed input.
ReadStream load_reads_csv(const std::string& path);
ReadStream load_reads_csv(std::istream& in);

/// Streaming recorder: tees reads to disk while they flow to the
/// analysis. With `flush_every` > 0 the stream is flushed to the OS
/// after every that-many records, so a crash loses a bounded tail of
/// the capture instead of everything since the last stdio flush; 0
/// leaves flushing to the stream (destruction and buffer pressure).
class ReadRecorder {
 public:
  explicit ReadRecorder(const std::string& path, std::size_t flush_every = 0);
  ~ReadRecorder();

  ReadRecorder(const ReadRecorder&) = delete;
  ReadRecorder& operator=(const ReadRecorder&) = delete;

  void record(const TagRead& read);

  /// Pushes everything buffered to the OS now. Throws on I/O error —
  /// a capture that silently stopped persisting is worse than a crash.
  void flush();

  std::size_t recorded() const noexcept { return count_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t flush_every_ = 0;
  std::size_t since_flush_ = 0;
  std::size_t count_ = 0;
};

/// Replays a recording through a callback at logical (not wall-clock)
/// time order; returns the number of reads delivered. `speedup` <= 0
/// replays as fast as possible (the default and the only mode used in
/// tests; wall-clock pacing is a thin loop the caller can add).
std::size_t replay_reads(std::span<const TagRead> reads,
                         const std::function<void(const TagRead&)>& sink);

}  // namespace tagbreathe::core
