// Antenna selection (Sec. IV-D.3).
//
// With several round-robin antennas covering the room, each user is seen
// best by one of them. TagBreathe scores each antenna's data quality for
// a user — read rate and received signal strength — and extracts the
// breath signal from the optimal antenna's streams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace tagbreathe::core {

struct AntennaQuality {
  std::uint8_t antenna_id = 0;
  double read_rate_hz = 0.0;  // user's total low-level data rate via port
  double mean_rssi_dbm = -120.0;
  double score = 0.0;
};

struct AntennaSelectorConfig {
  /// Score = rate_weight * normalised rate + rssi_weight * normalised
  /// RSSI. Rate dominates: a strong but rarely-read stream cannot carry
  /// a breathing signal.
  double rate_weight = 0.7;
  double rssi_weight = 0.3;
  /// RSSI normalisation anchors [dBm]: score 0 at floor, 1 at ceil.
  double rssi_floor_dbm = -80.0;
  double rssi_ceil_dbm = -40.0;
  /// Rate normalisation anchor [Hz]: rates at/above this score 1.
  double rate_ceil_hz = 60.0;
};

/// Scores every antenna that reported reads for a user. `streams` are the
/// user's per-(tag, antenna) read vectors; `window_s` is the observation
/// span used to convert counts into rates.
std::vector<AntennaQuality> score_antennas(
    std::span<const std::vector<TagRead>* const> streams, double window_s,
    const AntennaSelectorConfig& config = {});

/// Best-scoring antenna, or 0 when there are no reads.
std::uint8_t select_antenna(
    std::span<const std::vector<TagRead>* const> streams, double window_s,
    const AntennaSelectorConfig& config = {});

}  // namespace tagbreathe::core
