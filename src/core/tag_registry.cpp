#include "core/tag_registry.hpp"

namespace tagbreathe::core {

void TagRegistry::register_tag(const rfid::Epc96& epc, std::uint64_t user_id,
                               std::uint32_t tag_id) {
  table_[epc] = TagIdentity{user_id, tag_id};
}

bool TagRegistry::unregister_tag(const rfid::Epc96& epc) {
  return table_.erase(epc) > 0;
}

std::optional<TagIdentity> TagRegistry::lookup(const rfid::Epc96& epc) const {
  const auto it = table_.find(epc);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace tagbreathe::core
