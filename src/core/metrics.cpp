#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagbreathe::core {

void LatencyStats::record(double seconds) noexcept {
  ++samples;
  total_s += seconds;
  max_s = std::max(max_s, seconds);
}

double LatencyStats::mean_s() const noexcept {
  return samples == 0 ? 0.0 : total_s / static_cast<double>(samples);
}

void LatencyStats::merge(const LatencyStats& other) noexcept {
  samples += other.samples;
  total_s += other.total_s;
  max_s = std::max(max_s, other.max_s);
}

void DurabilityCounters::merge(const DurabilityCounters& other) noexcept {
  journal_records_appended += other.journal_records_appended;
  journal_commits += other.journal_commits;
  journal_bytes_written += other.journal_bytes_written;
  journal_segments_created += other.journal_segments_created;
  journal_segments_pruned += other.journal_segments_pruned;
  replay_records += other.replay_records;
  replay_quarantined += other.replay_quarantined;
  journal_records_corrupt += other.journal_records_corrupt;
  journal_truncated_tails += other.journal_truncated_tails;
  journal_segments_scanned += other.journal_segments_scanned;
  journal_segments_rejected += other.journal_segments_rejected;
  snapshots_written += other.snapshots_written;
  snapshot_bytes_written += other.snapshot_bytes_written;
  snapshots_pruned += other.snapshots_pruned;
  snapshots_loaded += other.snapshots_loaded;
  snapshots_rejected += other.snapshots_rejected;
}

double breathing_rate_accuracy(double estimated_bpm,
                               double true_bpm) noexcept {
  if (true_bpm <= 0.0) return estimated_bpm == 0.0 ? 1.0 : 0.0;
  const double acc = 1.0 - std::abs(estimated_bpm - true_bpm) / true_bpm;
  return std::clamp(acc, 0.0, 1.0);
}

double rate_error_bpm(double estimated_bpm, double true_bpm) noexcept {
  return std::abs(estimated_bpm - true_bpm);
}

double mean_accuracy(std::span<const double> estimated_bpm,
                     std::span<const double> true_bpm) {
  if (estimated_bpm.size() != true_bpm.size())
    throw std::invalid_argument("mean_accuracy: size mismatch");
  if (estimated_bpm.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < estimated_bpm.size(); ++i)
    s += breathing_rate_accuracy(estimated_bpm[i], true_bpm[i]);
  return s / static_cast<double>(estimated_bpm.size());
}

double mean_accuracy_masked(std::span<const double> estimated_bpm,
                            std::span<const double> true_bpm,
                            std::span<const std::uint8_t> include) {
  if (estimated_bpm.size() != true_bpm.size() ||
      estimated_bpm.size() != include.size())
    throw std::invalid_argument("mean_accuracy_masked: size mismatch");
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < estimated_bpm.size(); ++i) {
    if (!include[i]) continue;
    s += breathing_rate_accuracy(estimated_bpm[i], true_bpm[i]);
    ++n;
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

double max_rate_error_masked(std::span<const double> estimated_bpm,
                             std::span<const double> true_bpm,
                             std::span<const std::uint8_t> include) {
  if (estimated_bpm.size() != true_bpm.size() ||
      estimated_bpm.size() != include.size())
    throw std::invalid_argument("max_rate_error_masked: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < estimated_bpm.size(); ++i) {
    if (!include[i]) continue;
    worst = std::max(worst, rate_error_bpm(estimated_bpm[i], true_bpm[i]));
  }
  return worst;
}

}  // namespace tagbreathe::core
