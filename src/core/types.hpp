// The low-level record type at the reader/algorithm boundary.
//
// This mirrors the per-read report of a COTS reader (Impinj R420 via
// LLRP with the vendor low-level-data extension): RSSI, raw phase, raw
// Doppler, channel, antenna port, timestamp, EPC (Sec. IV-A). Everything
// in core/ consumes only this record, so the simulator (src/rfid) and the
// llrp-lite client (src/llrp) are interchangeable producers — as a real
// reader feed would be.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "rfid/epc.hpp"

namespace tagbreathe::core {

/// Per-user signal condition surfaced by the analysis layers: Ok means
/// fresh reads back the estimate; Stale means the stream has gaps or a
/// silent tail and the estimate is coasting; Lost means the user's tags
/// have not been read for long enough that no estimate should be
/// trusted (blocked line of sight, out of range, reader fault).
enum class SignalHealth : std::uint8_t { Ok = 0, Stale = 1, Lost = 2 };

constexpr const char* signal_health_name(SignalHealth health) noexcept {
  switch (health) {
    case SignalHealth::Ok: return "ok";
    case SignalHealth::Stale: return "stale";
    case SignalHealth::Lost: return "lost";
  }
  return "?";
}

struct TagRead {
  double time_s = 0.0;          // reader timestamp of the read
  rfid::Epc96 epc;              // reported EPC (user/tag IDs per Fig. 9)
  std::uint8_t antenna_id = 1;  // reporting antenna port (1-based)
  std::uint16_t channel_index = 0;
  double frequency_hz = 0.0;    // carrier of the reporting channel
  double rssi_dbm = 0.0;        // quantised received signal strength
  double phase_rad = 0.0;       // raw backscatter phase in [0, 2π)
  double doppler_hz = 0.0;      // raw Doppler estimate (Eq. 2)
};

using ReadStream = std::vector<TagRead>;

/// True when every numeric field of the read is finite. A corrupted
/// decode can surface NaN/Inf in phase or timestamp; such a record must
/// be quarantined before it reaches phase differencing (one NaN poisons
/// the whole fused track of its window).
inline bool read_is_finite(const TagRead& r) noexcept {
  return std::isfinite(r.time_s) && std::isfinite(r.frequency_hz) &&
         std::isfinite(r.rssi_dbm) && std::isfinite(r.phase_rad) &&
         std::isfinite(r.doppler_hz);
}

}  // namespace tagbreathe::core
