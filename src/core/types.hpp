// The low-level record type at the reader/algorithm boundary.
//
// This mirrors the per-read report of a COTS reader (Impinj R420 via
// LLRP with the vendor low-level-data extension): RSSI, raw phase, raw
// Doppler, channel, antenna port, timestamp, EPC (Sec. IV-A). Everything
// in core/ consumes only this record, so the simulator (src/rfid) and the
// llrp-lite client (src/llrp) are interchangeable producers — as a real
// reader feed would be.
#pragma once

#include <cstdint>
#include <vector>

#include "rfid/epc.hpp"

namespace tagbreathe::core {

struct TagRead {
  double time_s = 0.0;          // reader timestamp of the read
  rfid::Epc96 epc;              // reported EPC (user/tag IDs per Fig. 9)
  std::uint8_t antenna_id = 1;  // reporting antenna port (1-based)
  std::uint16_t channel_index = 0;
  double frequency_hz = 0.0;    // carrier of the reporting channel
  double rssi_dbm = 0.0;        // quantised received signal strength
  double phase_rad = 0.0;       // raw backscatter phase in [0, 2π)
  double doppler_hz = 0.0;      // raw Doppler estimate (Eq. 2)
};

using ReadStream = std::vector<TagRead>;

}  // namespace tagbreathe::core
