#include "core/baselines.hpp"

#include <algorithm>

#include "core/demux.hpp"

namespace tagbreathe::core {

const char* baseline_kind_name(BaselineKind kind) noexcept {
  switch (kind) {
    case BaselineKind::Rssi: return "rssi";
    case BaselineKind::Doppler: return "doppler";
  }
  return "?";
}

namespace {

/// Builds the baseline's raw series from the busiest stream of a user.
std::vector<signal::TimedSample> raw_series(const std::vector<TagRead>& reads,
                                            BaselineKind kind) {
  std::vector<signal::TimedSample> out;
  out.reserve(reads.size());
  switch (kind) {
    case BaselineKind::Rssi:
      for (const TagRead& r : reads)
        out.push_back(signal::TimedSample{r.time_s, r.rssi_dbm});
      break;
    case BaselineKind::Doppler: {
      // Doppler is a radial-velocity estimate: v = -f·λ/2. Integrate it
      // into a displacement proxy (trapezoid rule).
      double disp = 0.0;
      double prev_t = 0.0, prev_v = 0.0;
      bool have_prev = false;
      for (const TagRead& r : reads) {
        const double lambda = 2.998e8 / r.frequency_hz;
        const double v = -r.doppler_hz * lambda / 2.0;
        if (have_prev) {
          const double dt = r.time_s - prev_t;
          if (dt > 0.0 && dt < 1.0) disp += 0.5 * (v + prev_v) * dt;
        }
        out.push_back(signal::TimedSample{r.time_s, disp});
        prev_t = r.time_s;
        prev_v = v;
        have_prev = true;
      }
      break;
    }
  }
  return out;
}

}  // namespace

std::vector<BaselineResult> analyze_baseline(std::span<const TagRead> reads,
                                             const BaselineConfig& config) {
  std::vector<BaselineResult> out;
  if (reads.empty()) return out;

  StreamDemux demux;
  demux.add(reads);

  for (std::uint64_t user : demux.users()) {
    BaselineResult result;
    result.user_id = user;

    // Use the busiest single stream: RSSI offsets differ per tag and per
    // antenna, so cross-stream mixing would corrupt the series.
    const auto streams = demux.streams_for_user(user);
    const auto busiest = std::max_element(
        streams.begin(), streams.end(),
        [](const std::vector<TagRead>* a, const std::vector<TagRead>* b) {
          return a->size() < b->size();
        });
    if (busiest == streams.end() || (*busiest)->size() < 8) {
      out.push_back(result);
      continue;
    }
    result.reads_used = (*busiest)->size();

    const auto raw = raw_series(**busiest, config.kind);
    const auto uniform =
        signal::resample_uniform(raw, config.resample_hz, config.max_gap_s);
    if (uniform.size() < 8) {
      out.push_back(result);
      continue;
    }

    const BreathExtractor extractor(config.extractor);
    result.breath = extractor.extract(uniform, config.resample_hz);

    const ZeroCrossingRateEstimator estimator(config.rate);
    const RateEstimate est = estimator.estimate(result.breath.samples);
    result.rate_bpm = est.rate_bpm;
    result.reliable = est.reliable;
    out.push_back(result);
  }
  return out;
}

}  // namespace tagbreathe::core
