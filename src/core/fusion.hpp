// Low-level sensor fusion of multiple tags (Sec. IV-C, Eqs. 6-7).
//
// Rather than extracting a breath signal per tag and voting afterwards,
// TagBreathe fuses *raw displacement deltas*: all deltas from a user's n
// tags falling in the same Δt interval are summed (Eq. 6), and the binned
// sums are integrated into one fused track (Eq. 7). Because every tag on
// the torso moves in phase with breathing (Sec. IV-D.1), the deltas add
// constructively while independent phase noise partially cancels — and a
// tag that is momentarily unread simply contributes nothing to a bin
// instead of corrupting it. Fusing raw data also costs one extraction
// instead of n (the paper's computational argument).
#pragma once

#include <span>
#include <vector>

#include "signal/interpolate.hpp"

namespace tagbreathe::core {

struct FusionConfig {
  /// Δt of Eq. 6: the fused stream's sampling period. 50 ms (20 Hz) keeps
  /// well above twice the 0.67 Hz filter cutoff.
  double bin_s = 0.05;
  /// Optional per-stream weights (same order as the streams passed in);
  /// empty = unweighted (the paper's formulation).
  std::vector<double> weights;
  /// Sign-align streams before summing: a stream whose binned deltas
  /// anti-correlate with the rest of the array is flipped. The paper's
  /// constructive-fusion argument assumes all tags' radial displacement
  /// moves together, which holds facing the antenna but not at large
  /// orientation angles, where per-site wall-normal tilts give different
  /// streams opposite radial signs.
  bool align_signs = true;
  /// Gap-aware Eq. 7: after a run of empty bins longer than this, the
  /// first non-empty bin's sum is discarded instead of integrated — a
  /// delta landing right after a dropout encodes net drift across the
  /// outage, not breathing, and integrating it steps the whole post-gap
  /// track by a bogus offset that the extraction filter rings on.
  /// <= 0 disables the guard. Clean streams bin at tens of Hz, so only
  /// genuine dropouts trigger it.
  double reset_gap_s = 0.75;
};

/// Result of fusing n delta streams.
struct FusedTrack {
  /// Uniformly sampled fused displacement ΔD(t) (Eq. 7), one sample per
  /// Δt bin, anchored at 0.
  std::vector<signal::TimedSample> track;
  /// Number of raw deltas that landed in each bin (diagnostic: shows
  /// coverage/loss).
  std::vector<std::size_t> bin_counts;
  double t0 = 0.0;
  double bin_s = 0.05;

  double sample_rate_hz() const noexcept {
    return bin_s > 0.0 ? 1.0 / bin_s : 0.0;
  }
};

/// Fuses displacement-delta streams (one per tag) over their joint time
/// span. Streams need not be aligned or equally long.
FusedTrack fuse_streams(
    std::span<const std::vector<signal::TimedSample>> delta_streams,
    const FusionConfig& config = {});

/// Fuses over an explicit window [t0, t1] (realtime pipelines use fixed
/// windows so successive calls align).
FusedTrack fuse_streams(
    std::span<const std::vector<signal::TimedSample>> delta_streams,
    double t0, double t1, const FusionConfig& config = {});

}  // namespace tagbreathe::core
