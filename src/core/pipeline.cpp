#include "core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/observability.hpp"
#include "signal/simd/dispatch.hpp"

namespace tagbreathe::core {

const char* pipeline_event_name(PipelineEventKind kind) noexcept {
  // Total over the underlying type: an out-of-range value (a corrupted
  // byte reinterpreted as an event kind) names itself rather than
  // falling off the switch.
  switch (kind) {
    case PipelineEventKind::RateUpdate: return "rate-update";
    case PipelineEventKind::ApneaAlert: return "apnea-alert";
    case PipelineEventKind::SignalLost: return "signal-lost";
    case PipelineEventKind::SignalRecovered: return "signal-recovered";
    default: return "unknown-event";
  }
}

void PipelineConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("PipelineConfig: " + what);
  };
  if (!(window_s > 0.0) || !std::isfinite(window_s))
    bad("window_s must be positive and finite");
  if (!(update_period_s > 0.0) || !std::isfinite(update_period_s))
    bad("update_period_s must be positive and finite");
  if (warmup_s < 0.0 || !std::isfinite(warmup_s))
    bad("warmup_s must be non-negative and finite");
  if (warmup_s > window_s) bad("warmup_s must not exceed window_s");
  if (apnea_silence_s < 0.0 || !std::isfinite(apnea_silence_s))
    bad("apnea_silence_s must be non-negative and finite");
  if (signal_loss_s < 0.0 || !std::isfinite(signal_loss_s))
    bad("signal_loss_s must be non-negative and finite");
  if (analysis_threads > 256)
    bad("analysis_threads must be <= 256 (0 = serial)");
}

RealtimePipeline::RealtimePipeline(PipelineConfig config,
                                   EventCallback callback)
    : config_(config),
      callback_(std::move(callback)),
      monitor_(config.monitor) {
  config_.validate();
  demux_.set_max_reads_per_stream(config_.max_reads_per_stream);
  if (config_.analysis_threads > 0)
    pool_ = std::make_unique<AnalysisPool>(config_.analysis_threads);
  scratch_.resize(pool_ != nullptr ? pool_->slots() : 1);
}

void RealtimePipeline::emit(const PipelineEvent& event) {
  const auto kind = static_cast<std::size_t>(event.kind);
  if (obs_.hub != nullptr && kind < std::size(obs_.events))
    obs_.events[kind]->add();
  if (callback_) callback_(event);
}

void RealtimePipeline::bind_observability(obs::Observability& hub) {
  monitor_.bind_observability(hub);
  demux_.bind_observability(hub);
  obs::MetricsRegistry& m = hub.metrics();
  obs_.updates = &m.counter("pipeline_updates_total");
  obs_.analyses = &m.counter("pipeline_analyses_total");
  obs_.skipped = &m.counter("pipeline_analyses_skipped_total");
  obs_.evicted = &m.counter("pipeline_users_evicted_total");
  for (std::size_t i = 0; i < std::size(obs_.events); ++i) {
    obs_.events[i] =
        &m.counter("pipeline_events_total", "kind",
                   pipeline_event_name(static_cast<PipelineEventKind>(i)));
  }
  obs_.tracked = &m.gauge("pipeline_tracked_users");
  obs_.update_seconds =
      &m.histogram("pipeline_update_seconds", obs::default_latency_bounds());
  static constexpr std::array<double, 9> kFanoutBounds = {
      0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
  obs_.fanout = &m.histogram("pipeline_fanout_users", kFanoutBounds);
  // Capacity instrumentation (ISSUE 10): resident bytes per tracked
  // user, arena occupancy and registry probe lengths, sampled at tick
  // cadence (footprint_bytes is O(streams), too hot for per-read).
  obs_.bytes_per_user = &m.gauge("capacity_bytes_per_user");
  obs_.arena_occupancy = &m.gauge("capacity_arena_occupancy");
  static constexpr std::array<double, 8> kProbeBounds = {0.0,  1.0,  2.0,
                                                         4.0,  8.0,  16.0,
                                                         32.0, 64.0};
  obs_.probe_length = &m.histogram("capacity_probe_length", kProbeBounds);
  obs_.trace_stage = hub.trace().register_stage("pipeline.update");
  // DSP dispatch level the process resolved at startup (0 = scalar,
  // 1 = AVX2, 2 = NEON): exported once — the level cannot change after
  // the first kernel call.
  m.gauge("dsp_simd_level")
      .set(static_cast<double>(signal::simd::active_level_value()));
  // Seed the mirrored series so a mid-run bind exports current truth.
  obs_.analyses->set(analyses_run_);
  obs_.skipped->set(analyses_skipped_);
  obs_.evicted->set(users_evicted_);
  obs_.tracked->set(static_cast<double>(user_state_.size()));
  obs_.hub = &hub;
}

SignalHealth RealtimePipeline::health(std::uint64_t user_id) const noexcept {
  const UserState* state = user_state_.find(user_id);
  return state == nullptr ? SignalHealth::Lost : state->health;
}

void RealtimePipeline::forget_user(std::uint64_t user_id) {
  user_state_.erase(user_id);
  if (const common::SlabHandle* handle = latest_.find(user_id)) {
    latest_arena_.release(*handle);
    latest_.erase(user_id);
  }
  last_seen_reads_.erase(user_id);
  demux_.drop_user(user_id);
}

void RealtimePipeline::push(const TagRead& read) {
  if (!started_) {
    started_ = true;
    start_ = read.time_s;
    next_update_ = start_ + config_.update_period_s;
  }
  // Process any update boundaries that elapsed *before* this read:
  // after a dropout, the pending updates must still see the silence
  // (registering the read first would erase the evidence of the outage).
  advance_to(read.time_s);
  const std::uint64_t user = read.epc.user_id();
  if (config_.max_users > 0 && !user_state_.contains(user) &&
      user_state_.size() >= config_.max_users) {
    // Admission cap reached: evict the least-recently-read user, ties
    // broken by the LOWEST user id. The ordering contract is explicit
    // now (ISSUE 10): the old implementation leaned on std::map's
    // ascending iteration to break ties, which a hash-ordered registry
    // does not provide — so the tie-break is part of the min, not an
    // iteration-order accident. test_capacity regression-tests that
    // insertion order cannot change the victim.
    bool have_victim = false;
    std::uint64_t victim_id = 0;
    double victim_read = 0.0;
    user_state_.for_each(
        [&](const std::uint64_t& id, const UserState& state) {
          if (!have_victim || state.last_read_s < victim_read ||
              (state.last_read_s == victim_read && id < victim_id)) {
            have_victim = true;
            victim_id = id;
            victim_read = state.last_read_s;
          }
        });
    forget_user(victim_id);
    ++users_evicted_;
    if (obs_.hub != nullptr) obs_.evicted->set(users_evicted_);
  }
  demux_.add(read);
  auto& state = user_state_[user];
  state.last_read_s = read.time_s;
}

PipelineState RealtimePipeline::export_state() const {
  PipelineState state;
  state.now_s = now_;
  state.start_s = start_;
  state.next_update_s = next_update_;
  state.started = started_;
  state.users_evicted = users_evicted_;
  state.users.reserve(user_state_.size());
  // for_each_ordered: the snapshot image must not depend on registry
  // hash layout (byte-identical snapshots across runs and imports).
  user_state_.for_each_ordered(
      [&state](const std::uint64_t& user, const UserState& us) {
        state.users.push_back(PipelineState::User{
            user, us.last_read_s, us.last_crossing_s, us.in_apnea, us.lost,
            us.ever_reliable, us.health});
      });
  state.last_seen_reads.reserve(last_seen_reads_.size());
  last_seen_reads_.for_each_ordered(
      [&state](const std::uint64_t& user, const std::uint64_t& seen) {
        state.last_seen_reads.push_back({user, seen});
      });
  state.demux = demux_.export_state();
  return state;
}

void RealtimePipeline::import_state(PipelineState state) {
  now_ = state.now_s;
  start_ = state.start_s;
  next_update_ = state.next_update_s;
  started_ = state.started;
  users_evicted_ = state.users_evicted;
  user_state_.clear();
  for (const PipelineState::User& u : state.users) {
    user_state_[u.user_id] =
        UserState{u.last_read_s, u.last_crossing_s, u.in_apnea,
                  u.lost,        u.ever_reliable,   u.health};
  }
  last_seen_reads_.clear();
  for (const auto& [user, seen] : state.last_seen_reads)
    last_seen_reads_[user] = seen;
  // Derived data is rebuilt, not restored: the first post-restore tick
  // re-analyses every user from the restored demux window.
  latest_.clear();
  latest_arena_.clear();
  demux_.import_state(std::move(state.demux));
}

void RealtimePipeline::start_at(double t0) {
  if (started_) return;
  started_ = true;
  start_ = t0;
  now_ = t0;
  next_update_ = t0 + config_.update_period_s;
}

std::size_t RealtimePipeline::import_user(const DemuxState& state) {
  const std::size_t imported = demux_.import_user(state);
  if (imported == 0) return 0;
  double newest = -1.0;
  std::uint64_t user = 0;
  for (const DemuxState::Stream& s : state.streams) {
    user = s.key.user_id;
    for (const TagRead& r : s.reads) newest = std::max(newest, r.time_s);
  }
  auto& us = user_state_[user];
  us.last_read_s = std::max(us.last_read_s, newest);
  return imported;
}

void RealtimePipeline::advance_to(double time_s) {
  if (!started_) return;
  now_ = std::max(now_, time_s);
  while (now_ >= next_update_) {
    update(next_update_);
    next_update_ += config_.update_period_s;
  }
}

void RealtimePipeline::update(double time_s) {
  if (obs_.hub == nullptr) {
    run_update(time_s);
    return;
  }
  obs_.updates->add();
  obs_.hub->trace().enter(obs_.trace_stage, time_s, user_state_.size());
  const double mark = obs_.hub->now();
  const std::size_t analyses_before = analyses_run_;
  run_update(time_s);
  obs_.update_seconds->observe(obs_.hub->now() - mark);
  const std::size_t fanned_out = analyses_run_ - analyses_before;
  obs_.fanout->observe(static_cast<double>(fanned_out));
  obs_.analyses->set(analyses_run_);
  obs_.skipped->set(analyses_skipped_);
  obs_.tracked->set(static_cast<double>(user_state_.size()));
  const std::size_t tracked = user_state_.size();
  obs_.bytes_per_user->set(
      tracked == 0 ? 0.0
                   : static_cast<double>(footprint_bytes()) /
                         static_cast<double>(tracked));
  obs_.arena_occupancy->set(demux_.arena_occupancy());
  obs_.probe_length->observe(static_cast<double>(registry_max_probe()));
  obs_.hub->trace().exit(obs_.trace_stage, time_s, fanned_out);
}

void RealtimePipeline::run_update(double time_s) {
  const double t0 = std::max(start_, time_s - config_.window_s);
  demux_.evict_before(t0 - 1.0);  // keep a small margin beyond the window

  if (time_s - start_ < config_.warmup_s) return;

  const std::vector<std::uint64_t> users = demux_.users();
  const std::size_t n_users = users.size();

  // Phase 1 (serial): decide per user whether this tick needs a
  // re-analysis. Lost users skip analysis as before; with dirty-window
  // tracking enabled, users whose streams saw no new reads since their
  // last analysis coast on the cached result. Both rules depend only on
  // the data, never on thread count.
  struct TickSlot {
    bool lost_now = false;
    bool analyse = false;
    std::uint64_t reads_seen = 0;
  };
  std::vector<TickSlot> ticks(n_users);
  std::vector<std::size_t> to_analyse;
  to_analyse.reserve(n_users);
  for (std::size_t i = 0; i < n_users; ++i) {
    const std::uint64_t user = users[i];
    UserState& state = user_state_[user];
    TickSlot& tick = ticks[i];
    tick.lost_now = state.last_read_s >= 0.0 &&
                    time_s - state.last_read_s > config_.signal_loss_s;
    if (tick.lost_now) continue;
    tick.reads_seen = demux_.reads_seen(user);
    tick.analyse = true;
    if (config_.skip_clean_users) {
      const std::uint64_t* seen = last_seen_reads_.find(user);
      if (seen != nullptr && *seen == tick.reads_seen &&
          latest_.contains(user)) {
        tick.analyse = false;
        ++analyses_skipped_;
      }
    }
    if (tick.analyse) to_analyse.push_back(i);
  }

  // Phase 2 (parallel): the expensive Fig. 10 re-analysis, fanned out
  // across the pool in chunks of analysis_batch users. Each chunk runs
  // as ONE BreathMonitor::analyze_users call so its extractions share a
  // batched transform sweep. Workers read the demux (const, nobody
  // mutating) and write only their own chunk's result slots, so the
  // fan-out is race-free; each slot carries its own scratch arena.
  std::vector<UserAnalysis> results(n_users);
  const std::size_t batch = std::max<std::size_t>(config_.analysis_batch, 1);
  const std::size_t n_chunks = (to_analyse.size() + batch - 1) / batch;
  const auto analyse_chunk = [&](std::size_t c, std::size_t slot) {
    const std::size_t begin = c * batch;
    const std::size_t end = std::min(begin + batch, to_analyse.size());
    std::vector<std::uint64_t> ids(end - begin);
    std::vector<UserAnalysis> chunk(end - begin);
    for (std::size_t k = 0; k < ids.size(); ++k)
      ids[k] = users[to_analyse[begin + k]];
    monitor_.analyze_users(demux_, ids, t0, time_s, &scratch_[slot], chunk);
    for (std::size_t k = 0; k < ids.size(); ++k)
      results[to_analyse[begin + k]] = std::move(chunk[k]);
  };
  if (pool_ != nullptr) {
    pool_->run(n_chunks, analyse_chunk);
  } else {
    for (std::size_t c = 0; c < n_chunks; ++c) analyse_chunk(c, 0);
  }
  analyses_run_ += to_analyse.size();

  // Phase 3 (serial, ascending user id): the event state machine,
  // consuming the gathered results in user-id order so the event log is
  // byte-identical to the serial engine's.
  for (std::size_t i = 0; i < n_users; ++i) {
    const std::uint64_t user = users[i];
    UserState& state = user_state_[user];

    // Signal-loss detection runs even when analysis cannot.
    const bool lost_now = ticks[i].lost_now;
    if (lost_now && !state.lost) {
      state.lost = true;
      state.health = SignalHealth::Lost;
      emit(PipelineEvent{PipelineEventKind::SignalLost, user, time_s, 0.0,
                         false, SignalHealth::Lost});
    } else if (!lost_now && state.lost) {
      state.lost = false;
      emit(PipelineEvent{PipelineEventKind::SignalRecovered, user, time_s,
                         0.0, false, state.health});
    }
    if (lost_now) {
      // Keep the surfaced analysis honest while the user is dark: the
      // stale estimate stays visible but flagged Lost.
      if (const common::SlabHandle* handle = latest_.find(user))
        latest_arena_.at(*handle).health = SignalHealth::Lost;
      continue;
    }

    UserAnalysis analysis;
    if (ticks[i].analyse) {
      analysis = std::move(results[i]);
    } else if (const common::SlabHandle* handle = latest_.find(user)) {
      analysis = latest_arena_.at(*handle);
    }
    if (ticks[i].analyse) last_seen_reads_[user] = ticks[i].reads_seen;
    state.health = analysis.health;
    if (!analysis.rate.crossings.empty())
      state.last_crossing_s = analysis.rate.crossings.back().time_s;

    if (analysis.rate.reliable) state.ever_reliable = true;

    // Apnea: the user is being read but breathing stopped. Crossing
    // silence alone is not enough — the zero-phase filter rings into a
    // breath hold and can fabricate crossings — so additionally require
    // the *recent* breath-signal amplitude to have collapsed relative to
    // the window's amplitude.
    bool amplitude_collapsed = false;
    if (!analysis.breath.samples.empty()) {
      double window_peak = 0.0, recent_peak = 0.0;
      const double recent_from = time_s - config_.apnea_silence_s;
      for (const auto& s : analysis.breath.samples) {
        window_peak = std::max(window_peak, std::abs(s.value));
        if (s.time_s >= recent_from)
          recent_peak = std::max(recent_peak, std::abs(s.value));
      }
      amplitude_collapsed =
          window_peak > 0.0 && recent_peak < 0.3 * window_peak;
    }
    const bool crossing_silent =
        state.last_crossing_s >= 0.0 &&
        time_s - state.last_crossing_s > config_.apnea_silence_s;
    const bool apnea_now =
        state.ever_reliable && (amplitude_collapsed || crossing_silent);
    if (apnea_now && !state.in_apnea) {
      state.in_apnea = true;
      emit(PipelineEvent{PipelineEventKind::ApneaAlert, user, time_s, 0.0,
                         false, analysis.health});
    } else if (!apnea_now && state.in_apnea) {
      state.in_apnea = false;
    }

    if (!apnea_now) {
      const double rate = analysis.rate.instantaneous.empty()
                              ? analysis.rate.rate_bpm
                              : analysis.rate.instantaneous.back().rate_bpm;
      emit(PipelineEvent{PipelineEventKind::RateUpdate, user, time_s, rate,
                         analysis.rate.reliable &&
                             analysis.health == SignalHealth::Ok,
                         analysis.health});
    }
    common::SlabHandle& handle = latest_[user];
    if (UserAnalysis* slot = latest_arena_.get(handle))
      *slot = std::move(analysis);
    else
      handle = latest_arena_.emplace(std::move(analysis));
  }
}

std::size_t RealtimePipeline::footprint_bytes() const noexcept {
  return demux_.footprint_bytes() + user_state_.table_bytes() +
         latest_.table_bytes() + last_seen_reads_.table_bytes() +
         latest_arena_.bytes_reserved();
}

}  // namespace tagbreathe::core
