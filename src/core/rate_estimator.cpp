#include "core/rate_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "signal/filters.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe::core {

ZeroCrossingRateEstimator::ZeroCrossingRateEstimator(
    RateEstimatorConfig config)
    : config_(config) {
  if (config_.buffered_crossings < 2)
    throw std::invalid_argument("rate estimator: need M >= 2 crossings");
}

RateEstimate ZeroCrossingRateEstimator::estimate(
    std::span<const signal::TimedSample> breath) const {
  RateEstimate out;
  if (breath.size() < 4) return out;

  std::vector<double> values;
  values.reserve(breath.size());
  for (const auto& s : breath) values.push_back(s.value);
  const double hyst =
      signal::hysteresis_from_peak(values, config_.hysteresis_fraction);
  out.crossings = signal::detect_zero_crossings(breath, hyst);

  const auto m = static_cast<std::size_t>(config_.buffered_crossings);
  if (out.crossings.size() >= m) {
    // Instantaneous Eq. 5 rates over a sliding buffer of M crossings.
    for (std::size_t i = m - 1; i < out.crossings.size(); ++i) {
      const double t_new = out.crossings[i].time_s;
      const double t_old = out.crossings[i - (m - 1)].time_s;
      if (t_new <= t_old) continue;
      const double rate_hz =
          (static_cast<double>(m) - 1.0) / (2.0 * (t_new - t_old));
      out.instantaneous.push_back(
          RatePoint{t_new, common::hz_to_bpm(rate_hz)});
    }
  }

  // Window rate: from the *median full period* — the interval between
  // successive same-direction (rising) crossings. One full period per
  // breath makes the statistic immune to inhale/exhale asymmetry (which
  // alternates short/long half-periods), and the median ignores the
  // doubled periods left by occasionally missed crossings — whereas
  // every Eq. 5 M-window containing a single miss is biased.
  std::vector<double> periods;
  {
    double prev_rising = -1.0;
    for (const auto& c : out.crossings) {
      if (c.direction != signal::CrossingDirection::Rising) continue;
      if (prev_rising >= 0.0 && c.time_s > prev_rising)
        periods.push_back(c.time_s - prev_rising);
      prev_rising = c.time_s;
    }
  }
  if (periods.size() >= 2) {
    out.rate_bpm = common::hz_to_bpm(1.0 / common::median(periods));
  } else if (out.crossings.size() >= 2) {
    // Too few crossings for an M-buffer: Eq. 5 over the full span.
    const double span =
        out.crossings.back().time_s - out.crossings.front().time_s;
    if (span > 0.0) {
      const double rate_hz =
          (static_cast<double>(out.crossings.size()) - 1.0) / (2.0 * span);
      out.rate_bpm = common::hz_to_bpm(rate_hz);
    }
  }
  bool consistent = true;
  if (config_.max_period_dispersion > 0.0 && periods.size() >= 3) {
    const auto [lo, hi] = std::minmax_element(periods.begin(), periods.end());
    const double med = common::median(periods);
    consistent =
        med > 0.0 && (*hi - *lo) <= config_.max_period_dispersion * med;
  }
  out.reliable = out.crossings.size() >= m &&
                 out.rate_bpm >= config_.min_rate_bpm &&
                 out.rate_bpm <= config_.max_rate_bpm && consistent;
  return out;
}

StreamingRateTracker::StreamingRateTracker(RateEstimatorConfig config)
    : config_(config),
      times_(static_cast<std::size_t>(
          config.buffered_crossings < 2 ? 2 : config.buffered_crossings)) {
  if (config_.buffered_crossings < 2)
    throw std::invalid_argument("rate tracker: need M >= 2 crossings");
}

std::optional<RatePoint> StreamingRateTracker::push_crossing(double time_s) {
  times_.push(time_s);
  if (!times_.full()) return std::nullopt;
  const double span = times_.back() - times_.front();
  if (span <= 0.0) return std::nullopt;
  const double rate_hz =
      (static_cast<double>(times_.capacity()) - 1.0) / (2.0 * span);
  const double bpm = common::hz_to_bpm(rate_hz);
  current_rate_ = bpm;
  return RatePoint{time_s, bpm};
}

double StreamingRateTracker::silence_s(double now_s) const noexcept {
  if (times_.empty()) return now_s;
  return now_s - times_.back();
}

std::optional<double> StreamingRateTracker::current_rate_bpm() const noexcept {
  return current_rate_;
}

void StreamingRateTracker::reset() {
  times_.clear();
  current_rate_.reset();
}

double fft_peak_rate_bpm(std::span<const signal::TimedSample> track,
                         double sample_rate_hz, const FftPeakConfig& config) {
  if (track.size() < 8) return 0.0;
  std::vector<double> values;
  values.reserve(track.size());
  for (const auto& s : track) values.push_back(s.value);
  signal::detrend_linear(values);

  const double f_lo = common::bpm_to_hz(config.min_rate_bpm);
  const double f_hi = common::bpm_to_hz(config.max_rate_bpm);

  if (!config.raw_bin) {
    return common::hz_to_bpm(signal::dominant_frequency(
        values, sample_rate_hz, f_lo, f_hi));
  }

  // Raw-bin variant: the estimator the paper rejects. Resolution is
  // fs/N = 1/window-length.
  const auto bins = signal::periodogram(values, sample_rate_hz,
                                        signal::WindowType::Hann);
  double best_f = 0.0, best_p = -1.0;
  for (const auto& bin : bins) {
    if (bin.frequency_hz < f_lo || bin.frequency_hz > f_hi) continue;
    if (bin.power > best_p) {
      best_p = bin.power;
      best_f = bin.frequency_hz;
    }
  }
  return common::hz_to_bpm(best_f);
}

}  // namespace tagbreathe::core
