#include "core/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/observability.hpp"

namespace tagbreathe::core {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// DurabilityConfig

void DurabilityConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("DurabilityConfig: " + what);
  };
  if (directory.empty() &&
      (journal.directory.empty() || snapshot.directory.empty()))
    bad("directory must be set (or both sub-config directories)");
  if (!(snapshot_period_s > 0.0) || !std::isfinite(snapshot_period_s))
    bad("snapshot_period_s must be positive and finite");
  resolved_journal().validate();
  resolved_snapshot().validate();
}

JournalConfig DurabilityConfig::resolved_journal() const {
  JournalConfig cfg = journal;
  if (cfg.directory.empty())
    cfg.directory = (fs::path(directory) / "journal").string();
  return cfg;
}

SnapshotConfig DurabilityConfig::resolved_snapshot() const {
  SnapshotConfig cfg = snapshot;
  if (cfg.directory.empty())
    cfg.directory = (fs::path(directory) / "snapshots").string();
  return cfg;
}

// ---------------------------------------------------------------------------
// DurableMonitor

DurableMonitor::DurableMonitor(DurabilityConfig durability, IngestConfig ingest,
                               PipelineConfig pipeline,
                               RealtimePipeline::EventCallback callback,
                               const DurabilityHooks* hooks)
    : config_(std::move(durability)),
      pipeline_(pipeline, std::move(callback)),
      frontend_(std::move(ingest), pipeline_) {
  config_.validate();

  const SnapshotConfig snapshot_cfg = config_.resolved_snapshot();
  SnapshotLoadReport snap = load_newest_snapshot(snapshot_cfg.directory);
  recovery_counters_.merge(snap.counters);
  recovery_.snapshots_rejected = std::move(snap.rejected);
  std::uint64_t after_seq = 0;
  if (snap.data) {
    recovery_.snapshot_loaded = true;
    recovery_.snapshot_file = std::move(snap.loaded_file);
    recovery_.snapshot_seq = snap.data->last_journal_seq;
    after_seq = snap.data->last_journal_seq;
    frontend_.validator().import_state(snap.data->validator);
    pipeline_.import_state(std::move(snap.data->pipeline));
  }

  replay_journal(after_seq, hooks);
  snapshot_ = std::make_unique<SnapshotWriter>(snapshot_cfg, hooks);

  // From here every admitted read is journaled before it reaches the
  // pipeline (write-ahead with respect to analysis state).
  frontend_.set_admit_tap(
      [this](const TagRead& read) { journal_->append(read); });

  recovery_.resume_time_s = pipeline_.now_s();
  next_snapshot_s_ = pipeline_.now_s() + config_.snapshot_period_s;
}

void DurableMonitor::replay_journal(std::uint64_t after_seq,
                                    const DurabilityHooks* hooks) {
  const JournalConfig journal_cfg = config_.resolved_journal();
  recovering_ = true;
  const JournalScanResult scan = scan_journal(
      journal_cfg.directory, after_seq, [this](const JournalRecord& record) {
        // Replay goes through the normal admission path: a record that
        // would be quarantined live is quarantined on replay too.
        TagRead read = record.read;
        if (frontend_.validator().admit(read).admitted) {
          ++recovery_.replayed_reads;
          pipeline_.push(read);
        } else {
          ++recovery_.replay_quarantined;
        }
        for (const std::uint64_t user :
             frontend_.validator().take_evicted_users())
          pipeline_.forget_user(user);
      });
  recovering_ = false;

  recovery_counters_.merge(scan.counters);
  recovery_counters_.replay_quarantined += recovery_.replay_quarantined;
  recovery_.corrupt_records_skipped = scan.counters.journal_records_corrupt;
  recovery_.truncated_tails = scan.counters.journal_truncated_tails;

  // Resume numbering after everything intact on disk — including
  // records at or below the snapshot frontier, so a stale snapshot can
  // never cause sequence reuse.
  journal_ = std::make_unique<JournalWriter>(
      journal_cfg, std::max(scan.max_seq, after_seq) + 1, hooks);
}

EnqueueResult DurableMonitor::offer(const TagRead& read, double now_s) {
  return frontend_.offer(read, now_s);
}

std::size_t DurableMonitor::pump(double now_s) {
  const std::size_t admitted = frontend_.pump(now_s);
  journal_->maybe_commit(now_s);
  if (now_s >= next_snapshot_s_) {
    checkpoint();
    next_snapshot_s_ = now_s + config_.snapshot_period_s;
  }
  publish_counters();
  return admitted;
}

void DurableMonitor::flush() {
  journal_->commit();
  publish_counters();
}

void DurableMonitor::checkpoint() {
  // Commit first so the snapshot's journal frontier covers every read
  // already folded into the pipeline state it serializes.
  journal_->commit();
  SnapshotData data;
  data.last_journal_seq = journal_->last_committed_seq();
  data.now_s = pipeline_.now_s();
  data.pipeline = pipeline_.export_state();
  data.validator = frontend_.validator().export_state();
  snapshot_->write(data);
  journal_->prune(data.last_journal_seq);
  publish_counters();
}

DurabilityCounters DurableMonitor::counters() const {
  DurabilityCounters merged = recovery_counters_;
  merged.merge(journal_->counters());
  merged.merge(snapshot_->counters());
  return merged;
}

void DurableMonitor::publish_counters() {
  if (obs_.records_appended == nullptr) return;
  const DurabilityCounters c = counters();
  obs_.records_appended->set(c.journal_records_appended);
  obs_.commits->set(c.journal_commits);
  obs_.bytes_written->set(c.journal_bytes_written);
  obs_.segments_created->set(c.journal_segments_created);
  obs_.segments_pruned->set(c.journal_segments_pruned);
  obs_.replay_records->set(c.replay_records);
  obs_.replay_quarantined->set(c.replay_quarantined);
  obs_.records_corrupt->set(c.journal_records_corrupt);
  obs_.truncated_tails->set(c.journal_truncated_tails);
  obs_.segments_scanned->set(c.journal_segments_scanned);
  obs_.segments_rejected->set(c.journal_segments_rejected);
  obs_.snapshots_written->set(c.snapshots_written);
  obs_.snapshot_bytes->set(c.snapshot_bytes_written);
  obs_.snapshots_pruned->set(c.snapshots_pruned);
  obs_.snapshots_loaded->set(c.snapshots_loaded);
  obs_.snapshots_rejected->set(c.snapshots_rejected);
}

void DurableMonitor::bind_observability(obs::Observability& hub) {
  pipeline_.bind_observability(hub);
  frontend_.bind_observability(hub);
  obs::MetricsRegistry& m = hub.metrics();
  obs_.commits = &m.counter("durability_journal_commits_total");
  obs_.bytes_written = &m.counter("durability_journal_bytes_written_total");
  obs_.segments_created =
      &m.counter("durability_journal_segments_created_total");
  obs_.segments_pruned = &m.counter("durability_journal_segments_pruned_total");
  obs_.replay_records = &m.counter("durability_replay_records_total");
  obs_.replay_quarantined = &m.counter("durability_replay_quarantined_total");
  obs_.records_corrupt = &m.counter("durability_journal_records_corrupt_total");
  obs_.truncated_tails = &m.counter("durability_journal_truncated_tails_total");
  obs_.segments_scanned =
      &m.counter("durability_journal_segments_scanned_total");
  obs_.segments_rejected =
      &m.counter("durability_journal_segments_rejected_total");
  obs_.snapshots_written = &m.counter("durability_snapshots_written_total");
  obs_.snapshot_bytes = &m.counter("durability_snapshot_bytes_written_total");
  obs_.snapshots_pruned = &m.counter("durability_snapshots_pruned_total");
  obs_.snapshots_loaded = &m.counter("durability_snapshots_loaded_total");
  obs_.snapshots_rejected = &m.counter("durability_snapshots_rejected_total");
  obs_.records_appended =
      &m.counter("durability_journal_records_appended_total");
  publish_counters();
}

// ---------------------------------------------------------------------------
// Crash-injection harness

namespace {

constexpr std::size_t kMaxSoakViolations = 50;

void add_violation(std::vector<std::string>& violations, std::string line) {
  if (violations.size() < kMaxSoakViolations) {
    violations.push_back(std::move(line));
  } else if (violations.size() == kMaxSoakViolations) {
    violations.push_back("... further violations suppressed");
  }
}

/// One chaos-mangled read plus the wall moment it is handed to the
/// front-end. Precomputed once so the golden run and both lives of the
/// crashed run see the byte-identical delivery schedule.
struct DeliveryItem {
  double offer_s = 0.0;
  TagRead read;
};

std::vector<DeliveryItem> make_delivery_schedule(const SoakConfig& soak) {
  const ReadStream clean = make_soak_population(soak);
  ChaosInjector injector(soak.chaos);
  std::vector<DeliveryItem> items;
  items.reserve(clean.size());
  std::vector<TagRead> out;
  for (const TagRead& read : clean) {
    out.clear();
    injector.feed(read, out);
    for (const TagRead& r : out) items.push_back(DeliveryItem{read.time_s, r});
  }
  out.clear();
  injector.flush(out);
  for (const TagRead& r : out)
    items.push_back(DeliveryItem{soak.duration_s, r});
  return items;
}

/// (roster, ingest, pipeline) defaults applied the same way run_soak
/// applies them, so crash-soak behaviour matches the plain soak.
struct SoakSetup {
  std::vector<std::uint64_t> roster;
  IngestConfig ingest;
  PipelineConfig pipeline;
};

SoakSetup make_soak_setup(const SoakConfig& config) {
  SoakSetup setup;
  setup.roster.reserve(config.n_users);
  for (std::size_t u = 0; u < config.n_users; ++u)
    setup.roster.push_back(static_cast<std::uint64_t>(u + 1));
  setup.ingest = config.ingest;
  if (setup.ingest.monitored_users.empty())
    setup.ingest.monitored_users = setup.roster;
  setup.pipeline = config.pipeline;
  if (setup.pipeline.max_users == 0)
    setup.pipeline.max_users = setup.ingest.max_users;
  return setup;
}

using TimedLog = std::vector<std::pair<double, std::string>>;

std::vector<std::string> log_tail(const TimedLog& events, double after_s) {
  std::vector<std::string> out;
  for (const auto& [time_s, line] : events)
    if (time_s > after_s) out.push_back(line);
  return out;
}

}  // namespace

void CrashSoakConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("CrashSoakConfig: " + what);
  };
  soak.validate();
  durability.validate();
  if (static_cast<std::size_t>(point) >= kCrashPointCount)
    bad("point out of range");
  if (!(crash_after_s > 0.0) || !std::isfinite(crash_after_s))
    bad("crash_after_s must be positive and finite");
  if (crash_after_s >= soak.duration_s)
    bad("crash_after_s must fall inside the soak duration");
  if (!(converge_margin_s >= 0.0) || !std::isfinite(converge_margin_s))
    bad("converge_margin_s must be non-negative and finite");
}

CrashSoakReport run_crash_soak(const CrashSoakConfig& config) {
  config.validate();
  CrashSoakReport report;

  const std::vector<DeliveryItem> items = make_delivery_schedule(config.soak);
  const SoakSetup setup = make_soak_setup(config.soak);
  const double pump_period = config.soak.pump_period_s;
  const double duration = config.soak.duration_s;

  // --- golden run: no durability layer, no interruption ------------------
  TimedLog golden;
  {
    RealtimePipeline pipeline(setup.pipeline, [&](const PipelineEvent& e) {
      golden.emplace_back(e.time_s, format_soak_event(e));
    });
    IngestFrontEnd frontend(setup.ingest, pipeline);
    double next_pump = pump_period;
    for (const DeliveryItem& item : items) {
      while (item.offer_s >= next_pump) {
        frontend.pump(next_pump);
        next_pump += pump_period;
      }
      frontend.offer(item.read, item.offer_s);
    }
    frontend.pump(duration);
  }
  report.golden_events = golden.size();

  // --- crashed run: kill point armed, recover, finish the stream ---------
  TimedLog recovered;
  const auto callback = [&](const PipelineEvent& e) {
    recovered.emplace_back(e.time_s, format_soak_event(e));
  };

  double stream_now_s = 0.0;
  DurabilityHooks hooks;
  hooks.at_point = [&](CrashPoint point) {
    if (report.crashed || point != config.point) return;
    if (stream_now_s < config.crash_after_s) return;
    report.crashed = true;
    report.crash_time_s = stream_now_s;
    throw SimulatedCrash(std::string("injected crash: ") +
                         crash_point_name(point));
  };

  std::size_t idx = 0;
  double next_pump = pump_period;
  const auto drive = [&](DurableMonitor& monitor) {
    while (idx < items.size()) {
      const DeliveryItem& item = items[idx];
      while (item.offer_s >= next_pump) {
        stream_now_s = next_pump;
        monitor.pump(next_pump);
        next_pump += pump_period;
      }
      stream_now_s = item.offer_s;
      monitor.offer(item.read, item.offer_s);
      ++idx;
    }
    stream_now_s = duration;
    monitor.pump(duration);
    monitor.flush();
  };

  auto monitor = std::make_unique<DurableMonitor>(
      config.durability, setup.ingest, setup.pipeline, callback, &hooks);
  try {
    drive(*monitor);
  } catch (const SimulatedCrash&) {
    // First life is over. Reads still queued in its front-end are lost,
    // as they would be in a real crash; the wedged writers' destructors
    // leave the torn files exactly as the "crash" left them.
    report.counters.merge(monitor->counters());
    monitor.reset();
    try {
      monitor = std::make_unique<DurableMonitor>(
          config.durability, setup.ingest, setup.pipeline, callback, nullptr);
      report.recovered = true;
      report.recovery = monitor->recovery();
    } catch (const std::exception& e) {
      monitor.reset();
      add_violation(report.violations,
                    std::string("recovery failed to construct: ") + e.what());
    }
    if (monitor) {
      try {
        drive(*monitor);
      } catch (const std::exception& e) {
        add_violation(report.violations,
                      std::string("post-recovery drive failed: ") + e.what());
      }
    }
  }
  if (monitor) report.counters.merge(monitor->counters());
  report.recovered_run_events = recovered.size();

  if (!report.crashed) {
    add_violation(report.violations,
                  std::string("kill point ") + crash_point_name(config.point) +
                      " never fired before the soak ended");
    return report;
  }

  // --- convergence: once the sliding window has refilled past the
  // crash, the recovered event stream must match the golden one -----------
  const double threshold = report.crash_time_s + config.soak.pipeline.window_s +
                           config.converge_margin_s;
  const std::vector<std::string> golden_tail = log_tail(golden, threshold);
  const std::vector<std::string> recovered_tail = log_tail(recovered, threshold);
  report.compared_events = golden_tail.size();
  if (golden_tail.empty())
    add_violation(report.violations,
                  "convergence window is empty — crash_after_s too close to "
                  "the soak duration");
  if (golden_tail.size() != recovered_tail.size())
    add_violation(report.violations,
                  "event count diverged after t=" + std::to_string(threshold) +
                      ": golden " + std::to_string(golden_tail.size()) +
                      " vs recovered " + std::to_string(recovered_tail.size()));
  const std::size_t common =
      std::min(golden_tail.size(), recovered_tail.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (golden_tail[i] != recovered_tail[i]) {
      add_violation(report.violations,
                    "event diverged: golden '" + golden_tail[i] +
                        "' vs recovered '" + recovered_tail[i] + "'");
      break;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Durable soak (run_soak's scenario through a DurableMonitor)

SoakReport run_durable_soak(const SoakConfig& config,
                            const DurabilityConfig& durability) {
  config.validate();
  durability.validate();
  SoakReport report;

  const SoakSetup setup = make_soak_setup(config);
  const std::size_t user_cap =
      setup.pipeline.max_users > 0 ? setup.pipeline.max_users : config.n_users;
  SoakInvariantSink sink(setup.roster, user_cap, setup.ingest.max_users,
                         report);

  DurableMonitor monitor(
      durability, setup.ingest, setup.pipeline,
      [&](const PipelineEvent& event) { sink.on_event(event); });
  if (config.observability != nullptr)
    monitor.bind_observability(*config.observability);
  ChaosInjector injector(config.chaos);
  const ReadStream clean = make_soak_population(config);

  std::vector<TagRead> delivered;
  double next_pump = config.pump_period_s;
  const auto pump_and_check = [&](double now_s) {
    monitor.pump(now_s);
    sink.after_pump(monitor.pipeline(),
                    monitor.frontend().validator().tracked_users());
  };

  for (const TagRead& read : clean) {
    delivered.clear();
    injector.feed(read, delivered);
    for (const TagRead& r : delivered) monitor.offer(r, read.time_s);
    while (read.time_s >= next_pump) {
      pump_and_check(next_pump);
      next_pump += config.pump_period_s;
    }
  }
  delivered.clear();
  injector.flush(delivered);
  for (const TagRead& r : delivered) monitor.offer(r, config.duration_s);
  pump_and_check(config.duration_s);
  monitor.flush();

  report.chaos = injector.stats();
  report.queue = monitor.frontend().queue_counters();
  report.validation = monitor.frontend().validation();
  report.durability = monitor.counters();

  append_queue_invariant_violations(report.queue,
                                    monitor.frontend().queue().capacity(),
                                    report.violations);
  // Every admitted read must have hit the journal (write-ahead). Only
  // checkable on a fresh directory: replayed reads count as admitted
  // but were journaled in a previous life.
  if (monitor.recovery().replayed_reads == 0 &&
      monitor.recovery().replay_quarantined == 0 &&
      report.durability.journal_records_appended !=
          report.validation.admitted)
    sink.violation("journal missed admitted reads: " +
                   std::to_string(report.durability.journal_records_appended) +
                   " journaled vs " +
                   std::to_string(report.validation.admitted) + " admitted");

  return report;
}

}  // namespace tagbreathe::core
