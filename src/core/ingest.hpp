// Robust ingest front-end: the admission layer between read producers
// (llrp client / reader sim) and the analysis pipeline.
//
// The paper's chain trusts every decoded read; in deployment the stream
// is dirty — duplicated report entries, reader clock steps, corrupted
// EPCs minting phantom users, burst overload when a reader flushes a
// backlog. WiFi/RSS respiration systems gate estimation on validated,
// rate-limited input for the same reason (UbiBreathe; Catch a Breath).
// Three stages live here:
//
//   producer thread(s)                       analysis thread
//   ──────────────────                       ───────────────
//   IngestQueue::push  ──▶ [bounded MPSC] ──▶ IngestFrontEnd::pump
//                                              │ ReadValidator
//                                              │   repair / quarantine /
//                                              │   per-user LRU admission
//                                              ▼
//                                            RealtimePipeline::push
//
// - IngestQueue: bounded MPSC queue on common::RingBuffer decoupling the
//   reader thread from analysis, with selectable backpressure (block,
//   drop-oldest, per-tag coalesce) and shed/enqueue/latency counters
//   (core/metrics LatencyStats).
// - ReadValidator: repairs small timestamp regressions, rejects large
//   ones, drops duplicate deliveries, quarantines malformed or unknown
//   EPC decodes, and enforces a per-user admission cap with LRU
//   eviction so adversarial streams cannot grow memory without bound.
// - IngestFrontEnd: composes both in front of a RealtimePipeline and
//   guarantees the pipeline only ever sees monotonic, validated reads.
//
// Everything is deterministic: time is stream time, never a wall clock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <vector>

#include "common/flat_map.hpp"
#include "common/ring_buffer.hpp"
#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "core/types.hpp"

namespace tagbreathe::obs {
class Observability;
class Counter;
class Gauge;
class Histogram;
}  // namespace tagbreathe::obs

namespace tagbreathe::core {

/// What the queue does when a producer pushes into a full buffer.
enum class BackpressurePolicy : std::uint8_t {
  /// Producer waits until the consumer drains (offline replay feeds;
  /// never use on the reader pump thread). try_push reports WouldBlock.
  Block = 0,
  /// The oldest queued read is shed to admit the new one (live feeds:
  /// newest data is worth the most).
  DropOldest = 1,
  /// The newest queued read of the same (user, tag, antenna) is
  /// overwritten in place — per-tag coalescing keeps one fresh sample
  /// per stream under overload; with no same-tag entry queued, falls
  /// back to shedding the oldest.
  Coalesce = 2,
};
inline constexpr std::size_t kBackpressurePolicyCount = 3;

/// Total: unknown values name themselves instead of invoking UB.
const char* backpressure_policy_name(BackpressurePolicy policy) noexcept;

/// Outcome of one producer push.
enum class EnqueueResult : std::uint8_t {
  Enqueued = 0,       // appended, queue had room
  DroppedOldest = 1,  // appended, oldest read shed
  Coalesced = 2,      // overwrote a queued read of the same tag
  WouldBlock = 3,     // Block policy + full queue on try_push
  Closed = 4,         // queue closed, read refused
};
inline constexpr std::size_t kEnqueueResultCount = 5;
const char* enqueue_result_name(EnqueueResult result) noexcept;

/// Why a read was refused admission to the pipeline.
enum class QuarantineReason : std::uint8_t {
  MalformedEpc = 0,         // zero user or tag ID — not a monitoring EPC
  UnknownUser = 1,          // EPC decodes to a user outside the roster
  NonFiniteField = 2,       // NaN/Inf in a numeric field
  TimestampRegression = 3,  // clock stepped back beyond repair
  DuplicateRead = 4,        // identical delivery already admitted
};
inline constexpr std::size_t kQuarantineReasonCount = 5;
const char* quarantine_reason_name(QuarantineReason reason) noexcept;

struct IngestConfig {
  /// Bounded queue depth (reads).
  std::size_t queue_capacity = 4096;
  BackpressurePolicy policy = BackpressurePolicy::DropOldest;
  /// A timestamp at most this far behind the newest admitted read is
  /// repaired (clamped forward); further behind is quarantined as a
  /// regression. Covers reorder jitter and small reader clock steps.
  double repair_skew_s = 0.25;
  /// Two reads of one stream within this interval carrying the same
  /// phase are one delivery duplicated in transit.
  double duplicate_window_s = 1e-4;
  /// Distinct users admitted at once; the least-recently-seen user is
  /// evicted (and reported via take_evicted_users) when a new user
  /// arrives at the cap. 0 = unlimited.
  std::size_t max_users = 64;
  /// Non-empty => only these user IDs are admitted; everything else is
  /// quarantined as UnknownUser. Empty accepts any well-formed EPC.
  std::vector<std::uint64_t> monitored_users;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Queue-side counters (shed/enqueue/latency observability).
struct IngestQueueCounters {
  std::size_t enqueued = 0;        // reads accepted into the buffer
  std::size_t shed_oldest = 0;     // reads evicted by DropOldest/Coalesce
  std::size_t coalesced = 0;       // in-place same-tag overwrites
  std::size_t would_block = 0;     // try_push refusals under Block
  std::size_t blocked_pushes = 0;  // pushes that had to wait (Block)
  std::size_t closed_rejects = 0;  // pushes after close()
  std::size_t drained = 0;         // reads handed to the consumer
  std::size_t peak_depth = 0;      // high-water mark of the buffer
  /// Stream-time delay between enqueue and drain.
  LatencyStats queue_delay;
};

/// Validator-side counters.
struct ValidationCounters {
  std::size_t admitted = 0;
  std::size_t repaired_timestamps = 0;
  std::size_t quarantined_total = 0;
  std::size_t quarantined[kQuarantineReasonCount] = {};
  std::size_t users_evicted = 0;
};

/// Bounded MPSC queue between read producers and the analysis thread.
/// Producers may race; there must be exactly one consumer. All waiting
/// uses stream-time-free primitives (condition variables), so the
/// single-threaded deterministic harnesses can use it too — they just
/// never block (DropOldest/Coalesce, or try_push).
class IngestQueue {
 public:
  IngestQueue(std::size_t capacity, BackpressurePolicy policy);

  /// Producer side. `now_s` is the producer's stream clock, used only
  /// for latency accounting (defaults to the read's own timestamp).
  /// Under Block policy push() waits for room; try_push() never waits.
  EnqueueResult push(const TagRead& read, double now_s);
  EnqueueResult push(const TagRead& read) { return push(read, read.time_s); }
  EnqueueResult try_push(const TagRead& read, double now_s);
  EnqueueResult try_push(const TagRead& read) {
    return try_push(read, read.time_s);
  }

  /// Consumer side: moves everything currently queued into `out`
  /// (appending) and returns the count. `now_s` stamps the drain time
  /// for latency accounting.
  std::size_t drain(std::vector<TagRead>& out, double now_s);

  /// Wakes blocked producers; subsequent pushes return Closed.
  void close();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  BackpressurePolicy policy() const noexcept { return policy_; }
  bool closed() const;

  /// Snapshot of the counters (taken under the queue lock).
  IngestQueueCounters counters() const;

  /// Registers the queue's instruments (ingest_queue_* counters, depth
  /// gauge, delay histogram) on the hub and mirrors every subsequent
  /// counter update onto them. Wiring time only — bind before
  /// producers start. The hub must outlive the queue.
  void bind_observability(obs::Observability& hub);

 private:
  struct Slot {
    TagRead read;
    double enqueued_at = 0.0;
  };

  EnqueueResult push_locked(const TagRead& read, double now_s);

  /// Registry handles (null until bind_observability; updates are
  /// lock-free atomics, guarded by a single null check on `enqueued`).
  struct Instruments {
    obs::Counter* enqueued = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* would_block = nullptr;
    obs::Counter* blocked = nullptr;
    obs::Counter* closed_rejects = nullptr;
    obs::Counter* drained = nullptr;
    obs::Gauge* depth = nullptr;
    obs::Histogram* delay = nullptr;
  };

  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable room_;
  common::RingBuffer<Slot> buffer_;
  bool closed_ = false;
  IngestQueueCounters counters_;
  Instruments obs_;
};

/// Serializable image of a validator (core/snapshot): the admission
/// frontier plus per-stream duplicate-detection state and the LRU
/// order. Counters are observability, not state, and restart at zero
/// with the process.
struct ValidatorState {
  struct Stream {
    std::uint64_t user_id = 0;
    std::uint32_t tag_id = 0;
    std::uint8_t antenna_id = 0;
    double last_time_s = 0.0;
    double last_phase_rad = 0.0;
  };
  double last_admitted_s = 0.0;
  bool any_admitted = false;  // last_admitted_s is -inf when false
  std::vector<Stream> streams;
  std::vector<std::uint64_t> lru_order;  // least-recent first
};

/// Stateful read validation & quarantine. Single-threaded (runs on the
/// consumer side of the queue).
class ReadValidator {
 public:
  explicit ReadValidator(IngestConfig config);

  struct Verdict {
    bool admitted = false;
    bool repaired = false;  // timestamp clamped forward
    QuarantineReason reason = QuarantineReason::MalformedEpc;
  };

  /// Judges one read, possibly repairing its timestamp in place.
  Verdict admit(TagRead& read);

  /// Users evicted by the admission cap since the last call; the caller
  /// must propagate these to the pipeline (forget_user).
  std::vector<std::uint64_t> take_evicted_users();

  const ValidationCounters& counters() const noexcept { return counters_; }
  /// Newest admitted timestamp (-inf before the first admission).
  double last_admitted_s() const noexcept { return last_admitted_s_; }
  std::size_t tracked_users() const noexcept { return lru_index_.size(); }

  /// Durable-state hooks (crash recovery): the restored validator
  /// resumes exactly where the snapshot left off — the admission
  /// frontier, duplicate windows and LRU order all survive, so a
  /// replayed or resumed stream is judged identically to the original.
  ValidatorState export_state() const;
  void import_state(const ValidatorState& state);

  /// Registers the validator's instruments (ingest_admitted_total,
  /// per-reason ingest_quarantined_total, tracked-users gauge) and
  /// mirrors subsequent verdicts onto them. Wiring time only.
  void bind_observability(obs::Observability& hub);

 private:
  struct StreamState {
    double last_time_s = 0.0;
    double last_phase_rad = 0.0;
  };
  struct LruKey {
    std::uint64_t user_id = 0;
    std::uint32_t tag_id = 0;
    std::uint8_t antenna_id = 0;
    friend bool operator==(const LruKey&, const LruKey&) = default;
    friend auto operator<=>(const LruKey&, const LruKey&) = default;
  };
  struct LruKeyHash {
    std::uint64_t operator()(const LruKey& key) const noexcept {
      return common::splitmix64_mix(
          common::splitmix64_mix(key.user_id) ^
          (static_cast<std::uint64_t>(key.tag_id) << 8) ^ key.antenna_id);
    }
  };

  Verdict quarantine(QuarantineReason reason);
  void touch_user(std::uint64_t user_id);

  struct Instruments {
    obs::Counter* admitted = nullptr;
    obs::Counter* repaired = nullptr;
    obs::Counter* quarantined[kQuarantineReasonCount] = {};
    obs::Counter* users_evicted = nullptr;
    obs::Gauge* tracked_users = nullptr;
  };
  Instruments obs_;

  IngestConfig config_;
  ValidationCounters counters_;
  double last_admitted_s_;
  /// Per-stream duplicate-detection state; flat (ISSUE 10) because the
  /// map holds one entry per admitted (user, tag, antenna) and is hit
  /// on every read. export_state walks it via for_each_ordered so the
  /// snapshot image stays byte-stable.
  common::FlatMap<LruKey, StreamState, LruKeyHash> streams_;
  /// LRU order of admitted users, least-recent first.
  std::list<std::uint64_t> lru_order_;
  common::FlatUserMap<std::list<std::uint64_t>::iterator> lru_index_;
  std::vector<std::uint64_t> pending_evictions_;
};

/// Queue + validator composed in front of a RealtimePipeline. Producers
/// call offer() (any thread); the analysis thread calls pump() on its
/// cadence. The pipeline underneath only ever sees validated reads with
/// non-decreasing timestamps.
class IngestFrontEnd {
 public:
  /// The pipeline must outlive the front-end.
  IngestFrontEnd(IngestConfig config, RealtimePipeline& pipeline);

  /// Producer side: non-blocking admission into the queue (the reader
  /// pump must never stall behind analysis, so Block policy surfaces as
  /// WouldBlock here — use queue().push for blocking replay feeds).
  EnqueueResult offer(const TagRead& read, double now_s);
  EnqueueResult offer(const TagRead& read) { return offer(read, read.time_s); }

  /// Consumer side: drains the queue, validates every read, feeds the
  /// survivors to the pipeline, applies admission evictions, and
  /// advances the pipeline clock to `now_s`. Returns reads admitted.
  std::size_t pump(double now_s);

  /// Observer invoked for every read the validator admits, immediately
  /// before it reaches the pipeline. The durability layer hangs its
  /// write-ahead journal here so the journal sees exactly the admitted
  /// stream (quarantined reads are never persisted).
  using AdmitTap = std::function<void(const TagRead&)>;
  void set_admit_tap(AdmitTap tap) { tap_ = std::move(tap); }

  IngestQueue& queue() noexcept { return queue_; }
  /// Mutable access exists for recovery (state import); live code
  /// should treat the validator as pump-owned.
  ReadValidator& validator() noexcept { return validator_; }
  const ReadValidator& validator() const noexcept { return validator_; }
  const ValidationCounters& validation() const noexcept {
    return validator_.counters();
  }
  IngestQueueCounters queue_counters() const { return queue_.counters(); }
  RealtimePipeline& pipeline() noexcept { return pipeline_; }

  /// Binds the queue and the validator to the hub. The pipeline is not
  /// bound here — it is caller-owned; bind it separately
  /// (RealtimePipeline::bind_observability) or via DurableMonitor.
  void bind_observability(obs::Observability& hub);

 private:
  IngestQueue queue_;
  ReadValidator validator_;
  RealtimePipeline& pipeline_;
  AdmitTap tap_;
  std::vector<TagRead> scratch_;
};

}  // namespace tagbreathe::core
