#include "core/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/observability.hpp"

namespace tagbreathe::core {

namespace {

/// Emits the "monitor.analyze" Exit event on every return path.
struct AnalyzeTraceGuard {
  obs::Observability* hub;
  std::uint16_t stage;
  double t1;
  std::uint64_t user_id;
  ~AnalyzeTraceGuard() {
    if (hub != nullptr) hub->trace().exit(stage, t1, user_id);
  }
};

}  // namespace

BreathMonitor::BreathMonitor(MonitorConfig config)
    : config_(std::move(config)) {
  // Sanitize the health thresholds rather than throwing: ablation
  // configs legitimately push them around, but NaN or negative values
  // would make every SignalHealth comparison silently false.
  if (!std::isfinite(config_.stale_after_s) || config_.stale_after_s < 0.0)
    config_.stale_after_s = 0.0;
  if (!std::isfinite(config_.lost_after_s) || config_.lost_after_s < 0.0)
    config_.lost_after_s = 0.0;
  if (!std::isfinite(config_.min_coverage))
    config_.min_coverage = 0.0;
  config_.min_coverage = std::clamp(config_.min_coverage, 0.0, 1.0);
}

std::vector<UserAnalysis> BreathMonitor::analyze(
    std::span<const TagRead> reads) const {
  std::vector<UserAnalysis> out;
  if (reads.empty()) return out;

  StreamDemux demux;
  demux.add(reads);

  double t0 = reads.front().time_s;
  double t1 = reads.front().time_s;
  for (const TagRead& r : reads) {
    t0 = std::min(t0, r.time_s);
    t1 = std::max(t1, r.time_s);
  }

  const std::vector<std::uint64_t> users = demux.users();
  out.resize(users.size());
  AnalysisScratch scratch;
  analyze_users(demux, users, t0, t1, &scratch, out);
  return out;
}

bool BreathMonitor::analyze_prepare(const StreamDemux& demux,
                                    std::uint64_t user_id, double t0,
                                    double t1, AnalysisScratch& scratch,
                                    UserAnalysis& out,
                                    double& stage_mark) const {
  out = UserAnalysis{};
  out.user_id = user_id;
  out.window_s = std::max(t1 - t0, 0.0);

  if (obs_.hub != nullptr)
    obs_.hub->trace().enter(obs_.trace_stage, t1, user_id);

  const auto all_streams = demux.streams_for_user(user_id);
  if (all_streams.empty()) return false;

  // Signal health: judged over every stream the user has, so a working
  // set that went quiet is not mistaken for a healthy signal.
  {
    std::vector<double> times;
    for (const auto* stream : all_streams)
      for (const TagRead& r : *stream)
        if (r.time_s >= t0 && r.time_s <= t1) times.push_back(r.time_s);
    std::sort(times.begin(), times.end());
    if (!times.empty()) {
      out.last_read_s = times.back();
      out.tail_gap_s = t1 - times.back();
      const double lead_gap = times.front() - t0;
      out.max_gap_s = std::max(lead_gap, out.tail_gap_s);
      double gap_time = lead_gap > config_.stale_after_s ? lead_gap : 0.0;
      for (std::size_t i = 1; i < times.size(); ++i) {
        const double gap = times[i] - times[i - 1];
        out.max_gap_s = std::max(out.max_gap_s, gap);
        if (gap > config_.stale_after_s) gap_time += gap;
      }
      if (out.tail_gap_s > config_.stale_after_s)
        gap_time += out.tail_gap_s;
      out.coverage = out.window_s > 0.0
                         ? std::clamp(1.0 - gap_time / out.window_s, 0.0, 1.0)
                         : 1.0;
      const bool gap_too_wide = config_.max_gap_for_ok_s > 0.0 &&
                                out.max_gap_s >= config_.max_gap_for_ok_s;
      if (out.tail_gap_s >= config_.lost_after_s) {
        out.health = SignalHealth::Lost;
      } else if (out.tail_gap_s >= config_.stale_after_s ||
                 out.coverage < config_.min_coverage || gap_too_wide) {
        out.health = SignalHealth::Stale;
      } else {
        out.health = SignalHealth::Ok;
      }
    }
  }

  out.antenna_scores = score_antennas(all_streams, out.window_s,
                                      config_.antenna);

  // Pick the working set of streams: best antenna (default) or all.
  std::vector<const std::vector<TagRead>*> working;
  if (config_.select_antenna && !out.antenna_scores.empty()) {
    out.antenna_used = out.antenna_scores.front().antenna_id;
    working = demux.streams_for_user_antenna(user_id, out.antenna_used);
  } else {
    working = all_streams;
  }
  if (!config_.fuse_tags && working.size() > 1) {
    // Ablation: keep only the busiest stream.
    const auto busiest = std::max_element(
        working.begin(), working.end(),
        [](const std::vector<TagRead>* a, const std::vector<TagRead>* b) {
          return a->size() < b->size();
        });
    working = {*busiest};
  }

  // Stage timings read the hub's latency clock once per boundary; with
  // the hub unbound `stage_mark` stays 0 and no histogram is touched.
  stage_mark = obs_.hub != nullptr ? obs_.hub->now() : 0.0;
  const auto time_stage = [&](obs::Histogram* h) {
    if (obs_.hub == nullptr) return;
    const double now = obs_.hub->now();
    h->observe(now - stage_mark);
    stage_mark = now;
  };

  // Phase preprocessing per stream (Eqs. 3-4), through the slot's pooled
  // preprocessor (reconfigure() restores the fresh-instance state while
  // keeping every buffer's high-water capacity).
  auto& deltas = scratch.deltas;
  if (deltas.size() < working.size()) deltas.resize(working.size());
  for (std::size_t k = 0; k < working.size(); ++k) {
    scratch.pre.reconfigure(config_.preprocess);
    scratch.pre.process_into(*working[k], deltas[k]);
    out.reads_used += working[k]->size();
  }
  out.streams_used = working.size();
  time_stage(obs_.preprocess);

  // Low-level fusion (Eqs. 6-7) over the window. Only the prefix of the
  // delta staging belongs to this user — older entries are stale.
  const FusedTrack fused = fuse_streams(
      std::span<const std::vector<signal::TimedSample>>(deltas.data(),
                                                        working.size()),
      t0, t1, config_.fusion);
  out.fused_track = fused.track;
  out.track_rate_hz = fused.sample_rate_hz();
  time_stage(obs_.fuse);
  return out.fused_track.size() >= 8;
}

UserAnalysis BreathMonitor::analyze_user(const StreamDemux& demux,
                                         std::uint64_t user_id, double t0,
                                         double t1,
                                         AnalysisScratch* scratch) const {
  UserAnalysis out;
  AnalysisScratch local;
  AnalysisScratch& s = scratch != nullptr ? *scratch : local;
  AnalyzeTraceGuard trace_guard{obs_.hub, obs_.trace_stage, t1, user_id};

  double stage_mark = 0.0;
  if (!analyze_prepare(demux, user_id, t0, t1, s, out, stage_mark))
    return out;
  const auto time_stage = [&](obs::Histogram* h) {
    if (obs_.hub == nullptr) return;
    const double now = obs_.hub->now();
    h->observe(now - stage_mark);
    stage_mark = now;
  };

  // Breath-signal extraction + rate estimation. A one-job batch through
  // extract_many — the same code path the batched engine takes, so
  // single and batched analyses are bit-identical.
  const BreathExtractor extractor(config_.extractor);
  const ExtractJob job{out.fused_track, out.track_rate_hz, &out.breath};
  extractor.extract_many({&job, 1}, s.fft, s.extract);
  time_stage(obs_.extract);

  const ZeroCrossingRateEstimator estimator(config_.rate);
  out.rate = estimator.estimate(out.breath.samples);
  time_stage(obs_.estimate);
  return out;
}

void BreathMonitor::analyze_users(const StreamDemux& demux,
                                  std::span<const std::uint64_t> user_ids,
                                  double t0, double t1,
                                  AnalysisScratch* scratch,
                                  std::span<UserAnalysis> out) const {
  if (out.size() != user_ids.size())
    throw std::invalid_argument(
        "BreathMonitor: analyze_users out/user_ids size mismatch");
  if (user_ids.empty()) return;
  AnalysisScratch local;
  AnalysisScratch& s = scratch != nullptr ? *scratch : local;
  const std::size_t count = user_ids.size();

  // Stage A (per user): the pre-extraction workflow; ready fused tracks
  // are staged as extraction jobs. Users that cannot be extracted finish
  // here (their trace span closes immediately, like the single path).
  s.extract_jobs.clear();
  double stage_mark = 0.0;
  for (std::size_t j = 0; j < count; ++j) {
    if (analyze_prepare(demux, user_ids[j], t0, t1, s, out[j], stage_mark)) {
      s.extract_jobs.push_back(
          ExtractJob{out[j].fused_track, out[j].track_rate_hz,
                     &out[j].breath});
    } else if (obs_.hub != nullptr) {
      obs_.hub->trace().exit(obs_.trace_stage, t1, user_ids[j]);
    }
  }

  // Stage B: ONE batched extraction sweep over every ready track. The
  // whole batch's transforms run through the shared plan back to back;
  // the extract histogram observes the sweep once.
  const BreathExtractor extractor(config_.extractor);
  const double extract_mark = obs_.hub != nullptr ? obs_.hub->now() : 0.0;
  extractor.extract_many(s.extract_jobs, s.fft, s.extract);
  if (obs_.hub != nullptr && !s.extract_jobs.empty())
    obs_.extract->observe(obs_.hub->now() - extract_mark);

  // Stage C (per user): rate estimation over the extracted signal.
  const ZeroCrossingRateEstimator estimator(config_.rate);
  for (std::size_t j = 0; j < count; ++j) {
    if (out[j].fused_track.size() < 8) continue;  // finished in stage A
    const double mark = obs_.hub != nullptr ? obs_.hub->now() : 0.0;
    out[j].rate = estimator.estimate(out[j].breath.samples);
    if (obs_.hub != nullptr) {
      obs_.estimate->observe(obs_.hub->now() - mark);
      obs_.hub->trace().exit(obs_.trace_stage, t1, user_ids[j]);
    }
  }
}

void BreathMonitor::bind_observability(obs::Observability& hub) {
  obs::MetricsRegistry& m = hub.metrics();
  const auto bounds = obs::default_latency_bounds();
  obs_.preprocess =
      &m.histogram("analysis_stage_seconds", bounds, "stage", "preprocess");
  obs_.fuse = &m.histogram("analysis_stage_seconds", bounds, "stage", "fuse");
  obs_.extract =
      &m.histogram("analysis_stage_seconds", bounds, "stage", "extract");
  obs_.estimate =
      &m.histogram("analysis_stage_seconds", bounds, "stage", "estimate");
  obs_.trace_stage = hub.trace().register_stage("monitor.analyze");
  obs_.hub = &hub;
}

}  // namespace tagbreathe::core
