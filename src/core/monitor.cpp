#include "core/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "obs/observability.hpp"

namespace tagbreathe::core {

namespace {

/// Emits the "monitor.analyze" Exit event on every return path.
struct AnalyzeTraceGuard {
  obs::Observability* hub;
  std::uint16_t stage;
  double t1;
  std::uint64_t user_id;
  ~AnalyzeTraceGuard() {
    if (hub != nullptr) hub->trace().exit(stage, t1, user_id);
  }
};

}  // namespace

BreathMonitor::BreathMonitor(MonitorConfig config)
    : config_(std::move(config)) {
  // Sanitize the health thresholds rather than throwing: ablation
  // configs legitimately push them around, but NaN or negative values
  // would make every SignalHealth comparison silently false.
  if (!std::isfinite(config_.stale_after_s) || config_.stale_after_s < 0.0)
    config_.stale_after_s = 0.0;
  if (!std::isfinite(config_.lost_after_s) || config_.lost_after_s < 0.0)
    config_.lost_after_s = 0.0;
  if (!std::isfinite(config_.min_coverage))
    config_.min_coverage = 0.0;
  config_.min_coverage = std::clamp(config_.min_coverage, 0.0, 1.0);
}

std::vector<UserAnalysis> BreathMonitor::analyze(
    std::span<const TagRead> reads) const {
  std::vector<UserAnalysis> out;
  if (reads.empty()) return out;

  StreamDemux demux;
  demux.add(reads);

  double t0 = reads.front().time_s;
  double t1 = reads.front().time_s;
  for (const TagRead& r : reads) {
    t0 = std::min(t0, r.time_s);
    t1 = std::max(t1, r.time_s);
  }

  for (std::uint64_t user : demux.users())
    out.push_back(analyze_user(demux, user, t0, t1));
  return out;
}

UserAnalysis BreathMonitor::analyze_user(const StreamDemux& demux,
                                         std::uint64_t user_id, double t0,
                                         double t1,
                                         AnalysisScratch* scratch) const {
  UserAnalysis out;
  out.user_id = user_id;
  out.window_s = std::max(t1 - t0, 0.0);

  if (obs_.hub != nullptr)
    obs_.hub->trace().enter(obs_.trace_stage, t1, user_id);
  AnalyzeTraceGuard trace_guard{obs_.hub, obs_.trace_stage, t1, user_id};

  const auto all_streams = demux.streams_for_user(user_id);
  if (all_streams.empty()) return out;

  // Signal health: judged over every stream the user has, so a working
  // set that went quiet is not mistaken for a healthy signal.
  {
    std::vector<double> times;
    for (const auto* stream : all_streams)
      for (const TagRead& r : *stream)
        if (r.time_s >= t0 && r.time_s <= t1) times.push_back(r.time_s);
    std::sort(times.begin(), times.end());
    if (!times.empty()) {
      out.last_read_s = times.back();
      out.tail_gap_s = t1 - times.back();
      const double lead_gap = times.front() - t0;
      out.max_gap_s = std::max(lead_gap, out.tail_gap_s);
      double gap_time = lead_gap > config_.stale_after_s ? lead_gap : 0.0;
      for (std::size_t i = 1; i < times.size(); ++i) {
        const double gap = times[i] - times[i - 1];
        out.max_gap_s = std::max(out.max_gap_s, gap);
        if (gap > config_.stale_after_s) gap_time += gap;
      }
      if (out.tail_gap_s > config_.stale_after_s)
        gap_time += out.tail_gap_s;
      out.coverage = out.window_s > 0.0
                         ? std::clamp(1.0 - gap_time / out.window_s, 0.0, 1.0)
                         : 1.0;
      const bool gap_too_wide = config_.max_gap_for_ok_s > 0.0 &&
                                out.max_gap_s >= config_.max_gap_for_ok_s;
      if (out.tail_gap_s >= config_.lost_after_s) {
        out.health = SignalHealth::Lost;
      } else if (out.tail_gap_s >= config_.stale_after_s ||
                 out.coverage < config_.min_coverage || gap_too_wide) {
        out.health = SignalHealth::Stale;
      } else {
        out.health = SignalHealth::Ok;
      }
    }
  }

  out.antenna_scores = score_antennas(all_streams, out.window_s,
                                      config_.antenna);

  // Pick the working set of streams: best antenna (default) or all.
  std::vector<const std::vector<TagRead>*> working;
  if (config_.select_antenna && !out.antenna_scores.empty()) {
    out.antenna_used = out.antenna_scores.front().antenna_id;
    working = demux.streams_for_user_antenna(user_id, out.antenna_used);
  } else {
    working = all_streams;
  }
  if (!config_.fuse_tags && working.size() > 1) {
    // Ablation: keep only the busiest stream.
    const auto busiest = std::max_element(
        working.begin(), working.end(),
        [](const std::vector<TagRead>* a, const std::vector<TagRead>* b) {
          return a->size() < b->size();
        });
    working = {*busiest};
  }

  // Stage timings read the hub's latency clock once per boundary; with
  // the hub unbound `stage_mark` stays 0 and no histogram is touched.
  double stage_mark = obs_.hub != nullptr ? obs_.hub->now() : 0.0;
  const auto time_stage = [&](obs::Histogram* h) {
    if (obs_.hub == nullptr) return;
    const double now = obs_.hub->now();
    h->observe(now - stage_mark);
    stage_mark = now;
  };

  // Phase preprocessing per stream (Eqs. 3-4).
  std::vector<std::vector<signal::TimedSample>> delta_streams;
  delta_streams.reserve(working.size());
  for (const auto* stream : working) {
    PhasePreprocessor pre(config_.preprocess);
    delta_streams.push_back(pre.process(*stream));
    out.reads_used += stream->size();
  }
  out.streams_used = delta_streams.size();
  time_stage(obs_.preprocess);

  // Low-level fusion (Eqs. 6-7) over the window.
  const FusedTrack fused =
      fuse_streams(delta_streams, t0, t1, config_.fusion);
  out.fused_track = fused.track;
  out.track_rate_hz = fused.sample_rate_hz();
  time_stage(obs_.fuse);
  if (out.fused_track.size() < 8) return out;

  // Breath-signal extraction + rate estimation.
  const BreathExtractor extractor(config_.extractor);
  out.breath = extractor.extract(out.fused_track, out.track_rate_hz,
                                 scratch != nullptr ? &scratch->fft : nullptr);
  time_stage(obs_.extract);

  const ZeroCrossingRateEstimator estimator(config_.rate);
  out.rate = estimator.estimate(out.breath.samples);
  time_stage(obs_.estimate);
  return out;
}

void BreathMonitor::bind_observability(obs::Observability& hub) {
  obs::MetricsRegistry& m = hub.metrics();
  const auto bounds = obs::default_latency_bounds();
  obs_.preprocess =
      &m.histogram("analysis_stage_seconds", bounds, "stage", "preprocess");
  obs_.fuse = &m.histogram("analysis_stage_seconds", bounds, "stage", "fuse");
  obs_.extract =
      &m.histogram("analysis_stage_seconds", bounds, "stage", "extract");
  obs_.estimate =
      &m.histogram("analysis_stage_seconds", bounds, "stage", "estimate");
  obs_.trace_stage = hub.trace().register_stage("monitor.analyze");
  obs_.hub = &hub;
}

}  // namespace tagbreathe::core
