#include "core/demux.hpp"

#include <algorithm>

#include "obs/observability.hpp"

namespace tagbreathe::core {

StreamDemux::StreamDemux(std::vector<std::uint64_t> monitored_users)
    : monitored_users_(std::move(monitored_users)) {
  std::sort(monitored_users_.begin(), monitored_users_.end());
}

bool StreamDemux::is_monitored(std::uint64_t user_id) const noexcept {
  if (monitored_users_.empty()) return true;
  return std::binary_search(monitored_users_.begin(), monitored_users_.end(),
                            user_id);
}

void StreamDemux::add(const TagRead& read) {
  std::uint64_t user;
  std::uint32_t tag;
  if (registry_ != nullptr) {
    // Mapping-table mode: only registered EPCs are monitoring tags.
    const auto identity = registry_->lookup(read.epc);
    if (!identity) {
      ++ignored_;
      if (obs_.accepted != nullptr) obs_.ignored->add();
      return;
    }
    user = identity->user_id;
    tag = identity->tag_id;
  } else {
    user = read.epc.user_id();
    tag = read.epc.tag_id();
  }
  if (!is_monitored(user)) {
    ++ignored_;
    if (obs_.accepted != nullptr) obs_.ignored->add();
    return;
  }
  const StreamKey key{user, tag, read.antenna_id};
  auto& stream = streams_[key];
  if (max_reads_per_stream_ > 0 && stream.size() >= max_reads_per_stream_) {
    stream.erase(stream.begin());
    ++shed_;
    if (obs_.accepted != nullptr) obs_.shed->add();
  }
  stream.push_back(read);
  ++accepted_;
  ++reads_seen_[user];
  if (obs_.accepted != nullptr) {
    obs_.accepted->add();
    obs_.streams->set(static_cast<double>(streams_.size()));
  }
}

std::uint64_t StreamDemux::reads_seen(std::uint64_t user_id) const noexcept {
  const auto it = reads_seen_.find(user_id);
  return it == reads_seen_.end() ? 0 : it->second;
}

void StreamDemux::add(std::span<const TagRead> reads) {
  for (const TagRead& r : reads) add(r);
}

std::vector<const std::vector<TagRead>*> StreamDemux::streams_for_user(
    std::uint64_t user_id) const {
  std::vector<const std::vector<TagRead>*> out;
  for (const auto& [key, stream] : streams_) {
    if (key.user_id == user_id && !stream.empty()) out.push_back(&stream);
  }
  return out;
}

std::vector<const std::vector<TagRead>*> StreamDemux::streams_for_user_antenna(
    std::uint64_t user_id, std::uint8_t antenna_id) const {
  std::vector<const std::vector<TagRead>*> out;
  for (const auto& [key, stream] : streams_) {
    if (key.user_id == user_id && key.antenna_id == antenna_id &&
        !stream.empty())
      out.push_back(&stream);
  }
  return out;
}

std::vector<std::uint8_t> StreamDemux::antennas_for_user(
    std::uint64_t user_id) const {
  std::vector<std::uint8_t> out;
  for (const auto& [key, stream] : streams_) {
    if (key.user_id != user_id || stream.empty()) continue;
    if (std::find(out.begin(), out.end(), key.antenna_id) == out.end())
      out.push_back(key.antenna_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> StreamDemux::users() const {
  std::vector<std::uint64_t> out;
  for (const auto& [key, stream] : streams_) {
    if (stream.empty()) continue;
    if (std::find(out.begin(), out.end(), key.user_id) == out.end())
      out.push_back(key.user_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

DemuxState StreamDemux::export_state() const {
  DemuxState state;
  state.streams.reserve(streams_.size());
  for (const auto& [key, stream] : streams_)
    state.streams.push_back(DemuxState::Stream{key, stream});
  state.reads_seen.assign(reads_seen_.begin(), reads_seen_.end());
  state.accepted = accepted_;
  state.ignored = ignored_;
  state.shed = shed_;
  return state;
}

void StreamDemux::import_state(DemuxState state) {
  streams_.clear();
  for (auto& stream : state.streams)
    streams_[stream.key] = std::move(stream.reads);
  reads_seen_.clear();
  reads_seen_.insert(state.reads_seen.begin(), state.reads_seen.end());
  accepted_ = state.accepted;
  ignored_ = state.ignored;
  shed_ = state.shed;
  if (obs_.accepted != nullptr) {
    obs_.accepted->set(accepted_);
    obs_.ignored->set(ignored_);
    obs_.shed->set(shed_);
    obs_.streams->set(static_cast<double>(streams_.size()));
  }
}

DemuxState StreamDemux::export_user(std::uint64_t user_id) const {
  DemuxState state;
  for (const auto& [key, stream] : streams_) {
    if (key.user_id == user_id && !stream.empty())
      state.streams.push_back(DemuxState::Stream{key, stream});
  }
  const auto seen = reads_seen_.find(user_id);
  if (seen != reads_seen_.end())
    state.reads_seen.push_back({user_id, seen->second});
  return state;
}

std::size_t StreamDemux::import_user(const DemuxState& state) {
  std::size_t imported = 0;
  for (const DemuxState::Stream& s : state.streams) {
    auto& stream = streams_[s.key];
    stream.insert(stream.end(), s.reads.begin(), s.reads.end());
    std::stable_sort(stream.begin(), stream.end(),
                     [](const TagRead& a, const TagRead& b) {
                       return a.time_s < b.time_s;
                     });
    if (max_reads_per_stream_ > 0 && stream.size() > max_reads_per_stream_) {
      const std::size_t excess = stream.size() - max_reads_per_stream_;
      stream.erase(stream.begin(),
                   stream.begin() + static_cast<std::ptrdiff_t>(excess));
      shed_ += excess;
      if (obs_.accepted != nullptr) obs_.shed->add(excess);
    }
    imported += s.reads.size();
    reads_seen_[s.key.user_id] += s.reads.size();
  }
  if (obs_.accepted != nullptr)
    obs_.streams->set(static_cast<double>(streams_.size()));
  return imported;
}

void StreamDemux::clear() noexcept {
  streams_.clear();
  reads_seen_.clear();
  accepted_ = 0;
  ignored_ = 0;
  shed_ = 0;
  if (obs_.accepted != nullptr) {
    obs_.accepted->set(0);
    obs_.ignored->set(0);
    obs_.shed->set(0);
    obs_.streams->set(0.0);
  }
}

std::size_t StreamDemux::drop_user(std::uint64_t user_id) {
  std::size_t released = 0;
  for (auto it = streams_.begin(); it != streams_.end();) {
    if (it->first.user_id == user_id) {
      released += it->second.size();
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }
  reads_seen_.erase(user_id);
  return released;
}

void StreamDemux::evict_before(double cutoff_s) {
  for (auto& [key, stream] : streams_) {
    const auto first_kept = std::find_if(
        stream.begin(), stream.end(),
        [cutoff_s](const TagRead& r) { return r.time_s >= cutoff_s; });
    stream.erase(stream.begin(), first_kept);
  }
}

void StreamDemux::bind_observability(obs::Observability& hub) {
  obs::MetricsRegistry& m = hub.metrics();
  obs_.ignored = &m.counter("demux_ignored_total");
  obs_.shed = &m.counter("demux_shed_total");
  obs_.streams = &m.gauge("demux_streams");
  obs_.accepted = &m.counter("demux_accepted_total");
  // Seed the mirrors from current state so a late bind (or a bind after
  // crash-recovery import_state) doesn't zero the exported series.
  obs_.accepted->set(accepted_);
  obs_.ignored->set(ignored_);
  obs_.shed->set(shed_);
  obs_.streams->set(static_cast<double>(streams_.size()));
}

}  // namespace tagbreathe::core
