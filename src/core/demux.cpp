#include "core/demux.hpp"

#include <algorithm>

#include "obs/observability.hpp"

namespace tagbreathe::core {

StreamDemux::StreamDemux(std::vector<std::uint64_t> monitored_users)
    : monitored_users_(std::move(monitored_users)) {
  std::sort(monitored_users_.begin(), monitored_users_.end());
}

bool StreamDemux::is_monitored(std::uint64_t user_id) const noexcept {
  if (monitored_users_.empty()) return true;
  return std::binary_search(monitored_users_.begin(), monitored_users_.end(),
                            user_id);
}

std::vector<TagRead>& StreamDemux::stream_for(std::uint64_t user,
                                              std::uint32_t tag,
                                              std::uint8_t antenna) {
  UserEntry* entry = users_.find(user);
  if (entry == nullptr) {
    entry = &users_[user];
    user_order_dirty_ = true;
  }
  // Keep the per-user handle list sorted by (tag, antenna): the list is
  // a handful of entries (tags-per-user x antennas), so a linear
  // insertion keeps global StreamKey order with no comparator gymnastics.
  const StreamKey key{user, tag, antenna};
  std::size_t at = entry->streams.size();
  for (std::size_t i = 0; i < entry->streams.size(); ++i) {
    const StreamSlot* existing = slot(entry->streams[i]);
    if (existing->key == key) return arena_.at(entry->streams[i]).reads;
    if (key < existing->key) {
      at = i;
      break;
    }
  }
  const common::SlabHandle handle = arena_.emplace();
  arena_.at(handle).key = key;
  entry->streams.insert(
      entry->streams.begin() + static_cast<std::ptrdiff_t>(at), handle);
  return arena_.at(handle).reads;
}

void StreamDemux::add(const TagRead& read) {
  std::uint64_t user;
  std::uint32_t tag;
  if (registry_ != nullptr) {
    // Mapping-table mode: only registered EPCs are monitoring tags.
    const auto identity = registry_->lookup(read.epc);
    if (!identity) {
      ++ignored_;
      if (obs_.accepted != nullptr) obs_.ignored->add();
      return;
    }
    user = identity->user_id;
    tag = identity->tag_id;
  } else {
    user = read.epc.user_id();
    tag = read.epc.tag_id();
  }
  if (!is_monitored(user)) {
    ++ignored_;
    if (obs_.accepted != nullptr) obs_.ignored->add();
    return;
  }
  std::vector<TagRead>& stream = stream_for(user, tag, read.antenna_id);
  if (max_reads_per_stream_ > 0 && stream.size() >= max_reads_per_stream_) {
    stream.erase(stream.begin());
    ++shed_;
    if (obs_.accepted != nullptr) obs_.shed->add();
  }
  const bool was_empty = stream.empty();
  stream.push_back(read);
  ++accepted_;
  UserEntry& entry = users_[user];
  ++entry.reads_seen;
  if (was_empty && entry.non_empty++ == 0) user_order_dirty_ = true;
  if (obs_.accepted != nullptr) {
    obs_.accepted->add();
    obs_.streams->set(static_cast<double>(arena_.live()));
  }
}

std::uint64_t StreamDemux::reads_seen(std::uint64_t user_id) const noexcept {
  const UserEntry* entry = users_.find(user_id);
  return entry == nullptr ? 0 : entry->reads_seen;
}

void StreamDemux::add(std::span<const TagRead> reads) {
  for (const TagRead& r : reads) add(r);
}

std::vector<const std::vector<TagRead>*> StreamDemux::streams_for_user(
    std::uint64_t user_id) const {
  std::vector<const std::vector<TagRead>*> out;
  const UserEntry* entry = users_.find(user_id);
  if (entry == nullptr) return out;
  for (const common::SlabHandle handle : entry->streams) {
    const StreamSlot* s = slot(handle);
    if (!s->reads.empty()) out.push_back(&s->reads);
  }
  return out;
}

std::vector<const std::vector<TagRead>*> StreamDemux::streams_for_user_antenna(
    std::uint64_t user_id, std::uint8_t antenna_id) const {
  std::vector<const std::vector<TagRead>*> out;
  const UserEntry* entry = users_.find(user_id);
  if (entry == nullptr) return out;
  for (const common::SlabHandle handle : entry->streams) {
    const StreamSlot* s = slot(handle);
    if (s->key.antenna_id == antenna_id && !s->reads.empty())
      out.push_back(&s->reads);
  }
  return out;
}

std::vector<std::uint8_t> StreamDemux::antennas_for_user(
    std::uint64_t user_id) const {
  std::vector<std::uint8_t> out;
  const UserEntry* entry = users_.find(user_id);
  if (entry == nullptr) return out;
  for (const common::SlabHandle handle : entry->streams) {
    const StreamSlot* s = slot(handle);
    if (s->reads.empty()) continue;
    if (std::find(out.begin(), out.end(), s->key.antenna_id) == out.end())
      out.push_back(s->key.antenna_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<std::uint64_t>& StreamDemux::users() const {
  if (user_order_dirty_) {
    user_order_.clear();
    user_order_.reserve(users_.size());
    users_.for_each([this](const std::uint64_t& user, const UserEntry& entry) {
      if (entry.non_empty > 0) user_order_.push_back(user);
    });
    std::sort(user_order_.begin(), user_order_.end());
    user_order_dirty_ = false;
  }
  return user_order_;
}

void StreamDemux::recount_user(UserEntry& entry) {
  std::uint32_t non_empty = 0;
  for (const common::SlabHandle handle : entry.streams)
    if (!slot(handle)->reads.empty()) ++non_empty;
  if ((entry.non_empty == 0) != (non_empty == 0)) user_order_dirty_ = true;
  entry.non_empty = non_empty;
}

DemuxState StreamDemux::export_state() const {
  DemuxState state;
  state.streams.reserve(arena_.live());
  state.reads_seen.reserve(users_.size());
  // Ascending users, sorted per-user streams => global StreamKey order,
  // byte-identical to the std::map image this replaced.
  for (const std::uint64_t user : users()) {
    const UserEntry* entry = users_.find(user);
    for (const common::SlabHandle handle : entry->streams) {
      const StreamSlot* s = slot(handle);
      state.streams.push_back(DemuxState::Stream{s->key, s->reads});
    }
    state.reads_seen.push_back({user, entry->reads_seen});
  }
  state.accepted = accepted_;
  state.ignored = ignored_;
  state.shed = shed_;
  return state;
}

void StreamDemux::import_state(DemuxState state) {
  users_.clear();
  arena_.clear();
  user_order_dirty_ = true;
  for (auto& stream : state.streams)
    stream_for(stream.key.user_id, stream.key.tag_id, stream.key.antenna_id) =
        std::move(stream.reads);
  for (const auto& [user, seen] : state.reads_seen)
    users_[user].reads_seen = seen;
  users_.for_each(
      [this](const std::uint64_t&, UserEntry& entry) { recount_user(entry); });
  accepted_ = state.accepted;
  ignored_ = state.ignored;
  shed_ = state.shed;
  if (obs_.accepted != nullptr) {
    obs_.accepted->set(accepted_);
    obs_.ignored->set(ignored_);
    obs_.shed->set(shed_);
    obs_.streams->set(static_cast<double>(arena_.live()));
  }
}

DemuxState StreamDemux::export_user(std::uint64_t user_id) const {
  DemuxState state;
  const UserEntry* entry = users_.find(user_id);
  if (entry == nullptr) return state;
  for (const common::SlabHandle handle : entry->streams) {
    const StreamSlot* s = slot(handle);
    if (!s->reads.empty())
      state.streams.push_back(DemuxState::Stream{s->key, s->reads});
  }
  state.reads_seen.push_back({user_id, entry->reads_seen});
  return state;
}

std::size_t StreamDemux::import_user(const DemuxState& state) {
  std::size_t imported = 0;
  for (const DemuxState::Stream& s : state.streams) {
    std::vector<TagRead>& stream =
        stream_for(s.key.user_id, s.key.tag_id, s.key.antenna_id);
    stream.insert(stream.end(), s.reads.begin(), s.reads.end());
    std::stable_sort(stream.begin(), stream.end(),
                     [](const TagRead& a, const TagRead& b) {
                       return a.time_s < b.time_s;
                     });
    if (max_reads_per_stream_ > 0 && stream.size() > max_reads_per_stream_) {
      const std::size_t excess = stream.size() - max_reads_per_stream_;
      stream.erase(stream.begin(),
                   stream.begin() + static_cast<std::ptrdiff_t>(excess));
      shed_ += excess;
      if (obs_.accepted != nullptr) obs_.shed->add(excess);
    }
    imported += s.reads.size();
    UserEntry& entry = users_[s.key.user_id];
    entry.reads_seen += s.reads.size();
    recount_user(entry);
  }
  if (obs_.accepted != nullptr)
    obs_.streams->set(static_cast<double>(arena_.live()));
  return imported;
}

void StreamDemux::clear() noexcept {
  users_.clear();
  arena_.clear();
  user_order_.clear();
  user_order_dirty_ = false;
  accepted_ = 0;
  ignored_ = 0;
  shed_ = 0;
  if (obs_.accepted != nullptr) {
    obs_.accepted->set(0);
    obs_.ignored->set(0);
    obs_.shed->set(0);
    obs_.streams->set(0.0);
  }
}

std::size_t StreamDemux::drop_user(std::uint64_t user_id) {
  UserEntry* entry = users_.find(user_id);
  if (entry == nullptr) return 0;
  std::size_t released = 0;
  for (const common::SlabHandle handle : entry->streams) {
    released += arena_.at(handle).reads.size();
    arena_.release(handle);
  }
  users_.erase(user_id);
  user_order_dirty_ = true;
  return released;
}

void StreamDemux::evict_before(double cutoff_s) {
  // Unordered sweep: each stream is trimmed independently, so visit
  // order cannot reach an output byte. Empty streams keep their slot
  // (and their buffer capacity) — the user is still tracked and the
  // next read lands without an allocation.
  users_.for_each([this, cutoff_s](const std::uint64_t&, UserEntry& entry) {
    bool trimmed = false;
    for (const common::SlabHandle handle : entry.streams) {
      std::vector<TagRead>& stream = arena_.at(handle).reads;
      const auto first_kept = std::find_if(
          stream.begin(), stream.end(),
          [cutoff_s](const TagRead& r) { return r.time_s >= cutoff_s; });
      if (first_kept != stream.begin()) trimmed = true;
      stream.erase(stream.begin(), first_kept);
    }
    if (trimmed) recount_user(entry);
  });
}

std::size_t StreamDemux::footprint_bytes() const noexcept {
  std::size_t bytes = arena_.bytes_reserved() + users_.table_bytes() +
                      user_order_.capacity() * sizeof(std::uint64_t);
  users_.for_each([&bytes, this](const std::uint64_t&, const UserEntry& entry) {
    bytes += entry.streams.capacity() * sizeof(common::SlabHandle);
    for (const common::SlabHandle handle : entry.streams)
      bytes += slot(handle)->reads.capacity() * sizeof(TagRead);
  });
  return bytes;
}

void StreamDemux::bind_observability(obs::Observability& hub) {
  obs::MetricsRegistry& m = hub.metrics();
  obs_.ignored = &m.counter("demux_ignored_total");
  obs_.shed = &m.counter("demux_shed_total");
  obs_.streams = &m.gauge("demux_streams");
  obs_.accepted = &m.counter("demux_accepted_total");
  // Seed the mirrors from current state so a late bind (or a bind after
  // crash-recovery import_state) doesn't zero the exported series.
  obs_.accepted->set(accepted_);
  obs_.ignored->set(ignored_);
  obs_.shed->set(shed_);
  obs_.streams->set(static_cast<double>(arena_.live()));
}

}  // namespace tagbreathe::core
