#include "core/phase_preprocess.hpp"

#include <cmath>

#include "common/units.hpp"

namespace tagbreathe::core {

PhasePreprocessor::PhasePreprocessor(PreprocessConfig config)
    : config_(config) {}

double PhasePreprocessor::effective_gap_s() const noexcept {
  if (!config_.adaptive_gap) return config_.max_same_channel_gap_s;
  // Until the rate estimate settles, be permissive: a fast stream's
  // same-channel neighbours are milliseconds apart regardless.
  if (dt_samples_ < 8) return config_.fallback_gap_s;
  const double rate_hz = ewma_dt_s_ > 0.0 ? 1.0 / ewma_dt_s_ : 0.0;
  // First decisive classification at the threshold itself, then wide
  // hysteresis (x0.5 / x1.5): MAC round structure makes the rate
  // estimate bursty, and flip-flopping between modes mixes crisp and
  // stale chains, which corrupts the track far more than either mode's
  // own weaknesses.
  if (!mode_init_) {
    fast_mode_ = rate_hz >= config_.fast_stream_hz;
    mode_init_ = true;
  }
  const double up = config_.fast_stream_hz * 1.5;
  const double down = config_.fast_stream_hz * 0.5;
  if (fast_mode_) {
    if (rate_hz < down) fast_mode_ = false;
  } else {
    if (rate_hz > up) fast_mode_ = true;
  }
  return fast_mode_ ? config_.max_same_channel_gap_s
                    : config_.fallback_gap_s;
}

bool PhasePreprocessor::push(const TagRead& read,
                             signal::TimedSample& delta_out) {
  ++stats_.reads_in;

  // Update the stream-rate tracker (all channels).
  if (has_last_time_) {
    const double dt_any = read.time_s - last_read_time_s_;
    if (dt_any > 0.0) {
      constexpr double kAlpha = 0.1;
      ewma_dt_s_ = dt_samples_ == 0
                       ? dt_any
                       : (1.0 - kAlpha) * ewma_dt_s_ + kAlpha * dt_any;
      ++dt_samples_;
    }
  }
  last_read_time_s_ = read.time_s;
  has_last_time_ = true;

  auto [it, inserted] = last_by_channel_.try_emplace(
      read.channel_index, LastReading{read.time_s, read.phase_rad});
  if (inserted) {
    ++stats_.first_in_channel;
    return false;
  }

  const LastReading prev = it->second;
  it->second = LastReading{read.time_s, read.phase_rad};

  const double dt = read.time_s - prev.time_s;
  if (dt <= 0.0) return false;
  const double gap_limit = effective_gap_s();
  if (gap_limit > 0.0 && dt > gap_limit) {
    ++stats_.dropped_gap;
    return false;
  }

  // Eq. 3 with the principal-value wrap: Δd = λ/(4π) · Δθ.
  const double lambda = common::kSpeedOfLight / read.frequency_hz;
  const double dtheta = common::wrap_phase_pi(read.phase_rad - prev.phase_rad);
  const double delta_d = lambda / (4.0 * common::kPi) * dtheta;

  if (config_.max_speed_mps > 0.0 &&
      std::abs(delta_d) / dt > config_.max_speed_mps) {
    ++stats_.dropped_outlier;
    return false;
  }
  if (config_.spike_floor_m > 0.0 &&
      std::abs(delta_d) >
          config_.spike_floor_m + config_.spike_speed_mps * dt) {
    ++stats_.dropped_spike;
    return false;
  }

  delta_out = signal::TimedSample{read.time_s, delta_d};
  ++stats_.deltas_out;
  return true;
}

std::vector<signal::TimedSample> PhasePreprocessor::process(
    std::span<const TagRead> reads) {
  std::vector<signal::TimedSample> out;
  out.reserve(reads.size());
  signal::TimedSample delta;
  for (const TagRead& r : reads) {
    if (push(r, delta)) out.push_back(delta);
  }
  return out;
}

void PhasePreprocessor::reset() noexcept {
  last_by_channel_.clear();
  stats_ = PreprocessStats{};
  ewma_dt_s_ = 0.0;
  dt_samples_ = 0;
  last_read_time_s_ = 0.0;
  has_last_time_ = false;
  fast_mode_ = false;
  mode_init_ = false;
}

std::vector<signal::TimedSample> integrate_displacement(
    std::span<const signal::TimedSample> deltas) {
  return integrate_displacement(deltas, 0.0);
}

std::vector<signal::TimedSample> integrate_displacement(
    std::span<const signal::TimedSample> deltas, double reset_gap_s) {
  std::vector<signal::TimedSample> track;
  track.reserve(deltas.size());
  double acc = 0.0;
  bool has_prev = false;
  double prev_t = 0.0;
  for (const signal::TimedSample& d : deltas) {
    const bool spans_gap = reset_gap_s > 0.0 && has_prev &&
                           d.time_s - prev_t > reset_gap_s;
    if (!spans_gap) acc += d.value;  // gap-spanning motion is discarded
    track.push_back(signal::TimedSample{d.time_s, acc});
    prev_t = d.time_s;
    has_prev = true;
  }
  return track;
}

}  // namespace tagbreathe::core
