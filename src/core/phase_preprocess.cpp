#include "core/phase_preprocess.hpp"

#include <cmath>

#include "common/units.hpp"
#include "signal/simd/kernels.hpp"

namespace tagbreathe::core {

namespace {

/// Eq. 3 scale factor λ/(4π), written exactly as the legacy push() did
/// (λ = c/f first, then the 4π divide) so the staged batch reproduces
/// the historical bit pattern.
inline double eq3_scale(double frequency_hz) {
  const double lambda = common::kSpeedOfLight / frequency_hz;
  return lambda / (4.0 * common::kPi);
}

}  // namespace

PhasePreprocessor::PhasePreprocessor(PreprocessConfig config)
    : config_(config) {}

double PhasePreprocessor::effective_gap_s() const noexcept {
  if (!config_.adaptive_gap) return config_.max_same_channel_gap_s;
  // Until the rate estimate settles, be permissive: a fast stream's
  // same-channel neighbours are milliseconds apart regardless.
  if (dt_samples_ < 8) return config_.fallback_gap_s;
  const double rate_hz = ewma_dt_s_ > 0.0 ? 1.0 / ewma_dt_s_ : 0.0;
  // First decisive classification at the threshold itself, then wide
  // hysteresis (x0.5 / x1.5): MAC round structure makes the rate
  // estimate bursty, and flip-flopping between modes mixes crisp and
  // stale chains, which corrupts the track far more than either mode's
  // own weaknesses.
  if (!mode_init_) {
    fast_mode_ = rate_hz >= config_.fast_stream_hz;
    mode_init_ = true;
  }
  const double up = config_.fast_stream_hz * 1.5;
  const double down = config_.fast_stream_hz * 0.5;
  if (fast_mode_) {
    if (rate_hz < down) fast_mode_ = false;
  } else {
    if (rate_hz > up) fast_mode_ = true;
  }
  return fast_mode_ ? config_.max_same_channel_gap_s
                    : config_.fallback_gap_s;
}

bool PhasePreprocessor::pair_gate(const TagRead& read, double& dt_out,
                                  double& dphase_out) {
  ++stats_.reads_in;

  // Update the stream-rate tracker (all channels).
  if (has_last_time_) {
    const double dt_any = read.time_s - last_read_time_s_;
    if (dt_any > 0.0) {
      constexpr double kAlpha = 0.1;
      ewma_dt_s_ = dt_samples_ == 0
                       ? dt_any
                       : (1.0 - kAlpha) * ewma_dt_s_ + kAlpha * dt_any;
      ++dt_samples_;
    }
  }
  last_read_time_s_ = read.time_s;
  has_last_time_ = true;

  // SoA channel lookup: grow to the channel index on first sight (the
  // FCC hop plan tops out at 50 channels, so the arrays stay tiny and
  // the growth is a one-time cost per instance).
  const std::size_t ch = read.channel_index;
  if (ch >= chan_epoch_.size()) {
    chan_epoch_.resize(ch + 1, 0);
    chan_time_.resize(ch + 1, 0.0);
    chan_phase_.resize(ch + 1, 0.0);
  }
  const bool seen = chan_epoch_[ch] == epoch_;
  const double prev_time = chan_time_[ch];
  const double prev_phase = chan_phase_[ch];
  chan_epoch_[ch] = epoch_;
  chan_time_[ch] = read.time_s;
  chan_phase_[ch] = read.phase_rad;
  if (!seen) {
    ++stats_.first_in_channel;
    return false;
  }

  const double dt = read.time_s - prev_time;
  if (dt <= 0.0) return false;
  const double gap_limit = effective_gap_s();
  if (gap_limit > 0.0 && dt > gap_limit) {
    ++stats_.dropped_gap;
    return false;
  }

  dt_out = dt;
  dphase_out = read.phase_rad - prev_phase;
  return true;
}

bool PhasePreprocessor::push(const TagRead& read,
                             signal::TimedSample& delta_out) {
  double dt = 0.0;
  double dphase = 0.0;
  if (!pair_gate(read, dt, dphase)) return false;

  // Eq. 3 with the principal-value wrap: Δd = λ/(4π) · Δθ. Routed
  // through the dispatched kernel (n = 1 lands on its scalar tail) so
  // streaming and batch deltas share one arithmetic path.
  const double scale = eq3_scale(read.frequency_hz);
  double delta_d = 0.0;
  signal::simd::kernels().phase_deltas(&dphase, &scale, &delta_d, 1);

  if (config_.max_speed_mps > 0.0 &&
      std::abs(delta_d) / dt > config_.max_speed_mps) {
    ++stats_.dropped_outlier;
    return false;
  }
  if (config_.spike_floor_m > 0.0 &&
      std::abs(delta_d) >
          config_.spike_floor_m + config_.spike_speed_mps * dt) {
    ++stats_.dropped_spike;
    return false;
  }

  delta_out = signal::TimedSample{read.time_s, delta_d};
  ++stats_.deltas_out;
  return true;
}

void PhasePreprocessor::process_into(std::span<const TagRead> reads,
                                     std::vector<signal::TimedSample>& out) {
  out.clear();

  // Pass 1 (serial, stateful): run the gate stage for every read and
  // stage the surviving pairs into flat arrays. All per-read state
  // evolution (EWMA, hysteresis, channel table) happens here, in read
  // order, exactly as the streaming push() would.
  stage_time_.clear();
  stage_dt_.clear();
  stage_dphase_.clear();
  stage_scale_.clear();
  for (const TagRead& r : reads) {
    double dt = 0.0;
    double dphase = 0.0;
    if (!pair_gate(r, dt, dphase)) continue;
    stage_time_.push_back(r.time_s);
    stage_dt_.push_back(dt);
    stage_dphase_.push_back(dphase);
    stage_scale_.push_back(eq3_scale(r.frequency_hz));
  }

  // Pass 2 (vector): Eq. 3 wrap + scale across the whole stream in one
  // dispatched kernel sweep.
  const std::size_t n = stage_dphase_.size();
  if (stage_delta_.size() < n) stage_delta_.resize(n);
  signal::simd::kernels().phase_deltas(stage_dphase_.data(),
                                       stage_scale_.data(),
                                       stage_delta_.data(), n);

  // Pass 3 (scalar): physical gates and emission, per pair.
  if (out.capacity() < n) out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double delta_d = stage_delta_[i];
    const double dt = stage_dt_[i];
    if (config_.max_speed_mps > 0.0 &&
        std::abs(delta_d) / dt > config_.max_speed_mps) {
      ++stats_.dropped_outlier;
      continue;
    }
    if (config_.spike_floor_m > 0.0 &&
        std::abs(delta_d) >
            config_.spike_floor_m + config_.spike_speed_mps * dt) {
      ++stats_.dropped_spike;
      continue;
    }
    out.push_back(signal::TimedSample{stage_time_[i], delta_d});
    ++stats_.deltas_out;
  }
}

std::vector<signal::TimedSample> PhasePreprocessor::process(
    std::span<const TagRead> reads) {
  std::vector<signal::TimedSample> out;
  process_into(reads, out);
  return out;
}

void PhasePreprocessor::reset() noexcept {
  // O(1): channel entries die by epoch mismatch, buffers keep capacity.
  ++epoch_;
  if (epoch_ == 0) {  // wraparound: sweep once so stale stamps can't match
    chan_epoch_.assign(chan_epoch_.size(), 0);
    epoch_ = 1;
  }
  stats_ = PreprocessStats{};
  ewma_dt_s_ = 0.0;
  dt_samples_ = 0;
  last_read_time_s_ = 0.0;
  has_last_time_ = false;
  fast_mode_ = false;
  mode_init_ = false;
}

void PhasePreprocessor::reconfigure(const PreprocessConfig& config) noexcept {
  config_ = config;
  reset();
}

std::vector<signal::TimedSample> integrate_displacement(
    std::span<const signal::TimedSample> deltas) {
  return integrate_displacement(deltas, 0.0);
}

std::vector<signal::TimedSample> integrate_displacement(
    std::span<const signal::TimedSample> deltas, double reset_gap_s) {
  std::vector<signal::TimedSample> track;
  track.reserve(deltas.size());
  double acc = 0.0;
  bool has_prev = false;
  double prev_t = 0.0;
  for (const signal::TimedSample& d : deltas) {
    const bool spans_gap = reset_gap_s > 0.0 && has_prev &&
                           d.time_s - prev_t > reset_gap_s;
    if (!spans_gap) acc += d.value;  // gap-spanning motion is discarded
    track.push_back(signal::TimedSample{d.time_s, acc});
    prev_t = d.time_s;
    has_prev = true;
  }
  return track;
}

}  // namespace tagbreathe::core
