#include "core/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagbreathe::core {

FusedTrack fuse_streams(
    std::span<const std::vector<signal::TimedSample>> delta_streams,
    const FusionConfig& config) {
  double t0 = 0.0, t1 = 0.0;
  bool any = false;
  for (const auto& stream : delta_streams) {
    if (stream.empty()) continue;
    if (!any) {
      t0 = stream.front().time_s;
      t1 = stream.back().time_s;
      any = true;
    } else {
      t0 = std::min(t0, stream.front().time_s);
      t1 = std::max(t1, stream.back().time_s);
    }
  }
  if (!any) return FusedTrack{{}, {}, 0.0, config.bin_s};
  return fuse_streams(delta_streams, t0, t1, config);
}

FusedTrack fuse_streams(
    std::span<const std::vector<signal::TimedSample>> delta_streams,
    double t0, double t1, const FusionConfig& config) {
  if (config.bin_s <= 0.0)
    throw std::invalid_argument("fuse_streams: bin_s must be positive");
  if (!config.weights.empty() &&
      config.weights.size() != delta_streams.size())
    throw std::invalid_argument("fuse_streams: weight count mismatch");

  FusedTrack out;
  out.t0 = t0;
  out.bin_s = config.bin_s;
  if (t1 < t0) return out;

  const auto bins =
      static_cast<std::size_t>(std::floor((t1 - t0) / config.bin_s)) + 1;

  // Bin each stream separately first (needed for sign alignment).
  std::vector<std::vector<double>> per_stream(delta_streams.size());
  std::vector<std::vector<std::size_t>> per_stream_counts(
      delta_streams.size());
  for (std::size_t s = 0; s < delta_streams.size(); ++s) {
    per_stream[s].assign(bins, 0.0);
    per_stream_counts[s].assign(bins, 0);
    const double w = config.weights.empty() ? 1.0 : config.weights[s];
    for (const signal::TimedSample& d : delta_streams[s]) {
      if (d.time_s < t0 || d.time_s > t1) continue;
      const auto bin =
          static_cast<std::size_t>((d.time_s - t0) / config.bin_s);
      if (bin >= bins) continue;
      per_stream[s][bin] += w * d.value;
      ++per_stream_counts[s][bin];
    }
  }

  // Sign alignment: flip any stream whose binned track anti-correlates
  // with the sum of the others (two passes are enough in practice).
  std::vector<double> sign(delta_streams.size(), 1.0);
  if (config.align_signs && delta_streams.size() > 1) {
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t s = 0; s < per_stream.size(); ++s) {
        double corr = 0.0;
        for (std::size_t b = 0; b < bins; ++b) {
          double others = 0.0;
          for (std::size_t r = 0; r < per_stream.size(); ++r) {
            if (r != s) others += sign[r] * per_stream[r][b];
          }
          corr += sign[s] * per_stream[s][b] * others;
        }
        if (corr < 0.0) sign[s] = -sign[s];
      }
    }
  }

  // Eq. 6: sum the (aligned) deltas of all tags per Δt interval.
  std::vector<double> sums(bins, 0.0);
  out.bin_counts.assign(bins, 0);
  for (std::size_t s = 0; s < per_stream.size(); ++s) {
    for (std::size_t b = 0; b < bins; ++b) {
      sums[b] += sign[s] * per_stream[s][b];
      out.bin_counts[b] += per_stream_counts[s][b];
    }
  }

  // Eq. 7: integrate the binned sums into the fused track. With the
  // gap guard on, a non-empty bin that follows a dropout contributes
  // nothing (see FusionConfig::reset_gap_s).
  const std::size_t gap_bins =
      config.reset_gap_s > 0.0
          ? static_cast<std::size_t>(config.reset_gap_s / config.bin_s)
          : 0;
  out.track.reserve(bins);
  double acc = 0.0;
  std::size_t empty_run = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (out.bin_counts[b] == 0) {
      ++empty_run;
    } else {
      if (gap_bins == 0 || empty_run <= gap_bins) acc += sums[b];
      empty_run = 0;
    }
    out.track.push_back(signal::TimedSample{
        t0 + (static_cast<double>(b) + 1.0) * config.bin_s, acc});
  }
  return out;
}

}  // namespace tagbreathe::core
