// Stream demultiplexing (Sec. IV-C, Fig. 9/10).
//
// Every read carries an EPC whose leading 64 bits are the user ID and
// trailing 32 bits the short tag ID (monitoring tags are rewritten that
// way before deployment). Phase differencing is only valid within one
// (user, tag, antenna) stream — different tags and different antenna
// geometries have unrelated phase offsets — so the demux keys on all
// three, while fusion later regroups the streams per user.
//
// Capacity layout (ISSUE 10): the registry is a per-user flat map whose
// entries hold a small sorted vector of slab handles — one per (tag,
// antenna) stream — into a SlabArena of stream buffers. Compared to the
// node-based std::map<StreamKey, vector> it replaces:
// - looking up one user's streams is O(streams of that user), not a
//   scan of every stream in the shard;
// - stream buffers live in slabs, so admission/eviction churn at the
//   census cap reuses slots instead of hitting the heap;
// - users() is served from a cached sorted roster (rebuilt only when
//   the user set changed), so the per-tick ordering pass is free in
//   steady state.
// Ordering contract: every exported or emitted sequence (export_state,
// export_user, users, streams_for_user) visits users ascending and
// each user's streams in (tag, antenna) order — exactly the global
// StreamKey order of the std::map this replaced, byte for byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/flat_map.hpp"
#include "common/slab_arena.hpp"
#include "core/tag_registry.hpp"
#include "core/types.hpp"

namespace tagbreathe::obs {
class Observability;
class Counter;
class Gauge;
}  // namespace tagbreathe::obs

namespace tagbreathe::core {

/// Identity of one differencable phase stream.
struct StreamKey {
  std::uint64_t user_id = 0;
  std::uint32_t tag_id = 0;
  std::uint8_t antenna_id = 0;

  friend bool operator==(const StreamKey&, const StreamKey&) = default;
  friend auto operator<=>(const StreamKey&, const StreamKey&) = default;
};

struct StreamKeyHash {
  std::uint64_t operator()(const StreamKey& key) const noexcept {
    return common::splitmix64_mix(
        common::splitmix64_mix(key.user_id) ^
        (static_cast<std::uint64_t>(key.tag_id) << 8) ^ key.antenna_id);
  }
};

/// Serializable image of a demux: buffered streams plus the monotonic
/// counters. The snapshot layer (core/snapshot) encodes this; the demux
/// itself stays byte-format-agnostic.
struct DemuxState {
  struct Stream {
    StreamKey key;
    std::vector<TagRead> reads;
  };
  std::vector<Stream> streams;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reads_seen;
  std::uint64_t accepted = 0;
  std::uint64_t ignored = 0;
  std::uint64_t shed = 0;
};

class StreamDemux {
 public:
  /// `monitored_users` restricts grouping to known user IDs; reads from
  /// other EPCs (item-labelling tags) are counted but not stored. An
  /// empty list accepts every user ID seen.
  explicit StreamDemux(std::vector<std::uint64_t> monitored_users = {});

  /// Identity resolution through an EPC mapping table (Sec. IV-C's
  /// fallback when tag-ID overwriting is unsupported): reads whose EPC
  /// is registered are grouped under the mapped (user, tag); unknown
  /// EPCs are ignored. The registry must outlive the demux. Passing
  /// nullptr reverts to the Fig. 9 bit-layout decoding.
  void set_registry(const TagRegistry* registry) noexcept {
    registry_ = registry;
  }

  void add(const TagRead& read);
  void add(std::span<const TagRead> reads);

  /// All streams of one user, keyed by (tag, antenna), in key order.
  /// Pointers stay valid until the user's streams are dropped (slab
  /// slots never move).
  std::vector<const std::vector<TagRead>*> streams_for_user(
      std::uint64_t user_id) const;

  /// Streams of one user restricted to one antenna.
  std::vector<const std::vector<TagRead>*> streams_for_user_antenna(
      std::uint64_t user_id, std::uint8_t antenna_id) const;

  /// Antenna ports that reported any read for this user.
  std::vector<std::uint8_t> antennas_for_user(std::uint64_t user_id) const;

  /// User IDs with at least one stored read, ascending. The roster is
  /// cached and rebuilt only when the user set changed since the last
  /// call; the reference stays valid until the next add/drop/clear.
  const std::vector<std::uint64_t>& users() const;

  /// Monotonic count of reads accepted for one user since construction
  /// (window eviction does not rewind it). The pipeline's dirty-window
  /// tracking compares this against the count recorded at the user's
  /// last analysis: unchanged => no new data => the re-analysis can be
  /// skipped. 0 for unknown users.
  std::uint64_t reads_seen(std::uint64_t user_id) const noexcept;

  std::size_t total_reads() const noexcept { return accepted_ + ignored_; }
  std::size_t accepted_reads() const noexcept { return accepted_; }
  std::size_t ignored_reads() const noexcept { return ignored_; }

  /// Hard cap on buffered reads per (user, tag, antenna) stream; the
  /// oldest read of the stream is shed when a new one would exceed it.
  /// Guards memory against a reader stuck replaying one tag faster than
  /// the window eviction cadence. 0 = unlimited.
  void set_max_reads_per_stream(std::size_t cap) noexcept {
    max_reads_per_stream_ = cap;
  }
  /// Reads shed by the per-stream cap.
  std::size_t shed_reads() const noexcept { return shed_; }

  /// Durable-state hooks (crash recovery, core/snapshot). export_state
  /// captures buffered streams and counters; import_state replaces them
  /// wholesale (roster/registry/caps are configuration, not state, and
  /// are untouched). Streams are emitted in key order, so the image is
  /// deterministic for a given demux.
  DemuxState export_state() const;
  void import_state(DemuxState state);

  /// Handoff hooks (fleet cross-reader migration, ISSUE 6): capture or
  /// merge the streams of ONE user without touching anybody else.
  /// export_user emits the user's streams in key order (deterministic);
  /// import_user merges them into the live demux — reads are
  /// re-sorted per stream so a tail replayed on top of fresh reads
  /// stays time-ordered — and bumps reads_seen so dirty-window
  /// tracking sees the user as changed. Returns reads imported.
  /// Counters (accepted/ignored/shed) are NOT transferred: the import
  /// is a state migration, not new traffic.
  DemuxState export_user(std::uint64_t user_id) const;
  std::size_t import_user(const DemuxState& state);

  void clear() noexcept;

  /// Drops all reads older than `cutoff_s` (sliding-window pipelines call
  /// this to bound memory over long sessions).
  void evict_before(double cutoff_s);

  /// Drops every stream of one user (admission-control eviction); the
  /// slab slots go back on the free list for the next admitted user.
  /// Returns the number of reads released.
  std::size_t drop_user(std::uint64_t user_id);

  /// Registers demux instruments on `hub` and mirrors future counter
  /// changes onto them. Registration may allocate; add() stays
  /// allocation-free afterwards.
  void bind_observability(obs::Observability& hub);

  // --- capacity accounting (ISSUE 10) --------------------------------------
  /// Live / reserved occupancy of the stream-buffer arena.
  double arena_occupancy() const noexcept { return arena_.occupancy(); }
  /// Free-list reuses served by the arena (eviction churn that cost no
  /// allocation).
  std::size_t arena_reuses() const noexcept { return arena_.reuses(); }
  /// Longest probe chain in the user registry (capacity_probe_length).
  std::size_t registry_max_probe() const noexcept {
    return users_.max_probe_length();
  }
  /// Resident bytes attributable to buffered state: slab storage, the
  /// registry table, and every stream buffer's capacity. O(streams);
  /// call at tick cadence, not per read.
  std::size_t footprint_bytes() const noexcept;

 private:
  /// One slab-resident stream buffer.
  struct StreamSlot {
    StreamKey key;
    std::vector<TagRead> reads;
  };
  /// Per-user registry entry: handles sorted by (tag, antenna).
  /// `non_empty` counts streams currently holding reads — users() lists
  /// a user only while it is > 0, matching the "at least one stored
  /// read" contract of the registry this replaced (a user whose window
  /// fully aged out must vanish from the analysis roster, or the event
  /// log would grow ticks the old engine never ran).
  struct UserEntry {
    std::vector<common::SlabHandle> streams;
    std::uint64_t reads_seen = 0;
    std::uint32_t non_empty = 0;
  };

  bool is_monitored(std::uint64_t user_id) const noexcept;
  std::vector<TagRead>& stream_for(std::uint64_t user, std::uint32_t tag,
                                   std::uint8_t antenna);
  /// Recomputes `non_empty` from the streams themselves (bulk paths —
  /// import, window eviction — that bypass add()'s incremental count).
  void recount_user(UserEntry& entry);
  const StreamSlot* slot(common::SlabHandle handle) const noexcept {
    return arena_.get(handle);
  }

  std::vector<std::uint64_t> monitored_users_;
  const TagRegistry* registry_ = nullptr;
  common::FlatUserMap<UserEntry> users_;
  common::SlabArena<StreamSlot> arena_;
  mutable std::vector<std::uint64_t> user_order_;  // cached ascending roster
  mutable bool user_order_dirty_ = false;
  std::size_t accepted_ = 0;
  std::size_t ignored_ = 0;
  std::size_t shed_ = 0;
  std::size_t max_reads_per_stream_ = 0;

  // Null until bind_observability; `accepted` is the is-bound sentinel.
  struct Instruments {
    obs::Counter* accepted = nullptr;
    obs::Counter* ignored = nullptr;
    obs::Counter* shed = nullptr;
    obs::Gauge* streams = nullptr;
  } obs_;
};

}  // namespace tagbreathe::core
