// Stream demultiplexing (Sec. IV-C, Fig. 9/10).
//
// Every read carries an EPC whose leading 64 bits are the user ID and
// trailing 32 bits the short tag ID (monitoring tags are rewritten that
// way before deployment). Phase differencing is only valid within one
// (user, tag, antenna) stream — different tags and different antenna
// geometries have unrelated phase offsets — so the demux keys on all
// three, while fusion later regroups the streams per user.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/tag_registry.hpp"
#include "core/types.hpp"

namespace tagbreathe::obs {
class Observability;
class Counter;
class Gauge;
}  // namespace tagbreathe::obs

namespace tagbreathe::core {

/// Identity of one differencable phase stream.
struct StreamKey {
  std::uint64_t user_id = 0;
  std::uint32_t tag_id = 0;
  std::uint8_t antenna_id = 0;

  friend bool operator==(const StreamKey&, const StreamKey&) = default;
  friend auto operator<=>(const StreamKey&, const StreamKey&) = default;
};

/// Serializable image of a demux: buffered streams plus the monotonic
/// counters. The snapshot layer (core/snapshot) encodes this; the demux
/// itself stays byte-format-agnostic.
struct DemuxState {
  struct Stream {
    StreamKey key;
    std::vector<TagRead> reads;
  };
  std::vector<Stream> streams;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reads_seen;
  std::uint64_t accepted = 0;
  std::uint64_t ignored = 0;
  std::uint64_t shed = 0;
};

class StreamDemux {
 public:
  /// `monitored_users` restricts grouping to known user IDs; reads from
  /// other EPCs (item-labelling tags) are counted but not stored. An
  /// empty list accepts every user ID seen.
  explicit StreamDemux(std::vector<std::uint64_t> monitored_users = {});

  /// Identity resolution through an EPC mapping table (Sec. IV-C's
  /// fallback when tag-ID overwriting is unsupported): reads whose EPC
  /// is registered are grouped under the mapped (user, tag); unknown
  /// EPCs are ignored. The registry must outlive the demux. Passing
  /// nullptr reverts to the Fig. 9 bit-layout decoding.
  void set_registry(const TagRegistry* registry) noexcept {
    registry_ = registry;
  }

  void add(const TagRead& read);
  void add(std::span<const TagRead> reads);

  /// All streams of one user, keyed by (tag, antenna).
  std::vector<const std::vector<TagRead>*> streams_for_user(
      std::uint64_t user_id) const;

  /// Streams of one user restricted to one antenna.
  std::vector<const std::vector<TagRead>*> streams_for_user_antenna(
      std::uint64_t user_id, std::uint8_t antenna_id) const;

  /// Antenna ports that reported any read for this user.
  std::vector<std::uint8_t> antennas_for_user(std::uint64_t user_id) const;

  /// User IDs with at least one stored read, ascending.
  std::vector<std::uint64_t> users() const;

  /// Monotonic count of reads accepted for one user since construction
  /// (window eviction does not rewind it). The pipeline's dirty-window
  /// tracking compares this against the count recorded at the user's
  /// last analysis: unchanged => no new data => the re-analysis can be
  /// skipped. 0 for unknown users.
  std::uint64_t reads_seen(std::uint64_t user_id) const noexcept;

  std::size_t total_reads() const noexcept { return accepted_ + ignored_; }
  std::size_t accepted_reads() const noexcept { return accepted_; }
  std::size_t ignored_reads() const noexcept { return ignored_; }

  /// Hard cap on buffered reads per (user, tag, antenna) stream; the
  /// oldest read of the stream is shed when a new one would exceed it.
  /// Guards memory against a reader stuck replaying one tag faster than
  /// the window eviction cadence. 0 = unlimited.
  void set_max_reads_per_stream(std::size_t cap) noexcept {
    max_reads_per_stream_ = cap;
  }
  /// Reads shed by the per-stream cap.
  std::size_t shed_reads() const noexcept { return shed_; }

  /// Durable-state hooks (crash recovery, core/snapshot). export_state
  /// captures buffered streams and counters; import_state replaces them
  /// wholesale (roster/registry/caps are configuration, not state, and
  /// are untouched). Streams are emitted in key order, so the image is
  /// deterministic for a given demux.
  DemuxState export_state() const;
  void import_state(DemuxState state);

  /// Handoff hooks (fleet cross-reader migration, ISSUE 6): capture or
  /// merge the streams of ONE user without touching anybody else.
  /// export_user emits the user's streams in key order (deterministic);
  /// import_user merges them into the live demux — reads are
  /// re-sorted per stream so a tail replayed on top of fresh reads
  /// stays time-ordered — and bumps reads_seen so dirty-window
  /// tracking sees the user as changed. Returns reads imported.
  /// Counters (accepted/ignored/shed) are NOT transferred: the import
  /// is a state migration, not new traffic.
  DemuxState export_user(std::uint64_t user_id) const;
  std::size_t import_user(const DemuxState& state);

  void clear() noexcept;

  /// Drops all reads older than `cutoff_s` (sliding-window pipelines call
  /// this to bound memory over long sessions).
  void evict_before(double cutoff_s);

  /// Drops every stream of one user (admission-control eviction).
  /// Returns the number of reads released.
  std::size_t drop_user(std::uint64_t user_id);

  /// Registers demux instruments on `hub` and mirrors future counter
  /// changes onto them. Registration may allocate; add() stays
  /// allocation-free afterwards.
  void bind_observability(obs::Observability& hub);

 private:
  bool is_monitored(std::uint64_t user_id) const noexcept;

  std::vector<std::uint64_t> monitored_users_;
  const TagRegistry* registry_ = nullptr;
  std::map<StreamKey, std::vector<TagRead>> streams_;
  std::map<std::uint64_t, std::uint64_t> reads_seen_;
  std::size_t accepted_ = 0;
  std::size_t ignored_ = 0;
  std::size_t shed_ = 0;
  std::size_t max_reads_per_stream_ = 0;

  // Null until bind_observability; `accepted` is the is-bound sentinel.
  struct Instruments {
    obs::Counter* accepted = nullptr;
    obs::Counter* ignored = nullptr;
    obs::Counter* shed = nullptr;
    obs::Gauge* streams = nullptr;
  } obs_;
};

}  // namespace tagbreathe::core
