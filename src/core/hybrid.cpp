#include "core/hybrid.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe::core {

double breath_signal_quality(std::span<const signal::TimedSample> breath,
                             double sample_rate_hz,
                             const RateEstimate& estimate) {
  if (breath.size() < 16 || estimate.rate_bpm <= 0.0) return 0.0;
  std::vector<double> values;
  values.reserve(breath.size());
  for (const auto& s : breath) values.push_back(s.value);

  // Band concentration: power within +-30% of the estimated rate over
  // the whole breathing band.
  const double f0 = common::bpm_to_hz(estimate.rate_bpm);
  const double concentration = signal::band_power_ratio(
      values, sample_rate_hz, 0.7 * f0, 1.3 * f0);

  // Crossing sufficiency: Eq. 5 needs M crossings; saturate at 2M.
  const double span =
      breath.back().time_s - breath.front().time_s;
  const double expected = span > 0.0 ? 2.0 * f0 * span : 0.0;
  double crossing_factor = 0.0;
  if (expected > 0.0) {
    crossing_factor = std::clamp(
        static_cast<double>(estimate.crossings.size()) / expected, 0.0, 1.0);
  }
  return std::clamp(concentration * crossing_factor, 0.0, 1.0);
}

HybridMonitor::HybridMonitor(HybridConfig config)
    : config_(std::move(config)) {}

namespace {

ModalityEstimate from_baseline(const BaselineResult& result,
                               BaselineKind kind, double resample_hz) {
  ModalityEstimate m;
  m.source = kind;
  m.rate_bpm = result.rate_bpm;
  // Re-run the estimator bookkeeping to score quality consistently.
  ZeroCrossingRateEstimator estimator;
  const RateEstimate est = estimator.estimate(result.breath.samples);
  m.quality = breath_signal_quality(result.breath.samples, resample_hz, est);
  m.usable = result.rate_bpm > 0.0 && m.quality > 0.0;
  return m;
}

}  // namespace

std::vector<HybridResult> HybridMonitor::analyze(
    std::span<const TagRead> reads) const {
  std::vector<HybridResult> out;
  if (reads.empty()) return out;

  BreathMonitor monitor(config_.monitor);
  auto phase_analyses = monitor.analyze(reads);

  BaselineConfig rssi_cfg = config_.rssi;
  rssi_cfg.kind = BaselineKind::Rssi;
  const auto rssi_results = analyze_baseline(reads, rssi_cfg);
  BaselineConfig dop_cfg = config_.doppler;
  dop_cfg.kind = BaselineKind::Doppler;
  const auto dop_results = analyze_baseline(reads, dop_cfg);

  auto find_baseline = [](const std::vector<BaselineResult>& results,
                          std::uint64_t user) -> const BaselineResult* {
    for (const auto& r : results)
      if (r.user_id == user) return &r;
    return nullptr;
  };

  for (auto& a : phase_analyses) {
    HybridResult result;
    result.user_id = a.user_id;

    result.phase.is_phase = true;
    result.phase.rate_bpm = a.rate.rate_bpm;
    result.phase.quality =
        config_.phase_prior *
        breath_signal_quality(a.breath.samples, a.track_rate_hz, a.rate);
    result.phase.usable =
        a.rate.rate_bpm > 0.0 && result.phase.quality > 0.0;

    if (const auto* r = find_baseline(rssi_results, a.user_id)) {
      result.rssi =
          from_baseline(*r, BaselineKind::Rssi, config_.rssi.resample_hz);
    }
    if (const auto* d = find_baseline(dop_results, a.user_id)) {
      result.doppler = from_baseline(*d, BaselineKind::Doppler,
                                     config_.doppler.resample_hz);
    }

    // Quality-weighted consensus. Auxiliary modalities *refine* a
    // healthy phase estimate rather than override it: a noisy RSSI or
    // Doppler track can be self-consistently wrong (its own band
    // concentration looks fine around a spurious oscillation), so when
    // phase is usable only auxiliaries that agree with it to within 30%
    // enter the consensus. When phase is unusable the auxiliaries are
    // all that is left and vote freely.
    double weight_sum = 0.0, weighted_rate = 0.0;
    const bool phase_ok =
        result.phase.usable && result.phase.quality >= config_.min_quality;
    for (const ModalityEstimate* m :
         {&result.phase, &result.rssi, &result.doppler}) {
      if (!m->usable || m->quality < config_.min_quality) continue;
      if (phase_ok && !m->is_phase) {
        const double rel =
            std::abs(m->rate_bpm - result.phase.rate_bpm) /
            result.phase.rate_bpm;
        if (rel > 0.3) continue;
      }
      weight_sum += m->quality;
      weighted_rate += m->quality * m->rate_bpm;
    }
    if (weight_sum > 0.0) {
      result.rate_bpm = weighted_rate / weight_sum;
      result.valid = true;
    }
    result.analysis = std::move(a);
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace tagbreathe::core
