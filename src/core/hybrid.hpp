// Hybrid low-level-data fusion (the Sec. IV-D.2 enhancement).
//
// "One possible enhancement is to fuse the RSSI and Doppler frequency
// shift with the phase values to improve the monitoring accuracy."
// This module implements that discussion item: the three low-level
// modalities are analysed independently (phase through the TagBreathe
// pipeline; RSSI and integrated Doppler through the baseline path), each
// estimate is scored by signal quality — how much of the extracted
// signal's power sits in a narrow band around its own fundamental, and
// how many clean crossings it produced — and the final rate is the
// quality-weighted consensus. Phase dominates whenever it is healthy
// (its quality is almost always the highest, which is the paper's core
// finding); the auxiliary modalities only move the answer when phase is
// starved or degenerate.
#pragma once

#include <span>

#include "core/baselines.hpp"
#include "core/monitor.hpp"

namespace tagbreathe::core {

struct ModalityEstimate {
  BaselineKind source = BaselineKind::Rssi;  // meaningless for phase
  bool is_phase = false;
  double rate_bpm = 0.0;
  /// Quality in [0, 1]: band concentration x crossing sufficiency.
  double quality = 0.0;
  bool usable = false;
};

struct HybridResult {
  std::uint64_t user_id = 0;
  /// Quality-weighted consensus rate.
  double rate_bpm = 0.0;
  /// True when at least one modality was usable.
  bool valid = false;
  ModalityEstimate phase;
  ModalityEstimate rssi;
  ModalityEstimate doppler;
  /// The full phase-path analysis (for waveform consumers).
  UserAnalysis analysis;
};

struct HybridConfig {
  MonitorConfig monitor{};
  BaselineConfig rssi{};
  BaselineConfig doppler{};
  /// Modalities below this quality are excluded from the consensus.
  double min_quality = 0.05;
  /// Phase quality is scaled by this factor before weighting — the
  /// paper's characterisation showing phase is the trustworthy modality
  /// is encoded as a prior, not rediscovered per window.
  double phase_prior = 3.0;
};

class HybridMonitor {
 public:
  explicit HybridMonitor(HybridConfig config = {});

  std::vector<HybridResult> analyze(std::span<const TagRead> reads) const;

  const HybridConfig& config() const noexcept { return config_; }

 private:
  HybridConfig config_;
};

/// Signal quality of an extracted breath signal: fraction of band power
/// concentrated around the dominant oscillation, scaled by whether
/// enough crossings exist for Eq. 5. Exposed for tests and ablations.
double breath_signal_quality(std::span<const signal::TimedSample> breath,
                             double sample_rate_hz,
                             const RateEstimate& estimate);

}  // namespace tagbreathe::core
