#include "core/antenna_selector.hpp"

#include <algorithm>
#include <map>

namespace tagbreathe::core {

std::vector<AntennaQuality> score_antennas(
    std::span<const std::vector<TagRead>* const> streams, double window_s,
    const AntennaSelectorConfig& config) {
  struct Accum {
    std::size_t reads = 0;
    double rssi_sum = 0.0;
  };
  std::map<std::uint8_t, Accum> by_antenna;
  for (const auto* stream : streams) {
    for (const TagRead& r : *stream) {
      Accum& a = by_antenna[r.antenna_id];
      ++a.reads;
      a.rssi_sum += r.rssi_dbm;
    }
  }

  std::vector<AntennaQuality> out;
  out.reserve(by_antenna.size());
  for (const auto& [antenna, acc] : by_antenna) {
    AntennaQuality q;
    q.antenna_id = antenna;
    q.read_rate_hz =
        window_s > 0.0 ? static_cast<double>(acc.reads) / window_s : 0.0;
    q.mean_rssi_dbm =
        acc.reads > 0 ? acc.rssi_sum / static_cast<double>(acc.reads) : -120.0;

    const double rate_norm =
        config.rate_ceil_hz > 0.0
            ? std::clamp(q.read_rate_hz / config.rate_ceil_hz, 0.0, 1.0)
            : 0.0;
    const double rssi_span = config.rssi_ceil_dbm - config.rssi_floor_dbm;
    const double rssi_norm =
        rssi_span > 0.0
            ? std::clamp((q.mean_rssi_dbm - config.rssi_floor_dbm) / rssi_span,
                         0.0, 1.0)
            : 0.0;
    q.score = config.rate_weight * rate_norm + config.rssi_weight * rssi_norm;
    out.push_back(q);
  }
  std::sort(out.begin(), out.end(),
            [](const AntennaQuality& a, const AntennaQuality& b) {
              return a.score > b.score;
            });
  return out;
}

std::uint8_t select_antenna(
    std::span<const std::vector<TagRead>* const> streams, double window_s,
    const AntennaSelectorConfig& config) {
  const auto scored = score_antennas(streams, window_s, config);
  return scored.empty() ? 0 : scored.front().antenna_id;
}

}  // namespace tagbreathe::core
