// Streaming and batch descriptive statistics.
//
// Experiment runners aggregate accuracy over repeated trials with these
// helpers; DSP code uses them for normalisation and quality metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tagbreathe::common {

/// Welford's online algorithm: numerically stable streaming mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs) noexcept;
double variance(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;
double min_value(std::span<const double> xs) noexcept;
double max_value(std::span<const double> xs) noexcept;

/// Median (copies, does a partial sort).
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Root-mean-square error between two equally sized series.
double rmse(std::span<const double> a, std::span<const double> b);

/// Mean absolute error between two equally sized series.
double mae(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient; 0 if either series is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Subtract the mean in place.
void remove_mean(std::vector<double>& xs) noexcept;

/// Scale to zero mean, unit peak magnitude (the paper plots "normalised
/// displacement"). A constant series maps to all zeros.
void normalize_peak(std::vector<double>& xs) noexcept;

}  // namespace tagbreathe::common
