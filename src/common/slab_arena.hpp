// Per-shard slab arena for user state (ISSUE 10).
//
// At the 100k–1M-user target, per-object heap allocation of user state
// (demux stream buffers, latest analyses, parked sections) fragments
// the heap and scatters each shard's working set across it. SlabArena
// carves fixed-size slabs (256 slots each) and hands out
// generation-tagged handles:
//
// - Slabs never move or shrink, so raw pointers into a slot stay valid
//   for the slot's lifetime (the demux hands stream-buffer pointers to
//   the analysis fan-out every tick).
// - Released slots go on a free list and are reused before any new
//   slab is mapped — admission/eviction churn at the census cap stops
//   costing allocations in steady state.
// - Every release bumps the slot's generation; a stale handle (use
//   after eviction) is detected, not dereferenced: get() returns null,
//   at() throws. Under AddressSanitizer, freed slots are additionally
//   poisoned so even a raw interior pointer kept across a release
//   traps (test_capacity gates this).
//
// Single-threaded by design, like the registries it backs: one arena
// belongs to one pipeline shard, and shards never share state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define TAGBREATHE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TAGBREATHE_ASAN 1
#endif
#endif
#if defined(TAGBREATHE_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace tagbreathe::common {

/// Generation-tagged reference to one arena slot. Trivially copyable —
/// registries store these (8 bytes) instead of the payload, so flat-map
/// displacement never moves the payload itself.
struct SlabHandle {
  std::uint32_t index = 0xFFFFFFFFu;
  std::uint32_t generation = 0;

  bool null() const noexcept { return index == 0xFFFFFFFFu; }
  friend bool operator==(const SlabHandle&, const SlabHandle&) = default;
};

template <typename T>
class SlabArena {
 public:
  static constexpr std::size_t kSlotsPerSlab = 256;

  SlabArena() = default;
  ~SlabArena() {
    clear();
    // Hand the slabs back to the allocator unpoisoned: ASan treats a
    // free() of user-poisoned bytes as suspicious, and the next owner
    // of the pages deserves clean shadow state.
    for (auto& slab : slabs_) unpoison_region(slab->bytes, sizeof(slab->bytes));
  }

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Constructs a T in a slot (free-list first, then a fresh slab) and
  /// returns its handle.
  template <typename... Args>
  SlabHandle emplace(Args&&... args) {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
      ++reuses_;
    } else {
      if (slot_count_ == slabs_.size() * kSlotsPerSlab) {
        slabs_.push_back(std::make_unique<Slab>());
        generations_.resize(slabs_.size() * kSlotsPerSlab, 1);
        live_.resize(slabs_.size() * kSlotsPerSlab, 0);
      }
      index = static_cast<std::uint32_t>(slot_count_++);
    }
    void* slot = slot_address(index);
    unpoison(slot);
    try {
      new (slot) T(std::forward<Args>(args)...);
    } catch (...) {
      poison(slot);
      free_.push_back(index);
      throw;
    }
    live_[index] = 1;
    ++live_count_;
    return SlabHandle{index, generations_[index]};
  }

  /// Destroys the slot behind a live handle, bumps its generation (so
  /// every outstanding handle to it goes stale) and recycles the slot.
  /// Returns false for a stale or null handle — a double release is a
  /// bug surfaced, not corruption.
  bool release(SlabHandle handle) noexcept {
    T* value = get(handle);
    if (value == nullptr) return false;
    value->~T();
    ++generations_[handle.index];
    live_[handle.index] = 0;
    --live_count_;
    poison(slot_address(handle.index));
    free_.push_back(handle.index);
    return true;
  }

  /// Live payload behind a handle; null when the handle is stale (the
  /// slot was released or re-allocated since it was issued).
  T* get(SlabHandle handle) noexcept {
    if (handle.index >= slot_count_ || live_[handle.index] == 0 ||
        generations_[handle.index] != handle.generation)
      return nullptr;
    return std::launder(reinterpret_cast<T*>(slot_address(handle.index)));
  }
  const T* get(SlabHandle handle) const noexcept {
    return const_cast<SlabArena*>(this)->get(handle);
  }

  /// Checked access: throws on a stale handle instead of returning
  /// null (call sites that treat staleness as a logic error).
  T& at(SlabHandle handle) {
    T* value = get(handle);
    if (value == nullptr)
      throw std::logic_error("SlabArena: stale or null handle");
    return *value;
  }
  const T& at(SlabHandle handle) const {
    return const_cast<SlabArena*>(this)->at(handle);
  }

  /// Destroys every live slot and resets the free list. Slabs are kept
  /// mapped (capacity is retained for the next population).
  void clear() noexcept {
    for (std::uint32_t i = 0; i < slot_count_; ++i) {
      if (live_[i] == 0) continue;
      void* slot = slot_address(i);
      std::launder(reinterpret_cast<T*>(slot))->~T();
      ++generations_[i];
      live_[i] = 0;
      poison(slot);
    }
    live_count_ = 0;
    free_.clear();
    for (std::uint32_t i = slot_count_; i-- > 0;) free_.push_back(i);
  }

  std::size_t live() const noexcept { return live_count_; }
  /// Slots ever carved out of slabs (live + free-listed).
  std::size_t slots() const noexcept { return slot_count_; }
  std::size_t slab_count() const noexcept { return slabs_.size(); }
  /// Allocations served off the free list instead of a fresh slot.
  std::size_t reuses() const noexcept { return reuses_; }
  /// live / reserved — the capacity_arena_occupancy gauge.
  double occupancy() const noexcept {
    const std::size_t reserved = slabs_.size() * kSlotsPerSlab;
    return reserved == 0
               ? 0.0
               : static_cast<double>(live_count_) / static_cast<double>(reserved);
  }
  /// Resident bytes of slab storage + bookkeeping (payload-owned heap,
  /// e.g. vectors inside T, is accounted by the payload's owner).
  std::size_t bytes_reserved() const noexcept {
    return slabs_.size() * sizeof(Slab) +
           generations_.capacity() * sizeof(std::uint32_t) +
           live_.capacity() * sizeof(std::uint8_t) +
           free_.capacity() * sizeof(std::uint32_t);
  }

  /// Raw slot storage address — test hook for the ASan poison gate.
  const void* slot_address_for_testing(std::uint32_t index) const noexcept {
    return const_cast<SlabArena*>(this)->slot_address(index);
  }
  static constexpr bool poisons_freed_slots() noexcept {
#if defined(TAGBREATHE_ASAN)
    return true;
#else
    return false;
#endif
  }

 private:
  struct Slab {
    alignas(alignof(T)) std::byte bytes[kSlotsPerSlab * sizeof(T)];
  };

  void* slot_address(std::uint32_t index) noexcept {
    return slabs_[index / kSlotsPerSlab]->bytes +
           static_cast<std::size_t>(index % kSlotsPerSlab) * sizeof(T);
  }

  static void poison(void* slot) noexcept {
#if defined(TAGBREATHE_ASAN)
    ASAN_POISON_MEMORY_REGION(slot, sizeof(T));
#else
    (void)slot;
#endif
  }
  static void unpoison(void* slot) noexcept {
    unpoison_region(slot, sizeof(T));
  }
  static void unpoison_region(void* at, std::size_t bytes) noexcept {
#if defined(TAGBREATHE_ASAN)
    ASAN_UNPOISON_MEMORY_REGION(at, bytes);
#else
    (void)at;
    (void)bytes;
#endif
  }

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::vector<std::uint32_t> generations_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> free_;
  std::uint32_t slot_count_ = 0;  // slots ever carved (high-water)
  std::size_t live_count_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace tagbreathe::common
