// Console table / ASCII chart rendering for bench output.
//
// Each bench binary reprints the rows or series of one paper table/figure;
// these helpers keep that output aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace tagbreathe::common {

/// Column-aligned plain-text table.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 3);

  /// Renders with a header separator; every column padded to its widest
  /// cell.
  std::string to_string() const;

  /// Renders straight to stdout.
  void print() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal ASCII bar of `width` cells proportional to
/// value/max_value. Used to sketch figure shapes in bench output.
std::string ascii_bar(double value, double max_value, int width = 40);

/// Renders a one-line "sparkline" of a series using block characters.
std::string sparkline(const std::vector<double>& values);

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double value, int precision = 3);

}  // namespace tagbreathe::common
