// Physical constants and unit conversions used throughout TagBreathe.
//
// All internal computation uses SI base units: seconds, metres, hertz,
// radians, watts. dBm and breaths-per-minute (bpm) appear only at the
// boundaries (reader reports, experiment tables), converted through the
// helpers below.
#pragma once

#include <cmath>
#include <numbers>

namespace tagbreathe::common {

/// Speed of light in vacuum [m/s]. Free-space propagation is assumed for
/// UHF backscatter links at the scales the paper evaluates (1-6 m).
inline constexpr double kSpeedOfLight = 299'792'458.0;

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Convert a power in dBm to watts.
inline double dbm_to_watts(double dbm) noexcept {
  return 1e-3 * std::pow(10.0, dbm / 10.0);
}

/// Convert a power in watts to dBm.
inline double watts_to_dbm(double watts) noexcept {
  return 10.0 * std::log10(watts / 1e-3);
}

/// Convert a ratio expressed in dB to a linear power ratio.
inline double db_to_linear(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Convert a linear power ratio to dB.
inline double linear_to_db(double ratio) noexcept {
  return 10.0 * std::log10(ratio);
}

/// Breaths-per-minute to hertz (the paper quotes rates in bpm; the DSP
/// works in Hz).
inline constexpr double bpm_to_hz(double bpm) noexcept { return bpm / 60.0; }

/// Hertz to breaths-per-minute.
inline constexpr double hz_to_bpm(double hz) noexcept { return hz * 60.0; }

inline constexpr double deg_to_rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}

inline constexpr double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / std::numbers::pi;
}

/// Free-space wavelength [m] of a carrier at `freq_hz`.
inline double wavelength_m(double freq_hz) noexcept {
  return kSpeedOfLight / freq_hz;
}

/// Wrap an angle into [0, 2π). Backscatter phase reports (Eq. 1 of the
/// paper) live in this range.
inline double wrap_phase_2pi(double radians) noexcept {
  double r = std::fmod(radians, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  return r;
}

/// Wrap an angle difference into (-π, π]. Used when differencing two
/// consecutive phase readings (Eq. 3): breathing displacement between
/// samples is far below λ/4, so the principal value is the true delta.
inline double wrap_phase_pi(double radians) noexcept {
  double r = std::fmod(radians + kPi, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  return r - kPi;
}

}  // namespace tagbreathe::common
