// Minimal CSV writer for experiment traces.
//
// Bench binaries can dump the series behind each reproduced figure so the
// plots can be regenerated with any external plotting tool.
#pragma once

#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tagbreathe::common {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O
  /// failure.
  CsvWriter(const std::string& path, std::span<const std::string> columns);
  CsvWriter(const std::string& path,
            std::initializer_list<std::string> columns);

  /// Writes one row; values are formatted with max_digits10 precision.
  void row(std::span<const double> values);
  void row(std::initializer_list<double> values);

  /// Mixed row of preformatted cells.
  void text_row(std::span<const std::string> cells);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_header(std::span<const std::string> columns);

  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

/// Escapes a cell per RFC 4180 (quotes cells containing comma/quote/newline).
std::string csv_escape(std::string_view cell);

}  // namespace tagbreathe::common
