#include "common/ini.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tagbreathe::common {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

std::optional<std::string> IniSection::get(const std::string& key) const {
  const auto it = values.find(key);
  if (it == values.end()) return std::nullopt;
  return it->second;
}

double IniSection::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: key '" + key + "' is not a number: " + *v);
  }
}

long IniSection::get_int(const std::string& key, long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const long parsed = std::stol(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: key '" + key +
                             "' is not an integer: " + *v);
  }
}

bool IniSection::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const std::string low = lower(*v);
  if (low == "true" || low == "yes" || low == "on" || low == "1") return true;
  if (low == "false" || low == "no" || low == "off" || low == "0")
    return false;
  throw std::runtime_error("ini: key '" + key + "' is not a boolean: " + *v);
}

std::string IniSection::get_string(const std::string& key,
                                   const std::string& fallback) const {
  return get(key).value_or(fallback);
}

IniFile IniFile::parse(std::istream& in) {
  IniFile file;
  std::string line;
  std::size_t line_no = 0;
  IniSection* current = nullptr;
  while (std::getline(in, line)) {
    ++line_no;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error("ini: line " + std::to_string(line_no) +
                                 ": unterminated section header");
      IniSection section;
      section.name = trim(line.substr(1, line.size() - 2));
      if (section.name.empty())
        throw std::runtime_error("ini: line " + std::to_string(line_no) +
                                 ": empty section name");
      file.sections_.push_back(std::move(section));
      current = &file.sections_.back();
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("ini: line " + std::to_string(line_no) +
                               ": expected key = value");
    if (current == nullptr)
      throw std::runtime_error("ini: line " + std::to_string(line_no) +
                               ": key outside any section");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw std::runtime_error("ini: line " + std::to_string(line_no) +
                               ": empty key");
    current->values[key] = value;
  }
  return file;
}

IniFile IniFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ini: cannot open " + path);
  return parse(in);
}

const IniSection* IniFile::find(const std::string& name) const {
  for (const auto& s : sections_)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<const IniSection*> IniFile::find_all(
    const std::string& name) const {
  std::vector<const IniSection*> out;
  for (const auto& s : sections_)
    if (s.name == name) out.push_back(&s);
  return out;
}

}  // namespace tagbreathe::common
