// Minimal 3D vector geometry for the deployment model (antenna and tag
// positions, facing directions, radial motion components).
#pragma once

#include <cmath>

namespace tagbreathe::common {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept {
    return {x * s, y * s, z * s};
  }
  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  double norm() const noexcept { return std::sqrt(dot(*this)); }

  /// Unit vector; the zero vector normalises to itself.
  Vec3 normalized() const noexcept {
    const double n = norm();
    if (n <= 0.0) return {};
    return {x / n, y / n, z / n};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) noexcept { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) noexcept {
  return (a - b).norm();
}

/// Angle [rad] between two vectors in [0, π]; 0 if either is zero.
inline double angle_between(const Vec3& a, const Vec3& b) noexcept {
  const double na = a.norm();
  const double nb = b.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  double c = a.dot(b) / (na * nb);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return std::acos(c);
}

/// Rotates `v` about the +z (vertical) axis by `radians` (right-handed).
inline Vec3 rotate_z(const Vec3& v, double radians) noexcept {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {c * v.x - s * v.y, s * v.x + c * v.y, v.z};
}

}  // namespace tagbreathe::common
