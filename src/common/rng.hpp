// Deterministic random number generation.
//
// Every stochastic component of the simulator (phase noise, MAC slot
// choices, body sway, packet loss) draws from an explicitly seeded Rng so
// that every experiment in bench/ is reproducible from its seed. The
// engine is xoshiro256++ (Blackman & Vigna), which satisfies
// UniformRandomBitGenerator and is much faster than mt19937_64 while
// passing BigCrush.
#pragma once

#include <cstdint>
#include <limits>

namespace tagbreathe::common {

/// xoshiro256++ engine. Satisfies std::uniform_random_bit_generator.
class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a 64-bit seed via SplitMix64, as
  /// recommended by the xoshiro authors (avoids all-zero states and
  /// correlated low-entropy seeds).
  explicit Xoshiro256PlusPlus(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Jump function: advances the state by 2^128 steps. Used to derive
  /// statistically independent sub-streams from one seed.
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Convenience wrapper bundling the engine with the distributions the
/// simulator needs. Not thread-safe by design: each simulated entity owns
/// its own Rng (derived via split()).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) noexcept : engine_(seed) {}

  /// Derives an independent child stream; deterministic given the parent
  /// state. Each call yields a distinct stream.
  Rng split() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Wrapped normal on (-π, π]: a zero-mean Gaussian of the given sigma
  /// wrapped onto the circle. Models COTS reader phase-report noise.
  double wrapped_normal(double sigma) noexcept;

  /// Exponential with the given rate λ (mean 1/λ).
  double exponential(double rate) noexcept;

  bool bernoulli(double p) noexcept;

  Xoshiro256PlusPlus& engine() noexcept { return engine_; }

 private:
  Xoshiro256PlusPlus engine_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tagbreathe::common
