// Tiny leveled logger.
//
// Examples and the realtime pipeline use it for operational messages; the
// default level is Warn so tests and benches stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace tagbreathe::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr: "[LEVEL] message".
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace tagbreathe::common
