// Fixed-capacity circular buffer.
//
// The realtime pipeline buffers the most recent zero-crossing timestamps
// (the paper buffers M = 7) and sliding windows of samples; a bounded ring
// avoids unbounded growth during long monitoring sessions.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace tagbreathe::common {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : storage_(capacity), capacity_(capacity) {
    if (capacity == 0)
      throw std::invalid_argument("RingBuffer capacity must be positive");
  }

  /// Appends a value, evicting the oldest if full.
  void push(const T& value) {
    storage_[(head_ + size_) % capacity_] = value;
    if (size_ < capacity_) {
      ++size_;
    } else {
      head_ = (head_ + 1) % capacity_;
    }
  }

  /// Oldest-first access; index 0 is the oldest retained element.
  const T& operator[](std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer index");
    return storage_[(head_ + i) % capacity_];
  }

  /// Mutable oldest-first access (the ingest queue coalesces in place).
  T& operator[](std::size_t i) {
    if (i >= size_) throw std::out_of_range("RingBuffer index");
    return storage_[(head_ + i) % capacity_];
  }

  /// Removes and returns the oldest element.
  T pop_front() {
    if (size_ == 0) throw std::out_of_range("RingBuffer pop_front on empty");
    T out = std::move(storage_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return out;
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == capacity_; }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Copies the contents oldest-first into a vector.
  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> storage_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tagbreathe::common
