// Open-addressing robin-hood hash map for the per-user registries
// (ISSUE 10).
//
// Every hot registry in the system — demux user table, pipeline user
// state, validator LRU index, fleet coverage/parked/rebalance tables,
// FFT plan caches — was a node-based std::map: one heap allocation and
// one pointer chase per user. At the 100k–1M-user target the node
// overhead (~48 B/node) and cache misses dominate before CPU does.
// FlatMap stores entries in one contiguous power-of-two table with
// robin-hood displacement and backward-shift deletion (no tombstones:
// erased slots are immediately reusable and probe chains never grow
// from churn), so lookups are one hash + a short linear scan.
//
// Determinism contract: unordered traversal (for_each / erase_if) must
// only be used where visit order cannot reach an output byte; every
// ordered consumer (event emission, snapshot encoding, rebalance
// batching) goes through for_each_ordered / sorted_keys, which visit
// keys in ascending operator< order exactly like the std::map the
// registries replaced. test_capacity gates both equivalences.
//
// Requirements on T: default-constructible + move-assignable (empty
// slots hold default-constructed values; robin-hood displacement moves
// entries). Requirements on Key: equality, operator<, hashable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tagbreathe::common {

/// SplitMix64 finalizer: the same mix the fleet uses for user->shard
/// hashing. Distributes sequential user IDs uniformly across the table.
inline std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct U64Hash {
  std::uint64_t operator()(std::uint64_t key) const noexcept {
    return splitmix64_mix(key);
  }
};

template <typename Key, typename T, typename Hash = U64Hash>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// Table slots currently reserved (0 before the first insert).
  std::size_t capacity() const noexcept { return meta_.size(); }
  /// Times the table grew (tests pin this to prove churn reuses slots).
  std::size_t rehashes() const noexcept { return rehashes_; }

  void clear() noexcept {
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (meta_[i] != 0) {
        entries_[i].key = Key{};
        entries_[i].value = T{};
        meta_[i] = 0;
      }
    }
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without exceeding the load
  /// bound (big populations skip the doubling cascade).
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * kMaxLoadNum < n * kLoadDen) want <<= 1;
    if (want > meta_.size()) rehash(want);
  }

  T* find(const Key& key) noexcept {
    const std::size_t i = find_index(key);
    return i == npos ? nullptr : &entries_[i].value;
  }
  const T* find(const Key& key) const noexcept {
    const std::size_t i = find_index(key);
    return i == npos ? nullptr : &entries_[i].value;
  }
  bool contains(const Key& key) const noexcept {
    return find_index(key) != npos;
  }

  /// Inserts a default-constructed value when absent (std::map parity).
  T& operator[](const Key& key) {
    if (meta_.empty() || (size_ + 1) * kLoadDen > meta_.size() * kMaxLoadNum)
      rehash(meta_.empty() ? kMinCapacity : meta_.size() * 2);
    return slot_for(key);
  }

  /// Erases one key. Backward-shift deletion: the probe chain after the
  /// hole moves one slot left, so no tombstone is ever left behind.
  bool erase(const Key& key) {
    const std::size_t i = find_index(key);
    if (i == npos) return false;
    erase_index(i);
    return true;
  }

  /// Unordered traversal (mutable values). Do NOT erase inside; use
  /// erase_if. Visit order is hash order — never let it reach an
  /// output byte.
  template <typename F>
  void for_each(F&& fn) {
    for (std::size_t i = 0; i < meta_.size(); ++i)
      if (meta_[i] != 0) fn(entries_[i].key, entries_[i].value);
  }
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < meta_.size(); ++i)
      if (meta_[i] != 0) fn(entries_[i].key, entries_[i].value);
  }

  /// Erases every entry the predicate accepts; returns entries erased.
  /// Safe under backward-shift: after an erase the shifted-in entry is
  /// re-examined before the scan advances.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t erased = 0;
    for (std::size_t i = 0; i < meta_.size();) {
      if (meta_[i] != 0 && pred(entries_[i].key, entries_[i].value)) {
        erase_index(i);
        ++erased;
        // A backward shift may have moved the next chain entry into
        // slot i — re-test it. A chain never wraps into lower indices
        // it already vacated unless it crosses the table end; the wrap
        // case re-tests those entries at their new position, which is
        // correct (at worst a key is visited twice, never skipped).
        continue;
      }
      ++i;
    }
    return erased;
  }

  /// Keys in ascending operator< order. Allocates one vector per call —
  /// callers on a tick cadence (snapshot export, rebalance batching)
  /// absorb that; per-read paths must not use it.
  std::vector<Key> sorted_keys() const {
    std::vector<Key> keys;
    keys.reserve(size_);
    for (std::size_t i = 0; i < meta_.size(); ++i)
      if (meta_[i] != 0) keys.push_back(entries_[i].key);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  /// Ordered traversal: visits entries in ascending key order, exactly
  /// like the std::map registries this replaces. The ordering contract
  /// every determinism invariant leans on (ISSUE 10 satellite).
  template <typename F>
  void for_each_ordered(F&& fn) const {
    for (const Key& key : sorted_keys()) {
      const std::size_t i = find_index(key);
      fn(entries_[i].key, entries_[i].value);
    }
  }
  template <typename F>
  void for_each_ordered(F&& fn) {
    for (const Key& key : sorted_keys()) {
      const std::size_t i = find_index(key);
      fn(entries_[i].key, entries_[i].value);
    }
  }

  /// Longest probe chain currently in the table (capacity_probe_length
  /// instrumentation; O(capacity), call at tick cadence).
  std::size_t max_probe_length() const noexcept {
    std::uint16_t worst = 0;
    for (const std::uint16_t m : meta_) worst = std::max(worst, m);
    return worst == 0 ? 0 : static_cast<std::size_t>(worst - 1);
  }

  /// Resident bytes of the table itself (entry + metadata arrays).
  /// Payload-owned heap (vectors inside T) is the payload's business.
  std::size_t table_bytes() const noexcept {
    return meta_.size() * (sizeof(Entry) + sizeof(std::uint16_t));
  }

 private:
  struct Entry {
    Key key{};
    T value{};
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;
  // Grow beyond 13/16 (= 0.8125) occupancy: robin-hood keeps probe
  // chains short up to high load, and the empty-slot overhead stays
  // under a quarter of the table.
  static constexpr std::size_t kMaxLoadNum = 13;
  static constexpr std::size_t kLoadDen = 16;

  std::size_t mask() const noexcept { return meta_.size() - 1; }

  std::size_t find_index(const Key& key) const noexcept {
    if (meta_.empty()) return npos;
    std::size_t i = Hash{}(key)&mask();
    std::uint16_t dist = 1;  // meta stores probe distance + 1; 0 = empty
    while (true) {
      const std::uint16_t m = meta_[i];
      // Empty slot, or a resident closer to home than we are: a
      // robin-hood table cannot hold the key past this point.
      if (m == 0 || m < dist) return npos;
      if (m == dist && entries_[i].key == key) return i;
      i = (i + 1) & mask();
      ++dist;
    }
  }

  /// Insert-or-find after the load check. Robin-hood: a probing entry
  /// displaces any resident with a shorter distance from home.
  T& slot_for(const Key& key) {
    std::size_t i = Hash{}(key)&mask();
    std::uint16_t dist = 1;
    Key pending_key = key;
    T pending_value{};
    std::size_t result = npos;
    while (true) {
      std::uint16_t& m = meta_[i];
      if (m == 0) {
        entries_[i].key = std::move(pending_key);
        entries_[i].value = std::move(pending_value);
        m = dist;
        ++size_;
        return entries_[result == npos ? i : result].value;
      }
      if (result == npos && m == dist && entries_[i].key == pending_key)
        return entries_[i].value;
      if (m < dist) {
        // Displace the richer resident; keep probing for its new home.
        std::swap(entries_[i].key, pending_key);
        std::swap(entries_[i].value, pending_value);
        std::swap(m, dist);
        if (result == npos) result = i;
      }
      i = (i + 1) & mask();
      ++dist;
    }
  }

  void erase_index(std::size_t i) {
    // Shift the rest of the chain back one slot until a hole or a
    // distance-1 entry (already home) terminates it.
    std::size_t next = (i + 1) & mask();
    while (meta_[next] > 1) {
      entries_[i].key = std::move(entries_[next].key);
      entries_[i].value = std::move(entries_[next].value);
      meta_[i] = static_cast<std::uint16_t>(meta_[next] - 1);
      i = next;
      next = (next + 1) & mask();
    }
    entries_[i].key = Key{};
    entries_[i].value = T{};
    meta_[i] = 0;
    --size_;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Entry> old_entries = std::move(entries_);
    std::vector<std::uint16_t> old_meta = std::move(meta_);
    entries_ = std::vector<Entry>(new_capacity);
    meta_.assign(new_capacity, 0);
    const std::size_t old_size = size_;
    size_ = 0;
    if (!old_meta.empty()) ++rehashes_;
    for (std::size_t i = 0; i < old_meta.size(); ++i) {
      if (old_meta[i] == 0) continue;
      slot_for(old_entries[i].key) = std::move(old_entries[i].value);
    }
    (void)old_size;
  }

  std::vector<Entry> entries_;
  std::vector<std::uint16_t> meta_;  // probe distance + 1; 0 = empty
  std::size_t size_ = 0;
  std::size_t rehashes_ = 0;
};

/// The user-id-keyed specialization every per-user registry uses.
template <typename T>
using FlatUserMap = FlatMap<std::uint64_t, T, U64Hash>;

}  // namespace tagbreathe::common
