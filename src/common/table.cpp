#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace tagbreathe::common {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("ConsoleTable: empty header list");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("ConsoleTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double c : cells) formatted.push_back(fmt(c, precision));
  add_row(std::move(formatted));
}

std::string ConsoleTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << "| " << row[i]
          << std::string(widths[i] - row[i].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t i = 0; i < headers_.size(); ++i)
    out << "|" << std::string(widths[i] + 2, '-');
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void ConsoleTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string ascii_bar(double value, double max_value, int width) {
  if (width <= 0 || max_value <= 0.0) return {};
  const double frac = std::clamp(value / max_value, 0.0, 1.0);
  const int cells = static_cast<int>(std::lround(frac * width));
  std::string bar(static_cast<std::size_t>(cells), '#');
  bar += std::string(static_cast<std::size_t>(width - cells), '.');
  return bar;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return {};
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  std::string out;
  out.reserve(values.size() * 3);
  for (double v : values) {
    int level = span > 0.0
                    ? static_cast<int>((v - lo) / span * 7.999)
                    : 0;
    level = std::clamp(level, 0, 7);
    out += kLevels[level];
  }
  return out;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace tagbreathe::common
