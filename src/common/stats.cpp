#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagbreathe::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double min_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  return percentile(xs, 50.0);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty series");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("rmse: size mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double mae(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("mae: size mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("pearson: size mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("linear_fit: size mismatch");
  LinearFit fit;
  if (x.size() < 2) {
    fit.intercept = y.empty() ? 0.0 : y[0];
    return fit;
  }
  const double mx = mean(x);
  const double my = mean(y);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  fit.slope = den > 0.0 ? num / den : 0.0;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

void remove_mean(std::vector<double>& xs) noexcept {
  const double m = mean(xs);
  for (double& x : xs) x -= m;
}

void normalize_peak(std::vector<double>& xs) noexcept {
  remove_mean(xs);
  double peak = 0.0;
  for (double x : xs) peak = std::max(peak, std::abs(x));
  if (peak <= 0.0) return;
  for (double& x : xs) x /= peak;
}

}  // namespace tagbreathe::common
