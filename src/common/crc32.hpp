// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the frame
// checksum of the durability layer (core/journal, core/snapshot). One
// shared implementation so a journal record written today stays
// verifiable by any future reader.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tagbreathe::common {

/// One-shot CRC-32 of a byte range (standard init 0xFFFFFFFF and final
/// xor, so results match zlib's crc32 / the PNG and gzip CRC).
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

/// Incremental form: feed the previous return value back as `crc` to
/// extend the checksum over a further range. Start from crc32_init().
std::uint32_t crc32_init() noexcept;
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) noexcept;
std::uint32_t crc32_final(std::uint32_t crc) noexcept;

}  // namespace tagbreathe::common
