#include "common/rng.hpp"

#include <cmath>

#include "common/units.hpp"

namespace tagbreathe::common {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64: the seeding generator recommended for xoshiro.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256PlusPlus::Xoshiro256PlusPlus(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256PlusPlus::result_type Xoshiro256PlusPlus::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256PlusPlus::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::split() noexcept {
  // Derive the child's seed from the parent stream, then jump the parent
  // so later splits stay independent of the child's draws.
  Rng child(engine_());
  child.engine_.jump();
  return child;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1) with full mantissa entropy.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) noexcept {
  // Rejection-free modulo bias is negligible for the small ranges used in
  // slot selection, but do unbiased rejection anyway: ranges are tiny so
  // rejections are vanishingly rare.
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  const std::uint64_t limit = (Xoshiro256PlusPlus::max() / span) * span;
  std::uint64_t x;
  do {
    x = engine_();
  } while (x >= limit);
  return lo + static_cast<int>(x % span);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(kTwoPi * u2);
  has_spare_ = true;
  return mag * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::wrapped_normal(double sigma) noexcept {
  return wrap_phase_pi(normal(0.0, sigma));
}

double Rng::exponential(double rate) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

}  // namespace tagbreathe::common
