#include "common/csv.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace tagbreathe::common {

CsvWriter::CsvWriter(const std::string& path,
                     std::span<const std::string> columns)
    : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_header(columns);
}

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string> columns)
    : CsvWriter(path, std::span<const std::string>(columns.begin(),
                                                   columns.size())) {}

void CsvWriter::write_header(std::span<const std::string> columns) {
  if (columns.empty())
    throw std::invalid_argument("CsvWriter: empty column list");
  columns_ = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::span<const double> values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  std::ostringstream line;
  line.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line << ',';
    line << values[i];
  }
  out_ << line.str() << '\n';
  ++rows_;
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::span<const double>(values.begin(), values.size()));
}

void CsvWriter::text_row(std::span<const std::string> cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string csv_escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace tagbreathe::common
