// Minimal INI-style configuration parser.
//
// Scenario files for the CLI tool (`examples/tagbreathe_sim`) use this:
// `[section]` headers, `key = value` pairs, `#`/`;` comments, repeated
// section names allowed (e.g. one `[user]` per subject). No external
// dependencies, strict errors with line numbers.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tagbreathe::common {

struct IniSection {
  std::string name;
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) > 0; }

  std::optional<std::string> get(const std::string& key) const;
  /// Typed getters: return the default when the key is absent; throw
  /// std::runtime_error when present but unparseable.
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
};

class IniFile {
 public:
  /// Parses from a stream or file. Throws std::runtime_error with a line
  /// number on syntax errors.
  static IniFile parse(std::istream& in);
  static IniFile load(const std::string& path);

  /// All sections in file order (section names can repeat).
  const std::vector<IniSection>& sections() const noexcept {
    return sections_;
  }

  /// First section with the given name, or null.
  const IniSection* find(const std::string& name) const;

  /// All sections with the given name, in order.
  std::vector<const IniSection*> find_all(const std::string& name) const;

 private:
  std::vector<IniSection> sections_;
};

}  // namespace tagbreathe::common
