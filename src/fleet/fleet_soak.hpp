// Fleet-scale chaos soak (ISSUE 6 acceptance harness).
//
// Drives a synthetic breathing ward — n_users sinusoid breathers split
// across n_readers — through per-reader chaos (core::ReaderChaos:
// scripted blackouts, flaps, burst overload, per-read faults) into a
// ReaderFleet, and gates the robustness contract:
//
// - per-reader queue counter conservation (shared
//   core::append_queue_invariant_violations gate);
// - fleet-wide admission/routing conservation
//   (sum(drained) == admitted + quarantined;
//    admitted == routed + handoff_suppressed);
// - the merged event stream is monotonic in time and never names a
//   user outside the roster;
// - no admitted user is silently lost: every roster user still has a
//   RateUpdate inside the final tail window, despite readers dying and
//   reviving mid-run (delivery fails over to the next live reader,
//   modelling overlapping antenna coverage);
// - the rebalance backlog drains within the configured deadline
//   (rebalance_deadline_misses == 0, no backlog at run end).
//
// Determinism: everything is seeded and driven by stream time; the
// report carries an FNV-1a hash of the formatted event log so two runs
// — across shard counts and shard thread counts — can be compared in
// O(1) memory (record_event_log=true additionally keeps the lines).
//
// NOTE: the per-reader validator cap (fleet.ingest.max_users, default
// 64) is NOT lifted here — big-census runs must set it to 0 (or >=
// their per-reader share) or LRU eviction churn is part of the
// scenario, deliberately.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "fleet/fleet.hpp"

namespace tagbreathe::fleet {

struct FleetSoakConfig {
  std::size_t n_readers = 16;
  std::size_t n_users = 64;
  std::size_t tags_per_user = 1;
  double duration_s = 60.0;
  /// Clean per-tag read cadence.
  double read_rate_hz = 2.0;
  double base_rate_bpm = 10.0;
  double pump_period_s = 0.25;
  /// Fleet template; n_readers is overridden from the field above and
  /// the roster fills ingest.monitored_users when empty.
  FleetConfig fleet{};
  /// Per-reader fault scripts (readers without one run clean).
  std::vector<core::ReaderChaosConfig> reader_chaos;
  /// Roaming: the first `roaming_users` users hop to the next reader
  /// every roam_period_s; the first roam_overlap_reads reads after a
  /// hop are delivered to BOTH readers (antenna overlap), exercising
  /// duplicate suppression and handoff.
  std::size_t roaming_users = 0;
  double roam_period_s = 10.0;
  std::size_t roam_overlap_reads = 2;
  /// Keep the formatted event lines (big runs: leave off, compare the
  /// hash).
  bool record_event_log = true;
  /// Optional hub the fleet binds to. Must outlive the call.
  obs::Observability* observability = nullptr;
  /// Downstream taps (the telemetry service hangs off these). event_tap
  /// fires for every merged event, after the soak's own accounting;
  /// pump_tap fires after every fleet pump with the pump's stream time.
  /// Both must be non-blocking — a stalling tap stalls the soak, which
  /// is exactly what the telemetry layer exists to prevent.
  std::function<void(const FleetEvent&)> event_tap;
  std::function<void(double now_s)> pump_tap;

  void validate() const;
};

struct FleetSoakReport {
  /// Formatted merged events (only when record_event_log).
  std::vector<std::string> event_log;
  /// FNV-1a (64-bit) over every formatted line + '\n'. Byte-identical
  /// logs <=> equal hashes; the determinism gates compare this.
  std::uint64_t event_log_hash = 0;
  std::vector<std::string> violations;
  FleetCounters counters;
  std::size_t events = 0;
  /// Reads swallowed by scripted reader outages (fed to an offline
  /// reader before failover found a live one).
  std::size_t outage_dropped = 0;
  double last_event_time_s = 0.0;

  bool ok() const noexcept { return violations.empty(); }
};

FleetSoakReport run_fleet_soak(const FleetSoakConfig& config);

}  // namespace tagbreathe::fleet
