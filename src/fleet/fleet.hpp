// Fault-tolerant reader fleet coordinator (ISSUE 6).
//
// One TagBreathe process in a real ward fronts N readers, not one: the
// paper's deployment (Sec. VI) covers each bed from multiple antennas,
// and readers — not tags — are the component that dies in practice
// (PoE switch reboots, firmware hangs, cable kicks). ReaderFleet owns
// one supervised ingest front (bounded queue + validator) per reader
// and M pipeline shards, and keeps every admitted user monitored
// through reader loss:
//
//   reader 0..N-1                    shard 0..M-1
//   ─────────────                    ────────────
//   IngestQueue ──▶ ReadValidator ─┐
//   IngestQueue ──▶ ReadValidator ─┼─▶ route by hash(user) ──▶ RealtimePipeline
//   IngestQueue ──▶ ReadValidator ─┘      │                    RealtimePipeline
//                                          └─ journal per shard (optional)
//
// - Health: a per-reader Up → Degraded → Dead machine driven by missed
//   traffic windows (pump cadence) and external link probes — the fleet
//   analogue of the session supervisor's Streaming/Degraded/watchdog
//   ladder (llrp::SessionProbe feeds it via health_from_session).
// - Rebalance: a dead reader's covered users are reassigned to the
//   least-loaded live reader in bounded per-pump batches; users whose
//   shard state was lost on the way are restored from the parked-state
//   lot or replayed from the shard journal tail, so no admitted user is
//   silently dropped.
// - Handoff: every (user, tag, antenna) stream has one source reader at
//   a time. A read from a different reader inside the suppression
//   window is a duplicate (both antennas heard the tag) and is dropped;
//   beyond the window it is a handoff and the stream migrates.
// - Degradation: above a configured census the fleet enters alarm-only
//   mode — routine rate updates are suppressed, alarms always pass.
//
// Determinism contract: stream time only; readers drained in index
// order; admitted reads merge through one stable time sort per pump;
// shard results merge in (time, user) order. For a fixed seed the
// merged event stream is byte-identical across runs, shard counts and
// shard thread counts — provided every shard runs the same update grid
// (the fleet pins one via RealtimePipeline::start_at) and per-shard
// admission caps are off (a cap's eviction choice depends on which
// users share the shard). See DESIGN.md §5g.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "core/ingest.hpp"
#include "core/journal.hpp"
#include "core/pipeline.hpp"
#include "llrp/supervisor.hpp"

namespace tagbreathe::fleet {

enum class ReaderHealth : std::uint8_t {
  Up = 0,
  Degraded = 1,
  Dead = 2,
};
inline constexpr std::size_t kReaderHealthCount = 3;

const char* reader_health_name(ReaderHealth health) noexcept;

struct FleetConfig {
  std::size_t n_readers = 4;
  std::size_t n_shards = 2;
  /// Per-reader ingest template (queue + validator). monitored_users is
  /// shared by every reader; max_users caps *per-reader* admission.
  core::IngestConfig ingest{};
  /// Per-shard pipeline template. max_users caps *per-shard* tracking —
  /// leave 0 in determinism-sensitive deployments (see header note).
  core::PipelineConfig pipeline{};
  /// Pumps with no traffic (while covering users or link-down) before a
  /// reader is Degraded / declared Dead.
  std::size_t degraded_after_windows = 4;
  std::size_t dead_after_windows = 12;
  /// A queued rebalance older than this counts as a deadline miss
  /// (reported, never dropped — the user still gets reassigned).
  double rebalance_deadline_s = 5.0;
  /// Users reassigned per pump (bounds per-pump latency under mass
  /// reader loss; the backlog drains across pumps).
  std::size_t rebalance_batch = 256;
  /// A read for a stream arriving from a *different* reader within this
  /// window of the stream's last admitted read is an overlap duplicate
  /// (both antennas heard one inventory round) and is suppressed;
  /// beyond it, the stream hands off to the new reader.
  double handoff_suppress_s = 0.05;
  /// Graceful degradation: with more than this many users tracked
  /// fleet-wide, routine RateUpdate events are suppressed (alarms,
  /// loss and recovery always pass). 0 = never.
  std::size_t alarm_only_above_users = 0;
  /// Bounded lot of exported demux states for users evicted mid-flight;
  /// restoring from the lot beats a journal replay. 0 disables parking.
  std::size_t parked_users_cap = 1024;
  /// Non-empty => each shard journals its admitted reads under
  /// <durability_directory>/shard-NNN and rebalance may replay a lost
  /// user's tail from it. Empty = no durability.
  std::string durability_directory;
  /// Journal template (directory is overridden per shard).
  core::JournalConfig journal{};
  /// Worker threads for shard execution each pump. 0 = serial. Shards
  /// are striped across threads; merge order is unaffected.
  std::size_t shard_threads = 0;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Fleet-level robustness counters. Conservation laws the soak gates
/// on: per reader `enqueued == drained + shed + coalesced` (queue),
/// fleet-wide `sum(drained) == admitted + quarantined` and
/// `admitted == routed + handoff_suppressed`.
struct FleetCounters {
  std::size_t admitted = 0;            // validator-admitted reads
  std::size_t quarantined = 0;         // validator-refused reads
  std::size_t routed = 0;              // reads delivered to a shard
  std::size_t handoffs = 0;            // stream source-reader switches
  std::size_t handoff_suppressed = 0;  // overlap duplicates dropped
  std::size_t readers_died = 0;
  std::size_t readers_revived = 0;
  std::size_t rebalances = 0;          // pumps that moved >= 1 user
  std::size_t users_rebalanced = 0;
  std::size_t rebalance_deadline_misses = 0;
  std::size_t users_parked = 0;        // demux states parked on eviction
  std::size_t users_restored = 0;      // parked states re-imported
  std::size_t journal_tail_replays = 0;
  std::size_t journal_reads_replayed = 0;
  std::size_t rate_updates_suppressed = 0;  // alarm-only mode
  std::size_t events = 0;              // merged events emitted
};

/// One merged pipeline event, tagged with the shard that produced it.
struct FleetEvent {
  std::size_t shard = 0;
  core::PipelineEvent event;
};

/// Maps a session supervisor's liveness sample onto fleet health: the
/// glue between the per-connection state machine (llrp) and the fleet's
/// coarser Up/Degraded/Dead ladder. `pump_period_s` converts the
/// fleet's window counts into the probe's seconds.
ReaderHealth health_from_session(const llrp::SessionProbe& probe,
                                 const FleetConfig& config,
                                 double pump_period_s);

class ReaderFleet {
 public:
  using EventCallback = std::function<void(const FleetEvent&)>;

  explicit ReaderFleet(FleetConfig config, EventCallback callback = nullptr);
  ~ReaderFleet();

  ReaderFleet(const ReaderFleet&) = delete;
  ReaderFleet& operator=(const ReaderFleet&) = delete;

  /// Producer side: non-blocking enqueue onto one reader's queue (any
  /// thread). Reads for out-of-range readers are refused as Closed.
  core::EnqueueResult offer(std::size_t reader, const core::TagRead& read,
                            double now_s);
  core::EnqueueResult offer(std::size_t reader, const core::TagRead& read) {
    return offer(reader, read, read.time_s);
  }

  /// External link-health input (the session supervisor's view): link
  /// down accelerates the missed-window ladder even while the reader
  /// covers no users; link up revives a Dead reader immediately.
  void probe_reader(std::size_t reader, bool link_up, double now_s);

  /// One coordinator cycle: drain + validate every reader, dedup /
  /// handoff, route to shards, process the rebalance backlog, execute
  /// shards (serial or striped across shard_threads), merge and emit
  /// events in (time, user) order. Call on a fixed cadence — the
  /// missed-traffic health ladder counts pump windows.
  void pump(double now_s);

  // --- introspection -------------------------------------------------------
  ReaderHealth reader_health(std::size_t reader) const;
  /// Reader currently sourcing this user's streams (nullopt = never
  /// admitted, or dropped).
  std::optional<std::size_t> covering_reader(std::uint64_t user_id) const;
  std::size_t shard_of(std::uint64_t user_id) const noexcept;
  /// Users queued for reassignment off dead readers.
  std::size_t pending_rebalances() const noexcept;
  /// Users tracked across all shard pipelines.
  std::size_t tracked_users() const;
  std::size_t users_on_reader(std::size_t reader) const;
  const FleetCounters& counters() const noexcept { return counters_; }
  core::IngestQueueCounters reader_queue_counters(std::size_t reader) const;
  const core::ValidationCounters& reader_validation(std::size_t reader) const;
  const core::RealtimePipeline& shard_pipeline(std::size_t shard) const;

  /// Registers fleet instruments on `hub`: per-reader series labelled
  /// reader="rNNN" (health, users, drained reads), per-shard series
  /// labelled shard="sNN" (tracked users, routed reads), and unlabelled
  /// fleet totals. Values mirror at pump cadence.
  void bind_observability(obs::Observability& hub);

 private:
  struct ReaderSlot {
    std::unique_ptr<core::IngestQueue> queue;
    std::unique_ptr<core::ReadValidator> validator;
    ReaderHealth health = ReaderHealth::Up;
    bool link_up = true;
    std::size_t missed_windows = 0;
    double last_traffic_s = 0.0;
    std::size_t users_assigned = 0;
    std::size_t drained_total = 0;
  };
  struct Shard {
    std::unique_ptr<core::RealtimePipeline> pipeline;
    std::unique_ptr<core::JournalWriter> journal;
    std::vector<FleetEvent> pending;     // events from this pump
    std::vector<core::TagRead> batch;    // reads routed this pump
    std::size_t routed_total = 0;
  };
  /// Current source reader of one (user, tag, antenna) stream.
  struct StreamSource {
    std::size_t reader = 0;
    double last_time_s = 0.0;
  };

  void on_reader_dead(std::size_t reader, double now_s);
  void revive(std::size_t reader, double now_s);
  void set_coverage(std::uint64_t user, std::size_t reader);
  void park_user(std::uint64_t user);
  void restore_user(std::uint64_t user, double now_s);
  void process_rebalances(double now_s);
  void execute_shards(double now_s);
  void merge_and_emit();
  void publish_metrics();

  FleetConfig config_;
  EventCallback callback_;
  std::vector<ReaderSlot> readers_;
  std::vector<Shard> shards_;
  /// user -> covering reader (authoritative census for rebalancing).
  /// Flat registries (ISSUE 10): one entry per user / per stream, hit
  /// on every admitted read. Every output-reaching traversal goes
  /// through sorted_keys (process_rebalances); the rest is point
  /// lookups and order-free sweeps.
  common::FlatUserMap<std::size_t> coverage_;
  /// Live stream sources for duplicate suppression / handoff.
  common::FlatMap<core::StreamKey, StreamSource, core::StreamKeyHash> sources_;
  /// Exported demux states of evicted users awaiting re-admission.
  common::FlatUserMap<core::DemuxState> parked_;
  /// user -> stream time it was queued for reassignment.
  common::FlatUserMap<double> pending_rebalance_;
  FleetCounters counters_;
  bool started_ = false;  // shard update grids pinned

  // Per-pump scratch, reused.
  struct AdmittedRead {
    core::TagRead read;
    std::size_t reader = 0;
  };
  std::vector<core::TagRead> drain_scratch_;
  std::vector<AdmittedRead> admitted_scratch_;
  std::vector<FleetEvent> merge_scratch_;

  // Null until bind_observability; `hub` is the is-bound sentinel.
  struct Instruments {
    obs::Observability* hub = nullptr;
    std::vector<obs::Gauge*> reader_health;   // fleet_reader_health{reader=}
    std::vector<obs::Gauge*> reader_users;    // fleet_reader_users{reader=}
    std::vector<obs::Counter*> reader_reads;  // fleet_reads_total{reader=}
    std::vector<obs::Gauge*> shard_users;     // fleet_shard_users{shard=}
    std::vector<obs::Counter*> shard_routed;  // fleet_routed_total{shard=}
    /// fleet_shard_update_latency_seconds{shard=}: per-pump execution
    /// latency of each shard (push batch + advance), on the hub's
    /// injectable latency clock — the flat-per-shard-latency evidence
    /// the ROADMAP's scale-out target asks for.
    std::vector<obs::Histogram*> shard_update_seconds;
    obs::Counter* admitted = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* handoffs = nullptr;
    obs::Counter* suppressed = nullptr;
    obs::Counter* readers_died = nullptr;
    obs::Counter* readers_revived = nullptr;
    obs::Counter* users_rebalanced = nullptr;
    obs::Counter* deadline_misses = nullptr;
    obs::Counter* events = nullptr;
    obs::Gauge* pending_rebalance = nullptr;
  } obs_;
};

}  // namespace tagbreathe::fleet
