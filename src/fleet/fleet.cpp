#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "obs/observability.hpp"

namespace tagbreathe::fleet {

namespace {

/// Finalizer-style mix: spreads consecutive user IDs across shards so
/// one ward's ID block does not pile onto one shard.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::string index_label(char prefix, int width, std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%c%0*zu", prefix, width, i);
  return buf;
}

std::string shard_journal_directory(const std::string& root, std::size_t s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/shard-%03zu", s);
  return root + buf;
}

}  // namespace

const char* reader_health_name(ReaderHealth health) noexcept {
  switch (health) {
    case ReaderHealth::Up:
      return "Up";
    case ReaderHealth::Degraded:
      return "Degraded";
    case ReaderHealth::Dead:
      return "Dead";
  }
  return "Unknown";
}

void FleetConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("FleetConfig: " + what);
  };
  if (n_readers == 0) bad("n_readers must be positive");
  if (n_shards == 0) bad("n_shards must be positive");
  if (degraded_after_windows == 0) bad("degraded_after_windows must be positive");
  if (dead_after_windows <= degraded_after_windows)
    bad("dead_after_windows must exceed degraded_after_windows");
  if (!(rebalance_deadline_s > 0.0) || !std::isfinite(rebalance_deadline_s))
    bad("rebalance_deadline_s must be positive and finite");
  if (rebalance_batch == 0) bad("rebalance_batch must be positive");
  if (!(handoff_suppress_s >= 0.0) || !std::isfinite(handoff_suppress_s))
    bad("handoff_suppress_s must be non-negative and finite");
  ingest.validate();
  pipeline.validate();
  if (!durability_directory.empty()) {
    core::JournalConfig j = journal;
    j.directory = durability_directory;  // per-shard dirs derive from it
    j.validate();
  }
}

ReaderHealth health_from_session(const llrp::SessionProbe& probe,
                                 const FleetConfig& config,
                                 double pump_period_s) {
  const double degraded_s =
      static_cast<double>(config.degraded_after_windows) * pump_period_s;
  const double dead_s =
      static_cast<double>(config.dead_after_windows) * pump_period_s;
  if (probe.streaming) {
    if (probe.silence_s >= dead_s) return ReaderHealth::Dead;
    if (probe.state == llrp::SessionState::Degraded ||
        probe.silence_s >= degraded_s)
      return ReaderHealth::Degraded;
    return ReaderHealth::Up;
  }
  // Not streaming: the supervisor is redialing. A fresh reconnect is a
  // degradation; a supervisor that keeps failing without a completed
  // re-arm has lost the reader.
  if (probe.consecutive_failures >= config.dead_after_windows)
    return ReaderHealth::Dead;
  return ReaderHealth::Degraded;
}

// ---------------------------------------------------------------------------
// ReaderFleet

ReaderFleet::ReaderFleet(FleetConfig config, EventCallback callback)
    : config_(std::move(config)), callback_(std::move(callback)) {
  config_.validate();
  readers_.resize(config_.n_readers);
  for (ReaderSlot& slot : readers_) {
    slot.queue = std::make_unique<core::IngestQueue>(
        config_.ingest.queue_capacity, config_.ingest.policy);
    slot.validator = std::make_unique<core::ReadValidator>(config_.ingest);
  }
  shards_.resize(config_.n_shards);
  for (std::size_t s = 0; s < config_.n_shards; ++s) {
    shards_[s].pipeline = std::make_unique<core::RealtimePipeline>(
        config_.pipeline, [this, s](const core::PipelineEvent& event) {
          shards_[s].pending.push_back(FleetEvent{s, event});
        });
    if (!config_.durability_directory.empty()) {
      core::JournalConfig j = config_.journal;
      j.directory =
          shard_journal_directory(config_.durability_directory, s);
      shards_[s].journal = std::make_unique<core::JournalWriter>(j);
    }
  }
}

ReaderFleet::~ReaderFleet() = default;

core::EnqueueResult ReaderFleet::offer(std::size_t reader,
                                       const core::TagRead& read,
                                       double now_s) {
  if (reader >= readers_.size()) return core::EnqueueResult::Closed;
  return readers_[reader].queue->try_push(read, now_s);
}

void ReaderFleet::probe_reader(std::size_t reader, bool link_up,
                               double now_s) {
  if (reader >= readers_.size()) return;
  ReaderSlot& slot = readers_[reader];
  slot.link_up = link_up;
  if (link_up && slot.health == ReaderHealth::Dead) revive(reader, now_s);
}

std::size_t ReaderFleet::shard_of(std::uint64_t user_id) const noexcept {
  return static_cast<std::size_t>(splitmix64(user_id) %
                                  static_cast<std::uint64_t>(config_.n_shards));
}

ReaderHealth ReaderFleet::reader_health(std::size_t reader) const {
  return readers_.at(reader).health;
}

std::optional<std::size_t> ReaderFleet::covering_reader(
    std::uint64_t user_id) const {
  const std::size_t* reader = coverage_.find(user_id);
  if (reader == nullptr) return std::nullopt;
  return *reader;
}

std::size_t ReaderFleet::pending_rebalances() const noexcept {
  return pending_rebalance_.size();
}

std::size_t ReaderFleet::tracked_users() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.pipeline->tracked_users();
  return total;
}

std::size_t ReaderFleet::users_on_reader(std::size_t reader) const {
  return readers_.at(reader).users_assigned;
}

core::IngestQueueCounters ReaderFleet::reader_queue_counters(
    std::size_t reader) const {
  return readers_.at(reader).queue->counters();
}

const core::ValidationCounters& ReaderFleet::reader_validation(
    std::size_t reader) const {
  return readers_.at(reader).validator->counters();
}

const core::RealtimePipeline& ReaderFleet::shard_pipeline(
    std::size_t shard) const {
  return *shards_.at(shard).pipeline;
}

void ReaderFleet::set_coverage(std::uint64_t user, std::size_t reader) {
  if (std::size_t* covering = coverage_.find(user)) {
    if (*covering == reader) return;
    --readers_[*covering].users_assigned;
    *covering = reader;
  } else {
    coverage_[user] = reader;
  }
  ++readers_[reader].users_assigned;
}

void ReaderFleet::revive(std::size_t reader, double now_s) {
  ReaderSlot& slot = readers_[reader];
  slot.health = ReaderHealth::Up;
  slot.missed_windows = 0;
  slot.last_traffic_s = now_s;
  ++counters_.readers_revived;
}

void ReaderFleet::on_reader_dead(std::size_t reader, double now_s) {
  ReaderSlot& slot = readers_[reader];
  slot.health = ReaderHealth::Dead;
  ++counters_.readers_died;
  // Queue every covered user for reassignment, keeping the original
  // queue time if the user is already pending — a cascading second
  // death must not reset its deadline clock. Unordered sweep: insert
  // order into the pending set is invisible (process_rebalances works
  // off a sorted snapshot).
  coverage_.for_each([this, reader, now_s](const std::uint64_t& user,
                                           const std::size_t& covering) {
    if (covering == reader && !pending_rebalance_.contains(user))
      pending_rebalance_[user] = now_s;
  });
  // Forget the dead reader's stream sources: the next read of each
  // stream — from whichever reader hears it — starts a fresh source
  // without tripping duplicate suppression.
  sources_.erase_if([reader](const core::StreamKey&, const StreamSource& src) {
    return src.reader == reader;
  });
}

void ReaderFleet::park_user(std::uint64_t user) {
  Shard& shard = shards_[shard_of(user)];
  if (config_.parked_users_cap > 0 && parked_.size() < config_.parked_users_cap &&
      shard.pipeline->tracks(user) && !parked_.contains(user)) {
    parked_[user] = shard.pipeline->export_user(user);
    ++counters_.users_parked;
  }
  shard.pipeline->forget_user(user);
  if (const std::size_t* covering = coverage_.find(user)) {
    --readers_[*covering].users_assigned;
    coverage_.erase(user);
  }
  sources_.erase_if([user](const core::StreamKey& key, const StreamSource&) {
    return key.user_id == user;
  });
  pending_rebalance_.erase(user);
}

void ReaderFleet::restore_user(std::uint64_t user, double now_s) {
  Shard& shard = shards_[shard_of(user)];
  if (const core::DemuxState* parked = parked_.find(user)) {
    shard.pipeline->import_user(*parked);
    parked_.erase(user);
    ++counters_.users_restored;
    return;
  }
  if (shard.journal == nullptr) return;
  // Replay the user's window tail from the shard journal. Commit first
  // so the scanner sees everything appended this pump.
  shard.journal->commit();
  const double horizon = now_s - config_.pipeline.window_s;
  core::DemuxState state;
  std::size_t replayed = 0;
  core::scan_journal(
      shard_journal_directory(config_.durability_directory, shard_of(user)), 0,
      [&](const core::JournalRecord& record) {
        if (record.read.epc.user_id() != user) return;
        if (record.read.time_s < horizon) return;
        const core::StreamKey key{user, record.read.epc.tag_id(),
                                  record.read.antenna_id};
        auto stream = std::find_if(
            state.streams.begin(), state.streams.end(),
            [&key](const core::DemuxState::Stream& s) { return s.key == key; });
        if (stream == state.streams.end()) {
          state.streams.push_back(core::DemuxState::Stream{key, {}});
          stream = std::prev(state.streams.end());
        }
        stream->reads.push_back(record.read);
        ++replayed;
      });
  if (replayed == 0) return;
  shard.pipeline->import_user(state);
  ++counters_.journal_tail_replays;
  counters_.journal_reads_replayed += replayed;
}

void ReaderFleet::pump(double now_s) {
  admitted_scratch_.clear();

  // --- phase 1+2: drain, health ladder, validate ---------------------------
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    ReaderSlot& slot = readers_[r];
    drain_scratch_.clear();
    const std::size_t drained = slot.queue->drain(drain_scratch_, now_s);
    slot.drained_total += drained;
    if (drained > 0) {
      slot.last_traffic_s = now_s;
      slot.missed_windows = 0;
      if (slot.health == ReaderHealth::Dead)
        revive(r, now_s);
      else
        slot.health = ReaderHealth::Up;
    } else if (slot.users_assigned > 0 || !slot.link_up) {
      // Silence only counts against a reader that is supposed to be
      // hearing someone (or whose link the supervisor reports down);
      // an idle spare sits at Up indefinitely.
      ++slot.missed_windows;
      if (slot.health != ReaderHealth::Dead) {
        if (slot.missed_windows >= config_.dead_after_windows)
          on_reader_dead(r, now_s);
        else if (slot.missed_windows >= config_.degraded_after_windows)
          slot.health = ReaderHealth::Degraded;
      }
    }
    for (core::TagRead read : drain_scratch_) {
      const auto verdict = slot.validator->admit(read);
      if (verdict.admitted) {
        ++counters_.admitted;
        admitted_scratch_.push_back(AdmittedRead{read, r});
      } else {
        ++counters_.quarantined;
      }
    }
    // Validator LRU evictions are fleet evictions when the evicting
    // reader covers the user: park its window so a later re-admission
    // or rebalance resumes warm.
    for (const std::uint64_t user : slot.validator->take_evicted_users()) {
      const std::size_t* covering = coverage_.find(user);
      if (covering != nullptr && *covering == r) park_user(user);
    }
  }

  // --- phase 3: merge, dedup/handoff, route --------------------------------
  // Stable sort on time: readers were drained in index order, so ties
  // resolve reader-ascending — deterministic for a fixed input.
  std::stable_sort(admitted_scratch_.begin(), admitted_scratch_.end(),
                   [](const AdmittedRead& a, const AdmittedRead& b) {
                     return a.read.time_s < b.read.time_s;
                   });
  for (const AdmittedRead& ar : admitted_scratch_) {
    const std::uint64_t user = ar.read.epc.user_id();
    const core::StreamKey key{user, ar.read.epc.tag_id(), ar.read.antenna_id};
    StreamSource* src = sources_.find(key);
    if (src == nullptr) {
      sources_[key] = StreamSource{ar.reader, ar.read.time_s};
      const std::size_t* cov = coverage_.find(user);
      if (cov == nullptr) {
        set_coverage(user, ar.reader);
      } else if (*cov != ar.reader &&
                 readers_[*cov].health == ReaderHealth::Dead) {
        // Organic failover: the covering reader died (its sources were
        // forgotten) and another reader picked the tag up before the
        // rebalancer got to it.
        set_coverage(user, ar.reader);
        ++counters_.handoffs;
        pending_rebalance_.erase(user);
      }
    } else if (src->reader != ar.reader) {
      if (ar.read.time_s - src->last_time_s < config_.handoff_suppress_s) {
        // Overlap duplicate: both readers heard one inventory round.
        ++counters_.handoff_suppressed;
        continue;
      }
      const std::size_t old_reader = src->reader;
      src->reader = ar.reader;
      src->last_time_s = ar.read.time_s;
      ++counters_.handoffs;
      const std::size_t* cov = coverage_.find(user);
      if (cov == nullptr || *cov == old_reader)
        set_coverage(user, ar.reader);
      pending_rebalance_.erase(user);
    } else {
      src->last_time_s = ar.read.time_s;
    }
    if (!parked_.empty()) {
      if (const core::DemuxState* parked = parked_.find(user)) {
        shards_[shard_of(user)].pipeline->import_user(*parked);
        parked_.erase(user);
        ++counters_.users_restored;
      }
    }
    if (!started_) {
      // Pin every shard to one update grid anchored at the first
      // admitted read fleet-wide (see the determinism contract).
      for (Shard& shard : shards_) shard.pipeline->start_at(ar.read.time_s);
      started_ = true;
    }
    Shard& shard = shards_[shard_of(user)];
    shard.batch.push_back(ar.read);
    ++shard.routed_total;
    ++counters_.routed;
    if (shard.journal != nullptr) shard.journal->append(ar.read);
  }

  // --- phase 4: rebalance backlog ------------------------------------------
  process_rebalances(now_s);

  // --- phase 5: shard execution --------------------------------------------
  execute_shards(now_s);

  // --- phase 6: deterministic merge ----------------------------------------
  merge_and_emit();

  publish_metrics();
}

void ReaderFleet::process_rebalances(double now_s) {
  if (pending_rebalance_.empty()) return;
  std::size_t moved = 0;
  // Sorted snapshot (for_each_ordered contract): the backlog drains in
  // ascending user order, and the per-pump batch bound makes that order
  // output-visible — WHICH users move this pump decides which shards
  // re-admit them — so the order must not depend on table layout.
  for (const std::uint64_t user : pending_rebalance_.sorted_keys()) {
    if (moved >= config_.rebalance_batch) break;
    const double queued_at = *pending_rebalance_.find(user);
    const std::size_t* cov = coverage_.find(user);
    if (cov == nullptr) {
      // User dropped (eviction) while queued — nothing left to move.
      pending_rebalance_.erase(user);
      continue;
    }
    if (readers_[*cov].health != ReaderHealth::Dead) {
      // Covering reader revived (or the user handed off organically).
      pending_rebalance_.erase(user);
      continue;
    }
    // Least-loaded live reader, ties to the lowest index.
    std::size_t target = config_.n_readers;
    for (std::size_t r = 0; r < config_.n_readers; ++r) {
      if (readers_[r].health == ReaderHealth::Dead) continue;
      if (target == config_.n_readers ||
          readers_[r].users_assigned < readers_[target].users_assigned)
        target = r;
    }
    if (target == config_.n_readers) break;  // whole fleet dead: retry later
    if (now_s - queued_at > config_.rebalance_deadline_s)
      ++counters_.rebalance_deadline_misses;
    set_coverage(user, target);
    if (!shards_[shard_of(user)].pipeline->tracks(user))
      restore_user(user, now_s);
    ++counters_.users_rebalanced;
    ++moved;
    pending_rebalance_.erase(user);
  }
  if (moved > 0) ++counters_.rebalances;
}

void ReaderFleet::execute_shards(double now_s) {
  // Latency observation rides the hub's injectable clock; hub->now() is
  // thread-safe, so the striped path observes from worker threads too
  // (the deterministic-clock byte-stability gate runs shards serially,
  // where the call sequence is data-dependent only).
  const auto run = [this, now_s](Shard& shard) {
    const std::size_t index = static_cast<std::size_t>(&shard - &shards_[0]);
    const double t0 = obs_.hub != nullptr ? obs_.hub->now() : 0.0;
    for (const core::TagRead& read : shard.batch) shard.pipeline->push(read);
    shard.batch.clear();
    shard.pipeline->advance_to(now_s);
    if (obs_.hub != nullptr)
      obs_.shard_update_seconds[index]->observe(obs_.hub->now() - t0);
  };
  if (config_.shard_threads == 0 || shards_.size() <= 1) {
    for (Shard& shard : shards_) run(shard);
  } else {
    const std::size_t n_threads =
        std::min(config_.shard_threads, shards_.size());
    std::vector<std::thread> workers;
    workers.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) {
      workers.emplace_back([this, t, n_threads, &run] {
        for (std::size_t s = t; s < shards_.size(); s += n_threads)
          run(shards_[s]);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  // Journal commits stay on the coordinator thread: appends (phase 3)
  // and commits never race the shard workers.
  for (Shard& shard : shards_) {
    if (shard.journal != nullptr) shard.journal->maybe_commit(now_s);
  }
}

void ReaderFleet::merge_and_emit() {
  merge_scratch_.clear();
  for (Shard& shard : shards_) {
    merge_scratch_.insert(merge_scratch_.end(), shard.pending.begin(),
                          shard.pending.end());
    shard.pending.clear();
  }
  // (time, user) order: a user lives on exactly one shard, so ties on
  // both keys come from one shard's pending vector and stable_sort
  // preserves its emission order — the merged stream is independent of
  // shard count and shard threading.
  std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                   [](const FleetEvent& a, const FleetEvent& b) {
                     if (a.event.time_s != b.event.time_s)
                       return a.event.time_s < b.event.time_s;
                     return a.event.user_id < b.event.user_id;
                   });
  const bool alarm_only = config_.alarm_only_above_users > 0 &&
                          tracked_users() > config_.alarm_only_above_users;
  for (const FleetEvent& fe : merge_scratch_) {
    if (alarm_only &&
        fe.event.kind == core::PipelineEventKind::RateUpdate) {
      ++counters_.rate_updates_suppressed;
      continue;
    }
    ++counters_.events;
    if (callback_) callback_(fe);
  }
}

void ReaderFleet::bind_observability(obs::Observability& hub) {
  obs::MetricsRegistry& m = hub.metrics();
  obs_.hub = &hub;
  obs_.reader_health.resize(readers_.size());
  obs_.reader_users.resize(readers_.size());
  obs_.reader_reads.resize(readers_.size());
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    const std::string label = index_label('r', 3, r);
    obs_.reader_health[r] = &m.gauge("fleet_reader_health", "reader", label);
    obs_.reader_users[r] = &m.gauge("fleet_reader_users", "reader", label);
    obs_.reader_reads[r] =
        &m.counter("fleet_reader_reads_total", "reader", label);
  }
  obs_.shard_users.resize(shards_.size());
  obs_.shard_routed.resize(shards_.size());
  obs_.shard_update_seconds.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string label = index_label('s', 2, s);
    obs_.shard_users[s] = &m.gauge("fleet_shard_users", "shard", label);
    obs_.shard_routed[s] =
        &m.counter("fleet_shard_routed_total", "shard", label);
    obs_.shard_update_seconds[s] =
        &m.histogram("fleet_shard_update_latency_seconds",
                     obs::default_latency_bounds(), "shard", label);
  }
  obs_.admitted = &m.counter("fleet_admitted_total");
  obs_.quarantined = &m.counter("fleet_quarantined_total");
  obs_.handoffs = &m.counter("fleet_handoffs_total");
  obs_.suppressed = &m.counter("fleet_handoff_suppressed_total");
  obs_.readers_died = &m.counter("fleet_readers_died_total");
  obs_.readers_revived = &m.counter("fleet_readers_revived_total");
  obs_.users_rebalanced = &m.counter("fleet_users_rebalanced_total");
  obs_.deadline_misses = &m.counter("fleet_rebalance_deadline_misses_total");
  obs_.events = &m.counter("fleet_events_total");
  obs_.pending_rebalance = &m.gauge("fleet_pending_rebalances");
  publish_metrics();
}

void ReaderFleet::publish_metrics() {
  if (obs_.hub == nullptr) return;
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    obs_.reader_health[r]->set(static_cast<double>(readers_[r].health));
    obs_.reader_users[r]->set(
        static_cast<double>(readers_[r].users_assigned));
    obs_.reader_reads[r]->set(readers_[r].drained_total);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    obs_.shard_users[s]->set(
        static_cast<double>(shards_[s].pipeline->tracked_users()));
    obs_.shard_routed[s]->set(shards_[s].routed_total);
  }
  obs_.admitted->set(counters_.admitted);
  obs_.quarantined->set(counters_.quarantined);
  obs_.handoffs->set(counters_.handoffs);
  obs_.suppressed->set(counters_.handoff_suppressed);
  obs_.readers_died->set(counters_.readers_died);
  obs_.readers_revived->set(counters_.readers_revived);
  obs_.users_rebalanced->set(counters_.users_rebalanced);
  obs_.deadline_misses->set(counters_.rebalance_deadline_misses);
  obs_.events->set(counters_.events);
  obs_.pending_rebalance->set(
      static_cast<double>(pending_rebalance_.size()));
}

}  // namespace tagbreathe::fleet
