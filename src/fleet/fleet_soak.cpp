#include "fleet/fleet_soak.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace tagbreathe::fleet {

namespace {

constexpr std::size_t kMaxViolations = 50;

void add_violation(std::vector<std::string>& violations, std::string line) {
  if (violations.size() < kMaxViolations) {
    violations.push_back(std::move(line));
  } else if (violations.size() == kMaxViolations) {
    violations.push_back("... further violations suppressed");
  }
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_line(std::uint64_t hash, const std::string& line) {
  for (const char c : line) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  hash ^= static_cast<std::uint8_t>('\n');
  hash *= kFnvPrime;
  return hash;
}

}  // namespace

void FleetSoakConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("FleetSoakConfig: " + what);
  };
  if (n_readers == 0) bad("n_readers must be positive");
  if (n_users == 0) bad("n_users must be positive");
  if (tags_per_user == 0) bad("tags_per_user must be positive");
  if (!(duration_s > 0.0) || !std::isfinite(duration_s))
    bad("duration_s must be positive and finite");
  if (!(read_rate_hz > 0.0) || !std::isfinite(read_rate_hz))
    bad("read_rate_hz must be positive and finite");
  if (!(pump_period_s > 0.0) || !std::isfinite(pump_period_s))
    bad("pump_period_s must be positive and finite");
  if (roaming_users > n_users) bad("roaming_users exceeds n_users");
  if (roaming_users > 0 &&
      (!(roam_period_s > 0.0) || !std::isfinite(roam_period_s)))
    bad("roam_period_s must be positive and finite");
  for (const core::ReaderChaosConfig& rc : reader_chaos) {
    rc.validate();
    if (rc.reader >= n_readers)
      bad("reader_chaos entry names reader beyond n_readers");
  }
}

FleetSoakReport run_fleet_soak(const FleetSoakConfig& config) {
  config.validate();
  FleetSoakReport report;
  report.event_log_hash = kFnvOffset;

  std::vector<std::uint64_t> roster;
  roster.reserve(config.n_users);
  for (std::size_t u = 0; u < config.n_users; ++u)
    roster.push_back(static_cast<std::uint64_t>(u + 1));

  FleetConfig fc = config.fleet;
  fc.n_readers = config.n_readers;
  if (fc.ingest.monitored_users.empty()) fc.ingest.monitored_users = roster;

  // --- merged-event sink + invariants --------------------------------------
  double last_event_s = -std::numeric_limits<double>::infinity();
  std::vector<double> last_rate(config.n_users + 1,
                                -std::numeric_limits<double>::infinity());
  ReaderFleet fleet(fc, [&](const FleetEvent& fe) {
    const core::PipelineEvent& event = fe.event;
    ++report.events;
    if (event.time_s < last_event_s)
      add_violation(report.violations, "non-monotonic merged event time at t=" +
                                          std::to_string(event.time_s));
    last_event_s = std::max(last_event_s, event.time_s);
    report.last_event_time_s = last_event_s;
    if (!std::binary_search(roster.begin(), roster.end(), event.user_id))
      add_violation(report.violations,
                    "event for unadmitted user " +
                        std::to_string(event.user_id) +
                        " (quarantine breached)");
    if (event.kind == core::PipelineEventKind::RateUpdate &&
        event.user_id <= config.n_users)
      last_rate[event.user_id] = event.time_s;
    const std::string line = core::format_soak_event(event);
    report.event_log_hash = fnv1a_line(report.event_log_hash, line);
    if (config.record_event_log) report.event_log.push_back(line);
    if (config.event_tap) config.event_tap(fe);
  });
  if (config.observability != nullptr)
    fleet.bind_observability(*config.observability);

  // --- per-reader chaos ----------------------------------------------------
  std::vector<std::unique_ptr<core::ReaderChaos>> chaos(config.n_readers);
  for (const core::ReaderChaosConfig& rc : config.reader_chaos)
    chaos[rc.reader] = std::make_unique<core::ReaderChaos>(rc);
  const auto offline = [&](std::size_t reader, double t) {
    return chaos[reader] != nullptr && chaos[reader]->offline(t);
  };

  // --- clean population (same generator as the single-reader soaks) -------
  core::SoakConfig pop;
  pop.n_users = config.n_users;
  pop.tags_per_user = config.tags_per_user;
  pop.duration_s = config.duration_s;
  pop.read_rate_hz = config.read_rate_hz;
  pop.base_rate_bpm = config.base_rate_bpm;
  const core::ReadStream clean = core::make_soak_population(pop);

  // --- roaming script ------------------------------------------------------
  const auto scripted_reader = [&](std::uint64_t user,
                                   double t) -> std::size_t {
    const std::size_t home =
        static_cast<std::size_t>(user - 1) % config.n_readers;
    if (user - 1 < config.roaming_users) {
      const auto hops = static_cast<std::size_t>(t / config.roam_period_s);
      return (home + hops) % config.n_readers;
    }
    return home;
  };
  struct RoamState {
    std::size_t reader = 0;
    std::size_t prev = 0;
    std::size_t overlap_left = 0;
  };
  std::vector<RoamState> roam(config.n_users + 1);
  for (std::size_t u = 1; u <= config.n_users; ++u) {
    roam[u].reader = scripted_reader(u, 0.0);
    roam[u].prev = roam[u].reader;
  }

  // --- drive ---------------------------------------------------------------
  std::vector<core::TagRead> delivered;
  std::size_t all_dark_dropped = 0;
  const auto deliver_to = [&](std::size_t reader, const core::TagRead& read,
                              double now_s) {
    delivered.clear();
    if (chaos[reader] != nullptr) {
      chaos[reader]->feed(read, delivered);
    } else {
      delivered.push_back(read);
    }
    for (const core::TagRead& d : delivered) fleet.offer(reader, d, now_s);
  };
  const auto do_pump = [&](double t) {
    for (std::size_t r = 0; r < config.n_readers; ++r)
      fleet.probe_reader(r, !offline(r, t), t);
    fleet.pump(t);
    if (config.pump_tap) config.pump_tap(t);
  };

  double next_pump = config.pump_period_s;
  for (const core::TagRead& read : clean) {
    while (read.time_s >= next_pump) {
      do_pump(next_pump);
      next_pump += config.pump_period_s;
    }
    const std::uint64_t user = read.epc.user_id();
    const std::size_t scripted = scripted_reader(user, read.time_s);
    RoamState& rs = roam[user];
    if (scripted != rs.reader) {
      rs.prev = rs.reader;
      rs.reader = scripted;
      rs.overlap_left = config.roam_overlap_reads;
    }
    // Physical failover: antennas overlap, so a tag scripted to an
    // offline reader is heard by the next live one instead.
    std::size_t target = scripted;
    for (std::size_t probed = 0;
         probed < config.n_readers && offline(target, read.time_s); ++probed)
      target = (target + 1) % config.n_readers;
    if (offline(target, read.time_s)) {
      ++all_dark_dropped;  // whole fleet dark
      continue;
    }
    deliver_to(target, read, read.time_s);
    if (rs.overlap_left > 0) {
      --rs.overlap_left;
      // Overlap zone: the previous reader still hears the tag for the
      // first few reads after a hop — duplicate delivery.
      if (rs.prev != target && !offline(rs.prev, read.time_s))
        deliver_to(rs.prev, read, read.time_s);
    }
  }
  for (std::size_t r = 0; r < config.n_readers; ++r) {
    if (chaos[r] == nullptr) continue;
    delivered.clear();
    chaos[r]->flush(delivered);
    for (const core::TagRead& d : delivered)
      fleet.offer(r, d, config.duration_s);
  }
  do_pump(config.duration_s);

  // --- post-run invariants -------------------------------------------------
  report.counters = fleet.counters();
  report.outage_dropped = all_dark_dropped;
  std::size_t sum_drained = 0;
  for (std::size_t r = 0; r < config.n_readers; ++r) {
    if (chaos[r] != nullptr)
      report.outage_dropped += chaos[r]->outage_dropped();
    const core::IngestQueueCounters queue = fleet.reader_queue_counters(r);
    sum_drained += queue.drained;
    core::append_queue_invariant_violations(
        queue, fc.ingest.queue_capacity, report.violations,
        "reader " + std::to_string(r) + ": ");
  }
  if (sum_drained !=
      report.counters.admitted + report.counters.quarantined)
    add_violation(report.violations,
                  "fleet admission conservation broken: drained=" +
                      std::to_string(sum_drained) + " admitted=" +
                      std::to_string(report.counters.admitted) +
                      " quarantined=" +
                      std::to_string(report.counters.quarantined));
  if (report.counters.admitted !=
      report.counters.routed + report.counters.handoff_suppressed)
    add_violation(report.violations,
                  "fleet routing conservation broken: admitted=" +
                      std::to_string(report.counters.admitted) + " routed=" +
                      std::to_string(report.counters.routed) +
                      " suppressed=" +
                      std::to_string(report.counters.handoff_suppressed));
  if (report.counters.rebalance_deadline_misses > 0)
    add_violation(report.violations,
                  "rebalance deadline missed " +
                      std::to_string(
                          report.counters.rebalance_deadline_misses) +
                      " times");
  bool any_alive = false;
  for (std::size_t r = 0; r < config.n_readers; ++r)
    any_alive = any_alive || fleet.reader_health(r) != ReaderHealth::Dead;
  if (any_alive && fleet.pending_rebalances() > 0)
    add_violation(report.violations,
                  "rebalance backlog not drained: " +
                      std::to_string(fleet.pending_rebalances()) +
                      " users still pending");

  // No admitted user silently lost: every roster user still produced a
  // RateUpdate in the final tail window. Only meaningful once the run
  // is long enough to warm up and when alarm-only mode never engaged.
  const double tail_start = config.duration_s -
                            3.0 * fc.pipeline.update_period_s -
                            config.pump_period_s;
  if (tail_start > fc.pipeline.warmup_s &&
      report.counters.rate_updates_suppressed == 0) {
    for (std::size_t u = 1; u <= config.n_users; ++u) {
      if (last_rate[u] < tail_start)
        add_violation(
            report.violations,
            "user " + std::to_string(u) + " lost: last rate update at t=" +
                std::to_string(last_rate[u]) + " (tail starts t=" +
                std::to_string(tail_start) + ")");
    }
  }

  return report;
}

}  // namespace tagbreathe::fleet
