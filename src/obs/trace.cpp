#include "obs/trace.hpp"

#include <stdexcept>

namespace tagbreathe::obs {

const char* span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::Enter: return "enter";
    case SpanKind::Exit: return "exit";
    case SpanKind::Instant: return "instant";
    default: return "unknown-kind";
  }
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("obs: trace ring capacity must be positive");
  ring_.resize(capacity_);
}

std::uint16_t TraceRing::register_stage(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i] == name) return static_cast<std::uint16_t>(i);
  }
  if (stages_.size() >= 0xFFFF)
    throw std::length_error("obs: trace stage table full");
  stages_.emplace_back(name);
  return static_cast<std::uint16_t>(stages_.size() - 1);
}

void TraceRing::record(std::uint16_t stage, SpanKind kind, double time_s,
                       std::uint64_t value) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t slot;
  if (size_ < capacity_) {
    slot = size_;
    ++size_;
  } else {
    slot = head_;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  ring_[slot] = TraceEvent{stage, kind, time_s, value};
}

TraceSnapshot TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceSnapshot snap;
  snap.stages = stages_;
  snap.dropped = dropped_;
  snap.capacity = capacity_;
  snap.events.reserve(size_);
  // Oldest first: once the ring has wrapped, the oldest slot is head_.
  const std::size_t start = size_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < size_; ++i)
    snap.events.push_back(ring_[(start + i) % capacity_]);
  return snap;
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace tagbreathe::obs
