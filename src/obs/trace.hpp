// Lightweight structured trace: a bounded ring of span events (stage
// enter/exit/instant) stamped with *stream time*, the same injected
// clock that drives the pipeline. Stream-time stamps keep traces
// deterministic under the replay clock — two runs of one seeded
// scenario produce byte-identical trace exports (the golden-snapshot
// test relies on this; parallel analysis fan-out interleaves worker
// events nondeterministically, so determinism gates run serial).
//
// Hot-path rules: stage *registration* allocates (the string table and
// ring are sized up front); record() is a short mutex hold writing one
// fixed-size slot, never allocating. A full ring overwrites the oldest
// event and counts the overwrite in dropped() rather than growing or
// silently losing the fact.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tagbreathe::obs {

enum class SpanKind : std::uint8_t { Enter = 0, Exit = 1, Instant = 2 };

const char* span_kind_name(SpanKind kind) noexcept;

struct TraceEvent {
  std::uint16_t stage = 0;  // index from TraceRing::register_stage
  SpanKind kind = SpanKind::Instant;
  double time_s = 0.0;      // stream time
  std::uint64_t value = 0;  // free-form detail (user id, fan-out size)
};

struct TraceSnapshot {
  std::vector<std::string> stages;  // index = TraceEvent::stage
  std::vector<TraceEvent> events;   // oldest first
  std::uint64_t dropped = 0;        // events overwritten by ring wrap
  std::size_t capacity = 0;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Find-or-create a stage id for `name` (wiring time; allocates).
  std::uint16_t register_stage(std::string_view name);

  /// Appends one event (any thread; allocation-free). Unregistered
  /// stage ids are recorded as-is and render as "?" in exports.
  void record(std::uint16_t stage, SpanKind kind, double time_s,
              std::uint64_t value = 0) noexcept;
  void enter(std::uint16_t stage, double time_s,
             std::uint64_t value = 0) noexcept {
    record(stage, SpanKind::Enter, time_s, value);
  }
  void exit(std::uint16_t stage, double time_s,
            std::uint64_t value = 0) noexcept {
    record(stage, SpanKind::Exit, time_s, value);
  }

  TraceSnapshot snapshot() const;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  // preallocated to capacity_
  std::size_t head_ = 0;          // next write slot once full
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> stages_;
};

}  // namespace tagbreathe::obs
