// The unified observability hub: one MetricsRegistry + one TraceRing +
// the latency clock, bundled so a component binds to a single object
// (`bind_observability(obs&)`) and tests swap the whole surface in one
// move.
//
// The clock: stage-latency histograms need durations, but wall-clock
// durations would make exported snapshots nondeterministic under the
// replay clock. now() is therefore injectable — production uses the
// default steady_clock, determinism tests install a counting clock
// (use_deterministic_clock) whose reading advances a fixed step per
// call, making every recorded duration a pure function of the call
// sequence. Trace events are always stamped with *stream time* passed
// by the caller and never consult this clock.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tagbreathe::obs {

struct ObservabilitySnapshot {
  MetricsSnapshot metrics;
  TraceSnapshot trace;
};

class Observability {
 public:
  /// `trace_capacity`: bounded span-event ring size.
  explicit Observability(std::size_t trace_capacity = 4096);
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  TraceRing& trace() noexcept { return trace_; }
  const TraceRing& trace() const noexcept { return trace_; }

  /// Latency clock reading [seconds]. Thread-safe; allocation-free.
  double now() const { return clock_(); }

  /// Replaces the latency clock (wiring time only — not while
  /// instrumented code is running). The callable must be thread-safe.
  void set_clock(std::function<double()> clock);

  /// Installs a deterministic counting clock: each now() call advances
  /// the reading by `step_s`. With a serial (single-threaded) pipeline
  /// the call sequence is data-dependent only, so latency histograms
  /// become byte-stable across runs — the golden-snapshot determinism
  /// test runs under this clock.
  void use_deterministic_clock(double step_s = 1e-6);

  /// Consistent-enough point-in-time copy of metrics + trace (each side
  /// is internally consistent; the two are read back to back).
  ObservabilitySnapshot snapshot() const;

  /// Process-wide default hub (examples and ad-hoc tooling; libraries
  /// take an explicit hub so tests stay isolated).
  static Observability& global();

 private:
  MetricsRegistry metrics_;
  TraceRing trace_;
  std::function<double()> clock_;
};

}  // namespace tagbreathe::obs
