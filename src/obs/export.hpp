// Snapshot exporters: Prometheus text exposition format and JSON.
//
// Both render from a plain ObservabilitySnapshot (never from live
// instruments), so an export is a pure function of the snapshot and two
// identical snapshots serialize byte-identically — the golden
// determinism test compares whole exports with ==. Doubles are
// formatted with a fixed "%.9g" everywhere; sample order is the
// registry's sorted (name, label) order.
//
// Prometheus output carries the metrics plus the trace ring's health
// (event count + drop counter) as synthetic gauges; the individual
// trace events are exported by the JSON form only (a scrape endpoint
// has no business shipping a span log).
#pragma once

#include <string>

#include "obs/observability.hpp"

namespace tagbreathe::obs {

/// Prometheus text exposition format (one # TYPE line per family,
/// histogram as _bucket/_sum/_count with cumulative le buckets).
std::string to_prometheus(const ObservabilitySnapshot& snapshot);

/// JSON: {"counters": [...], "gauges": [...], "histograms": [...],
/// "trace": {"capacity", "dropped", "events": [...]}}.
std::string to_json(const ObservabilitySnapshot& snapshot);

/// Fixed deterministic rendering of one double ("%.9g").
std::string format_double(double value);

}  // namespace tagbreathe::obs
