#include "obs/observability.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace tagbreathe::obs {

namespace {

double steady_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

}  // namespace

Observability::Observability(std::size_t trace_capacity)
    : trace_(trace_capacity), clock_(&steady_seconds) {}

void Observability::set_clock(std::function<double()> clock) {
  if (!clock) throw std::invalid_argument("obs: clock must be callable");
  clock_ = std::move(clock);
}

void Observability::use_deterministic_clock(double step_s) {
  auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
  set_clock([ticks, step_s]() {
    return step_s *
           static_cast<double>(ticks->fetch_add(1, std::memory_order_relaxed));
  });
}

ObservabilitySnapshot Observability::snapshot() const {
  ObservabilitySnapshot snap;
  snap.metrics = metrics_.snapshot();
  snap.trace = trace_.snapshot();
  return snap;
}

Observability& Observability::global() {
  static Observability instance;
  return instance;
}

}  // namespace tagbreathe::obs
