#include "obs/export.hpp"

#include <cstdio>

namespace tagbreathe::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Minimal JSON string escape: the names are charset-validated and the
// label values are our own enum names, but a stray quote must not be
// able to break the document.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Label-value escaping per the Prometheus text exposition format:
// backslash, double quote and line feed must appear as \\, \" and \n
// inside a quoted label value. Label *names* are charset-validated at
// registration; values are free-form (a hostname or ward name can
// legally carry any of the three).
void append_prom_label_value(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// `name{key="value"}` (or bare name), with an optional extra `le` pair
// for histogram buckets.
void append_prom_series(std::string& out, const std::string& name,
                        const char* suffix, const std::string& label_key,
                        const std::string& label_value, const char* le) {
  out += name;
  out += suffix;
  const bool labelled = !label_key.empty();
  if (labelled || le != nullptr) {
    out += '{';
    if (labelled) {
      out += label_key;
      out += "=\"";
      append_prom_label_value(out, label_value);
      out += '"';
      if (le != nullptr) out += ',';
    }
    if (le != nullptr) {
      out += "le=\"";
      out += le;
      out += '"';
    }
    out += '}';
  }
  out += ' ';
}

void append_prom_type(std::string& out, std::string& last_family,
                      const std::string& name, const char* type) {
  if (name == last_family) return;  // one TYPE line per family
  last_family = name;
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

std::string to_prometheus(const ObservabilitySnapshot& snapshot) {
  std::string out;
  std::string family;
  for (const CounterSample& c : snapshot.metrics.counters) {
    append_prom_type(out, family, c.name, "counter");
    append_prom_series(out, c.name, "", c.label_key, c.label_value, nullptr);
    append_u64(out, c.value);
    out += '\n';
  }
  for (const GaugeSample& g : snapshot.metrics.gauges) {
    append_prom_type(out, family, g.name, "gauge");
    append_prom_series(out, g.name, "", g.label_key, g.label_value, nullptr);
    out += format_double(g.value);
    out += '\n';
  }
  for (const HistogramSample& h : snapshot.metrics.histograms) {
    append_prom_type(out, family, h.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      append_prom_series(out, h.name, "_bucket", h.label_key, h.label_value,
                         format_double(h.bounds[i]).c_str());
      append_u64(out, cumulative);
      out += '\n';
    }
    append_prom_series(out, h.name, "_bucket", h.label_key, h.label_value,
                       "+Inf");
    append_u64(out, h.count);
    out += '\n';
    append_prom_series(out, h.name, "_sum", h.label_key, h.label_value,
                       nullptr);
    out += format_double(h.sum);
    out += '\n';
    append_prom_series(out, h.name, "_count", h.label_key, h.label_value,
                       nullptr);
    append_u64(out, h.count);
    out += '\n';
  }
  // Trace ring health: enough for an alert on span loss without
  // shipping the span log through a scrape.
  out += "# TYPE obs_trace_events gauge\nobs_trace_events ";
  append_u64(out, snapshot.trace.events.size());
  out += "\n# TYPE obs_trace_dropped_total counter\nobs_trace_dropped_total ";
  append_u64(out, snapshot.trace.dropped);
  out += '\n';
  return out;
}

std::string to_json(const ObservabilitySnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const CounterSample& c : snapshot.metrics.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_string(out, c.name);
    if (!c.label_key.empty()) {
      out += ", ";
      append_json_string(out, c.label_key);
      out += ": ";
      append_json_string(out, c.label_value);
    }
    out += ", \"value\": ";
    append_u64(out, c.value);
    out += '}';
  }
  out += "\n  ],\n  \"gauges\": [";
  first = true;
  for (const GaugeSample& g : snapshot.metrics.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_string(out, g.name);
    if (!g.label_key.empty()) {
      out += ", ";
      append_json_string(out, g.label_key);
      out += ": ";
      append_json_string(out, g.label_value);
    }
    out += ", \"value\": ";
    out += format_double(g.value);
    out += '}';
  }
  out += "\n  ],\n  \"histograms\": [";
  first = true;
  for (const HistogramSample& h : snapshot.metrics.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_string(out, h.name);
    if (!h.label_key.empty()) {
      out += ", ";
      append_json_string(out, h.label_key);
      out += ": ";
      append_json_string(out, h.label_value);
    }
    out += ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += format_double(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      append_u64(out, h.counts[i]);
    }
    out += "], \"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    out += format_double(h.sum);
    out += '}';
  }
  out += "\n  ],\n  \"trace\": {\"capacity\": ";
  append_u64(out, snapshot.trace.capacity);
  out += ", \"dropped\": ";
  append_u64(out, snapshot.trace.dropped);
  out += ", \"events\": [";
  first = true;
  for (const TraceEvent& e : snapshot.trace.events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"stage\": ";
    append_json_string(out, e.stage < snapshot.trace.stages.size()
                                ? snapshot.trace.stages[e.stage]
                                : std::string("?"));
    out += ", \"kind\": \"";
    out += span_kind_name(e.kind);
    out += "\", \"t\": ";
    out += format_double(e.time_s);
    out += ", \"value\": ";
    append_u64(out, e.value);
    out += '}';
  }
  out += "\n  ]}\n}\n";
  return out;
}

}  // namespace tagbreathe::obs
