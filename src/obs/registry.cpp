#include "obs/registry.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace tagbreathe::obs {

namespace {

bool name_char_ok(char c, bool first) noexcept {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':')
    return true;
  return !first && c >= '0' && c <= '9';
}

void check_name(std::string_view name) {
  if (name.empty())
    throw std::invalid_argument("obs: metric name must not be empty");
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (!name_char_ok(name[i], i == 0))
      throw std::invalid_argument("obs: metric name '" + std::string(name) +
                                  "' violates [a-zA-Z_:][a-zA-Z0-9_:]*");
  }
}

}  // namespace

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  if (bounds_.empty())
    throw std::invalid_argument("obs: histogram needs at least one bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]))
      throw std::invalid_argument("obs: histogram bounds must be finite");
    if (i > 0 && !(bounds_[i] > bounds_[i - 1]))
      throw std::invalid_argument(
          "obs: histogram bounds must be strictly ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(buckets());
  for (std::size_t i = 0; i < buckets(); ++i) counts_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  std::size_t bucket = bounds_.size();  // +Inf overflow (also takes NaN)
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (!std::isnan(value)) sum_.fetch_add(value, std::memory_order_relaxed);
}

std::span<const double> default_latency_bounds() noexcept {
  static constexpr std::array<double, 12> kBounds = {
      1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0};
  return kBounds;
}

// --- MetricsRegistry -------------------------------------------------------

struct MetricsRegistry::Entry {
  enum Kind { kCounter = 0, kGauge = 1, kHistogram = 2 };
  std::string name;
  std::string label_key;
  std::string label_value;
  int kind = kCounter;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, std::string_view label_key,
    std::string_view label_value, int kind) {
  check_name(name);
  if (label_key.empty() != label_value.empty())
    throw std::invalid_argument(
        "obs: label key and value must be set together");
  if (!label_key.empty()) check_name(label_key);
  auto key = std::make_tuple(std::string(name), std::string(label_key),
                             std::string(label_value));
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& entry = *it->second;
    if (entry.kind != kind)
      throw std::invalid_argument("obs: metric '" + std::string(name) +
                                  "' already registered as a different kind");
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->label_key = std::string(label_key);
  entry->label_value = std::string(label_value);
  entry->kind = kind;
  Entry& ref = *entry;
  entries_.emplace(std::move(key), std::move(entry));
  return ref;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view label_key,
                                  std::string_view label_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(name, label_key, label_value, Entry::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              std::string_view label_key,
                              std::string_view label_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(name, label_key, label_value, Entry::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds,
                                      std::string_view label_key,
                                      std::string_view label_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry =
      find_or_create(name, label_key, label_value, Entry::kHistogram);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(bounds);
  } else if (!std::equal(bounds.begin(), bounds.end(),
                         entry.histogram->bounds().begin(),
                         entry.histogram->bounds().end())) {
    throw std::invalid_argument("obs: histogram '" + std::string(name) +
                                "' re-registered with different bounds");
  }
  return *entry.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [key, entry] : entries_) {
    switch (entry->kind) {
      case Entry::kCounter:
        snap.counters.push_back(CounterSample{entry->name, entry->label_key,
                                              entry->label_value,
                                              entry->counter.value()});
        break;
      case Entry::kGauge:
        snap.gauges.push_back(GaugeSample{entry->name, entry->label_key,
                                          entry->label_value,
                                          entry->gauge.value()});
        break;
      case Entry::kHistogram: {
        const Histogram& h = *entry->histogram;
        HistogramSample sample;
        sample.name = entry->name;
        sample.label_key = entry->label_key;
        sample.label_value = entry->label_value;
        sample.bounds = h.bounds();
        sample.counts.reserve(h.buckets());
        for (std::size_t i = 0; i < h.buckets(); ++i)
          sample.counts.push_back(h.bucket_count(i));
        sample.count = h.count();
        sample.sum = h.sum();
        snap.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace tagbreathe::obs
