// Process-wide metrics registry: the counter/gauge/histogram spine the
// runtime surfaces hang off (ISSUE 5; the serving-stack observability
// the ROADMAP's production north-star requires).
//
// Contract, enforced throughout:
//
// - Registration (counter()/gauge()/histogram()) is find-or-create
//   under a mutex and may allocate; it happens once, at wiring time.
// - Instrument *updates* (Counter::add, Gauge::set, Histogram::observe)
//   are lock-free relaxed atomics on stable storage and never allocate,
//   so they are safe on the pipeline hot path (the counting-operator-new
//   gate in test_analysis_engine asserts this) and from any thread (the
//   TSan `concurrency` suite hammers them).
// - snapshot() copies every instrument's current value under the
//   registration mutex into plain structs, sorted by (name, label), so
//   exports are deterministic for deterministic inputs.
//
// Names must match the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*.
// One optional label pair per instrument covers the fleet's needs
// (quarantine reason, analysis stage, reader/shard index) without
// dragging in a full label-set model. Instruments are keyed by the full
// (name, label_key, label_value) triple, so one family may carry series
// under different label keys (`fleet_reads_total{reader=...}` next to
// `fleet_reads_total{shard=...}`) and multi-label scrapes stay
// byte-stable: snapshot order is the triple's lexicographic order,
// independent of registration order or thread interleaving.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace tagbreathe::obs {

/// Monotonic event count. set() exists for migration of pre-existing
/// counter structs (core/metrics DurabilityCounters) that stay the
/// source of truth and are mirrored onto the registry at pump cadence.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, tracked users).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket distribution with Prometheus `le` semantics: a value
/// lands in the first bucket whose upper bound is >= the value, or in
/// the implicit +Inf overflow bucket past the last bound. Bounds are
/// fixed at registration; observe() is a linear scan (bucket counts are
/// small) plus two relaxed atomics — allocation-free and thread-safe.
/// NaN observations are counted in the overflow bucket and excluded
/// from the sum so one poisoned sample cannot erase the distribution.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double value) noexcept;

  std::size_t buckets() const noexcept { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;  // ascending, finite, unique
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default upper bounds for latency-shaped histograms [seconds].
std::span<const double> default_latency_bounds() noexcept;

// --- snapshot-on-read ------------------------------------------------------

struct CounterSample {
  std::string name;
  std::string label_key;    // empty = unlabelled
  std::string label_value;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string label_key;
  std::string label_value;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string label_key;
  std::string label_value;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Plain-struct copy of every registered instrument, sorted by
/// (name, label_key, label_value): deterministic input => byte-stable
/// exports.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricsRegistry {
 public:
  // Out of line: Entry is incomplete here, so every special member that
  // could instantiate the entry map's node machinery must live in the
  // .cpp, after Entry's definition.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference is stable for the life of
  /// the registry. Throws std::invalid_argument on a malformed name or
  /// when the name is already registered as a different kind (or, for
  /// histograms, with different bounds).
  Counter& counter(std::string_view name, std::string_view label_key = {},
                   std::string_view label_value = {});
  Gauge& gauge(std::string_view name, std::string_view label_key = {},
               std::string_view label_value = {});
  Histogram& histogram(std::string_view name, std::span<const double> bounds,
                       std::string_view label_key = {},
                       std::string_view label_value = {});

  MetricsSnapshot snapshot() const;
  std::size_t size() const;

 private:
  struct Entry;
  Entry& find_or_create(std::string_view name, std::string_view label_key,
                        std::string_view label_value, int kind);

  mutable std::mutex mutex_;
  // Keyed by the full (name, label_key, label_value) triple: map
  // iteration gives the sorted snapshot order for free, two label keys
  // under one family never collide, and unique_ptr keeps instrument
  // addresses stable across map growth.
  using Key = std::tuple<std::string, std::string, std::string>;
  std::map<Key, std::unique_ptr<Entry>> entries_;
};

}  // namespace tagbreathe::obs
