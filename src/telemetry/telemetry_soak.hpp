// Subscriber-chaos soak (ISSUE 7 acceptance harness).
//
// Runs the ISSUE-6 fleet chaos soak twice: once bare (baseline), once
// with a TelemetryService tapped onto the merged event stream and a
// population of TelemetryClients in four behaviour classes — healthy
// (drain every pump, heartbeat on time), slow (drain every Nth pump so
// their queues overflow), flapping (go silent in scripted windows, get
// reaped by the heartbeat timeout, redial with their resume cursor) and
// dead (stop stepping mid-run, never return). Gates:
//
// - non-interference: the tapped run's merged event-log hash and fleet
//   counters are byte-identical to the baseline — 10k misbehaving
//   subscribers cannot perturb the monitoring pipeline;
// - conservation, per subscription ever created:
//   published == delivered + dropped + coalesced after final shutdown
//   (queued spills into dropped), and in aggregate
//   bus.events_published == fleet events;
// - ordering: no client ever observes a non-increasing sequence
//   (replays and redials included);
// - liveness: every healthy subscriber ends Streaming and fully caught
//   up (cursor == bus last_seq).
//
// Everything is stream-time driven and seeded: two runs of the same
// config produce identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet_soak.hpp"
#include "telemetry/client.hpp"
#include "telemetry/service.hpp"

namespace tagbreathe::telemetry {

struct SubscriberSoakConfig {
  /// The chaos-injected fleet scenario (taps must be left empty; the
  /// harness owns them).
  fleet::FleetSoakConfig fleet{};
  TelemetryServiceConfig service{};
  std::size_t n_subscribers = 1000;
  /// Ward filter granularity: users [1..users_per_ward] are ward 0, ...
  std::size_t users_per_ward = 8;
  /// Behaviour classes by subscriber index (0 disables a class).
  /// Priority when indices collide: dead > flapping > slow.
  std::size_t slow_every = 7;
  std::size_t flapping_every = 11;
  std::size_t dead_every = 13;
  /// Slow subscribers step only every Nth pump.
  std::size_t slow_stride = 4;
  /// Dead subscribers stop stepping at this fraction of the run.
  double dead_at_fraction = 0.4;
  /// Flapping window script: active for flap_on_s out of every
  /// flap_period_s. The off window must exceed the service heartbeat
  /// timeout or flappers are never reaped.
  double flap_period_s = 12.0;
  double flap_on_s = 5.0;
  double client_heartbeat_period_s = 1.0;
  std::uint64_t seed = 42;
  /// Run the bare fleet soak first and gate hash equality (costs a
  /// second fleet run; turn off for benchmarks).
  bool verify_baseline = true;
  /// Optional hub for the tapped run (service + fleet bind to it).
  obs::Observability* observability = nullptr;

  void validate() const;
};

struct SubscriberSoakReport {
  /// The tapped run's fleet report (hash, counters, violations).
  fleet::FleetSoakReport fleet;
  std::uint64_t baseline_event_log_hash = 0;
  BusCounters bus;
  ServiceCounters service;
  std::vector<std::string> violations;

  // Client-side aggregates.
  std::uint64_t client_delivered = 0;
  std::uint64_t client_gap_dropped = 0;
  std::uint64_t client_replayed = 0;
  std::uint64_t client_resume_gap = 0;
  std::uint64_t client_dials = 0;
  std::uint64_t client_sheds_received = 0;
  std::uint64_t client_ordering_violations = 0;
  std::size_t healthy_streaming_at_end = 0;
  std::size_t healthy_subscribers = 0;

  bool ok() const noexcept {
    return violations.empty() && fleet.violations.empty();
  }
};

SubscriberSoakReport run_subscriber_soak(const SubscriberSoakConfig& config);

}  // namespace tagbreathe::telemetry
