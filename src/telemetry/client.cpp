#include "telemetry/client.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace tagbreathe::telemetry {

void TelemetryClientConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("TelemetryClientConfig: " + what);
  };
  if (!(heartbeat_period_s > 0.0)) bad("heartbeat_period_s must be positive");
  if (!(backoff_initial_s > 0.0)) bad("backoff_initial_s must be positive");
  if (backoff_max_s < backoff_initial_s)
    bad("backoff_max_s below backoff_initial_s");
  if (backoff_jitter < 0.0 || backoff_jitter >= 1.0)
    bad("backoff_jitter must be in [0, 1)");
  if (!(ack_timeout_s > 0.0)) bad("ack_timeout_s must be positive");
}

const char* client_state_name(ClientState state) noexcept {
  switch (state) {
    case ClientState::Idle: return "Idle";
    case ClientState::AwaitingAck: return "AwaitingAck";
    case ClientState::Streaming: return "Streaming";
    case ClientState::Stopped: return "Stopped";
  }
  return "Unknown";
}

TelemetryClient::TelemetryClient(TelemetryClientConfig config, DialFn dial,
                                 EventFn on_event)
    : config_(config),
      dial_(std::move(dial)),
      on_event_(std::move(on_event)),
      rng_(config.seed),
      backoff_s_(config.backoff_initial_s) {
  config_.validate();
  if (!dial_) throw std::invalid_argument("TelemetryClient: null dial fn");
}

void TelemetryClient::disconnect(double now_s) {
  channel_ = nullptr;
  parser_.reset();
  subscription_id_ = 0;
  state_ = ClientState::Idle;
  // Jittered exponential backoff: scale by a uniform factor in
  // [1-j, 1+j] so simultaneous sheds do not redial in lockstep.
  const double jitter =
      1.0 + config_.backoff_jitter * (2.0 * rng_.uniform() - 1.0);
  next_dial_s_ = now_s + backoff_s_ * jitter;
  backoff_s_ = std::min(backoff_s_ * 2.0, config_.backoff_max_s);
}

void TelemetryClient::dial(double now_s) {
  ++counters_.dials;
  llrp::ByteChannel* channel = dial_(now_s);
  if (channel == nullptr) {
    disconnect(now_s);
    return;
  }
  channel_ = channel;
  parser_ = std::make_unique<FrameParser>();
  dialed_at_s_ = now_s;
  state_ = ClientState::AwaitingAck;
  SubscribeFrame sub;
  sub.filter = config_.filter;
  sub.policy = config_.policy;
  sub.resume_cursor = cursor_;
  channel_->write(llrp::Side::Client, encode_frame(sub));
}

void TelemetryClient::pump_read(double now_s) {
  parser_->feed(channel_->read(llrp::Side::Client));
  try {
    while (auto frame = parser_->next()) {
      if (const auto* ack = std::get_if<SubAckFrame>(&*frame)) {
        subscription_id_ = ack->subscription_id;
        counters_.replayed += ack->replayed;
        counters_.resume_gap += ack->gap;
        ++counters_.acks;
        state_ = ClientState::Streaming;
        next_heartbeat_s_ = now_s + config_.heartbeat_period_s;
        backoff_s_ = config_.backoff_initial_s;  // healthy again
      } else if (const auto* ev = std::get_if<EventFrame>(&*frame)) {
        if (ev->event.seq <= cursor_) ++counters_.ordering_violations;
        cursor_ = std::max(cursor_, ev->event.seq);
        ++counters_.delivered;
        if (on_event_) on_event_(ev->event);
      } else if (const auto* gap = std::get_if<GapFrame>(&*frame)) {
        ++counters_.gap_frames;
        counters_.gap_dropped += gap->dropped;
      } else if (std::holds_alternative<ShedFrame>(*frame)) {
        ++counters_.sheds_received;
        disconnect(now_s);
        return;
      }
      // Subscribe/Heartbeat arriving server->client would be a protocol
      // violation; treat like line noise.
      else {
        ++counters_.decode_errors;
        disconnect(now_s);
        return;
      }
    }
  } catch (const llrp::DecodeError&) {
    ++counters_.decode_errors;
    disconnect(now_s);
  }
}

void TelemetryClient::step(double now_s) {
  switch (state_) {
    case ClientState::Stopped:
      return;
    case ClientState::Idle:
      if (now_s >= next_dial_s_) dial(now_s);
      return;
    case ClientState::AwaitingAck:
      pump_read(now_s);
      if (state_ == ClientState::AwaitingAck &&
          now_s - dialed_at_s_ > config_.ack_timeout_s)
        disconnect(now_s);
      return;
    case ClientState::Streaming:
      pump_read(now_s);
      if (state_ == ClientState::Streaming && now_s >= next_heartbeat_s_) {
        channel_->write(llrp::Side::Client,
                        encode_frame(HeartbeatFrame{now_s}));
        next_heartbeat_s_ = now_s + config_.heartbeat_period_s;
      }
      return;
  }
}

void TelemetryClient::stop() noexcept {
  state_ = ClientState::Stopped;
  channel_ = nullptr;
  parser_.reset();
}

}  // namespace tagbreathe::telemetry
