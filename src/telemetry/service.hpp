// TelemetryService: serves the merged fleet event stream to clients
// (ISSUE 7 tentpole, server half).
//
// One service instance owns an EventBus and a set of connections, each
// an llrp::ByteChannel (so FaultyChannel fault injection applies
// unchanged). The service never blocks on a connection: pump(now_s)
// does one bounded pass — read client frames, answer Subscribe with
// SubAck (resume accounting included), track Heartbeats, drain each
// subscription's bounded queue into Event frames (preceded by a Gap
// frame when the queue shed events since the last drain), and enforce
// the heartbeat timeout and the bus's slow-consumer ladder (a shed
// subscriber gets a final Shed frame naming the reason, then the
// connection closes).
//
// The same listener doubles as a minimal HTTP scrape endpoint: a
// connection whose first byte is not the frame magic's 'T' is treated
// as an HTTP request; GET /metrics answers with the byte-stable
// Prometheus exposition, GET /metrics.json with the JSON export and
// GET /healthz with a liveness probe — the ISSUE-5 exporters, served.
//
// Wire side convention: the service is llrp::Side::Reader, clients are
// llrp::Side::Client (same orientation as the reader protocol: the
// party that accepts is the Reader side).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "llrp/transport.hpp"
#include "telemetry/event_bus.hpp"

namespace tagbreathe::telemetry {

struct TelemetryServiceConfig {
  EventBusConfig bus{};
  /// A streaming client silent (no Heartbeat, no frame at all) for
  /// longer than this is shed with ShedReason::HeartbeatTimeout.
  /// 0 disables the timeout.
  double heartbeat_timeout_s = 5.0;
  /// Per-connection, per-pump delivery bound: keeps one fat subscriber
  /// from monopolising a pump.
  std::size_t max_events_per_pump = 64;
  /// FrameParser payload bound for client->server frames.
  std::size_t max_frame_payload = 1 << 12;
  /// Send-side backpressure: while a connection has more than this many
  /// unread bytes in flight, its subscription is not drained — the
  /// bounded bus queue backs up instead, which is what trips the
  /// Lagging/Shed ladder for a consumer that stopped reading. (The
  /// in-memory channel itself is unbounded; this cap stands in for a
  /// full TCP send buffer.)
  std::size_t max_inflight_bytes = 16 * 1024;

  void validate() const;
};

struct ServiceCounters {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t subscriptions = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t events_sent = 0;
  std::uint64_t gap_frames_sent = 0;
  std::uint64_t shed_frames_sent = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t heartbeat_timeouts = 0;
  std::uint64_t http_requests = 0;
};

/// Pure HTTP responder behind the scrape endpoint (unit-testable
/// without a service). `request` is the raw request bytes up to and
/// including the blank line; `hub` may be null (503 on metric paths).
std::string handle_http_request(const std::string& request,
                                const obs::Observability* hub);

class TelemetryService {
 public:
  explicit TelemetryService(TelemetryServiceConfig config,
                            EventBus::WardFn ward_of = nullptr);
  ~TelemetryService();
  TelemetryService(const TelemetryService&) = delete;
  TelemetryService& operator=(const TelemetryService&) = delete;

  /// Registers a connection. The channel must outlive it (or be
  /// dropped via close()/connection death first). Returns the
  /// connection id.
  std::uint64_t accept(llrp::ByteChannel& channel, double now_s);

  /// Server-side close. Sheds any attached subscription with `reason`
  /// and emits a final Shed frame.
  void close(std::uint64_t conn_id, ShedReason reason);

  /// One bounded service pass at stream time `now_s`; also ticks the
  /// bus ladder. Call at pump cadence.
  void pump(double now_s);

  /// Sheds every connection with ServerShutdown.
  void shutdown();

  bool connection_open(std::uint64_t conn_id) const;
  std::size_t open_connections() const;
  /// Subscription id attached to a connection (0 = none yet / HTTP).
  std::uint64_t subscription_of(std::uint64_t conn_id) const;

  EventBus& bus() noexcept { return bus_; }
  const EventBus& bus() const noexcept { return bus_; }
  ServiceCounters counters() const noexcept { return counters_; }

  /// Binds the bus's telemetry_* instruments plus the service-level
  /// connection counters, and makes `hub` the scrape endpoint's source.
  void bind_observability(obs::Observability& hub);

 private:
  struct Connection;

  void service_connection(Connection& conn, double now_s);
  void handle_frame(Connection& conn, const Frame& frame, double now_s);
  void send(Connection& conn, const Frame& frame);
  void close_locked(Connection& conn, ShedReason reason, bool send_shed);
  void publish_metrics();

  TelemetryServiceConfig config_;
  EventBus bus_;
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;
  ServiceCounters counters_;
  obs::Observability* hub_ = nullptr;

  struct Instruments {
    obs::Counter* accepted = nullptr;
    obs::Counter* closed = nullptr;
    obs::Counter* events_sent = nullptr;
    obs::Counter* gap_frames = nullptr;
    obs::Counter* shed_frames = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* heartbeat_timeouts = nullptr;
    obs::Counter* http_requests = nullptr;
    obs::Gauge* open_conns = nullptr;
  } obs_;
};

}  // namespace tagbreathe::telemetry
