// Backpressure-hardened event fan-out (ISSUE 7 tentpole core).
//
// The EventBus sits between the ReaderFleet's merged event stream and
// thousands of subscribers, applying the same distrustful discipline
// the ingest side applies to readers — but pointed the other way: a
// misbehaving *consumer* must never be able to stall or starve the
// pipeline. Concretely:
//
// - publish() does bounded, non-blocking work per active subscription:
//   one filter check, and at most one bounded-queue mutation. Filters
//   (per-user, per-ward, alarm-only) are evaluated at enqueue time, so
//   work for a narrow subscriber is never done only to be shed later.
// - Every subscription owns a bounded SPSC queue (producer = the bus on
//   the coordinator thread, consumer = the connection writer) with a
//   configurable overflow policy: drop-oldest, coalesce-per-user
//   (newest rate per user survives; alarms never coalesce), or
//   disconnect (the subscriber is shed outright).
// - A per-subscriber Up -> Lagging -> Shed ladder mirrors the fleet's
//   reader ladder: backlog above `lagging_above` marks a subscriber
//   Lagging (with hysteresis via `up_below`); a subscriber that stays
//   Lagging for `shed_after_lagging_ticks` consecutive ticks is shed as
//   a slow consumer.
// - Resume cursors: every event carries a monotonic sequence number and
//   the bus retains a bounded replay ring. A reconnecting subscriber
//   presents its last delivered sequence and replays only its gap; a
//   client away longer than the ring learns the exact count of
//   irrecoverably missed sequences instead of silently losing them.
//
// Conservation law, enforced by tests and the subscriber soak: for
// every subscription, at every quiescent point,
//
//   published == delivered + dropped + coalesced + queued
//
// and once a subscription is shed or closed (queued -> dropped),
//
//   published == delivered + dropped + coalesced.
//
// Threading: the bus is MT-safe behind one mutex (the TSan suite
// hammers publish against racing drains); every operation is
// lock-bounded and non-blocking — nothing ever waits on a consumer.
// Under the single-threaded soak harnesses the mutex is uncontended
// and the bus is fully deterministic in stream time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/wire.hpp"

namespace tagbreathe::obs {
class Observability;
class Counter;
class Gauge;
}  // namespace tagbreathe::obs

namespace tagbreathe::telemetry {

enum class SubscriberState : std::uint8_t {
  Up = 0,
  Lagging = 1,
  Shed = 2,
};
inline constexpr std::size_t kSubscriberStateCount = 3;
const char* subscriber_state_name(SubscriberState state) noexcept;

struct EventBusConfig {
  /// Bounded per-subscription queue depth (events).
  std::size_t queue_capacity = 256;
  /// Replay ring depth (events) backing resume cursors. 0 disables
  /// replay: every resume reports its whole gap as missed.
  std::size_t replay_ring_capacity = 4096;
  /// Backlog at or above this marks a subscription Lagging. 0 derives
  /// queue_capacity / 2.
  std::size_t lagging_above = 0;
  /// Backlog at or below this restores Up (hysteresis; must sit below
  /// lagging_above). 0 derives queue_capacity / 4.
  std::size_t up_below = 0;
  /// Consecutive Lagging ticks before the subscriber is shed as a slow
  /// consumer. 0 = never shed by lag alone (overflow policy still
  /// applies).
  std::size_t shed_after_lagging_ticks = 0;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;

  std::size_t effective_lagging_above() const noexcept {
    return lagging_above != 0 ? lagging_above : queue_capacity / 2;
  }
  std::size_t effective_up_below() const noexcept {
    return up_below != 0 ? up_below : queue_capacity / 4;
  }
};

/// Per-subscription accounting (the conservation-law operands).
struct SubscriptionCounters {
  std::uint64_t published = 0;  // filter-matching events offered while live
  std::uint64_t delivered = 0;  // events handed to the consumer via drain
  std::uint64_t dropped = 0;    // shed from the queue (overflow / shed)
  std::uint64_t coalesced = 0;  // absorbed into a newer same-user rate
  std::uint64_t replayed = 0;   // of published: resume-cursor ring replays
};

/// Bus-wide totals.
struct BusCounters {
  std::uint64_t events_published = 0;   // publish() calls
  std::uint64_t fanout_enqueued = 0;    // events placed on some queue
  std::uint64_t fanout_dropped = 0;
  std::uint64_t fanout_coalesced = 0;
  std::uint64_t filtered_out = 0;       // filter misses (work never done)
  std::uint64_t subscribes = 0;
  std::uint64_t resumes = 0;            // subscribes carrying a cursor
  std::uint64_t replayed_events = 0;
  std::uint64_t gap_sequences = 0;      // irrecoverable resume misses
  std::uint64_t sheds[kShedReasonCount] = {};
  std::uint64_t unsubscribes = 0;
};

class EventBus {
 public:
  /// Maps a user id onto a ward id for FilterKind::Ward. Must be pure
  /// and thread-safe. Null = every user in ward 0.
  using WardFn = std::function<std::uint32_t(std::uint64_t)>;

  explicit EventBus(EventBusConfig config, WardFn ward_of = nullptr);
  ~EventBus();
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  struct ResumeResult {
    std::uint64_t replayed = 0;
    std::uint64_t gap = 0;
    std::uint64_t next_seq = 1;
  };

  /// Registers a subscription. `resume_cursor` is the last sequence the
  /// client saw (0 = fresh); matching ring events past it are enqueued
  /// immediately. Returns the subscription id (never 0).
  std::uint64_t subscribe(const FilterSpec& filter, OverflowPolicy policy,
                          std::uint64_t resume_cursor = 0,
                          ResumeResult* resume = nullptr);

  /// Graceful close: remaining queued events count as dropped, counters
  /// are frozen and retained for post-run audits.
  void unsubscribe(std::uint64_t id);

  /// Sheds a subscription (queue -> dropped, state -> Shed). Idempotent.
  void shed(std::uint64_t id, ShedReason reason);

  /// Fans one merged fleet event out to every live subscription and
  /// appends it to the replay ring. Non-blocking, lock-bounded.
  void publish(std::uint16_t shard, const core::PipelineEvent& event);

  /// Ladder maintenance: walks every live subscription once, applying
  /// the Lagging/Shed transitions. Call at pump cadence.
  void tick();

  struct DrainResult {
    std::size_t delivered = 0;
    /// Events shed from this queue since the last drain; a non-zero
    /// value means the consumer must be told (Gap frame) before the
    /// next event. next_seq is the first sequence after the gap.
    std::uint64_t gap_dropped = 0;
    std::uint64_t gap_next_seq = 0;
    bool shed = false;  // subscription is Shed/unknown; nothing delivered
    ShedReason shed_reason = ShedReason::SlowConsumer;
  };

  /// Consumer side: pops up to `max_events` into `out` (appending).
  DrainResult drain(std::uint64_t id, std::vector<TelemetryEvent>& out,
                    std::size_t max_events);

  // --- introspection -------------------------------------------------------
  SubscriberState state(std::uint64_t id) const;
  SubscriptionCounters subscription_counters(std::uint64_t id) const;
  std::size_t queued(std::uint64_t id) const;
  /// Walks every subscription ever created (live, shed and closed) —
  /// the post-run conservation audit. `fn(id, filter, state, counters,
  /// queued)`.
  void for_each_subscription(
      const std::function<void(std::uint64_t, const FilterSpec&,
                               SubscriberState, const SubscriptionCounters&,
                               std::size_t)>& fn) const;
  BusCounters counters() const;
  std::uint64_t last_seq() const;
  std::size_t subscriptions_in(SubscriberState state) const;
  std::size_t live_subscriptions() const;

  /// Registers telemetry_* bus instruments on `hub` and mirrors them on
  /// every tick. Wiring time only.
  void bind_observability(obs::Observability& hub);

 private:
  struct Subscription;

  void shed_locked(Subscription& sub, ShedReason reason);
  bool filter_matches(const FilterSpec& filter,
                      const TelemetryEvent& event) const;
  void offer_locked(Subscription& sub, const TelemetryEvent& event,
                    bool replay);
  void publish_metrics_locked();

  EventBusConfig config_;
  WardFn ward_of_;

  mutable std::mutex mutex_;  // registry + ring + counters
  std::map<std::uint64_t, std::unique_ptr<Subscription>> subscriptions_;
  std::uint64_t next_subscription_id_ = 1;
  std::uint64_t last_seq_ = 0;
  std::vector<TelemetryEvent> ring_;  // seq -> ring_[(seq-1) % capacity]
  BusCounters counters_;

  // Null until bind_observability; `hub` is the is-bound sentinel.
  struct Instruments {
    obs::Observability* hub = nullptr;
    obs::Counter* published = nullptr;
    obs::Counter* enqueued = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* filtered = nullptr;
    obs::Counter* subscribes = nullptr;
    obs::Counter* resumes = nullptr;
    obs::Counter* replayed = nullptr;
    obs::Counter* gap_sequences = nullptr;
    obs::Counter* sheds[kShedReasonCount] = {};
    obs::Gauge* subscribers[kSubscriberStateCount] = {};
    obs::Gauge* ring_seq = nullptr;
  } obs_;
};

}  // namespace tagbreathe::telemetry
