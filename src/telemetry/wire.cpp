#include "telemetry/wire.hpp"

#include <bit>
#include <cstring>
#include <string>

namespace tagbreathe::telemetry {

namespace {

void put_f64(llrp::ByteWriter& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}

double get_f64(llrp::ByteReader& r) {
  return std::bit_cast<double>(r.u64());
}

template <typename Enum>
Enum checked_enum(std::uint8_t raw, std::size_t count, const char* what) {
  if (raw >= count)
    throw llrp::DecodeError(std::string("telemetry: bad ") + what + " value " +
                            std::to_string(raw));
  return static_cast<Enum>(raw);
}

}  // namespace

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::Subscribe: return "Subscribe";
    case FrameType::Heartbeat: return "Heartbeat";
    case FrameType::SubAck: return "SubAck";
    case FrameType::Event: return "Event";
    case FrameType::Gap: return "Gap";
    case FrameType::Shed: return "Shed";
  }
  return "Unknown";
}

const char* filter_kind_name(FilterKind kind) noexcept {
  switch (kind) {
    case FilterKind::All: return "All";
    case FilterKind::User: return "User";
    case FilterKind::Ward: return "Ward";
    case FilterKind::AlarmOnly: return "AlarmOnly";
  }
  return "Unknown";
}

const char* overflow_policy_name(OverflowPolicy policy) noexcept {
  switch (policy) {
    case OverflowPolicy::DropOldest: return "DropOldest";
    case OverflowPolicy::CoalescePerUser: return "CoalescePerUser";
    case OverflowPolicy::Disconnect: return "Disconnect";
  }
  return "Unknown";
}

const char* shed_reason_name(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::SlowConsumer: return "SlowConsumer";
    case ShedReason::HeartbeatTimeout: return "HeartbeatTimeout";
    case ShedReason::Overflow: return "Overflow";
    case ShedReason::ProtocolError: return "ProtocolError";
    case ShedReason::ServerShutdown: return "ServerShutdown";
  }
  return "Unknown";
}

TelemetryEvent make_event(std::uint64_t seq, std::uint16_t shard,
                          const core::PipelineEvent& event) {
  TelemetryEvent e;
  e.seq = seq;
  e.shard = shard;
  e.kind = event.kind;
  e.health = event.health;
  e.reliable = event.reliable;
  e.user_id = event.user_id;
  e.time_s = event.time_s;
  e.rate_bpm = event.rate_bpm;
  return e;
}

FrameType frame_type(const Frame& frame) noexcept {
  struct Visitor {
    FrameType operator()(const SubscribeFrame&) { return FrameType::Subscribe; }
    FrameType operator()(const HeartbeatFrame&) { return FrameType::Heartbeat; }
    FrameType operator()(const SubAckFrame&) { return FrameType::SubAck; }
    FrameType operator()(const EventFrame&) { return FrameType::Event; }
    FrameType operator()(const GapFrame&) { return FrameType::Gap; }
    FrameType operator()(const ShedFrame&) { return FrameType::Shed; }
  };
  return std::visit(Visitor{}, frame);
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  llrp::ByteWriter w;
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(frame_type(frame)));
  const std::size_t len_at = w.size();
  w.u32(0);  // payload length, patched below

  struct Payload {
    llrp::ByteWriter& w;
    void operator()(const SubscribeFrame& f) {
      w.u8(static_cast<std::uint8_t>(f.filter.kind));
      w.u64(f.filter.id);
      w.u8(static_cast<std::uint8_t>(f.policy));
      w.u64(f.resume_cursor);
    }
    void operator()(const HeartbeatFrame& f) { put_f64(w, f.client_time_s); }
    void operator()(const SubAckFrame& f) {
      w.u64(f.subscription_id);
      w.u64(f.next_seq);
      w.u64(f.replayed);
      w.u64(f.gap);
    }
    void operator()(const EventFrame& f) {
      w.u64(f.event.seq);
      w.u16(f.event.shard);
      w.u8(static_cast<std::uint8_t>(f.event.kind));
      w.u8(static_cast<std::uint8_t>(f.event.health));
      w.u8(f.event.reliable ? 1 : 0);
      w.u64(f.event.user_id);
      put_f64(w, f.event.time_s);
      put_f64(w, f.event.rate_bpm);
    }
    void operator()(const GapFrame& f) {
      w.u64(f.next_seq);
      w.u64(f.dropped);
    }
    void operator()(const ShedFrame& f) {
      w.u8(static_cast<std::uint8_t>(f.reason));
    }
  };
  std::visit(Payload{w}, frame);
  w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - len_at - 4));
  return w.take();
}

FrameParser::FrameParser(std::size_t max_payload) : max_payload_(max_payload) {}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  // Compact once the dead prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (head_ > 4096 && head_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameParser::next() {
  if (buffered() < kFrameHeaderBytes) return std::nullopt;
  llrp::ByteReader header(
      std::span<const std::uint8_t>(buffer_).subspan(head_, kFrameHeaderBytes));
  const std::uint16_t magic = header.u16();
  if (magic != kWireMagic)
    throw llrp::DecodeError("telemetry: bad frame magic " +
                            std::to_string(magic));
  const std::uint8_t version = header.u8();
  if (version != kWireVersion)
    throw llrp::DecodeError("telemetry: unsupported wire version " +
                            std::to_string(version));
  const std::uint8_t raw_type = header.u8();
  const std::uint32_t payload_len = header.u32();
  if (payload_len > max_payload_)
    throw llrp::DecodeError("telemetry: oversized frame payload " +
                            std::to_string(payload_len));
  if (buffered() < kFrameHeaderBytes + payload_len) return std::nullopt;

  llrp::ByteReader r(std::span<const std::uint8_t>(buffer_).subspan(
      head_ + kFrameHeaderBytes, payload_len));
  Frame frame;
  switch (checked_enum<FrameType>(raw_type, kFrameTypeCount + 1, "frame type")) {
    case FrameType::Subscribe: {
      SubscribeFrame f;
      f.filter.kind =
          checked_enum<FilterKind>(r.u8(), kFilterKindCount, "filter kind");
      f.filter.id = r.u64();
      f.policy = checked_enum<OverflowPolicy>(r.u8(), kOverflowPolicyCount,
                                              "overflow policy");
      f.resume_cursor = r.u64();
      frame = f;
      break;
    }
    case FrameType::Heartbeat: {
      HeartbeatFrame f;
      f.client_time_s = get_f64(r);
      frame = f;
      break;
    }
    case FrameType::SubAck: {
      SubAckFrame f;
      f.subscription_id = r.u64();
      f.next_seq = r.u64();
      f.replayed = r.u64();
      f.gap = r.u64();
      frame = f;
      break;
    }
    case FrameType::Event: {
      EventFrame f;
      f.event.seq = r.u64();
      f.event.shard = r.u16();
      f.event.kind = checked_enum<core::PipelineEventKind>(r.u8(), 4,
                                                           "event kind");
      f.event.health =
          checked_enum<core::SignalHealth>(r.u8(), 3, "signal health");
      f.event.reliable = r.u8() != 0;
      f.event.user_id = r.u64();
      f.event.time_s = get_f64(r);
      f.event.rate_bpm = get_f64(r);
      frame = f;
      break;
    }
    case FrameType::Gap: {
      GapFrame f;
      f.next_seq = r.u64();
      f.dropped = r.u64();
      frame = f;
      break;
    }
    case FrameType::Shed: {
      ShedFrame f;
      f.reason =
          checked_enum<ShedReason>(r.u8(), kShedReasonCount, "shed reason");
      frame = f;
      break;
    }
    default:
      throw llrp::DecodeError("telemetry: unknown frame type " +
                              std::to_string(raw_type));
  }
  if (!r.empty())
    throw llrp::DecodeError("telemetry: trailing bytes in frame payload");
  head_ += kFrameHeaderBytes + payload_len;
  return frame;
}

}  // namespace tagbreathe::telemetry
