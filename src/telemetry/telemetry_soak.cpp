#include "telemetry/telemetry_soak.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

namespace tagbreathe::telemetry {

namespace {

constexpr std::size_t kMaxViolations = 50;

void add_violation(std::vector<std::string>& violations, std::string line) {
  if (violations.size() < kMaxViolations) {
    violations.push_back(std::move(line));
  } else if (violations.size() == kMaxViolations) {
    violations.push_back("... further violations suppressed");
  }
}

enum class Behaviour { Healthy, Slow, Flapping, Dead };

Behaviour behaviour_of(std::size_t i, const SubscriberSoakConfig& config) {
  if (config.dead_every != 0 && i % config.dead_every == 0)
    return Behaviour::Dead;
  if (config.flapping_every != 0 && i % config.flapping_every == 0)
    return Behaviour::Flapping;
  if (config.slow_every != 0 && i % config.slow_every == 0)
    return Behaviour::Slow;
  return Behaviour::Healthy;
}

/// Deterministic filter mix: a few full-stream dashboards, some
/// alarm-only pagers, ward stations and per-user bedside monitors.
FilterSpec filter_of(std::size_t i, std::size_t n_users,
                     std::size_t users_per_ward) {
  const std::size_t n_wards = (n_users + users_per_ward - 1) / users_per_ward;
  FilterSpec f;
  if (i % 16 == 0) {
    f.kind = FilterKind::All;
  } else if (i % 4 == 1) {
    f.kind = FilterKind::AlarmOnly;
  } else if (i % 2 == 0) {
    f.kind = FilterKind::Ward;
    f.id = (i / 2) % (n_wards == 0 ? 1 : n_wards);
  } else {
    f.kind = FilterKind::User;
    f.id = i % n_users + 1;
  }
  return f;
}

OverflowPolicy policy_of(std::size_t i) {
  switch (i % 3) {
    case 0: return OverflowPolicy::DropOldest;
    case 1: return OverflowPolicy::CoalescePerUser;
    default: return OverflowPolicy::Disconnect;
  }
}

}  // namespace

void SubscriberSoakConfig::validate() const {
  fleet.validate();
  service.validate();
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("SubscriberSoakConfig: " + what);
  };
  if (n_subscribers == 0) bad("n_subscribers must be positive");
  if (users_per_ward == 0) bad("users_per_ward must be positive");
  if (slow_stride == 0) bad("slow_stride must be positive");
  if (dead_at_fraction <= 0.0 || dead_at_fraction > 1.0)
    bad("dead_at_fraction must be in (0, 1]");
  if (!(flap_period_s > 0.0) || flap_on_s <= 0.0 ||
      flap_on_s >= flap_period_s)
    bad("flap window must satisfy 0 < flap_on_s < flap_period_s");
  if (!(client_heartbeat_period_s > 0.0))
    bad("client_heartbeat_period_s must be positive");
  if (fleet.event_tap || fleet.pump_tap)
    bad("fleet taps are owned by the harness; leave them empty");
}

SubscriberSoakReport run_subscriber_soak(const SubscriberSoakConfig& config) {
  config.validate();
  SubscriberSoakReport report;

  // --- baseline: the fleet alone, hash recorded ----------------------------
  if (config.verify_baseline) {
    fleet::FleetSoakConfig bare = config.fleet;
    bare.record_event_log = false;
    bare.observability = nullptr;
    const fleet::FleetSoakReport baseline = fleet::run_fleet_soak(bare);
    report.baseline_event_log_hash = baseline.event_log_hash;
  }

  // --- the tapped run ------------------------------------------------------
  const std::size_t users_per_ward = config.users_per_ward;
  TelemetryService service(
      config.service, [users_per_ward](std::uint64_t user) {
        return static_cast<std::uint32_t>((user - 1) / users_per_ward);
      });
  if (config.observability != nullptr)
    service.bind_observability(*config.observability);

  // Channels live for the whole run: the service may still hold a
  // pointer to a channel its client already abandoned (that is the
  // point of the heartbeat timeout).
  std::vector<std::unique_ptr<llrp::DuplexChannel>> channels;
  std::vector<std::unique_ptr<TelemetryClient>> clients;
  std::vector<Behaviour> behaviours;
  clients.reserve(config.n_subscribers);
  behaviours.reserve(config.n_subscribers);
  common::Rng seed_rng(config.seed);

  for (std::size_t i = 0; i < config.n_subscribers; ++i) {
    TelemetryClientConfig cc;
    cc.filter = filter_of(i, config.fleet.n_users, config.users_per_ward);
    cc.policy = policy_of(i);
    cc.heartbeat_period_s = config.client_heartbeat_period_s;
    cc.seed = seed_rng.engine()();
    TelemetryClient::DialFn dial = [&service, &channels](double now_s) {
      channels.push_back(std::make_unique<llrp::DuplexChannel>());
      llrp::ByteChannel* channel = channels.back().get();
      service.accept(*channel, now_s);
      return channel;
    };
    clients.push_back(
        std::make_unique<TelemetryClient>(cc, std::move(dial)));
    behaviours.push_back(behaviour_of(i, config));
  }

  const double dead_at_s = config.fleet.duration_s * config.dead_at_fraction;
  std::size_t pump_index = 0;
  const auto step_clients = [&](double t) {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      switch (behaviours[i]) {
        case Behaviour::Healthy:
          break;
        case Behaviour::Slow:
          if (pump_index % config.slow_stride != 0) continue;
          break;
        case Behaviour::Flapping:
          if (std::fmod(t, config.flap_period_s) >= config.flap_on_s)
            continue;
          break;
        case Behaviour::Dead:
          if (t >= dead_at_s) continue;
          break;
      }
      clients[i]->step(t);
    }
  };

  fleet::FleetSoakConfig tapped = config.fleet;
  tapped.observability = config.observability;
  tapped.event_tap = [&service](const fleet::FleetEvent& fe) {
    service.bus().publish(static_cast<std::uint16_t>(fe.shard), fe.event);
  };
  tapped.pump_tap = [&](double t) {
    step_clients(t);
    service.pump(t);
    ++pump_index;
  };
  report.fleet = fleet::run_fleet_soak(tapped);

  // --- final flush: let live clients catch up, then shut down --------------
  const double end_s = config.fleet.duration_s;
  for (std::size_t round = 1; round <= 64; ++round) {
    const double t = end_s + config.fleet.pump_period_s *
                                 static_cast<double>(round);
    step_clients(t);
    service.pump(t);
    ++pump_index;
  }
  service.shutdown();
  report.bus = service.bus().counters();
  report.service = service.counters();

  // --- gates ---------------------------------------------------------------
  if (config.verify_baseline &&
      report.baseline_event_log_hash != report.fleet.event_log_hash)
    add_violation(report.violations,
                  "telemetry perturbed the fleet: event-log hash differs "
                  "from the no-telemetry baseline");
  if (report.bus.events_published != report.fleet.events)
    add_violation(report.violations,
                  "tap lost events: bus published " +
                      std::to_string(report.bus.events_published) +
                      " of " + std::to_string(report.fleet.events));

  service.bus().for_each_subscription(
      [&](std::uint64_t id, const FilterSpec&, SubscriberState,
          const SubscriptionCounters& c, std::size_t queued) {
        if (queued != 0)
          add_violation(report.violations,
                        "subscription " + std::to_string(id) +
                            " still queued after shutdown");
        if (c.published != c.delivered + c.dropped + c.coalesced)
          add_violation(
              report.violations,
              "conservation broken for subscription " + std::to_string(id) +
                  ": published=" + std::to_string(c.published) +
                  " delivered=" + std::to_string(c.delivered) +
                  " dropped=" + std::to_string(c.dropped) +
                  " coalesced=" + std::to_string(c.coalesced));
      });

  const std::uint64_t last_seq = service.bus().last_seq();
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const TelemetryClient& client = *clients[i];
    const ClientCounters& cc = client.counters();
    report.client_delivered += cc.delivered;
    report.client_gap_dropped += cc.gap_dropped;
    report.client_replayed += cc.replayed;
    report.client_resume_gap += cc.resume_gap;
    report.client_dials += cc.dials;
    report.client_sheds_received += cc.sheds_received;
    report.client_ordering_violations += cc.ordering_violations;
    if (cc.ordering_violations != 0)
      add_violation(report.violations,
                    "client " + std::to_string(i) + " saw " +
                        std::to_string(cc.ordering_violations) +
                        " sequence-ordering violations");
    if (behaviours[i] == Behaviour::Healthy) {
      ++report.healthy_subscribers;
      // State check: shutdown() just shed everyone, so "alive at end"
      // means the client was Streaming going into shutdown — it has
      // not yet consumed the final Shed frame.
      if (client.state() == ClientState::Streaming)
        ++report.healthy_streaming_at_end;
      else
        add_violation(report.violations,
                      "healthy client " + std::to_string(i) +
                          " not streaming at end (state " +
                          std::string(client_state_name(client.state())) +
                          ")");
      // Only a full-stream subscriber sees every sequence; a healthy
      // one must be fully caught up after the flush rounds.
      if (filter_of(i, config.fleet.n_users, config.users_per_ward).kind ==
              FilterKind::All &&
          client.cursor() != last_seq)
        add_violation(report.violations,
                      "healthy full-stream client " + std::to_string(i) +
                          " not caught up: cursor " +
                          std::to_string(client.cursor()) + " of " +
                          std::to_string(last_seq));
    }
  }

  return report;
}

}  // namespace tagbreathe::telemetry
