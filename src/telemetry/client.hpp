// TelemetryClient: the nurse-station side of the telemetry protocol
// (ISSUE 7 tentpole, subscriber half).
//
// A resilient state machine driven in stream time: dial, Subscribe
// (carrying the resume cursor — the last sequence this client actually
// delivered), await SubAck, then stream: heartbeat on a period, decode
// Event/Gap/Shed frames, and on any failure (dial refused, malformed
// bytes, server shed, silent link) disconnect and redial with
// exponential backoff, jittered from the client's own seeded Rng so a
// thousand clients shed at once do not redial in lockstep (the
// thundering-herd guard the soak asserts on).
//
// The client never trusts the link: a DecodeError tears the connection
// down instead of wedging, sequence regressions are counted as
// ordering violations (the soak gates on zero), and every Gap frame's
// dropped count is accumulated so `delivered + gap_dropped` can be
// reconciled against the server's per-subscription accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "llrp/transport.hpp"
#include "telemetry/wire.hpp"

namespace tagbreathe::telemetry {

struct TelemetryClientConfig {
  FilterSpec filter{};
  OverflowPolicy policy = OverflowPolicy::DropOldest;
  /// Heartbeat cadence while streaming.
  double heartbeat_period_s = 1.0;
  /// Initial redial delay; doubles per consecutive failure.
  double backoff_initial_s = 0.5;
  double backoff_max_s = 8.0;
  /// Each delay is scaled by a uniform factor in [1-j, 1+j].
  double backoff_jitter = 0.2;
  /// Give up on an un-acked dial after this long and redial.
  double ack_timeout_s = 2.0;
  std::uint64_t seed = 1;

  void validate() const;
};

enum class ClientState : std::uint8_t {
  Idle = 0,        // waiting out the backoff
  AwaitingAck = 1,
  Streaming = 2,
  Stopped = 3,     // stop() called; never dials again
};
const char* client_state_name(ClientState state) noexcept;

struct ClientCounters {
  std::uint64_t dials = 0;
  std::uint64_t acks = 0;
  std::uint64_t delivered = 0;
  std::uint64_t replayed = 0;       // per SubAck accounting
  std::uint64_t resume_gap = 0;     // sequences lost beyond the ring
  std::uint64_t gap_frames = 0;
  std::uint64_t gap_dropped = 0;    // sum of Gap frame drop counts
  std::uint64_t sheds_received = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t ordering_violations = 0;  // non-increasing sequence
};

class TelemetryClient {
 public:
  /// Dial callback: returns a connected channel (the client speaks
  /// llrp::Side::Client on it) or nullptr when the dial fails. The
  /// channel must stay valid until the next dial or stop().
  using DialFn = std::function<llrp::ByteChannel*(double now_s)>;
  /// Invoked for every delivered event, in order.
  using EventFn = std::function<void(const TelemetryEvent&)>;

  TelemetryClient(TelemetryClientConfig config, DialFn dial,
                  EventFn on_event = nullptr);

  /// One bounded step at stream time `now_s`: dial when due, pump the
  /// read side, heartbeat when due. Call at pump cadence.
  void step(double now_s);

  /// Stops dialing (existing connection is abandoned, not torn down —
  /// the server's heartbeat timeout reaps it, as with a crashed
  /// client).
  void stop() noexcept;

  ClientState state() const noexcept { return state_; }
  const ClientCounters& counters() const noexcept { return counters_; }
  /// Last sequence delivered — the resume cursor for the next dial.
  std::uint64_t cursor() const noexcept { return cursor_; }
  std::uint64_t subscription_id() const noexcept { return subscription_id_; }
  double next_dial_s() const noexcept { return next_dial_s_; }

 private:
  void disconnect(double now_s);
  void dial(double now_s);
  void pump_read(double now_s);

  TelemetryClientConfig config_;
  DialFn dial_;
  EventFn on_event_;
  common::Rng rng_;

  ClientState state_ = ClientState::Idle;
  llrp::ByteChannel* channel_ = nullptr;
  std::unique_ptr<FrameParser> parser_;
  std::uint64_t subscription_id_ = 0;
  std::uint64_t cursor_ = 0;
  double next_dial_s_ = 0.0;
  double dialed_at_s_ = 0.0;
  double next_heartbeat_s_ = 0.0;
  double backoff_s_ = 0.0;
  ClientCounters counters_;
};

}  // namespace tagbreathe::telemetry
