// Framed binary wire protocol of the live telemetry service (ISSUE 7).
//
// The service fans monitor events out to nurse-station clients over the
// same byte-stream substrate the LLRP side uses (llrp::ByteChannel, so
// FaultyChannel can damage it in tests). Frames are big-endian, built
// on llrp::ByteWriter/ByteReader:
//
//   u16 magic 0x5442 ("TB") | u8 version | u8 type | u32 payload_len |
//   payload
//
// Client -> server: Subscribe (filter + overflow policy + resume
// cursor), Heartbeat. Server -> client: SubAck (subscription id, next
// sequence, replayed/gap accounting), Event (sequence-stamped monitor
// event), Gap (in-stream drop accounting — the client learns exactly
// how many events its slowness cost), Shed (the server is disconnecting
// this subscriber, with the reason).
//
// Robustness contract: FrameParser reassembles frames from arbitrary
// read boundaries and throws llrp::DecodeError on a malformed stream
// (bad magic/version/type, oversized payload) — the service treats that
// as a dead connection and the client redials with its resume cursor,
// so a corrupted byte costs a reconnect, never a wedged parser.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "core/pipeline.hpp"
#include "llrp/bytes.hpp"

namespace tagbreathe::telemetry {

inline constexpr std::uint16_t kWireMagic = 0x5442;  // "TB"
inline constexpr std::uint8_t kWireVersion = 1;
/// Fixed bytes before the payload: magic + version + type + length.
inline constexpr std::size_t kFrameHeaderBytes = 8;

enum class FrameType : std::uint8_t {
  Subscribe = 1,
  Heartbeat = 2,
  SubAck = 3,
  Event = 4,
  Gap = 5,
  Shed = 6,
};
inline constexpr std::size_t kFrameTypeCount = 6;
const char* frame_type_name(FrameType type) noexcept;

/// Subscription scope, evaluated bus-side at enqueue time so a narrow
/// subscriber never pays for events it will not receive.
enum class FilterKind : std::uint8_t {
  All = 0,        // the full merged stream
  User = 1,       // one user id
  Ward = 2,       // one ward (user -> ward mapping is bus-configured)
  AlarmOnly = 3,  // everything except routine RateUpdate events
};
inline constexpr std::size_t kFilterKindCount = 4;
const char* filter_kind_name(FilterKind kind) noexcept;

/// What a subscription's bounded queue does when an event arrives full.
enum class OverflowPolicy : std::uint8_t {
  /// Shed the oldest queued event (live dashboards: newest data wins).
  /// The shed count surfaces to the client as an in-stream Gap frame.
  DropOldest = 0,
  /// Overwrite the newest queued RateUpdate of the same user (one fresh
  /// rate per user survives overload; alarms are never coalesced).
  /// Falls back to DropOldest when no same-user rate is queued.
  CoalescePerUser = 1,
  /// Shed the subscriber itself: queue contents count as dropped and
  /// the connection is closed with ShedReason::Overflow.
  Disconnect = 2,
};
inline constexpr std::size_t kOverflowPolicyCount = 3;
const char* overflow_policy_name(OverflowPolicy policy) noexcept;

/// Why the server shed a subscriber.
enum class ShedReason : std::uint8_t {
  SlowConsumer = 0,      // Lagging beyond the configured patience
  HeartbeatTimeout = 1,  // client stopped heartbeating
  Overflow = 2,          // Disconnect overflow policy tripped
  ProtocolError = 3,     // malformed frame stream
  ServerShutdown = 4,
};
inline constexpr std::size_t kShedReasonCount = 5;
const char* shed_reason_name(ShedReason reason) noexcept;

struct FilterSpec {
  FilterKind kind = FilterKind::All;
  /// User id (FilterKind::User) or ward id (FilterKind::Ward).
  std::uint64_t id = 0;
};

/// One fan-out event: a merged fleet event stamped with the bus's
/// monotonic sequence number (sequences start at 1; 0 is "none").
struct TelemetryEvent {
  std::uint64_t seq = 0;
  std::uint16_t shard = 0;
  core::PipelineEventKind kind = core::PipelineEventKind::RateUpdate;
  core::SignalHealth health = core::SignalHealth::Ok;
  bool reliable = false;
  std::uint64_t user_id = 0;
  double time_s = 0.0;
  double rate_bpm = 0.0;
};

TelemetryEvent make_event(std::uint64_t seq, std::uint16_t shard,
                          const core::PipelineEvent& event);

// --- frames ----------------------------------------------------------------

struct SubscribeFrame {
  FilterSpec filter{};
  OverflowPolicy policy = OverflowPolicy::DropOldest;
  /// Last sequence this client delivered before disconnecting (0 = a
  /// fresh subscription; the server replays seq > cursor from its ring).
  std::uint64_t resume_cursor = 0;
};

struct HeartbeatFrame {
  double client_time_s = 0.0;
};

struct SubAckFrame {
  std::uint64_t subscription_id = 0;
  /// First live sequence this subscription will see after any replay.
  std::uint64_t next_seq = 1;
  /// Ring events re-enqueued to cover the resume gap.
  std::uint64_t replayed = 0;
  /// Sequences between the cursor and the ring's oldest retained event:
  /// irrecoverably missed (the client was away longer than the ring).
  std::uint64_t gap = 0;
};

struct EventFrame {
  TelemetryEvent event{};
};

/// In-stream drop accounting: `dropped` events before `next_seq` were
/// shed from this subscriber's queue (DropOldest under overload).
struct GapFrame {
  std::uint64_t next_seq = 0;
  std::uint64_t dropped = 0;
};

struct ShedFrame {
  ShedReason reason = ShedReason::SlowConsumer;
};

using Frame = std::variant<SubscribeFrame, HeartbeatFrame, SubAckFrame,
                           EventFrame, GapFrame, ShedFrame>;

FrameType frame_type(const Frame& frame) noexcept;

/// Serializes one frame (header + payload).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental reassembler over an arbitrary byte-stream chunking.
class FrameParser {
 public:
  /// `max_payload` bounds accepted payload lengths: a corrupted or
  /// hostile length field is a DecodeError, never a giant allocation.
  explicit FrameParser(std::size_t max_payload = 1 << 16);

  void feed(std::span<const std::uint8_t> bytes);

  /// Next complete frame, or nullopt when more bytes are needed.
  /// Throws llrp::DecodeError on a malformed stream; the parser is
  /// unusable afterwards (tear the connection down).
  std::optional<Frame> next();

  std::size_t buffered() const noexcept { return buffer_.size() - head_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;
};

}  // namespace tagbreathe::telemetry
