#include "telemetry/service.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/observability.hpp"

namespace tagbreathe::telemetry {

namespace {

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

void TelemetryServiceConfig::validate() const {
  bus.validate();
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("TelemetryServiceConfig: " + what);
  };
  if (heartbeat_timeout_s < 0.0) bad("heartbeat_timeout_s must be >= 0");
  if (max_events_per_pump == 0) bad("max_events_per_pump must be positive");
  if (max_frame_payload < 64) bad("max_frame_payload too small for any frame");
  if (max_inflight_bytes == 0) bad("max_inflight_bytes must be positive");
}

std::string handle_http_request(const std::string& request,
                                const obs::Observability* hub) {
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos)
    return http_response("400 Bad Request", "text/plain", "bad request\n");
  const std::string method = line.substr(0, sp1);
  const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET")
    return http_response("405 Method Not Allowed", "text/plain",
                         "GET only\n");
  if (path == "/healthz")
    return http_response("200 OK", "text/plain", "ok\n");
  if (path == "/metrics" || path == "/metrics.json") {
    if (hub == nullptr)
      return http_response("503 Service Unavailable", "text/plain",
                           "no observability hub bound\n");
    const obs::ObservabilitySnapshot snap = hub->snapshot();
    if (path == "/metrics")
      return http_response("200 OK", "text/plain; version=0.0.4",
                           obs::to_prometheus(snap));
    return http_response("200 OK", "application/json", obs::to_json(snap));
  }
  return http_response("404 Not Found", "text/plain", "not found\n");
}

struct TelemetryService::Connection {
  std::uint64_t id = 0;
  llrp::ByteChannel* channel = nullptr;
  enum class Mode { Undecided, Framed, Http, Closed } mode = Mode::Undecided;
  FrameParser parser;
  std::uint64_t subscription = 0;  // 0 = none yet
  double last_heard_s = 0.0;
  std::string http_buffer;

  Connection(std::size_t max_payload) : parser(max_payload) {}
};

TelemetryService::TelemetryService(TelemetryServiceConfig config,
                                   EventBus::WardFn ward_of)
    : config_(config), bus_(config.bus, std::move(ward_of)) {
  config_.validate();
}

TelemetryService::~TelemetryService() = default;

std::uint64_t TelemetryService::accept(llrp::ByteChannel& channel,
                                       double now_s) {
  auto conn = std::make_unique<Connection>(config_.max_frame_payload);
  conn->id = next_conn_id_++;
  conn->channel = &channel;
  conn->last_heard_s = now_s;
  ++counters_.accepted;
  const std::uint64_t id = conn->id;
  connections_.emplace(id, std::move(conn));
  return id;
}

void TelemetryService::send(Connection& conn, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  conn.channel->write(llrp::Side::Reader, bytes);
}

void TelemetryService::close_locked(Connection& conn, ShedReason reason,
                                    bool send_shed) {
  if (conn.mode == Connection::Mode::Closed) return;
  if (conn.subscription != 0) bus_.shed(conn.subscription, reason);
  if (send_shed && conn.mode == Connection::Mode::Framed) {
    send(conn, ShedFrame{reason});
    ++counters_.shed_frames_sent;
  }
  conn.mode = Connection::Mode::Closed;
  ++counters_.closed;
}

void TelemetryService::close(std::uint64_t conn_id, ShedReason reason) {
  const auto it = connections_.find(conn_id);
  if (it != connections_.end()) close_locked(*it->second, reason, true);
}

void TelemetryService::handle_frame(Connection& conn, const Frame& frame,
                                    double now_s) {
  conn.last_heard_s = now_s;
  if (const auto* sub = std::get_if<SubscribeFrame>(&frame)) {
    if (conn.subscription != 0) {
      // One subscription per connection; a second Subscribe is a
      // protocol error.
      ++counters_.protocol_errors;
      close_locked(conn, ShedReason::ProtocolError, true);
      return;
    }
    EventBus::ResumeResult rr;
    conn.subscription =
        bus_.subscribe(sub->filter, sub->policy, sub->resume_cursor, &rr);
    ++counters_.subscriptions;
    SubAckFrame ack;
    ack.subscription_id = conn.subscription;
    ack.next_seq = rr.next_seq;
    ack.replayed = rr.replayed;
    ack.gap = rr.gap;
    send(conn, ack);
    return;
  }
  if (std::holds_alternative<HeartbeatFrame>(frame)) {
    ++counters_.heartbeats;
    return;
  }
  // Clients have no business sending server->client frames.
  ++counters_.protocol_errors;
  close_locked(conn, ShedReason::ProtocolError, true);
}

void TelemetryService::service_connection(Connection& conn, double now_s) {
  // --- ingest client bytes -------------------------------------------------
  const std::vector<std::uint8_t> bytes =
      conn.channel->read(llrp::Side::Reader);
  if (!bytes.empty() && conn.mode == Connection::Mode::Undecided)
    conn.mode = bytes[0] == 0x54 ? Connection::Mode::Framed
                                 : Connection::Mode::Http;

  if (conn.mode == Connection::Mode::Http) {
    conn.http_buffer.append(bytes.begin(), bytes.end());
    if (conn.http_buffer.find("\r\n\r\n") != std::string::npos ||
        conn.http_buffer.find("\n\n") != std::string::npos) {
      ++counters_.http_requests;
      const std::string response =
          handle_http_request(conn.http_buffer, hub_);
      conn.channel->write(
          llrp::Side::Reader,
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(response.data()),
              response.size()));
      conn.mode = Connection::Mode::Closed;
      ++counters_.closed;
    }
    return;
  }

  if (conn.mode == Connection::Mode::Framed) {
    conn.parser.feed(bytes);
    try {
      while (auto frame = conn.parser.next()) {
        handle_frame(conn, *frame, now_s);
        if (conn.mode != Connection::Mode::Framed) return;
      }
    } catch (const llrp::DecodeError&) {
      ++counters_.protocol_errors;
      close_locked(conn, ShedReason::ProtocolError, true);
      return;
    }
  }

  // --- heartbeat timeout ---------------------------------------------------
  if (conn.mode == Connection::Mode::Framed && conn.subscription != 0 &&
      config_.heartbeat_timeout_s > 0.0 &&
      now_s - conn.last_heard_s > config_.heartbeat_timeout_s) {
    ++counters_.heartbeat_timeouts;
    close_locked(conn, ShedReason::HeartbeatTimeout, true);
    return;
  }

  // --- drain the subscription into Event frames ----------------------------
  if (conn.mode == Connection::Mode::Framed && conn.subscription != 0) {
    // Send-side backpressure: a consumer that stopped reading keeps its
    // bytes in flight; we stop draining so the bounded bus queue backs
    // up and the ladder (not the channel) absorbs the overload.
    if (conn.channel->pending(llrp::Side::Client) > config_.max_inflight_bytes)
      return;
    std::vector<TelemetryEvent> events;
    const EventBus::DrainResult dr =
        bus_.drain(conn.subscription, events, config_.max_events_per_pump);
    if (dr.shed) {
      // The bus shed this subscriber (slow-consumer ladder or overflow
      // Disconnect policy) — tell the client why, then hang up.
      send(conn, ShedFrame{dr.shed_reason});
      ++counters_.shed_frames_sent;
      conn.mode = Connection::Mode::Closed;
      ++counters_.closed;
      return;
    }
    if (dr.gap_dropped > 0) {
      send(conn, GapFrame{dr.gap_next_seq, dr.gap_dropped});
      ++counters_.gap_frames_sent;
    }
    for (const TelemetryEvent& event : events) {
      send(conn, EventFrame{event});
      ++counters_.events_sent;
    }
  }
}

void TelemetryService::pump(double now_s) {
  // Ladder first: it judges queue backlogs as they stood between pumps
  // (and mirrors bus counters into the registry before any HTTP scrape
  // this pump answers).
  bus_.tick();
  for (auto& [id, conn] : connections_) {
    (void)id;
    if (conn->mode != Connection::Mode::Closed)
      service_connection(*conn, now_s);
  }
  // Drop closed connections from the registry (their channels belong to
  // the caller; subscriptions stay in the bus for post-run audits).
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->mode == Connection::Mode::Closed)
      it = connections_.erase(it);
    else
      ++it;
  }
  publish_metrics();
}

void TelemetryService::shutdown() {
  for (auto& [id, conn] : connections_) {
    (void)id;
    close_locked(*conn, ShedReason::ServerShutdown, true);
  }
  connections_.clear();
  publish_metrics();
}

bool TelemetryService::connection_open(std::uint64_t conn_id) const {
  const auto it = connections_.find(conn_id);
  return it != connections_.end() &&
         it->second->mode != Connection::Mode::Closed;
}

std::size_t TelemetryService::open_connections() const {
  std::size_t n = 0;
  for (const auto& [id, conn] : connections_) {
    (void)id;
    if (conn->mode != Connection::Mode::Closed) ++n;
  }
  return n;
}

std::uint64_t TelemetryService::subscription_of(std::uint64_t conn_id) const {
  const auto it = connections_.find(conn_id);
  return it == connections_.end() ? 0 : it->second->subscription;
}

void TelemetryService::bind_observability(obs::Observability& hub) {
  hub_ = &hub;
  bus_.bind_observability(hub);
  obs::MetricsRegistry& m = hub.metrics();
  obs_.accepted = &m.counter("telemetry_connections_accepted_total");
  obs_.closed = &m.counter("telemetry_connections_closed_total");
  obs_.events_sent = &m.counter("telemetry_events_sent_total");
  obs_.gap_frames = &m.counter("telemetry_gap_frames_total");
  obs_.shed_frames = &m.counter("telemetry_shed_frames_total");
  obs_.protocol_errors = &m.counter("telemetry_protocol_errors_total");
  obs_.heartbeat_timeouts = &m.counter("telemetry_heartbeat_timeouts_total");
  obs_.http_requests = &m.counter("telemetry_http_requests_total");
  obs_.open_conns = &m.gauge("telemetry_open_connections");
  publish_metrics();
}

void TelemetryService::publish_metrics() {
  if (hub_ == nullptr || obs_.accepted == nullptr) return;
  obs_.accepted->set(counters_.accepted);
  obs_.closed->set(counters_.closed);
  obs_.events_sent->set(counters_.events_sent);
  obs_.gap_frames->set(counters_.gap_frames_sent);
  obs_.shed_frames->set(counters_.shed_frames_sent);
  obs_.protocol_errors->set(counters_.protocol_errors);
  obs_.heartbeat_timeouts->set(counters_.heartbeat_timeouts);
  obs_.http_requests->set(counters_.http_requests);
  obs_.open_conns->set(static_cast<double>(open_connections()));
}

}  // namespace tagbreathe::telemetry
