#include "telemetry/event_bus.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

#include "obs/observability.hpp"

namespace tagbreathe::telemetry {

const char* subscriber_state_name(SubscriberState state) noexcept {
  switch (state) {
    case SubscriberState::Up: return "Up";
    case SubscriberState::Lagging: return "Lagging";
    case SubscriberState::Shed: return "Shed";
  }
  return "Unknown";
}

void EventBusConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("EventBusConfig: " + what);
  };
  if (queue_capacity == 0) bad("queue_capacity must be positive");
  if (lagging_above > queue_capacity)
    bad("lagging_above exceeds queue_capacity");
  if (effective_lagging_above() == 0)
    bad("lagging threshold degenerates to 0 (queue_capacity too small; "
        "set lagging_above explicitly)");
  if (effective_up_below() >= effective_lagging_above())
    bad("up_below must sit strictly below lagging_above (hysteresis)");
}

struct EventBus::Subscription {
  FilterSpec filter{};
  OverflowPolicy policy = OverflowPolicy::DropOldest;
  SubscriberState state = SubscriberState::Up;
  /// False once shed or gracefully closed; counters are frozen then.
  bool live = true;
  ShedReason shed_reason = ShedReason::SlowConsumer;
  std::size_t lagging_ticks = 0;
  SubscriptionCounters counters;
  std::deque<TelemetryEvent> queue;
  /// Events shed from this queue since the last drain — surfaced to the
  /// consumer as a Gap frame ahead of the next delivery.
  std::uint64_t pending_gap_dropped = 0;
};

EventBus::EventBus(EventBusConfig config, WardFn ward_of)
    : config_(config), ward_of_(std::move(ward_of)) {
  config_.validate();
  ring_.resize(config_.replay_ring_capacity);
}

EventBus::~EventBus() = default;

bool EventBus::filter_matches(const FilterSpec& filter,
                              const TelemetryEvent& event) const {
  switch (filter.kind) {
    case FilterKind::All:
      return true;
    case FilterKind::User:
      return event.user_id == filter.id;
    case FilterKind::Ward:
      return (ward_of_ ? ward_of_(event.user_id) : 0u) == filter.id;
    case FilterKind::AlarmOnly:
      return event.kind != core::PipelineEventKind::RateUpdate;
  }
  return false;
}

void EventBus::offer_locked(Subscription& sub, const TelemetryEvent& event,
                            bool replay) {
  ++sub.counters.published;
  if (replay) {
    ++sub.counters.replayed;
    ++counters_.replayed_events;
  }
  if (sub.queue.size() < config_.queue_capacity) {
    sub.queue.push_back(event);
    ++counters_.fanout_enqueued;
    return;
  }
  switch (sub.policy) {
    case OverflowPolicy::CoalescePerUser:
      // One fresh rate per user survives overload; alarms never
      // coalesce. The absorbed event is erased (not overwritten in
      // place) so delivered sequence numbers stay monotonic.
      if (event.kind == core::PipelineEventKind::RateUpdate) {
        for (auto it = sub.queue.rbegin(); it != sub.queue.rend(); ++it) {
          if (it->kind == core::PipelineEventKind::RateUpdate &&
              it->user_id == event.user_id) {
            sub.queue.erase(std::next(it).base());
            sub.queue.push_back(event);
            ++sub.counters.coalesced;
            ++counters_.fanout_coalesced;
            ++counters_.fanout_enqueued;
            return;
          }
        }
      }
      [[fallthrough]];  // nothing coalescible queued: newest data wins
    case OverflowPolicy::DropOldest:
      ++sub.counters.dropped;
      ++counters_.fanout_dropped;
      ++sub.pending_gap_dropped;
      sub.queue.pop_front();
      sub.queue.push_back(event);
      ++counters_.fanout_enqueued;
      return;
    case OverflowPolicy::Disconnect:
      // The incoming event is part of the shed spill.
      ++sub.counters.dropped;
      ++counters_.fanout_dropped;
      shed_locked(sub, ShedReason::Overflow);
      return;
  }
}

void EventBus::shed_locked(Subscription& sub, ShedReason reason) {
  if (!sub.live) return;
  sub.counters.dropped += sub.queue.size();
  counters_.fanout_dropped += sub.queue.size();
  sub.queue.clear();
  sub.queue.shrink_to_fit();
  sub.live = false;
  sub.state = SubscriberState::Shed;
  sub.shed_reason = reason;
  ++counters_.sheds[static_cast<std::size_t>(reason)];
}

std::uint64_t EventBus::subscribe(const FilterSpec& filter,
                                  OverflowPolicy policy,
                                  std::uint64_t resume_cursor,
                                  ResumeResult* resume) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_subscription_id_++;
  auto sub = std::make_unique<Subscription>();
  sub->filter = filter;
  sub->policy = policy;
  ++counters_.subscribes;

  ResumeResult rr;
  rr.next_seq = last_seq_ + 1;
  if (resume_cursor > 0) {
    ++counters_.resumes;
    // A cursor ahead of the stream is a protocol anomaly; clamp it so
    // the arithmetic below stays in-range.
    const std::uint64_t cursor = std::min(resume_cursor, last_seq_);
    const std::size_t cap = config_.replay_ring_capacity;
    if (cap == 0) {
      rr.gap = last_seq_ - cursor;
    } else {
      const std::uint64_t oldest =
          last_seq_ > cap ? last_seq_ - cap + 1 : 1;
      const std::uint64_t replay_from = std::max(cursor + 1, oldest);
      rr.gap = replay_from - (cursor + 1);
      for (std::uint64_t seq = replay_from; seq <= last_seq_; ++seq) {
        // A Disconnect-policy subscription can be shed by its own
        // replay overflowing; a dead subscription takes no more offers.
        if (!sub->live) break;
        const TelemetryEvent& event = ring_[(seq - 1) % cap];
        if (filter_matches(filter, event)) offer_locked(*sub, event, true);
      }
    }
    counters_.gap_sequences += rr.gap;
  }
  rr.replayed = sub->counters.replayed;
  if (resume != nullptr) *resume = rr;
  subscriptions_.emplace(id, std::move(sub));
  return id;
}

void EventBus::unsubscribe(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end() || !it->second->live) return;
  Subscription& sub = *it->second;
  sub.counters.dropped += sub.queue.size();
  counters_.fanout_dropped += sub.queue.size();
  sub.queue.clear();
  sub.queue.shrink_to_fit();
  sub.live = false;
  ++counters_.unsubscribes;
}

void EventBus::shed(std::uint64_t id, ShedReason reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subscriptions_.find(id);
  if (it != subscriptions_.end()) shed_locked(*it->second, reason);
}

void EventBus::publish(std::uint16_t shard, const core::PipelineEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.events_published;
  const std::uint64_t seq = ++last_seq_;
  const TelemetryEvent te = make_event(seq, shard, event);
  if (!ring_.empty()) ring_[(seq - 1) % ring_.size()] = te;
  for (auto& [id, sub] : subscriptions_) {
    (void)id;
    if (!sub->live) continue;
    if (filter_matches(sub->filter, te)) {
      offer_locked(*sub, te, false);
    } else {
      ++counters_.filtered_out;
    }
  }
}

void EventBus::tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t lagging_above = config_.effective_lagging_above();
  const std::size_t up_below = config_.effective_up_below();
  for (auto& [id, sub] : subscriptions_) {
    (void)id;
    if (!sub->live) continue;
    const std::size_t backlog = sub->queue.size();
    if (sub->state == SubscriberState::Up) {
      if (backlog >= lagging_above) {
        sub->state = SubscriberState::Lagging;
        sub->lagging_ticks = 1;
      }
    } else if (sub->state == SubscriberState::Lagging) {
      if (backlog <= up_below) {
        sub->state = SubscriberState::Up;
        sub->lagging_ticks = 0;
      } else {
        ++sub->lagging_ticks;
      }
    }
    if (sub->state == SubscriberState::Lagging &&
        config_.shed_after_lagging_ticks > 0 &&
        sub->lagging_ticks >= config_.shed_after_lagging_ticks) {
      shed_locked(*sub, ShedReason::SlowConsumer);
    }
  }
  publish_metrics_locked();
}

EventBus::DrainResult EventBus::drain(std::uint64_t id,
                                      std::vector<TelemetryEvent>& out,
                                      std::size_t max_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  DrainResult result;
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    result.shed = true;
    return result;
  }
  Subscription& sub = *it->second;
  if (!sub.live) {
    result.shed = true;
    result.shed_reason = sub.shed_reason;
    return result;
  }
  if (sub.pending_gap_dropped > 0) {
    result.gap_dropped = sub.pending_gap_dropped;
    result.gap_next_seq =
        sub.queue.empty() ? last_seq_ + 1 : sub.queue.front().seq;
    sub.pending_gap_dropped = 0;
  }
  while (result.delivered < max_events && !sub.queue.empty()) {
    out.push_back(sub.queue.front());
    sub.queue.pop_front();
    ++sub.counters.delivered;
    ++result.delivered;
  }
  return result;
}

SubscriberState EventBus::state(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? SubscriberState::Shed
                                    : it->second->state;
}

SubscriptionCounters EventBus::subscription_counters(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? SubscriptionCounters{}
                                    : it->second->counters;
}

std::size_t EventBus::queued(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? 0 : it->second->queue.size();
}

void EventBus::for_each_subscription(
    const std::function<void(std::uint64_t, const FilterSpec&,
                             SubscriberState, const SubscriptionCounters&,
                             std::size_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, sub] : subscriptions_)
    fn(id, sub->filter, sub->state, sub->counters, sub->queue.size());
}

BusCounters EventBus::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::uint64_t EventBus::last_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_seq_;
}

std::size_t EventBus::subscriptions_in(SubscriberState state) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, sub] : subscriptions_) {
    (void)id;
    if (state == SubscriberState::Shed
            ? sub->state == SubscriberState::Shed
            : (sub->live && sub->state == state))
      ++n;
  }
  return n;
}

std::size_t EventBus::live_subscriptions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, sub] : subscriptions_) {
    (void)id;
    if (sub->live) ++n;
  }
  return n;
}

void EventBus::bind_observability(obs::Observability& hub) {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsRegistry& m = hub.metrics();
  obs_.hub = &hub;
  obs_.published = &m.counter("telemetry_events_published_total");
  obs_.enqueued = &m.counter("telemetry_fanout_enqueued_total");
  obs_.dropped = &m.counter("telemetry_fanout_dropped_total");
  obs_.coalesced = &m.counter("telemetry_fanout_coalesced_total");
  obs_.filtered = &m.counter("telemetry_fanout_filtered_total");
  obs_.subscribes = &m.counter("telemetry_subscribes_total");
  obs_.resumes = &m.counter("telemetry_resumes_total");
  obs_.replayed = &m.counter("telemetry_replayed_events_total");
  obs_.gap_sequences = &m.counter("telemetry_resume_gap_sequences_total");
  for (std::size_t r = 0; r < kShedReasonCount; ++r)
    obs_.sheds[r] = &m.counter(
        "telemetry_sheds_total", "reason",
        shed_reason_name(static_cast<ShedReason>(r)));
  for (std::size_t s = 0; s < kSubscriberStateCount; ++s)
    obs_.subscribers[s] = &m.gauge(
        "telemetry_subscribers", "state",
        subscriber_state_name(static_cast<SubscriberState>(s)));
  obs_.ring_seq = &m.gauge("telemetry_last_seq");
  publish_metrics_locked();
}

void EventBus::publish_metrics_locked() {
  if (obs_.hub == nullptr) return;
  obs_.published->set(counters_.events_published);
  obs_.enqueued->set(counters_.fanout_enqueued);
  obs_.dropped->set(counters_.fanout_dropped);
  obs_.coalesced->set(counters_.fanout_coalesced);
  obs_.filtered->set(counters_.filtered_out);
  obs_.subscribes->set(counters_.subscribes);
  obs_.resumes->set(counters_.resumes);
  obs_.replayed->set(counters_.replayed_events);
  obs_.gap_sequences->set(counters_.gap_sequences);
  for (std::size_t r = 0; r < kShedReasonCount; ++r)
    obs_.sheds[r]->set(counters_.sheds[r]);
  std::size_t by_state[kSubscriberStateCount] = {};
  for (const auto& [id, sub] : subscriptions_) {
    (void)id;
    if (sub->state == SubscriberState::Shed)
      ++by_state[static_cast<std::size_t>(SubscriberState::Shed)];
    else if (sub->live)
      ++by_state[static_cast<std::size_t>(sub->state)];
  }
  for (std::size_t s = 0; s < kSubscriberStateCount; ++s)
    obs_.subscribers[s]->set(static_cast<double>(by_state[s]));
  obs_.ring_seq->set(static_cast<double>(last_seq_));
}

}  // namespace tagbreathe::telemetry
