#include "rfid/epc.hpp"

#include <cctype>

namespace tagbreathe::rfid {

Epc96 Epc96::from_user_tag(std::uint64_t user_id,
                           std::uint32_t tag_id) noexcept {
  std::array<std::uint8_t, kBytes> bytes{};
  for (int i = 0; i < 8; ++i)
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(user_id >> (56 - 8 * i));
  for (int i = 0; i < 4; ++i)
    bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(tag_id >> (24 - 8 * i));
  return Epc96(bytes);
}

namespace {
int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<Epc96> Epc96::from_hex(std::string_view hex) {
  std::array<std::uint8_t, kBytes> bytes{};
  std::size_t nibbles = 0;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ':' || c == '-')
      continue;
    const int v = hex_value(c);
    if (v < 0) return std::nullopt;
    if (nibbles >= 2 * kBytes) return std::nullopt;
    if (nibbles % 2 == 0)
      bytes[nibbles / 2] = static_cast<std::uint8_t>(v << 4);
    else
      bytes[nibbles / 2] |= static_cast<std::uint8_t>(v);
    ++nibbles;
  }
  if (nibbles != 2 * kBytes) return std::nullopt;
  return Epc96(bytes);
}

std::uint64_t Epc96::user_id() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v = (v << 8) | bytes_[static_cast<std::size_t>(i)];
  return v;
}

std::uint32_t Epc96::tag_id() const noexcept {
  std::uint32_t v = 0;
  for (int i = 8; i < 12; ++i)
    v = (v << 8) | bytes_[static_cast<std::size_t>(i)];
  return v;
}

std::string Epc96::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * kBytes);
  for (std::uint8_t b : bytes_) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

std::size_t Epc96Hash::operator()(const Epc96& epc) const noexcept {
  // FNV-1a over the 12 bytes.
  std::size_t h = 1469598103934665603ULL;
  for (std::uint8_t b : epc.bytes()) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace tagbreathe::rfid
