// Reader antenna descriptor.
//
// An R420 drives up to four directional antennas in round-robin; only one
// is powered at a time (Sec. IV-D.3), so the system's power draw does not
// grow with antenna count and antennas never interfere with each other.
#pragma once

#include <cstdint>

#include "common/geometry.hpp"

namespace tagbreathe::rfid {

struct Antenna {
  std::uint8_t port = 1;  // LLRP antenna IDs are 1-based
  common::Vec3 position{0.0, 0.0, 1.0};  // paper: ~1 m above ground
  double gain_dbi = 8.5;  // Alien ALR-8696-C circular patch
};

}  // namespace tagbreathe::rfid
