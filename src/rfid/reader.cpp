#include "rfid/reader.hpp"

#include <cmath>
#include <stdexcept>

namespace tagbreathe::rfid {

ReaderSim::ReaderSim(ReaderConfig config,
                     std::vector<std::unique_ptr<TagBehavior>> tags)
    : config_(std::move(config)),
      tags_(std::move(tags)),
      link_(config_.link),
      phase_(config_.phase),
      hops_(config_.plan, config_.hop_seed),
      mac_(tags_.empty() ? 1 : tags_.size(), config_.mac_timings, config_.q),
      rng_(config_.seed),
      energised_(tags_.size(), false),
      fwd_margin_db_(tags_.size(), -100.0),
      rev_margin_db_(tags_.size(), -100.0),
      mean_rssi_dbm_(tags_.size(), -120.0),
      reads_per_tag_(tags_.size(), 0) {
  if (tags_.empty()) throw std::invalid_argument("ReaderSim: no tags");
  if (config_.antennas.empty())
    throw std::invalid_argument("ReaderSim: no antennas");
  for (const auto& tag : tags_) {
    if (!tag) throw std::invalid_argument("ReaderSim: null tag");
  }
  if (config_.select_filter) {
    std::vector<bool> selected(tags_.size(), false);
    for (std::size_t i = 0; i < tags_.size(); ++i)
      selected[i] = config_.select_filter(tags_[i]->epc());
    mac_.set_select_mask(std::move(selected));
  }
}

void ReaderSim::refresh_link_state() {
  const std::size_t channel = hops_.channel_at(now_);
  const Antenna& ant = config_.antennas[antenna_idx_];
  const double freq = hops_.plan().frequency_hz(channel);
  // Per-port gain deviation from the configured budget gain.
  const double gain_delta = ant.gain_dbi - config_.link.reader_antenna_gain_dbi;

  for (std::size_t i = 0; i < tags_.size(); ++i) {
    const common::Vec3 pos = tags_[i]->position_at(now_);
    const double extra = tags_[i]->extra_attenuation_db(ant.position, now_);
    const double fwd =
        link_.forward_power_dbm(ant.position, pos, freq, extra) + gain_delta;
    const double rssi =
        link_.backscatter_rssi_dbm(ant.position, pos, freq, extra) +
        2.0 * gain_delta;
    energised_[i] = tags_[i]->present_at(now_) && link_.tag_participates(fwd);
    fwd_margin_db_[i] = fwd - config_.link.tag_sensitivity_dbm;
    rev_margin_db_[i] = rssi - config_.link.reader_sensitivity_dbm;
    mean_rssi_dbm_[i] = rssi;
  }
  link_valid_until_ = now_ + config_.link_refresh_s;
  link_channel_ = channel;
  link_antenna_ = antenna_idx_;
}

void ReaderSim::maybe_hop() {
  const double hop_at = hops_.next_hop_time(now_);
  // next_hop_time is strictly ahead; invalidate the cache when crossed.
  if (hops_.channel_at(now_) != link_channel_) {
    mac_.abort_frame();
    now_ += config_.hop_gap_s;
    link_valid_until_ = -1.0;
  }
  (void)hop_at;
}

void ReaderSim::maybe_switch_antenna() {
  if (config_.antennas.size() < 2) return;
  const bool round_done = mac_.stats().rounds_completed > rounds_at_switch_;
  const bool dwell_over = now_ - antenna_since_ > config_.max_antenna_dwell_s;
  if (!round_done && !dwell_over) return;
  antenna_idx_ = (antenna_idx_ + 1) % config_.antennas.size();
  antenna_since_ = now_;
  rounds_at_switch_ = mac_.stats().rounds_completed;
  // A new port starts a fresh inventory of its own field of view.
  mac_.reset_session();
  link_valid_until_ = -1.0;
}

core::TagRead ReaderSim::make_report(std::size_t tag_index, double t_meas) {
  const Antenna& ant = config_.antennas[antenna_idx_];
  const std::size_t channel = hops_.channel_at(t_meas);
  const double freq = hops_.plan().frequency_hz(channel);
  const double lambda = hops_.plan().wavelength_m(channel);
  const TagBehavior& tag = *tags_[tag_index];

  const common::Vec3 pos = tag.position_at(t_meas);
  const double d = common::distance(ant.position, pos);

  // RSSI: mean link value + per-read fading, quantised to 0.5 dBm.
  const double rssi_true =
      mean_rssi_dbm_[tag_index] +
      rng_.normal(0.0, config_.link.shadow_sigma_db * 0.6);
  const double rssi_report = link_.quantize_rssi(rssi_true);

  // Phase: Eq. 1 evaluated at the true distance, plus SNR-scaled noise.
  const std::uint64_t tag_key = Epc96Hash{}(tag.epc());
  const double phase =
      phase_.measure_phase(d, lambda, channel, tag_key, rssi_true, rng_);

  // Doppler: radial velocity by symmetric differencing of the true
  // geometry (breathing wall speed is ~mm/s).
  constexpr double kHalfStep = 1.0e-3;
  const double d_before =
      common::distance(ant.position, tag.position_at(t_meas - kHalfStep));
  const double d_after =
      common::distance(ant.position, tag.position_at(t_meas + kHalfStep));
  const double v_radial = (d_after - d_before) / (2.0 * kHalfStep);
  const double doppler = phase_.measure_doppler(v_radial, lambda, rng_);

  core::TagRead read;
  read.time_s = t_meas;
  read.epc = tag.epc();
  read.antenna_id = ant.port;
  read.channel_index = static_cast<std::uint16_t>(channel);
  read.frequency_hz = freq;
  read.rssi_dbm = rssi_report;
  read.phase_rad = phase;
  read.doppler_hz = doppler;
  return read;
}

void ReaderSim::run(double duration_s,
                    const std::function<void(const core::TagRead&)>& on_read) {
  const double end = now_ + duration_s;
  if (link_valid_until_ < 0.0) refresh_link_state();

  while (now_ < end) {
    maybe_hop();
    maybe_switch_antenna();
    if (now_ >= link_valid_until_ || hops_.channel_at(now_) != link_channel_ ||
        antenna_idx_ != link_antenna_) {
      refresh_link_state();
    }

    // Per-attempt decode probability: logistic in the link margin with a
    // fresh shadow-fading draw per attempt.
    const auto decode_p = [this](std::size_t i) {
      const double shadow = rng_.normal(0.0, config_.link.shadow_sigma_db);
      return link_.read_success_probability(fwd_margin_db_[i] + shadow,
                                            rev_margin_db_[i] + shadow);
    };

    const SlotResult slot = mac_.step(energised_, decode_p, rng_);
    const double slot_start = now_;
    now_ += slot.duration_s;

    if (slot.kind == SlotKind::Success) {
      const auto idx = static_cast<std::size_t>(slot.tag_index);
      // Measurement happens mid-backscatter, before the slot ends.
      const double t_meas = slot_start + 0.5 * slot.duration_s;
      ++reads_per_tag_[idx];
      if (on_read) on_read(make_report(idx, t_meas));
    }
  }
}

core::ReadStream ReaderSim::run(double duration_s) {
  core::ReadStream out;
  run(duration_s, [&out](const core::TagRead& r) { out.push_back(r); });
  return out;
}

void ReaderSim::skip(double duration_s) noexcept {
  if (duration_s <= 0.0) return;
  now_ += duration_s;
  // Cached link geometry is stale after the jump.
  link_valid_until_ = -1.0;
}

}  // namespace tagbreathe::rfid
