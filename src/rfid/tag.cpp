#include "rfid/tag.hpp"

#include <stdexcept>

#include "rfid/link_budget.hpp"

namespace tagbreathe::rfid {

BodyTag::BodyTag(Epc96 epc, const body::Subject* subject, body::TagSite site)
    : TagBehavior(epc), subject_(subject), site_(site) {
  if (subject == nullptr)
    throw std::invalid_argument("BodyTag: null subject");
}

common::Vec3 BodyTag::position_at(double t) const {
  return subject_->tag_position(site_, t);
}

double BodyTag::extra_attenuation_db(const common::Vec3& antenna_pos,
                                     double /*t*/) const {
  const double orientation = subject_->orientation_to(antenna_pos);
  return LinkBudget::body_attenuation_db(orientation);
}

StaticTag::StaticTag(Epc96 epc, common::Vec3 position,
                     double mounting_loss_db) noexcept
    : TagBehavior(epc),
      position_(position),
      mounting_loss_db_(mounting_loss_db) {}

common::Vec3 StaticTag::position_at(double /*t*/) const { return position_; }

double StaticTag::extra_attenuation_db(const common::Vec3& /*antenna_pos*/,
                                       double /*t*/) const {
  return mounting_loss_db_;
}

bool StaticTag::present_at(double t) const {
  return t >= appear_s_ && t < disappear_s_;
}

void StaticTag::set_presence_window(double appear_s, double disappear_s) {
  if (disappear_s <= appear_s)
    throw std::invalid_argument("StaticTag: empty presence window");
  appear_s_ = appear_s;
  disappear_s_ = disappear_s;
}

}  // namespace tagbreathe::rfid
