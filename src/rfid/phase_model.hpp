// Physical-layer measurement model: phase (Eq. 1) and Doppler (Eq. 2).
//
// The reported phase is θ = (2π/λ · 2d + c) mod 2π where the offset c
// bundles reader and tag circuit delays. c changes with the channel
// (different λ and RF front-end response) and with the tag — which is why
// the paper differences consecutive *same-channel, same-tag* readings
// (Eq. 3) instead of using raw values. Reports are noisy (phase-locked
// loop jitter, thermal noise scaling with 1/sqrt(SNR)) and quantised
// (the R420 reports phase on a 12-bit grid).
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace tagbreathe::rfid {

struct PhaseModelConfig {
  /// Noise floor [rad] at high SNR. This is the *sample-to-sample
  /// repeatability* of consecutive reports (what Eq. 3 differencing
  /// sees), not the absolute accuracy: R420-class readers repeat to a
  /// couple of hundredths of a radian at strong RSSI.
  double phase_sigma_floor_rad = 0.015;
  /// Thermal term: sigma^2 gains c/SNR_linear.
  double phase_snr_coeff = 0.25;
  /// Receiver noise floor for SNR computation [dBm].
  double noise_floor_dbm = -95.0;
  /// Report quantisation: 2π / 4096 (12-bit phase field).
  double phase_quantum_rad = 0.0015339807878856412;  // 2*pi/4096
  /// Duration over which the reader measures the intra-packet phase
  /// rotation for Doppler (Eq. 2) [s].
  double doppler_packet_duration_s = 2.5e-3;
  /// Phase-rotation measurement noise for Doppler [rad].
  double doppler_delta_theta_sigma_rad = 0.1;
  /// Seed for per-channel/per-tag offset synthesis.
  std::uint64_t offset_seed = 7;
};

class PhaseModel {
 public:
  explicit PhaseModel(PhaseModelConfig config) : config_(config) {}

  /// Deterministic offset c for a (channel, tag) pair, in [0, 2π).
  double phase_offset(std::size_t channel_index,
                      std::uint64_t tag_key) const noexcept;

  /// Phase report noise sigma [rad] at the given RSSI.
  double phase_sigma(double rssi_dbm) const noexcept;

  /// Generates a phase report for a tag at distance d on wavelength λ.
  double measure_phase(double distance_m, double wavelength_m,
                       std::size_t channel_index, std::uint64_t tag_key,
                       double rssi_dbm, common::Rng& rng) const noexcept;

  /// Noise-free phase (for tests): Eq. 1 with the deterministic offset.
  double ideal_phase(double distance_m, double wavelength_m,
                     std::size_t channel_index,
                     std::uint64_t tag_key) const noexcept;

  /// Generates a Doppler report [Hz] for a tag moving at the given radial
  /// velocity (positive = receding). Eq. 2: the reader divides the
  /// intra-packet phase rotation by 4π·ΔT, so the Δθ noise is amplified
  /// by 1/(4π·ΔT) — which is why raw Doppler is so noisy for slow body
  /// motion (Fig. 3).
  double measure_doppler(double radial_velocity_mps, double wavelength_m,
                         common::Rng& rng) const noexcept;

  /// Noise-free Doppler for the given radial velocity.
  double ideal_doppler(double radial_velocity_mps,
                       double wavelength_m) const noexcept;

  const PhaseModelConfig& config() const noexcept { return config_; }

 private:
  PhaseModelConfig config_;
};

}  // namespace tagbreathe::rfid
