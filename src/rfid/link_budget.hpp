// Backscatter link budget.
//
// Passive UHF links are forward-limited: the tag must harvest enough
// power to wake (~-18 dBm for Gen2 tags of the Alien 9640 era), while the
// reader's receive sensitivity (~-84 dBm for an R420) rarely binds. RSSI
// falls with the two-way path loss and is reported quantised to 0.5 dBm
// (Sec. IV-A.1). On-body mounting detunes the tag and the torso blocks
// the line of sight at large orientation angles (Figs. 15-16); both enter
// as extra attenuation.
#pragma once

#include <cstdint>

#include "common/geometry.hpp"

namespace tagbreathe::rfid {

struct LinkBudgetConfig {
  double tx_power_dbm = 30.0;            // Table I default
  double reader_antenna_gain_dbi = 8.5;  // Alien ALR-8696-C (circular)
  double tag_antenna_gain_dbi = 2.0;     // dipole-class tag antenna
  double polarization_loss_db = 3.0;     // circular reader -> linear tag
  double backscatter_loss_db = 8.0;      // modulation + conversion loss
  double on_body_loss_db = 4.0;          // detuning next to tissue/fabric
  double tag_sensitivity_dbm = -18.0;    // power-up threshold
  double reader_sensitivity_dbm = -84.0; // R420 receive sensitivity
  double rssi_quantization_db = 0.5;     // COTS report resolution
  double shadow_sigma_db = 1.5;          // per-read small-scale fading
  /// Multipath fading can wake a tag whose *mean* forward power is below
  /// the power-up threshold; tags within this margin of the threshold
  /// still participate in inventory (their decode probability is low).
  double wake_fade_margin_db = 8.0;
  /// Path-loss exponent; 2.0 = free space. Office multipath raises the
  /// effective exponent slightly.
  double path_loss_exponent = 2.2;
  /// Two-ray ground-reflection model: adds the floor-bounce path, which
  /// interferes with the direct path and produces the distance- and
  /// frequency-dependent fading structure of a real room. Off by
  /// default (the calibrated exponent model); the multipath ablation
  /// bench turns it on.
  bool two_ray_ground = false;
  /// Ground reflection coefficient (floors reflect inverted and lossy).
  double ground_reflection = -0.6;
};

class LinkBudget {
 public:
  explicit LinkBudget(LinkBudgetConfig config) : config_(config) {}

  /// One-way path loss [dB] at distance d for carrier frequency f
  /// (exponent model; ignores geometry).
  double path_loss_db(double distance_m, double freq_hz) const noexcept;

  /// Geometry-aware one-way path loss [dB] between two points. With
  /// two_ray_ground enabled this superposes the direct ray and the
  /// floor bounce (z = 0 plane); otherwise it reduces to the distance
  /// model above.
  double path_loss_db(const common::Vec3& a, const common::Vec3& b,
                      double freq_hz) const noexcept;

  /// Power arriving at the tag [dBm]; `extra_attenuation_db` carries
  /// body-blockage and tag-pattern losses.
  double forward_power_dbm(double distance_m, double freq_hz,
                           double extra_attenuation_db) const noexcept;

  /// Backscatter power at the reader [dBm] (ideal, before quantisation).
  double backscatter_rssi_dbm(double distance_m, double freq_hz,
                              double extra_attenuation_db) const noexcept;

  /// Geometry-aware variants (two-ray capable).
  double forward_power_dbm(const common::Vec3& antenna,
                           const common::Vec3& tag, double freq_hz,
                           double extra_attenuation_db) const noexcept;
  double backscatter_rssi_dbm(const common::Vec3& antenna,
                              const common::Vec3& tag, double freq_hz,
                              double extra_attenuation_db) const noexcept;

  /// True if the forward link can power the tag at its mean level.
  bool tag_powered(double forward_dbm) const noexcept {
    return forward_dbm >= config_.tag_sensitivity_dbm;
  }

  /// True if the tag can at least intermittently wake on fading peaks and
  /// should therefore participate in inventory slots.
  bool tag_participates(double forward_dbm) const noexcept {
    return forward_dbm >=
           config_.tag_sensitivity_dbm - config_.wake_fade_margin_db;
  }

  /// True if the reader can decode the backscatter reply.
  bool reader_decodes(double rssi_dbm) const noexcept {
    return rssi_dbm >= config_.reader_sensitivity_dbm;
  }

  /// Probability that a single read attempt succeeds given the link
  /// margins [dB]: a logistic ramp (soft threshold) capturing fading.
  /// ~0.5 at zero margin, >0.97 above +5 dB, <0.03 below -5 dB.
  double read_success_probability(double forward_margin_db,
                                  double reverse_margin_db) const noexcept;

  /// Quantises an RSSI report to the COTS resolution.
  double quantize_rssi(double rssi_dbm) const noexcept;

  /// Body-blockage attenuation [dB] as a function of the orientation
  /// angle between the subject's facing direction and the antenna
  /// direction (radians, [0, π]). Calibrated to the paper's Fig. 15:
  /// negligible below ~30 deg, growing through the LOS regime (read rate
  /// 50 Hz at 0 deg -> 10 Hz at 90 deg), and >= ~25 dB once the torso
  /// fully blocks the path (no reads past ~90-120 deg).
  static double body_attenuation_db(double orientation_rad) noexcept;

  const LinkBudgetConfig& config() const noexcept { return config_; }

 private:
  LinkBudgetConfig config_;
};

}  // namespace tagbreathe::rfid
