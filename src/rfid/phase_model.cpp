#include "rfid/phase_model.hpp"

#include <cmath>

#include "common/units.hpp"

namespace tagbreathe::rfid {

using common::kTwoPi;

namespace {
/// SplitMix64-style scrambler for deterministic offsets.
std::uint64_t mix(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

double PhaseModel::phase_offset(std::size_t channel_index,
                                std::uint64_t tag_key) const noexcept {
  const std::uint64_t h =
      mix(config_.offset_seed ^ mix(tag_key) ^
          mix(0xC4A11ULL + static_cast<std::uint64_t>(channel_index)));
  return static_cast<double>(h >> 11) * 0x1.0p-53 * kTwoPi;
}

double PhaseModel::phase_sigma(double rssi_dbm) const noexcept {
  const double snr_db = rssi_dbm - config_.noise_floor_dbm;
  const double snr_lin = std::pow(10.0, snr_db / 10.0);
  const double thermal_var =
      snr_lin > 0.0 ? config_.phase_snr_coeff / snr_lin : 1.0;
  return std::sqrt(config_.phase_sigma_floor_rad *
                       config_.phase_sigma_floor_rad +
                   thermal_var);
}

double PhaseModel::ideal_phase(double distance_m, double wavelength_m,
                               std::size_t channel_index,
                               std::uint64_t tag_key) const noexcept {
  // Eq. 1: θ = (2π/λ · 2d + c) mod 2π.
  const double theta = kTwoPi / wavelength_m * 2.0 * distance_m +
                       phase_offset(channel_index, tag_key);
  return common::wrap_phase_2pi(theta);
}

double PhaseModel::measure_phase(double distance_m, double wavelength_m,
                                 std::size_t channel_index,
                                 std::uint64_t tag_key, double rssi_dbm,
                                 common::Rng& rng) const noexcept {
  double theta = ideal_phase(distance_m, wavelength_m, channel_index, tag_key);
  theta += rng.wrapped_normal(phase_sigma(rssi_dbm));
  if (config_.phase_quantum_rad > 0.0)
    theta = std::round(theta / config_.phase_quantum_rad) *
            config_.phase_quantum_rad;
  return common::wrap_phase_2pi(theta);
}

double PhaseModel::ideal_doppler(double radial_velocity_mps,
                                 double wavelength_m) const noexcept {
  // Approaching tag (negative radial velocity) raises the frequency.
  return -2.0 * radial_velocity_mps / wavelength_m;
}

double PhaseModel::measure_doppler(double radial_velocity_mps,
                                   double wavelength_m,
                                   common::Rng& rng) const noexcept {
  const double true_doppler = ideal_doppler(radial_velocity_mps, wavelength_m);
  // Eq. 2: f = Δθ / (4π ΔT); the Δθ error divides by the same factor.
  const double noise =
      rng.normal(0.0, config_.doppler_delta_theta_sigma_rad) /
      (4.0 * common::kPi * config_.doppler_packet_duration_s);
  return true_doppler + noise;
}

}  // namespace tagbreathe::rfid
