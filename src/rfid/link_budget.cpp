#include "rfid/link_budget.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace tagbreathe::rfid {

using common::kPi;

double LinkBudget::path_loss_db(double distance_m,
                                double freq_hz) const noexcept {
  const double d = std::max(distance_m, 0.05);
  const double lambda = common::wavelength_m(freq_hz);
  // Free-space loss at 1 m reference, then exponent-n rolloff.
  const double fspl_1m = 20.0 * std::log10(4.0 * kPi / lambda);
  return fspl_1m + 10.0 * config_.path_loss_exponent * std::log10(d);
}

double LinkBudget::path_loss_db(const common::Vec3& a, const common::Vec3& b,
                                double freq_hz) const noexcept {
  const double r1 = std::max(common::distance(a, b), 0.05);
  if (!config_.two_ray_ground) return path_loss_db(r1, freq_hz);

  // Two-ray: direct path + floor bounce (image of b mirrored in z = 0).
  const common::Vec3 image{b.x, b.y, -b.z};
  const double r2 = std::max(common::distance(a, image), 0.05);
  const double lambda = common::wavelength_m(freq_hz);
  const double k = 2.0 * kPi / lambda;
  // Complex field sum e^{-jkr1}/r1 + G e^{-jkr2}/r2, phase referenced to
  // the direct ray.
  const double dphi = k * (r2 - r1);
  const double re = 1.0 / r1 + config_.ground_reflection * std::cos(dphi) / r2;
  const double im = -config_.ground_reflection * std::sin(dphi) / r2;
  const double gain = (lambda / (4.0 * kPi)) * (lambda / (4.0 * kPi)) *
                      (re * re + im * im);
  if (gain <= 0.0) return 200.0;
  return -10.0 * std::log10(gain);
}

double LinkBudget::forward_power_dbm(double distance_m, double freq_hz,
                                     double extra_attenuation_db) const noexcept {
  return config_.tx_power_dbm + config_.reader_antenna_gain_dbi +
         config_.tag_antenna_gain_dbi - path_loss_db(distance_m, freq_hz) -
         config_.polarization_loss_db - config_.on_body_loss_db -
         extra_attenuation_db;
}

double LinkBudget::backscatter_rssi_dbm(double distance_m, double freq_hz,
                                        double extra_attenuation_db) const noexcept {
  return config_.tx_power_dbm + 2.0 * config_.reader_antenna_gain_dbi +
         2.0 * config_.tag_antenna_gain_dbi -
         2.0 * path_loss_db(distance_m, freq_hz) -
         config_.polarization_loss_db - 2.0 * config_.on_body_loss_db -
         config_.backscatter_loss_db - 2.0 * extra_attenuation_db;
}

double LinkBudget::forward_power_dbm(const common::Vec3& antenna,
                                     const common::Vec3& tag, double freq_hz,
                                     double extra_attenuation_db) const noexcept {
  return config_.tx_power_dbm + config_.reader_antenna_gain_dbi +
         config_.tag_antenna_gain_dbi - path_loss_db(antenna, tag, freq_hz) -
         config_.polarization_loss_db - config_.on_body_loss_db -
         extra_attenuation_db;
}

double LinkBudget::backscatter_rssi_dbm(const common::Vec3& antenna,
                                        const common::Vec3& tag,
                                        double freq_hz,
                                        double extra_attenuation_db) const noexcept {
  return config_.tx_power_dbm + 2.0 * config_.reader_antenna_gain_dbi +
         2.0 * config_.tag_antenna_gain_dbi -
         2.0 * path_loss_db(antenna, tag, freq_hz) -
         config_.polarization_loss_db - 2.0 * config_.on_body_loss_db -
         config_.backscatter_loss_db - 2.0 * extra_attenuation_db;
}

double LinkBudget::read_success_probability(double forward_margin_db,
                                            double reverse_margin_db) const noexcept {
  const double margin = std::min(forward_margin_db, reverse_margin_db);
  // Logistic soft threshold: scale ~1.4 dB gives the 5 dB ramp documented
  // in the header.
  const double p = 1.0 / (1.0 + std::exp(-margin / 1.4));
  return std::clamp(p, 0.0, 1.0);
}

double LinkBudget::quantize_rssi(double rssi_dbm) const noexcept {
  const double q = config_.rssi_quantization_db;
  if (q <= 0.0) return rssi_dbm;
  return std::round(rssi_dbm / q) * q;
}

double LinkBudget::body_attenuation_db(double orientation_rad) noexcept {
  const double deg = common::rad_to_deg(std::abs(orientation_rad));
  if (deg <= 30.0) return 0.0;
  if (deg <= 90.0) {
    // Smooth ramp 0 -> 9 dB between 30 and 90 deg: at the Table-I range
    // this drops the per-read success enough to cut the read rate from
    // ~50 Hz to ~10 Hz, matching Fig. 15b.
    const double x = (deg - 30.0) / 60.0;
    return 9.0 * x * x * (3.0 - 2.0 * x);  // smoothstep
  }
  if (deg <= 120.0) {
    // Torso progressively occludes the path; by 120 deg it is opaque.
    const double x = (deg - 90.0) / 30.0;
    return 9.0 + 26.0 * x;
  }
  return 35.0;  // fully blocked: below sensitivity at any Table-I range
}

}  // namespace tagbreathe::rfid
