// 96-bit EPC handling and the TagBreathe ID scheme.
//
// The paper (Fig. 9) overwrites each monitoring tag's 96-bit EPC with a
// 64-bit user ID followed by a 32-bit short tag ID so that low-level
// reads can be grouped per user and differenced per tag. Writing the EPC
// bank is a standard Gen2 operation; item-labelling (contending) tags
// keep arbitrary EPCs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace tagbreathe::rfid {

/// A 96-bit EPC stored big-endian (network order), as it appears in Gen2
/// inventory replies and LLRP reports.
class Epc96 {
 public:
  static constexpr std::size_t kBytes = 12;

  constexpr Epc96() noexcept : bytes_{} {}
  explicit constexpr Epc96(const std::array<std::uint8_t, kBytes>& bytes) noexcept
      : bytes_(bytes) {}

  /// Builds a TagBreathe monitoring EPC: 64-bit user ID then 32-bit tag ID.
  static Epc96 from_user_tag(std::uint64_t user_id,
                             std::uint32_t tag_id) noexcept;

  /// Parses 24 hex characters (whitespace/':' separators allowed).
  static std::optional<Epc96> from_hex(std::string_view hex);

  /// The leading 64 bits interpreted as a user ID (Fig. 9).
  std::uint64_t user_id() const noexcept;

  /// The trailing 32 bits interpreted as a short tag ID (Fig. 9).
  std::uint32_t tag_id() const noexcept;

  const std::array<std::uint8_t, kBytes>& bytes() const noexcept {
    return bytes_;
  }

  std::string to_hex() const;

  friend bool operator==(const Epc96&, const Epc96&) = default;
  friend auto operator<=>(const Epc96&, const Epc96&) = default;

 private:
  std::array<std::uint8_t, kBytes> bytes_;
};

struct Epc96Hash {
  std::size_t operator()(const Epc96& epc) const noexcept;
};

}  // namespace tagbreathe::rfid
