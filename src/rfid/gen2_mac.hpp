// EPC C1G2 (Gen2) MAC: framed slotted ALOHA with Q-adaptation.
//
// The paper leans on the standard EPC collision-arbitration protocol to
// separate backscatter from many tags (Sec. I, VI-B.2/3): tags never
// interfere, they only share air time, so adding users or contending
// item tags lowers per-tag read rates rather than corrupting signals.
// This module simulates that MAC at slot granularity:
//
//   - Each inventory *frame* opens with a Query (or QueryAdjust) and has
//     2^Q slots; every energised, not-yet-inventoried tag picks a slot
//     uniformly at random.
//   - A slot with one replying tag is a *singleton*: the reader acquires
//     the RN16 and reads the EPC; the read still fails with link
//     probability (fading), consuming air time without a report.
//   - Zero tags -> short empty slot; >= 2 tags -> collision slot.
//   - Q is adapted with the Gen2 Annex floating-point Q-algorithm:
//     Qfp += C on collision, Qfp -= C on empty, unchanged on singleton.
//   - When every visible tag is inventoried, the round ends and all
//     session flags reset (continuous inventorying, as the paper's
//     reader is configured).
//
// Slot durations are calibrated so a single tag yields ~64 reads/s — the
// rate the paper measured with an R420 reporting low-level data
// (Sec. IV-A) — and total throughput saturates near ~70 reads/s, giving
// the contention behaviour of Figs. 13-14.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace tagbreathe::rfid {

struct MacTimings {
  /// Per-frame overhead: Query/QueryAdjust, report flushing, settling.
  /// Dominates the single-tag read cycle — which is why an R420 logging
  /// low-level data reads one tag at ~64 Hz while its multi-tag
  /// throughput is several times that.
  double query_s = 9.0e-3;
  double empty_slot_s = 0.4e-3;   // QueryRep + T3 timeout
  double collision_slot_s = 1.1e-3;  // corrupted RN16 window
  double success_slot_s = 6.0e-3;    // RN16 + ACK + EPC + low-level report
  double failed_read_s = 4.0e-3;  // RN16 heard, EPC reply lost
  double idle_s = 5.0e-3;         // no energised tags: carrier idles
};

struct QConfig {
  double initial_q = 4.0;
  double min_q = 0.0;
  double max_q = 15.0;
  /// Gen2 Annex D weight C, typically in [0.1, 0.5].
  double c = 0.35;
};

enum class SlotKind : std::uint8_t {
  Query,      // frame start overhead
  Empty,      // no tag replied
  Collision,  // more than one tag replied
  Success,    // tag singulated and EPC read: a report is generated
  FailedRead, // tag singulated but the reply was lost to fading
  Idle,       // no energised tag in the field
};

const char* slot_kind_name(SlotKind kind) noexcept;

struct SlotResult {
  SlotKind kind = SlotKind::Idle;
  double duration_s = 0.0;
  /// Tag index for Success/FailedRead, -1 otherwise.
  int tag_index = -1;
};

struct MacStats {
  std::uint64_t queries = 0;
  std::uint64_t empties = 0;
  std::uint64_t collisions = 0;
  std::uint64_t successes = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t idles = 0;
  std::uint64_t rounds_completed = 0;
};

/// Slot-stepped Gen2 inventory engine over a fixed tag population.
/// Which tags are energised and their per-attempt decode probability are
/// supplied by the caller each step (they depend on geometry, antenna and
/// channel — PHY concerns this module stays independent of).
class Gen2Mac {
 public:
  Gen2Mac(std::size_t num_tags, MacTimings timings = {}, QConfig q = {});

  /// Advances the MAC by one slot. `energised[i]` says whether tag i can
  /// respond; `decode_probability(i)` is the chance a singulated reply is
  /// readable. Both are sampled with `rng`.
  SlotResult step(const std::vector<bool>& energised,
                  const std::function<double(std::size_t)>& decode_probability,
                  common::Rng& rng);

  /// Gen2 SELECT: restricts inventory to the masked subset of the tag
  /// population (the reader transmits a Select whose EPC mask matches
  /// only those tags; the rest never reply). Empty mask = select all.
  /// Deselected tags stop costing air time entirely — the standard
  /// counter to Fig. 14's contention.
  void set_select_mask(std::vector<bool> selected);

  /// Forces a new frame (channel hop or antenna switch interrupts the
  /// current frame; inventoried flags persist, as with Gen2 session S1).
  void abort_frame() noexcept;

  /// Clears inventoried flags (new antenna's first round starts fresh).
  void reset_session() noexcept;

  int current_q() const noexcept { return q_now_; }
  const MacStats& stats() const noexcept { return stats_; }
  std::size_t num_tags() const noexcept { return slots_.size(); }

 private:
  void begin_frame(const std::vector<bool>& energised, common::Rng& rng);
  bool any_pending(const std::vector<bool>& energised) const noexcept;

  MacTimings timings_;
  QConfig q_config_;
  double q_fp_;
  int q_now_;

  bool participates(std::size_t i,
                    const std::vector<bool>& energised) const noexcept {
    return energised[i] && (selected_.empty() || selected_[i]);
  }

  std::vector<int> slots_;        // per-tag slot counter, -1 = not in frame
  std::vector<bool> inventoried_; // session flag
  std::vector<bool> selected_;    // SELECT mask; empty = all
  bool in_frame_ = false;
  int frame_slot_ = 0;  // next slot index to process
  int frame_size_ = 0;
  MacStats stats_;
};

}  // namespace tagbreathe::rfid
