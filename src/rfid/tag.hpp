// Simulated tag population.
//
// A TagBehavior supplies what the PHY needs about a physical tag: where
// it is at a given instant and how much extra attenuation its mounting
// imposes toward a given antenna. Two implementations cover the paper's
// scenarios: BodyTag (a monitoring tag on a subject's clothes, moved by
// breathing, shadowed by the torso at large orientation angles) and
// StaticTag (an item-labelling tag that merely contends for air time,
// Fig. 14).
#pragma once

#include <memory>

#include "body/subject.hpp"
#include "common/geometry.hpp"
#include "rfid/epc.hpp"

namespace tagbreathe::rfid {

class TagBehavior {
 public:
  virtual ~TagBehavior() = default;

  const Epc96& epc() const noexcept { return epc_; }

  /// World position of the tag antenna at time t.
  virtual common::Vec3 position_at(double t) const = 0;

  /// Mounting/orientation attenuation [dB] toward an antenna at
  /// `antenna_pos`, in excess of free-space loss.
  virtual double extra_attenuation_db(const common::Vec3& antenna_pos,
                                      double t) const = 0;

  /// Whether the tag is physically in the field at time t. Item tags
  /// come and go (stock moves through the room); monitoring tags are
  /// always present. Absent tags take no MAC slots at all.
  virtual bool present_at(double /*t*/) const { return true; }

 protected:
  explicit TagBehavior(Epc96 epc) noexcept : epc_(epc) {}

 private:
  Epc96 epc_;
};

/// A monitoring tag attached to a subject at a given site. Does not own
/// the subject: scenarios own subjects and tags separately (three tags
/// share one subject).
class BodyTag final : public TagBehavior {
 public:
  BodyTag(Epc96 epc, const body::Subject* subject, body::TagSite site);

  common::Vec3 position_at(double t) const override;
  double extra_attenuation_db(const common::Vec3& antenna_pos,
                              double t) const override;

  const body::Subject& subject() const noexcept { return *subject_; }
  body::TagSite site() const noexcept { return site_; }

 private:
  const body::Subject* subject_;  // non-owning; outlives the tag
  body::TagSite site_;
};

/// An item-labelling tag at a fixed location, optionally present only
/// during [appear_s, disappear_s) — stock moving through the room.
class StaticTag final : public TagBehavior {
 public:
  StaticTag(Epc96 epc, common::Vec3 position,
            double mounting_loss_db = 0.0) noexcept;

  common::Vec3 position_at(double t) const override;
  double extra_attenuation_db(const common::Vec3& antenna_pos,
                              double t) const override;
  bool present_at(double t) const override;

  /// Restricts the tag's presence to [appear_s, disappear_s).
  void set_presence_window(double appear_s, double disappear_s);

 private:
  common::Vec3 position_;
  double mounting_loss_db_;
  double appear_s_ = -1e300;
  double disappear_s_ = 1e300;
};

}  // namespace tagbreathe::rfid
