#include "rfid/channel_plan.hpp"

#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace tagbreathe::rfid {

ChannelPlan::ChannelPlan(std::string region_name,
                         std::vector<double> frequencies_hz, double dwell_s)
    : region_name_(std::move(region_name)),
      frequencies_hz_(std::move(frequencies_hz)),
      dwell_s_(dwell_s) {
  if (frequencies_hz_.empty())
    throw std::invalid_argument("ChannelPlan: no channels");
  if (dwell_s_ <= 0.0)
    throw std::invalid_argument("ChannelPlan: dwell must be positive");
  for (double f : frequencies_hz_) {
    if (f <= 0.0) throw std::invalid_argument("ChannelPlan: bad frequency");
  }
}

ChannelPlan ChannelPlan::paper_plan() {
  std::vector<double> freqs;
  freqs.reserve(10);
  for (int k = 0; k < 10; ++k)
    freqs.push_back((920.25 + 0.5 * k) * 1e6);
  return ChannelPlan("HK-920", std::move(freqs), 0.2);
}

ChannelPlan ChannelPlan::us_plan() {
  std::vector<double> freqs;
  freqs.reserve(50);
  for (int k = 0; k < 50; ++k)
    freqs.push_back((902.75 + 0.5 * k) * 1e6);
  return ChannelPlan("FCC-902", std::move(freqs), 0.4);
}

double ChannelPlan::frequency_hz(std::size_t index) const {
  if (index >= frequencies_hz_.size())
    throw std::out_of_range("ChannelPlan: channel index");
  return frequencies_hz_[index];
}

double ChannelPlan::wavelength_m(std::size_t index) const {
  return common::wavelength_m(frequency_hz(index));
}

HopSchedule::HopSchedule(ChannelPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

const std::vector<std::size_t>& HopSchedule::epoch_permutation(
    std::uint64_t epoch) const {
  if (epoch == cached_epoch_) return cached_perm_;
  cached_perm_.resize(plan_.channel_count());
  std::iota(cached_perm_.begin(), cached_perm_.end(), std::size_t{0});
  common::Rng rng(seed_ * 0x9E3779B97F4A7C15ULL + epoch + 1);
  // Fisher-Yates shuffle.
  for (std::size_t i = cached_perm_.size(); i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(cached_perm_[i - 1], cached_perm_[j]);
  }
  cached_epoch_ = epoch;
  return cached_perm_;
}

std::size_t HopSchedule::channel_at(double t) const {
  if (t < 0.0) t = 0.0;
  const double dwell = plan_.dwell_s();
  const auto slot = static_cast<std::uint64_t>(t / dwell);
  const std::uint64_t epoch = slot / plan_.channel_count();
  const std::size_t within =
      static_cast<std::size_t>(slot % plan_.channel_count());
  return epoch_permutation(epoch)[within];
}

double HopSchedule::frequency_at(double t) const {
  return plan_.frequency_hz(channel_at(t));
}

double HopSchedule::wavelength_at(double t) const {
  return plan_.wavelength_m(channel_at(t));
}

double HopSchedule::next_hop_time(double t) const noexcept {
  const double dwell = plan_.dwell_s();
  const double slot = std::floor(t / dwell);
  return (slot + 1.0) * dwell;
}

}  // namespace tagbreathe::rfid
