// Regulatory channel plans and the frequency-hopping schedule.
//
// UHF readers must hop (Sec. IV-A.3): a fixed carrier violates radio
// regulations in most regions and suffers frequency-selective fading.
// The paper's reader hops among 10 channels with a ~0.2 s dwell (Fig. 5),
// which is what makes raw phase discontinuous (Fig. 4) — each channel has
// a different wavelength λ and offset c in Eq. 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tagbreathe::rfid {

class ChannelPlan {
 public:
  /// `frequencies_hz` are the channel centre frequencies, indexed from 0.
  ChannelPlan(std::string region_name, std::vector<double> frequencies_hz,
              double dwell_s);

  /// The plan used in the paper's measurements: 10 channels, 500 kHz
  /// spacing, 920.25-924.75 MHz (Hong Kong 920-925 MHz band), 0.2 s dwell.
  static ChannelPlan paper_plan();

  /// FCC US plan: 50 channels, 902.75-927.25 MHz, 0.4 s max dwell.
  static ChannelPlan us_plan();

  std::size_t channel_count() const noexcept { return frequencies_hz_.size(); }
  double frequency_hz(std::size_t index) const;
  double wavelength_m(std::size_t index) const;
  double dwell_s() const noexcept { return dwell_s_; }
  const std::string& region() const noexcept { return region_name_; }

 private:
  std::string region_name_;
  std::vector<double> frequencies_hz_;
  double dwell_s_;
};

/// Pseudo-random hop sequence: visits every channel once per epoch in a
/// seeded permutation (FCC-style frequency-hopping), reshuffled each
/// epoch. Deterministic function of time given the seed.
class HopSchedule {
 public:
  HopSchedule(ChannelPlan plan, std::uint64_t seed = 1);

  /// Channel index active at time t (t >= 0).
  std::size_t channel_at(double t) const;

  double frequency_at(double t) const;
  double wavelength_at(double t) const;

  /// Time of the next hop boundary strictly after t.
  double next_hop_time(double t) const noexcept;

  const ChannelPlan& plan() const noexcept { return plan_; }

 private:
  const std::vector<std::size_t>& epoch_permutation(std::uint64_t epoch) const;

  ChannelPlan plan_;
  std::uint64_t seed_;
  // Cache of the most recently used epoch permutation (experiments move
  // forward in time, so a single-entry cache hits almost always).
  mutable std::uint64_t cached_epoch_ = ~0ULL;
  mutable std::vector<std::size_t> cached_perm_;
};

}  // namespace tagbreathe::rfid
