// Reader simulator: ties MAC, PHY and geometry into a low-level report
// stream.
//
// This is the substitute for the Impinj Speedway R420 of the paper's
// prototype (see DESIGN.md): it interrogates a tag population with the
// Gen2 MAC, hops channels on the regulatory schedule, drives antennas in
// round-robin, and emits one core::TagRead per successful singulation —
// RSSI (quantised), raw phase (Eq. 1 + noise), raw Doppler (Eq. 2 +
// noise), channel index, antenna port and timestamp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/types.hpp"
#include "rfid/antenna.hpp"
#include "rfid/channel_plan.hpp"
#include "rfid/gen2_mac.hpp"
#include "rfid/link_budget.hpp"
#include "rfid/phase_model.hpp"
#include "rfid/tag.hpp"

namespace tagbreathe::rfid {

struct ReaderConfig {
  LinkBudgetConfig link{};
  PhaseModelConfig phase{};
  MacTimings mac_timings{};
  QConfig q{};
  ChannelPlan plan = ChannelPlan::paper_plan();
  std::uint64_t hop_seed = 1;
  std::vector<Antenna> antennas{Antenna{}};
  /// Carrier gap when retuning to the next hop channel.
  double hop_gap_s = 2.0e-3;
  /// Antenna switch deadline when a round cannot complete (nothing
  /// visible on this port).
  double max_antenna_dwell_s = 0.3;
  /// Gen2 SELECT filter: when set, only tags whose EPC matches
  /// participate in inventory at all (others never reply — the standard
  /// counter to item-tag contention). Null = inventory everything.
  std::function<bool(const Epc96&)> select_filter;
  /// Master seed for all reader-side randomness.
  std::uint64_t seed = 1;
  /// Link-state cache refresh period; positions move by micrometres per
  /// slot, so re-evaluating geometry every slot is wasted work.
  double link_refresh_s = 0.02;
};

class ReaderSim {
 public:
  /// Takes ownership of the tag population. Tag indices in stats follow
  /// the order given here.
  ReaderSim(ReaderConfig config,
            std::vector<std::unique_ptr<TagBehavior>> tags);

  /// Advances the simulation by `duration_s`, invoking `on_read` for each
  /// report. Can be called repeatedly; time continues monotonically.
  void run(double duration_s,
           const std::function<void(const core::TagRead&)>& on_read);

  /// Convenience: collects the reports of the next `duration_s`.
  core::ReadStream run(double duration_s);

  /// Advances the clock without interrogating (radio idle, e.g. the
  /// ROSpec is stopped). Reader timestamps track wall time either way.
  void skip(double duration_s) noexcept;

  double now_s() const noexcept { return now_; }
  const MacStats& mac_stats() const noexcept { return mac_.stats(); }
  const std::vector<std::uint64_t>& reads_per_tag() const noexcept {
    return reads_per_tag_;
  }
  std::size_t tag_count() const noexcept { return tags_.size(); }
  const ReaderConfig& config() const noexcept { return config_; }
  const HopSchedule& hop_schedule() const noexcept { return hops_; }

 private:
  void refresh_link_state();
  void maybe_hop();
  void maybe_switch_antenna();
  core::TagRead make_report(std::size_t tag_index, double t_meas);

  ReaderConfig config_;
  std::vector<std::unique_ptr<TagBehavior>> tags_;
  LinkBudget link_;
  PhaseModel phase_;
  HopSchedule hops_;
  Gen2Mac mac_;
  common::Rng rng_;

  double now_ = 0.0;
  std::size_t antenna_idx_ = 0;
  double antenna_since_ = 0.0;
  std::uint64_t rounds_at_switch_ = 0;

  // Cached link state for the current antenna/channel.
  double link_valid_until_ = -1.0;
  std::size_t link_channel_ = static_cast<std::size_t>(-1);
  std::size_t link_antenna_ = static_cast<std::size_t>(-1);
  std::vector<bool> energised_;
  std::vector<double> fwd_margin_db_;
  std::vector<double> rev_margin_db_;
  std::vector<double> mean_rssi_dbm_;

  std::vector<std::uint64_t> reads_per_tag_;
};

}  // namespace tagbreathe::rfid
