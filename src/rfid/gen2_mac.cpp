#include "rfid/gen2_mac.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagbreathe::rfid {

const char* slot_kind_name(SlotKind kind) noexcept {
  switch (kind) {
    case SlotKind::Query: return "query";
    case SlotKind::Empty: return "empty";
    case SlotKind::Collision: return "collision";
    case SlotKind::Success: return "success";
    case SlotKind::FailedRead: return "failed-read";
    case SlotKind::Idle: return "idle";
  }
  return "?";
}

Gen2Mac::Gen2Mac(std::size_t num_tags, MacTimings timings, QConfig q)
    : timings_(timings),
      q_config_(q),
      q_fp_(q.initial_q),
      q_now_(static_cast<int>(std::lround(q.initial_q))),
      slots_(num_tags, -1),
      inventoried_(num_tags, false) {
  if (num_tags == 0)
    throw std::invalid_argument("Gen2Mac: need at least one tag");
  if (q.min_q < 0.0 || q.max_q > 15.0 || q.min_q > q.max_q)
    throw std::invalid_argument("Gen2Mac: bad Q bounds");
}

bool Gen2Mac::any_pending(const std::vector<bool>& energised) const noexcept {
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (participates(i, energised) && !inventoried_[i]) return true;
  return false;
}

void Gen2Mac::set_select_mask(std::vector<bool> selected) {
  if (!selected.empty() && selected.size() != slots_.size())
    throw std::invalid_argument("Gen2Mac: select mask size mismatch");
  selected_ = std::move(selected);
  in_frame_ = false;  // the Select command interrupts the current frame
}

void Gen2Mac::begin_frame(const std::vector<bool>& energised,
                          common::Rng& rng) {
  q_now_ = static_cast<int>(
      std::lround(std::clamp(q_fp_, q_config_.min_q, q_config_.max_q)));
  frame_size_ = 1 << q_now_;
  frame_slot_ = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (participates(i, energised) && !inventoried_[i])
      slots_[i] = rng.uniform_int(0, frame_size_ - 1);
    else
      slots_[i] = -1;
  }
  in_frame_ = true;
}

SlotResult Gen2Mac::step(
    const std::vector<bool>& energised,
    const std::function<double(std::size_t)>& decode_probability,
    common::Rng& rng) {
  if (energised.size() != slots_.size())
    throw std::invalid_argument("Gen2Mac: energised mask size mismatch");

  if (!in_frame_) {
    // Check whether anything is left to inventory; if the whole visible
    // population is inventoried, the round is over: reset session flags.
    bool any_visible = false;
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (participates(i, energised)) any_visible = true;
    if (!any_visible) {
      ++stats_.idles;
      return SlotResult{SlotKind::Idle, timings_.idle_s, -1};
    }
    if (!any_pending(energised)) {
      std::fill(inventoried_.begin(), inventoried_.end(), false);
      ++stats_.rounds_completed;
    }
    begin_frame(energised, rng);
    ++stats_.queries;
    return SlotResult{SlotKind::Query, timings_.query_s, -1};
  }

  if (frame_slot_ >= frame_size_) {
    // Frame exhausted; next step opens a new frame (QueryAdjust).
    in_frame_ = false;
    return step(energised, decode_probability, rng);
  }

  // Resolve the current slot: which energised tags counted down to it.
  int winner = -1;
  int replies = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] != frame_slot_) continue;
    if (!participates(i, energised)) continue;  // lost power: silent
    ++replies;
    winner = static_cast<int>(i);
  }
  ++frame_slot_;

  const auto clamp_q = [this] {
    q_fp_ = std::clamp(q_fp_, q_config_.min_q, q_config_.max_q);
  };

  if (replies == 0) {
    q_fp_ -= q_config_.c;
    clamp_q();
    ++stats_.empties;
    return SlotResult{SlotKind::Empty, timings_.empty_slot_s, -1};
  }
  if (replies > 1) {
    q_fp_ += q_config_.c;
    clamp_q();
    ++stats_.collisions;
    return SlotResult{SlotKind::Collision, timings_.collision_slot_s, -1};
  }

  // Singleton: attempt the read.
  const auto tag = static_cast<std::size_t>(winner);
  const double p = std::clamp(decode_probability(tag), 0.0, 1.0);
  if (rng.bernoulli(p)) {
    inventoried_[tag] = true;
    slots_[tag] = -1;
    ++stats_.successes;
    return SlotResult{SlotKind::Success, timings_.success_slot_s, winner};
  }
  // Reply lost: the tag was not acknowledged and re-contends next frame.
  ++stats_.failed_reads;
  return SlotResult{SlotKind::FailedRead, timings_.failed_read_s, winner};
}

void Gen2Mac::abort_frame() noexcept { in_frame_ = false; }

void Gen2Mac::reset_session() noexcept {
  std::fill(inventoried_.begin(), inventoried_.end(), false);
  in_frame_ = false;
}

}  // namespace tagbreathe::rfid
