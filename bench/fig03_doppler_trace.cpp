// Fig. 3: raw Doppler frequency shift during the characterisation capture.
//
// Paper observation: the raw Doppler stream is very noisy — the reader
// divides a tiny intra-packet phase rotation by 4*pi*dT (Eq. 2) — but its
// envelope still loosely tracks the periodic motion. Breathing-speed
// motion is far too slow for reliable raw Doppler.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/characterization.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 3",
                      "Raw Doppler frequency shift (1 tag, 2 m, 25 s)");
  const auto cap = bench::run_characterization();

  std::vector<double> doppler, times;
  for (const auto& r : cap.reads) {
    doppler.push_back(r.doppler_hz);
    times.push_back(r.time_s);
  }
  std::printf("reads: %zu\n", doppler.size());
  std::printf("raw Doppler: mean %.3f Hz, std %.2f Hz, range %.1f .. %.1f Hz\n",
              common::mean(doppler), common::stddev(doppler),
              common::min_value(doppler), common::max_value(doppler));

  // Expected true Doppler scale for breathing motion: 2*v/lambda with
  // v ~ 2*pi*f*A — fractions of a hertz, dwarfed by the Eq. 2 noise.
  const double amp = 0.010, f = cap.true_rate_bpm / 60.0;
  const double v_peak = common::kTwoPi * f * amp;
  std::printf("true Doppler scale: ~%.3f Hz (v_peak %.4f m/s) -> buried in noise\n",
              2.0 * v_peak / 0.325, v_peak);

  // 1-s envelope (mean |f_d|) sparkline.
  std::vector<double> env(25, 0.0);
  std::vector<int> counts(25, 0);
  for (std::size_t i = 0; i < doppler.size(); ++i) {
    auto b = static_cast<std::size_t>(times[i]);
    if (b >= env.size()) b = env.size() - 1;
    env[b] += std::abs(doppler[i]);
    ++counts[b];
  }
  for (std::size_t b = 0; b < env.size(); ++b)
    if (counts[b] > 0) env[b] /= counts[b];
  std::printf("1-s |Doppler| envelope: %s\n", common::sparkline(env).c_str());

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig03_doppler.csv",
                          {"time_s", "doppler_hz"});
    for (std::size_t i = 0; i < doppler.size(); ++i)
      csv.row({times[i], doppler[i]});
    std::printf("CSV: %s/fig03_doppler.csv\n", dir->c_str());
  }
  return 0;
}
