// google-benchmark microbenchmarks for the durability layer: the
// journal append hot path (runs inline with ingest, so its cost is
// pure overhead on every admitted read), snapshot serialization +
// atomic write, and full recovery (snapshot load + journal replay) —
// the numbers behind the fsync policy and the EXPERIMENTS.md
// recovery-time record.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/journal.hpp"
#include "core/recovery.hpp"
#include "core/snapshot.hpp"

using namespace tagbreathe;
namespace fs = std::filesystem;

namespace {

/// Unique scratch directory under the system temp dir, removed on exit.
struct BenchDir {
  fs::path path;
  explicit BenchDir(const std::string& tag) {
    static unsigned counter = 0;
    path = fs::temp_directory_path() /
           ("tagbreathe_bench_" + std::to_string(::getpid()) + "_" + tag + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~BenchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

core::ReadStream breathing_population(std::size_t users, double duration_s) {
  core::ReadStream reads;
  for (double t = 0.0; t < duration_s; t += 0.125) {
    for (std::size_t u = 1; u <= users; ++u) {
      const double rate_hz = 0.15 + 0.02 * static_cast<double>(u % 5);
      core::TagRead r;
      r.time_s = t + 0.001 * static_cast<double>(u);
      r.epc = rfid::Epc96::from_user_tag(u, 1);
      r.antenna_id = 1;
      r.frequency_hz = 920.625e6;
      r.rssi_dbm = -55.0;
      r.phase_rad = common::wrap_phase_2pi(
          1.0 + 0.35 * std::sin(common::kTwoPi * rate_hz * t +
                                static_cast<double>(u)));
      reads.push_back(r);
    }
  }
  return reads;
}

void BM_JournalAppend(benchmark::State& state) {
  // Append + group commit of a batch of reads; range(0) = commit batch,
  // range(1) = fsync_on_commit. This is the per-read durability tax.
  const auto reads = breathing_population(4, 30.0);
  BenchDir dir("journal_append");
  core::JournalConfig cfg;
  cfg.directory = dir.path.string();
  cfg.segment_max_bytes = 8u << 20;
  cfg.commit_batch = static_cast<std::size_t>(state.range(0));
  cfg.fsync_on_commit = state.range(1) != 0;
  core::JournalWriter writer(cfg);
  for (auto _ : state) {
    for (const auto& r : reads) writer.append(r);
    writer.commit();
    benchmark::DoNotOptimize(writer.last_committed_seq());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(reads.size()), benchmark::Counter::kIsRate);
  state.counters["bytes/read"] =
      static_cast<double>(writer.counters().journal_bytes_written) /
      static_cast<double>(writer.counters().journal_records_appended);
}
BENCHMARK(BM_JournalAppend)
    ->ArgNames({"batch", "fsync"})
    ->ArgsProduct({{1, 64, 256}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

core::SnapshotData snapshot_fixture(std::size_t users) {
  core::PipelineConfig pcfg;
  pcfg.window_s = 30.0;
  core::RealtimePipeline pipeline(pcfg, nullptr);
  core::IngestConfig icfg;
  icfg.max_users = users;
  core::ReadValidator validator(icfg);
  for (core::TagRead read : breathing_population(users, 35.0)) {
    if (validator.admit(read).admitted) pipeline.push(read);
  }
  core::SnapshotData data;
  data.last_journal_seq = 1000;
  data.now_s = pipeline.now_s();
  data.pipeline = pipeline.export_state();
  data.validator = validator.export_state();
  return data;
}

void BM_SnapshotWrite(benchmark::State& state) {
  // Serialize + atomic temp/rename write of a populated pipeline state;
  // range(0) = users in the window, range(1) = fsync.
  const auto users = static_cast<std::size_t>(state.range(0));
  const core::SnapshotData data = snapshot_fixture(users);
  BenchDir dir("snapshot_write");
  core::SnapshotConfig cfg;
  cfg.directory = dir.path.string();
  cfg.fsync = state.range(1) != 0;
  core::SnapshotWriter writer(cfg);
  for (auto _ : state) {
    // Distinct seq per write so retention (keep=2) exercises pruning.
    core::SnapshotData copy = data;
    copy.last_journal_seq = writer.counters().snapshots_written + 1;
    writer.write(copy);
    benchmark::DoNotOptimize(writer.counters().snapshot_bytes_written);
  }
  state.counters["bytes"] =
      static_cast<double>(writer.counters().snapshot_bytes_written) /
      static_cast<double>(writer.counters().snapshots_written);
}
BENCHMARK(BM_SnapshotWrite)
    ->ArgNames({"users", "fsync"})
    ->ArgsProduct({{1, 8, 64}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Recovery(benchmark::State& state) {
  // Cold restart after a clean run: newest-snapshot load + journal tail
  // replay through ingest validation into the pipeline. range(0) =
  // users, range(1) = seconds of journal tail past the last snapshot.
  const auto users = static_cast<std::size_t>(state.range(0));
  const double tail_s = static_cast<double>(state.range(1));
  BenchDir dir("recovery");
  core::DurabilityConfig dcfg;
  dcfg.directory = dir.path.string();
  dcfg.snapshot_period_s = 1e9;  // snapshot only at the explicit checkpoint
  dcfg.snapshot.fsync = false;
  dcfg.journal.segment_max_bytes = 8u << 20;
  core::IngestConfig icfg;
  icfg.max_users = users;
  core::PipelineConfig pcfg;
  pcfg.window_s = 30.0;

  const auto reads = breathing_population(users, 40.0 + tail_s);
  {
    core::DurableMonitor monitor(dcfg, icfg, pcfg, nullptr);
    double next_pump = 0.25;
    for (const auto& r : reads) {
      while (r.time_s >= next_pump) {
        monitor.pump(next_pump);
        next_pump += 0.25;
      }
      monitor.offer(r, r.time_s);
      if (r.time_s >= 40.0 && monitor.counters().snapshots_written == 0)
        monitor.checkpoint();
    }
    monitor.flush();
  }

  std::uint64_t replayed = 0;
  for (auto _ : state) {
    core::DurableMonitor monitor(dcfg, icfg, pcfg, nullptr);
    replayed = monitor.recovery().replayed_reads;
    benchmark::DoNotOptimize(monitor.recovery().snapshot_loaded);
  }
  state.counters["replayed_reads"] = static_cast<double>(replayed);
}
BENCHMARK(BM_Recovery)
    ->ArgNames({"users", "tail_s"})
    ->ArgsProduct({{1, 8}, {10, 60}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: mirror results as JSON into BENCH_durability.json
// (override via TAGBREATHE_BENCH_JSON or an explicit --benchmark_out)
// so the CI bench smoke step and EXPERIMENTS.md have a machine-readable
// durability-overhead record.
int main(int argc, char** argv) {
  const char* json_path = std::getenv("TAGBREATHE_BENCH_JSON");
  std::string out_flag =
      std::string("--benchmark_out=") +
      (json_path != nullptr ? json_path : "BENCH_durability.json");
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(format_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
