// Fig. 14: breathing-rate accuracy vs number of contending item tags.
//
// Paper: a user wears 3 tags near the antenna while 0-30 item-labelling
// tags contend for air time under the standard EPC protocol; accuracy
// degrades gently, still 91% with 30 contenders, because the total read
// rate stays high enough.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 14", "Accuracy vs contending tags (0-30)");
  bench::print_note("paper: 91% with 30 contending tags in range");

  constexpr int kTrials = 6;
  common::ConsoleTable table({"contending", "accuracy", "err [bpm]",
                              "monitor reads/s", "total reads/s", "bar"});
  std::vector<std::array<double, 4>> csv_rows;
  for (int contend : {0, 5, 10, 15, 20, 25, 30}) {
    experiments::ScenarioConfig cfg;
    cfg.distance_m = 2.0;  // "sits in front of the antenna"
    cfg.contending_tags = contend;
    cfg.seed = 6200 + static_cast<std::uint64_t>(contend);
    const auto agg = experiments::run_trials(cfg, kTrials);
    table.add_row({std::to_string(contend),
                   common::fmt(agg.accuracy.mean(), 3),
                   common::fmt(agg.error_bpm.mean(), 2),
                   common::fmt(agg.monitor_read_rate_hz.mean(), 1),
                   common::fmt(agg.read_rate_hz.mean(), 1),
                   common::ascii_bar(agg.accuracy.mean(), 1.0, 30)});
    csv_rows.push_back({static_cast<double>(contend), agg.accuracy.mean(),
                        agg.error_bpm.mean(),
                        agg.monitor_read_rate_hz.mean()});
  }
  table.print();

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(
        *dir + "/fig14_contending.csv",
        {"contending_tags", "accuracy", "error_bpm", "monitor_reads_hz"});
    for (const auto& row : csv_rows)
      csv.row({row[0], row[1], row[2], row[3]});
    std::printf("CSV: %s/fig14_contending.csv\n", dir->c_str());
  }
  return 0;
}
