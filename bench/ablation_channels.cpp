// Ablation: regulatory channel plans.
//
// The paper's reader hops 10 channels with 0.2 s dwell (Hong Kong band);
// FCC deployments hop 50 channels with up to 0.4 s dwell. More channels
// mean much longer channel revisits (~20 s vs ~2 s), which stresses the
// preprocessor's slow-stream fallback path; longer dwells give more
// within-dwell pairs per visit, which helps the strict path.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Ablation", "Channel plan: paper 10-ch vs FCC 50-ch");

  constexpr int kTrials = 5;
  common::ConsoleTable table({"plan", "contending", "accuracy",
                              "err [bpm]", "monitor reads/s"});
  for (int contending : {0, 20}) {
    for (const bool us : {false, true}) {
      experiments::ScenarioConfig cfg;
      cfg.distance_m = 2.0;
      cfg.contending_tags = contending;
      cfg.us_channel_plan = us;
      cfg.seed = 8200 + static_cast<std::uint64_t>(contending) +
                 (us ? 13 : 0);
      const auto agg = experiments::run_trials(cfg, kTrials);
      const auto plan = us ? rfid::ChannelPlan::us_plan()
                           : rfid::ChannelPlan::paper_plan();
      table.add_row({plan.region() + " (" +
                         std::to_string(plan.channel_count()) + " ch, " +
                         common::fmt(plan.dwell_s(), 1) + " s dwell)",
                     std::to_string(contending),
                     common::fmt(agg.accuracy.mean(), 3),
                     common::fmt(agg.error_bpm.mean(), 2),
                     common::fmt(agg.monitor_read_rate_hz.mean(), 1)});
    }
  }
  table.print();
  std::printf("(uncontended: both plans give abundant within-dwell pairs;\n"
              " contended: the 50-ch plan's ~20 s revisits starve the\n"
              " fallback path harder than the paper plan's ~2 s)\n");
  return 0;
}
