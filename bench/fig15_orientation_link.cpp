// Fig. 15(b): read rate and RSSI vs orientation (0-180 deg), single
// directional antenna, user at 4 m.
//
// Paper: RSSI roughly flat while a LOS path exists (0-90 deg); read rate
// falls from ~50 Hz facing to ~10 Hz at 90 deg; beyond ~90-120 deg the
// torso blocks the path and the tag cannot be read at all.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 15b",
                      "Read rate and RSSI vs orientation (single antenna)");
  bench::print_note("paper: ~50 Hz @0 deg -> ~10 Hz @90 deg; no reads >90-120 deg");

  constexpr int kTrials = 3;
  common::ConsoleTable table({"orientation [deg]", "reads/s", "RSSI [dBm]",
                              "rate bar"});
  std::vector<std::array<double, 3>> csv_rows;
  for (int deg : {0, 30, 60, 90, 120, 150, 180}) {
    experiments::ScenarioConfig cfg;
    cfg.tags_per_user = 1;  // single tag isolates the link effect
    cfg.users = {experiments::UserSpec()};
    cfg.users[0].orientation_deg = deg;
    cfg.duration_s = 30.0;
    cfg.seed = 6300 + static_cast<std::uint64_t>(deg);
    const auto agg = experiments::run_trials(cfg, kTrials);
    const double rate = agg.monitor_read_rate_hz.mean();
    const bool readable = rate > 0.1;
    table.add_row(
        {std::to_string(deg), common::fmt(rate, 1),
         readable ? common::fmt(agg.mean_rssi_dbm.mean(), 1) : "no reads",
         common::ascii_bar(rate, 70.0, 30)});
    csv_rows.push_back({static_cast<double>(deg), rate,
                        readable ? agg.mean_rssi_dbm.mean() : -120.0});
  }
  table.print();

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig15_orientation_link.csv",
                          {"orientation_deg", "reads_hz", "rssi_dbm"});
    for (const auto& row : csv_rows) csv.row({row[0], row[1], row[2]});
    std::printf("CSV: %s/fig15_orientation_link.csv\n", dir->c_str());
  }
  return 0;
}
