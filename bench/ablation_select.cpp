// Ablation: Gen2 SELECT masking vs open inventory under contention.
//
// Fig. 14 accepts the read-rate collapse caused by item-labelling tags
// because "the total reading rate is sufficiently high". The EPC Gen2
// toolbox has a stronger answer the paper leaves on the table: a SELECT
// whose mask matches only the monitoring EPCs (trivial with the Fig. 9
// user-ID prefix) silences the item tags entirely. This bench quantifies
// the recovered air time.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Ablation",
                      "Gen2 SELECT masking vs open inventory (Fig. 14 setup)");

  constexpr int kTrials = 5;
  common::ConsoleTable table({"contending", "inventory", "accuracy",
                              "err [bpm]", "monitor reads/s"});
  for (int contending : {10, 30}) {
    for (bool select : {false, true}) {
      experiments::ScenarioConfig cfg;
      cfg.distance_m = 2.0;
      cfg.contending_tags = contending;
      cfg.select_monitoring_only = select;
      cfg.seed = 8500 + static_cast<std::uint64_t>(contending) +
                 (select ? 7 : 0);
      const auto agg = experiments::run_trials(cfg, kTrials);
      table.add_row({std::to_string(contending),
                     select ? "SELECT monitoring tags" : "open (paper)",
                     common::fmt(agg.accuracy.mean(), 3),
                     common::fmt(agg.error_bpm.mean(), 2),
                     common::fmt(agg.monitor_read_rate_hz.mean(), 1)});
    }
  }
  table.print();
  std::printf("(SELECT restores the uncontended ~58 reads/s regardless of\n"
              " item-tag population — at the cost of not inventorying the\n"
              " items, which a deployment may still need)\n");
  return 0;
}
