// Fig. 16: breathing-rate accuracy vs orientation with a LOS path
// (0-90 deg).
//
// Paper: above 90% facing the antenna, decreasing to ~85% at 90 deg.
// Beyond 90 deg TagBreathe reports nothing (no reads, Fig. 15).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 16", "Accuracy vs orientation (LOS, 0-90 deg)");
  bench::print_note("paper: >90% facing, ~85% at 90 deg");

  constexpr int kTrials = 8;
  common::ConsoleTable table(
      {"orientation [deg]", "accuracy", "err [bpm]", "reads/s", "bar"});
  std::vector<std::array<double, 3>> csv_rows;
  for (int deg : {0, 15, 30, 45, 60, 75, 90}) {
    experiments::ScenarioConfig cfg;
    cfg.users = {experiments::UserSpec()};
    cfg.users[0].orientation_deg = deg;
    cfg.seed = 6400 + static_cast<std::uint64_t>(deg);
    const auto agg = experiments::run_trials(cfg, kTrials);
    table.add_row({std::to_string(deg), common::fmt(agg.accuracy.mean(), 3),
                   common::fmt(agg.error_bpm.mean(), 2),
                   common::fmt(agg.monitor_read_rate_hz.mean(), 1),
                   common::ascii_bar(agg.accuracy.mean(), 1.0, 30)});
    csv_rows.push_back({static_cast<double>(deg), agg.accuracy.mean(),
                        agg.error_bpm.mean()});
  }
  table.print();

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig16_orientation_accuracy.csv",
                          {"orientation_deg", "accuracy", "error_bpm"});
    for (const auto& row : csv_rows) csv.row({row[0], row[1], row[2]});
    std::printf("CSV: %s/fig16_orientation_accuracy.csv\n", dir->c_str());
  }
  return 0;
}
