// Fig. 13: breathing-rate accuracy vs number of users (1-4).
//
// Paper: users sit side by side 4 m from the antenna, 3 tags each;
// accuracy stays around 95% — the Gen2 MAC separates the tags, so more
// users only lower per-tag read rates.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 13", "Accuracy vs number of users (1-4)");
  bench::print_note("paper: ~95% for all of 1-4 users (12 tags max)");

  constexpr int kTrials = 6;
  common::ConsoleTable table(
      {"users", "tags", "accuracy", "err [bpm]", "total reads/s", "bar"});
  std::vector<std::array<double, 3>> csv_rows;
  for (int users = 1; users <= 4; ++users) {
    experiments::ScenarioConfig cfg;
    cfg.users.clear();
    for (int u = 0; u < users; ++u) {
      experiments::UserSpec spec;
      // Neighbouring users breathe at different rates so the analysis
      // must actually separate them (not just average the room).
      spec.rate_bpm = 8.0 + 3.0 * u;
      spec.chest_style = 0.3 + 0.15 * u;
      cfg.users.push_back(spec);
    }
    cfg.seed = 6100 + static_cast<std::uint64_t>(users);
    const auto agg = experiments::run_trials(cfg, kTrials);
    table.add_row({std::to_string(users), std::to_string(users * 3),
                   common::fmt(agg.accuracy.mean(), 3),
                   common::fmt(agg.error_bpm.mean(), 2),
                   common::fmt(agg.read_rate_hz.mean(), 1),
                   common::ascii_bar(agg.accuracy.mean(), 1.0, 30)});
    csv_rows.push_back({static_cast<double>(users), agg.accuracy.mean(),
                        agg.error_bpm.mean()});
  }
  table.print();

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig13_users.csv",
                          {"users", "accuracy", "error_bpm"});
    for (const auto& row : csv_rows) csv.row({row[0], row[1], row[2]});
    std::printf("CSV: %s/fig13_users.csv\n", dir->c_str());
  }
  return 0;
}
