// Table-I parameter sweep: transmit power 15-30 dBm.
//
// The paper lists Tx power as an evaluation parameter (default 30 dBm)
// without a dedicated figure; this bench fills the row: lower power
// shrinks the forward link margin, cutting read rates and eventually
// dropping the tag out of range entirely.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Table I sweep", "Accuracy vs transmit power (4 m)");
  bench::print_note("paper: parameter range 15-30 dBm, default 30 dBm");

  constexpr int kTrials = 5;
  common::ConsoleTable table(
      {"tx power [dBm]", "accuracy", "err [bpm]", "reads/s", "bar"});
  for (double dbm : {15.0, 18.0, 21.0, 24.0, 27.0, 30.0}) {
    experiments::ScenarioConfig cfg;
    cfg.tx_power_dbm = dbm;
    cfg.seed = 8100 + static_cast<std::uint64_t>(dbm);
    const auto agg = experiments::run_trials(cfg, kTrials);
    const double rate = agg.monitor_read_rate_hz.mean();
    table.add_row({common::fmt(dbm, 0),
                   rate > 1.0 ? common::fmt(agg.accuracy.mean(), 3)
                              : "no reads",
                   rate > 1.0 ? common::fmt(agg.error_bpm.mean(), 2) : "-",
                   common::fmt(rate, 1),
                   common::ascii_bar(agg.accuracy.mean(), 1.0, 30)});
  }
  table.print();
  std::printf("(the forward link is the binding constraint: below the tag "
              "power-up threshold nothing is read at all)\n");
  return 0;
}
