// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints (a) the paper's reference numbers where the paper
// states them, (b) our measured numbers, and (c) an optional CSV dump
// (TAGBREATHE_CSV_DIR env var) for external plotting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace tagbreathe::bench {

/// CSV output directory from $TAGBREATHE_CSV_DIR; nullopt = disabled.
inline std::optional<std::string> csv_dir() {
  const char* dir = std::getenv("TAGBREATHE_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir);
}

inline void print_header(const char* figure, const char* title) {
  std::printf("================================================================\n");
  std::printf("TagBreathe reproduction — %s\n%s\n", figure, title);
  std::printf("================================================================\n");
}

inline void print_note(const char* note) { std::printf("%s\n", note); }

}  // namespace tagbreathe::bench
