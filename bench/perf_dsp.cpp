// google-benchmark microbenchmarks of the DSP kernels on the TagBreathe
// hot path: FFT, the FFT low-pass, FIR design/filtering, preprocessing,
// fusion and the ACF fundamental search.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/fusion.hpp"
#include "core/phase_preprocess.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/spectrum.hpp"

using namespace tagbreathe;

namespace {

std::vector<double> noise_signal(std::size_t n, std::uint64_t seed = 3) {
  common::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<signal::cdouble> data(n);
  common::Rng rng(1);
  for (auto& c : data) c = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto copy = data;
    signal::fft_pow2(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftPow2)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_FftBluestein(benchmark::State& state) {
  // Non-power-of-two length exercises the chirp-z path.
  const auto n = static_cast<std::size_t>(state.range(0)) + 1;
  std::vector<signal::cdouble> data(n);
  common::Rng rng(1);
  for (auto& c : data) c = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto out = signal::fft(data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluestein)->RangeMultiplier(4)->Range(256, 16384);

void BM_FftLowpass(benchmark::State& state) {
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto y = signal::fft_lowpass(x, 20.0, 0.67);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftLowpass)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FirFiltFilt(benchmark::State& state) {
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  const auto taps = signal::design_lowpass(0.67, 20.0, 101);
  for (auto _ : state) {
    auto y = signal::filtfilt(x, taps);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FirFiltFilt)->Arg(600)->Arg(2400);

void BM_AcfFundamental(benchmark::State& state) {
  // 120 s of 20 Hz track with a 10 bpm oscillation + noise.
  std::vector<double> x = noise_signal(2400);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.01 * std::sin(2.0 * 3.14159 * 0.1667 * static_cast<double>(i) / 20.0) +
           0.003 * x[i];
  for (auto _ : state) {
    const double f = signal::autocorrelation_fundamental(x, 20.0, 0.075, 0.67);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_AcfFundamental);

void BM_Goertzel(benchmark::State& state) {
  const auto x = noise_signal(2400);
  for (auto _ : state) {
    const double p = signal::goertzel_power(x, 20.0, 0.1667);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Goertzel);

void BM_FuseStreams(benchmark::State& state) {
  // Three 120 s delta streams at ~60 Hz each.
  common::Rng rng(5);
  std::vector<std::vector<signal::TimedSample>> streams(3);
  for (auto& s : streams) {
    double t = 0.0;
    while (t < 120.0) {
      t += rng.exponential(60.0);
      s.push_back(signal::TimedSample{t, rng.normal() * 1e-3});
    }
  }
  for (auto _ : state) {
    auto fused = core::fuse_streams(streams);
    benchmark::DoNotOptimize(fused.track.data());
  }
}
BENCHMARK(BM_FuseStreams);

}  // namespace

BENCHMARK_MAIN();
