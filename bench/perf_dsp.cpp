// google-benchmark microbenchmarks of the DSP kernels on the TagBreathe
// hot path: FFT, the FFT low-pass, FIR design/filtering, preprocessing,
// fusion and the ACF fundamental search.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/fusion.hpp"
#include "core/phase_preprocess.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/spectrum.hpp"

using namespace tagbreathe;

namespace {

std::vector<double> noise_signal(std::size_t n, std::uint64_t seed = 3) {
  common::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

std::vector<signal::cdouble> noise_complex(std::size_t n, std::uint64_t seed = 1) {
  common::Rng rng(seed);
  std::vector<signal::cdouble> data(n);
  for (auto& c : data) c = {rng.normal(), rng.normal()};
  return data;
}

void BM_FftPow2(benchmark::State& state) {
  // Legacy planless kernel alone: a forward/inverse round trip in place
  // keeps the data bounded without a per-iteration vector copy polluting
  // the timing (items/iteration = 2 transforms).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto data = noise_complex(n);
  for (auto _ : state) {
    signal::fft_pow2(data, /*inverse=*/false);
    signal::fft_pow2(data, /*inverse=*/true);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(2 * state.iterations());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftPow2)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_FftPow2Planned(benchmark::State& state) {
  // Plan-based kernel alone: precomputed bit-reversal + twiddles,
  // out-of-place into a warm buffer, zero steady-state allocation.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = noise_complex(n);
  const auto plan = signal::FftPlan::get(n, signal::FftDirection::Forward);
  signal::FftScratch scratch;
  std::vector<signal::cdouble> out(n);
  for (auto _ : state) {
    plan->execute(data, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftPow2Planned)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_FftBluestein(benchmark::State& state) {
  // Non-power-of-two length exercises the chirp-z path; this is the
  // planless one-shot shape (allocates the result each call).
  const auto n = static_cast<std::size_t>(state.range(0)) + 1;
  const auto data = noise_complex(n);
  for (auto _ : state) {
    auto out = signal::fft(data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluestein)->RangeMultiplier(4)->Range(256, 16384);

void BM_FftBluesteinPlanned(benchmark::State& state) {
  // Chirp-z with the chirp and kernel spectrum precomputed in the plan
  // and the convolution buffer reused from caller scratch.
  const auto n = static_cast<std::size_t>(state.range(0)) + 1;
  const auto data = noise_complex(n);
  const auto plan = signal::FftPlan::get(n, signal::FftDirection::Forward);
  signal::FftScratch scratch;
  std::vector<signal::cdouble> out(n);
  for (auto _ : state) {
    plan->execute(data, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluesteinPlanned)->RangeMultiplier(4)->Range(256, 16384);

void BM_FftRealWiden(benchmark::State& state) {
  // Real input through the full complex transform (widen + N-point FFT).
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  std::vector<signal::cdouble> wide(x.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < x.size(); ++i) wide[i] = {x[i], 0.0};
    auto out = signal::fft(wide);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftRealWiden)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FftRealPacked(benchmark::State& state) {
  // Even/odd packing: one N/2-point transform plus untangling.
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  signal::FftScratch scratch;
  std::vector<signal::cdouble> out;
  for (auto _ : state) {
    signal::fft_real_into(x, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftRealPacked)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FftLowpass(benchmark::State& state) {
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto y = signal::fft_lowpass(x, 20.0, 0.67);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftLowpass)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FftLowpassPlanned(benchmark::State& state) {
  // Same filter through the workspace variant the realtime engine uses:
  // allocation-free once the workspace is warm.
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  signal::FftWorkspace ws;
  std::vector<double> y;
  for (auto _ : state) {
    signal::fft_lowpass_into(x, 20.0, 0.67, /*remove_dc=*/true, ws, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftLowpassPlanned)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FirFiltFilt(benchmark::State& state) {
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  const auto taps = signal::design_lowpass(0.67, 20.0, 101);
  for (auto _ : state) {
    auto y = signal::filtfilt(x, taps);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FirFiltFilt)->Arg(600)->Arg(2400);

void BM_AcfFundamental(benchmark::State& state) {
  // 120 s of 20 Hz track with a 10 bpm oscillation + noise.
  std::vector<double> x = noise_signal(2400);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.01 * std::sin(2.0 * 3.14159 * 0.1667 * static_cast<double>(i) / 20.0) +
           0.003 * x[i];
  for (auto _ : state) {
    const double f = signal::autocorrelation_fundamental(x, 20.0, 0.075, 0.67);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_AcfFundamental);

void BM_Goertzel(benchmark::State& state) {
  const auto x = noise_signal(2400);
  for (auto _ : state) {
    const double p = signal::goertzel_power(x, 20.0, 0.1667);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Goertzel);

void BM_FuseStreams(benchmark::State& state) {
  // Three 120 s delta streams at ~60 Hz each.
  common::Rng rng(5);
  std::vector<std::vector<signal::TimedSample>> streams(3);
  for (auto& s : streams) {
    double t = 0.0;
    while (t < 120.0) {
      t += rng.exponential(60.0);
      s.push_back(signal::TimedSample{t, rng.normal() * 1e-3});
    }
  }
  for (auto _ : state) {
    auto fused = core::fuse_streams(streams);
    benchmark::DoNotOptimize(fused.track.data());
  }
}
BENCHMARK(BM_FuseStreams);

}  // namespace

BENCHMARK_MAIN();
