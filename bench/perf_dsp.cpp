// google-benchmark microbenchmarks of the DSP kernels on the TagBreathe
// hot path: FFT, the FFT low-pass, FIR design/filtering, preprocessing,
// fusion and the ACF fundamental search.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/fusion.hpp"
#include "core/phase_preprocess.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/simd/dispatch.hpp"
#include "signal/simd/kernels.hpp"
#include "signal/spectrum.hpp"

using namespace tagbreathe;

namespace {

std::vector<double> noise_signal(std::size_t n, std::uint64_t seed = 3) {
  common::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

std::vector<signal::cdouble> noise_complex(std::size_t n, std::uint64_t seed = 1) {
  common::Rng rng(seed);
  std::vector<signal::cdouble> data(n);
  for (auto& c : data) c = {rng.normal(), rng.normal()};
  return data;
}

void BM_FftPow2(benchmark::State& state) {
  // Legacy planless kernel alone: a forward/inverse round trip in place
  // keeps the data bounded without a per-iteration vector copy polluting
  // the timing (items/iteration = 2 transforms).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto data = noise_complex(n);
  for (auto _ : state) {
    signal::fft_pow2(data, /*inverse=*/false);
    signal::fft_pow2(data, /*inverse=*/true);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(2 * state.iterations());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftPow2)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_FftPow2Planned(benchmark::State& state) {
  // Plan-based kernel alone: precomputed bit-reversal + twiddles,
  // out-of-place into a warm buffer, zero steady-state allocation.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = noise_complex(n);
  const auto plan = signal::FftPlan::get(n, signal::FftDirection::Forward);
  signal::FftScratch scratch;
  std::vector<signal::cdouble> out(n);
  for (auto _ : state) {
    plan->execute(data, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftPow2Planned)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_FftBluestein(benchmark::State& state) {
  // Non-power-of-two length exercises the chirp-z path; this is the
  // planless one-shot shape (allocates the result each call).
  const auto n = static_cast<std::size_t>(state.range(0)) + 1;
  const auto data = noise_complex(n);
  for (auto _ : state) {
    auto out = signal::fft(data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluestein)->RangeMultiplier(4)->Range(256, 16384);

void BM_FftBluesteinPlanned(benchmark::State& state) {
  // Chirp-z with the chirp and kernel spectrum precomputed in the plan
  // and the convolution buffer reused from caller scratch.
  const auto n = static_cast<std::size_t>(state.range(0)) + 1;
  const auto data = noise_complex(n);
  const auto plan = signal::FftPlan::get(n, signal::FftDirection::Forward);
  signal::FftScratch scratch;
  std::vector<signal::cdouble> out(n);
  for (auto _ : state) {
    plan->execute(data, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluesteinPlanned)->RangeMultiplier(4)->Range(256, 16384);

void BM_FftRealWiden(benchmark::State& state) {
  // Real input through the full complex transform (widen + N-point FFT).
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  std::vector<signal::cdouble> wide(x.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < x.size(); ++i) wide[i] = {x[i], 0.0};
    auto out = signal::fft(wide);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftRealWiden)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FftRealPacked(benchmark::State& state) {
  // Even/odd packing: one N/2-point transform plus untangling.
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  signal::FftScratch scratch;
  std::vector<signal::cdouble> out;
  for (auto _ : state) {
    signal::fft_real_into(x, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftRealPacked)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FftLowpass(benchmark::State& state) {
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto y = signal::fft_lowpass(x, 20.0, 0.67);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftLowpass)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FftLowpassPlanned(benchmark::State& state) {
  // Same filter through the workspace variant the realtime engine uses:
  // allocation-free once the workspace is warm.
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  signal::FftWorkspace ws;
  std::vector<double> y;
  for (auto _ : state) {
    signal::fft_lowpass_into(x, 20.0, 0.67, /*remove_dc=*/true, ws, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftLowpassPlanned)->Arg(600)->Arg(2400)->Arg(9600);

void BM_FirFiltFilt(benchmark::State& state) {
  const auto x = noise_signal(static_cast<std::size_t>(state.range(0)));
  const auto taps = signal::design_lowpass(0.67, 20.0, 101);
  for (auto _ : state) {
    auto y = signal::filtfilt(x, taps);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FirFiltFilt)->Arg(600)->Arg(2400);

void BM_AcfFundamental(benchmark::State& state) {
  // 120 s of 20 Hz track with a 10 bpm oscillation + noise.
  std::vector<double> x = noise_signal(2400);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.01 * std::sin(2.0 * 3.14159 * 0.1667 * static_cast<double>(i) / 20.0) +
           0.003 * x[i];
  for (auto _ : state) {
    const double f = signal::autocorrelation_fundamental(x, 20.0, 0.075, 0.67);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_AcfFundamental);

void BM_Goertzel(benchmark::State& state) {
  const auto x = noise_signal(2400);
  for (auto _ : state) {
    const double p = signal::goertzel_power(x, 20.0, 0.1667);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Goertzel);

// --- SIMD dispatch: scalar baseline vs the active vector level --------------
//
// range(0) selects the kernel table: 0 pins the scalar reference, 1 the
// level the hardware probe picked (on a machine without AVX2/NEON the
// override falls back to scalar, so the two rows simply coincide). The
// label records which table actually ran. Outputs are bit-identical
// across rows by the dispatch contract — only the time differs.

struct LevelGuard {
  explicit LevelGuard(benchmark::State& state) {
    const bool vector = state.range(0) != 0;
    const auto want = vector ? signal::simd::detected_level()
                             : signal::simd::SimdLevel::Scalar;
    const auto got = signal::simd::override_level_for_testing(want);
    state.SetLabel(signal::simd::simd_level_name(got));
  }
  ~LevelGuard() { signal::simd::reset_dispatch_for_testing(); }
};

void BM_PhaseDeltasKernel(benchmark::State& state) {
  // The Eq. 3 delta loop alone: wrap-to-(-pi, pi] plus per-channel
  // scaling over one preprocessed stream's worth of samples.
  LevelGuard guard(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto dphase = noise_signal(n, 21);
  std::vector<double> scale(n, 0.0259);
  std::vector<double> out(n);
  const auto& k = signal::simd::kernels();
  for (auto _ : state) {
    k.phase_deltas(dphase.data(), scale.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PhaseDeltasKernel)
    ->ArgNames({"vector", "n"})
    ->ArgsProduct({{0, 1}, {64, 1024, 16384}});

void BM_ButterflyKernel(benchmark::State& state) {
  // One mid-size butterfly stage (half = n/4: strided blocks, the shape
  // most stages take) over a pow2 array.
  LevelGuard guard(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  auto data = noise_complex(n, 22);
  const auto tw = noise_complex(n / 4, 23);
  const auto& k = signal::simd::kernels();
  for (auto _ : state) {
    k.butterfly_stage(data.data(), n, n / 4, tw.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ButterflyKernel)
    ->ArgNames({"vector", "n"})
    ->ArgsProduct({{0, 1}, {1024, 16384}});

void BM_FftPlannedLevel(benchmark::State& state) {
  // The planned transform at the realtime engine's track lengths:
  // 600 (Bluestein, the 30 s fused track) and 1024 (pure pow2).
  LevelGuard guard(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto data = noise_complex(n, 24);
  const auto plan = signal::FftPlan::get(n, signal::FftDirection::Forward);
  signal::FftScratch scratch;
  std::vector<signal::cdouble> out(n);
  for (auto _ : state) {
    plan->execute(data, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FftPlannedLevel)
    ->ArgNames({"vector", "n"})
    ->ArgsProduct({{0, 1}, {600, 1024}});

// --- batched sweeps: fft_bandlimit_many vs per-job calls --------------------

void BM_BandlimitSweep(benchmark::State& state) {
  // The extraction stage's filter shape: `jobs` 600-sample tracks
  // band-limited to the breathing band. range(1)=1 stages every job and
  // runs one fft_bandlimit_many sweep (shared plan lookup, one warm
  // workspace); range(1)=0 issues the same filters one call at a time.
  // Identical outputs either way — the sweep only amortises plan-cache
  // hits and keeps the twiddles/chirps hot across jobs.
  LevelGuard guard(state);
  const bool batched = state.range(1) != 0;
  const auto jobs_n = static_cast<std::size_t>(state.range(2));
  std::vector<std::vector<double>> tracks(jobs_n);
  for (std::size_t j = 0; j < jobs_n; ++j)
    tracks[j] = noise_signal(600, 31 + j);
  signal::FftWorkspace ws;
  std::vector<std::vector<double>> out(jobs_n);
  std::vector<signal::BandLimitJob> jobs(jobs_n);
  for (auto _ : state) {
    if (batched) {
      for (std::size_t j = 0; j < jobs_n; ++j)
        jobs[j] = signal::BandLimitJob{tracks[j], 20.0, 0.075, 0.67, &out[j]};
      signal::fft_bandlimit_many(jobs, ws);
    } else {
      for (std::size_t j = 0; j < jobs_n; ++j)
        signal::fft_bandpass_into(tracks[j], 20.0, 0.075, 0.67, ws, out[j]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs_n));
}
BENCHMARK(BM_BandlimitSweep)
    ->ArgNames({"vector", "batched", "jobs"})
    ->ArgsProduct({{0, 1}, {0, 1}, {16, 64}})
    ->Unit(benchmark::kMicrosecond);

void BM_FuseStreams(benchmark::State& state) {
  // Three 120 s delta streams at ~60 Hz each.
  common::Rng rng(5);
  std::vector<std::vector<signal::TimedSample>> streams(3);
  for (auto& s : streams) {
    double t = 0.0;
    while (t < 120.0) {
      t += rng.exponential(60.0);
      s.push_back(signal::TimedSample{t, rng.normal() * 1e-3});
    }
  }
  for (auto _ : state) {
    auto fused = core::fuse_streams(streams);
    benchmark::DoNotOptimize(fused.track.data());
  }
}
BENCHMARK(BM_FuseStreams);

}  // namespace

BENCHMARK_MAIN();
