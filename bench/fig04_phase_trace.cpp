// Fig. 4: raw phase values during the characterisation capture.
//
// Paper observation: raw phase is discontinuous — every channel hop
// changes the wavelength and the offset c of Eq. 1, so the trace jumps
// at each dwell boundary even for a (nearly) static tag.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/characterization.hpp"
#include "common/units.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 4", "Raw phase values (1 tag, 2 m, 25 s)");
  const auto cap = bench::run_characterization();

  // Count the phase discontinuities at channel-hop boundaries.
  std::size_t hop_jumps = 0, within_dwell_pairs = 0;
  double max_within_delta = 0.0;
  for (std::size_t i = 1; i < cap.reads.size(); ++i) {
    const auto& prev = cap.reads[i - 1];
    const auto& cur = cap.reads[i];
    const double delta = std::abs(
        common::wrap_phase_pi(cur.phase_rad - prev.phase_rad));
    if (cur.channel_index != prev.channel_index) {
      ++hop_jumps;
    } else {
      ++within_dwell_pairs;
      max_within_delta = std::max(max_within_delta, delta);
    }
  }
  std::printf("reads: %zu; channel transitions in trace: %zu\n",
              cap.reads.size(), hop_jumps);
  std::printf("within-dwell max |phase delta|: %.3f rad (smooth)\n",
              max_within_delta);
  std::printf("=> raw phase unusable across hops; Eq. 3 differences "
              "same-channel readings instead\n");

  // Print a short excerpt around a hop to show the jump.
  std::printf("\nexcerpt (time_s, channel, phase_rad):\n");
  std::size_t shown = 0;
  for (std::size_t i = 1; i < cap.reads.size() && shown < 12; ++i) {
    if (cap.reads[i].channel_index != cap.reads[i - 1].channel_index ||
        shown > 0) {
      std::printf("  %7.3f  ch%-2u  %.3f\n", cap.reads[i].time_s,
                  cap.reads[i].channel_index, cap.reads[i].phase_rad);
      ++shown;
    }
  }

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig04_phase.csv",
                          {"time_s", "channel", "phase_rad"});
    for (const auto& r : cap.reads)
      csv.row({r.time_s, static_cast<double>(r.channel_index), r.phase_rad});
    std::printf("CSV: %s/fig04_phase.csv\n", dir->c_str());
  }
  return 0;
}
