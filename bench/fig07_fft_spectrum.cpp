// Fig. 7: FFT of the displacement values — the peak corresponds to the
// breathing rate, and the paper's resolution caveat: a w-second window
// resolves only 1/w Hz (25 s -> 0.04 Hz -> 2.4 bpm quantisation).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/characterization.hpp"
#include "core/fusion.hpp"
#include "core/phase_preprocess.hpp"
#include "signal/filters.hpp"
#include "signal/spectrum.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 7", "FFT of displacement values (25 s window)");
  const auto cap = bench::run_characterization();

  core::PhasePreprocessor pre;
  const auto deltas = pre.process(cap.reads);
  std::vector<std::vector<signal::TimedSample>> streams{deltas};
  const auto fused = core::fuse_streams(streams);

  std::vector<double> values;
  for (const auto& s : fused.track) values.push_back(s.value);
  signal::detrend_linear(values);

  const auto bins = signal::periodogram(values, fused.sample_rate_hz());
  const double resolution = bins.size() > 1
                                ? bins[1].frequency_hz - bins[0].frequency_hz
                                : 0.0;
  std::printf("window: 25 s -> frequency resolution %.4f Hz = %.2f bpm "
              "(paper: 0.04 Hz = 2.4 bpm)\n",
              resolution, resolution * 60.0);

  // Peak within the breathing band.
  double best_f = 0.0, best_p = -1.0;
  std::vector<double> band_powers;
  for (const auto& b : bins) {
    if (b.frequency_hz < 0.05 || b.frequency_hz > 1.0) continue;
    band_powers.push_back(b.power);
    if (b.power > best_p) {
      best_p = b.power;
      best_f = b.frequency_hz;
    }
  }
  std::printf("spectrum 0.05-1.0 Hz: %s\n",
              common::sparkline(band_powers).c_str());
  std::printf("peak bin: %.3f Hz = %.1f bpm (true rate %.1f bpm)\n", best_f,
              best_f * 60.0, cap.true_rate_bpm);
  std::printf("=> peak identifies the rate only to the 1/w grid; TagBreathe "
              "reads zero crossings instead (Fig. 8)\n");

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig07_spectrum.csv",
                          {"frequency_hz", "power"});
    for (const auto& b : bins) csv.row({b.frequency_hz, b.power});
    std::printf("CSV: %s/fig07_spectrum.csv\n", dir->c_str());
  }
  return 0;
}
