// google-benchmark fleet coordinator benchmarks (ISSUE 6): the
// drain → validate → dedup/route → shard-execute → merge cycle at
// ward scale, across reader counts, shard counts and shard worker
// threads, plus the rebalance path under a mid-run reader kill.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_soak.hpp"

using namespace tagbreathe;

namespace {

core::ReadStream canned_population(std::size_t users, double duration_s,
                                   double rate_hz) {
  core::SoakConfig pop;
  pop.n_users = users;
  pop.tags_per_user = 1;
  pop.duration_s = duration_s;
  pop.read_rate_hz = rate_hz;
  return core::make_soak_population(pop);
}

/// Full coordinator cycle: N readers feeding M shards, pump at 4 Hz.
void BM_FleetFanout(benchmark::State& state) {
  const auto readers = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  constexpr std::size_t kUsers = 64;
  constexpr double kDuration = 20.0;
  const core::ReadStream reads = canned_population(kUsers, kDuration, 4.0);

  for (auto _ : state) {
    fleet::FleetConfig fc;
    fc.n_readers = readers;
    fc.n_shards = shards;
    fc.shard_threads = threads;
    fc.ingest.max_users = 0;
    fc.pipeline.window_s = 15.0;
    fc.pipeline.update_period_s = 1.0;
    fc.pipeline.warmup_s = 5.0;
    fleet::ReaderFleet fleet(fc, nullptr);
    double next_pump = 0.25;
    for (const core::TagRead& read : reads) {
      while (read.time_s >= next_pump) {
        fleet.pump(next_pump);
        next_pump += 0.25;
      }
      fleet.offer((read.epc.user_id() - 1) % readers, read);
    }
    fleet.pump(kDuration);
    benchmark::DoNotOptimize(fleet.counters().events);
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(reads.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetFanout)
    ->ArgNames({"readers", "shards", "threads"})
    ->ArgsProduct({{4, 16}, {1, 8}, {0, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The soak harness end to end with a scripted mid-run reader kill:
/// what the CI fleet chaos-soak job pays per run, including the
/// rebalance/failover machinery.
void BM_FleetSoakWithKill(benchmark::State& state) {
  for (auto _ : state) {
    fleet::FleetSoakConfig cfg;
    cfg.n_readers = 8;
    cfg.n_users = 32;
    cfg.duration_s = 20.0;
    cfg.read_rate_hz = 2.0;
    cfg.fleet.n_shards = 4;
    cfg.fleet.ingest.max_users = 0;
    cfg.fleet.pipeline.window_s = 12.0;
    cfg.fleet.pipeline.warmup_s = 4.0;
    cfg.record_event_log = false;
    cfg.reader_chaos.push_back(
        core::ReaderChaosConfig::blackout(2, 8.0, 5.0, 23));
    const fleet::FleetSoakReport report = fleet::run_fleet_soak(cfg);
    benchmark::DoNotOptimize(report.event_log_hash);
  }
}
BENCHMARK(BM_FleetSoakWithKill)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: mirror results as JSON into BENCH_fleet.json (override
// with TAGBREATHE_BENCH_JSON or an explicit --benchmark_out) so CI and
// EXPERIMENTS.md keep a machine-readable fleet scaling record.
int main(int argc, char** argv) {
  const char* json_path = std::getenv("TAGBREATHE_BENCH_JSON");
  std::string out_flag = std::string("--benchmark_out=") +
                         (json_path != nullptr ? json_path : "BENCH_fleet.json");
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(format_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
