// Fig. 17 (Sec. VI-B.4, second "4"): accuracy with different postures —
// sitting, standing, lying. Antenna fixed 1 m above ground, same range.
//
// Paper: accuracy remains above 90% across postures; differences come
// from tag orientation toward the antenna and posture-dependent
// breathing mechanics (supine breathing is more abdominal).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 17", "Accuracy vs posture");
  bench::print_note("paper: >90% for sitting, standing and lying");

  constexpr int kTrials = 8;
  common::ConsoleTable table(
      {"posture", "accuracy", "err [bpm]", "reads/s", "bar"});
  std::vector<std::pair<std::string, double>> csv_rows;
  for (body::Posture posture :
       {body::Posture::Sitting, body::Posture::Standing,
        body::Posture::Lying}) {
    experiments::ScenarioConfig cfg;
    cfg.users = {experiments::UserSpec()};
    cfg.users[0].posture = posture;
    // Lying: the subject is on a bed at the same range; the chest points
    // up, so the antenna sees the body obliquely, as in the paper's
    // fixed-antenna setup.
    cfg.seed = 6500 + static_cast<std::uint64_t>(posture);
    const auto agg = experiments::run_trials(cfg, kTrials);
    table.add_row({body::posture_name(posture),
                   common::fmt(agg.accuracy.mean(), 3),
                   common::fmt(agg.error_bpm.mean(), 2),
                   common::fmt(agg.monitor_read_rate_hz.mean(), 1),
                   common::ascii_bar(agg.accuracy.mean(), 1.0, 30)});
    csv_rows.emplace_back(body::posture_name(posture), agg.accuracy.mean());
  }
  table.print();

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig17_postures.csv",
                          {"posture", "accuracy"});
    for (const auto& [name, acc] : csv_rows) {
      const std::string cells[] = {name, common::fmt(acc, 4)};
      csv.text_row(cells);
    }
    std::printf("CSV: %s/fig17_postures.csv\n", dir->c_str());
  }
  return 0;
}
