// Observability-layer benchmarks: the instrument primitives alone
// (counter add, histogram observe, trace record, snapshot + export) and
// the headline number — BM_ObsOverhead, the fully instrumented realtime
// pipeline against the bare one over the identical feed. The acceptance
// bar is < 3% regression vs BM_PipelineMultiUser (recorded in
// EXPERIMENTS.md from BENCH_obs.json).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"

using namespace tagbreathe;

namespace {

core::ReadStream synthetic_reads(std::size_t users, double duration_s) {
  core::ReadStream reads;
  reads.reserve(users * 2 * static_cast<std::size_t>(duration_s * 8.0));
  for (double t = 0.0; t < duration_s; t += 0.125) {
    for (std::size_t u = 1; u <= users; ++u) {
      const double rate_hz = 0.15 + 0.1 * static_cast<double>(u % 5) / 5.0;
      for (std::uint32_t tag = 1; tag <= 2; ++tag) {
        core::TagRead r;
        r.time_s = t + 0.01 * static_cast<double>(tag);
        r.epc = rfid::Epc96::from_user_tag(u, tag);
        r.antenna_id = 1;
        r.frequency_hz = 920.625e6;
        r.rssi_dbm = -55.0;
        r.phase_rad = common::wrap_phase_2pi(
            1.0 + 0.35 * std::sin(common::kTwoPi * rate_hz * t +
                                  static_cast<double>(u + tag)));
        reads.push_back(r);
      }
    }
  }
  return reads;
}

// --- instrument primitives --------------------------------------------------

void BM_CounterAdd(benchmark::State& state) {
  obs::Observability hub(64);
  obs::Counter& c = hub.metrics().counter("bench_total");
  for (auto _ : state) {
    c.add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Observability hub(64);
  obs::Histogram& h =
      hub.metrics().histogram("bench_seconds", obs::default_latency_bounds());
  double v = 1e-6;
  for (auto _ : state) {
    h.observe(v);
    v = v < 1.0 ? v * 1.7 : 1e-6;  // walk the buckets
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceRecord(benchmark::State& state) {
  obs::Observability hub(4096);
  const std::uint16_t stage = hub.trace().register_stage("bench");
  double t = 0.0;
  for (auto _ : state) {
    hub.trace().record(stage, obs::SpanKind::Instant, t, 1);
    t += 0.001;
  }
  benchmark::DoNotOptimize(hub.trace().dropped());
}
BENCHMARK(BM_TraceRecord);

void BM_SnapshotExport(benchmark::State& state) {
  // Scrape cost on a realistically populated hub: a soaked pipeline's
  // worth of instruments plus a full trace ring, snapshotted and
  // rendered to Prometheus text.
  obs::Observability hub(4096);
  hub.use_deterministic_clock();
  core::RealtimePipeline pipeline{core::PipelineConfig{}};
  pipeline.bind_observability(hub);
  for (const auto& r : synthetic_reads(8, 30.0)) pipeline.push(r);
  for (auto _ : state) {
    const std::string text = obs::to_prometheus(hub.snapshot());
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_SnapshotExport)->Unit(benchmark::kMicrosecond);

// --- the headline: end-to-end overhead --------------------------------------

// Same feed and config as BM_PipelineMultiUser(users, threads=0, skip=0);
// range(1) toggles instrumentation. Overhead = time(bound=1) /
// time(bound=0) − 1, asserted < 3% in EXPERIMENTS.md.
void BM_ObsOverhead(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  const bool bound = state.range(1) != 0;
  const auto reads = synthetic_reads(users, 30.0);
  for (auto _ : state) {
    obs::Observability hub(1 << 12);
    core::RealtimePipeline pipeline{core::PipelineConfig{}};
    if (bound) pipeline.bind_observability(hub);
    for (const auto& r : reads) pipeline.push(r);
    benchmark::DoNotOptimize(pipeline.latest_size());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(reads.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ObsOverhead)
    ->ArgNames({"users", "bound"})
    ->ArgsProduct({{8, 64}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main mirroring perf_pipeline: console output plus JSON into
// BENCH_obs.json (TAGBREATHE_BENCH_JSON or --benchmark_out override).
int main(int argc, char** argv) {
  const char* json_path = std::getenv("TAGBREATHE_BENCH_JSON");
  std::string out_flag = std::string("--benchmark_out=") +
                         (json_path != nullptr ? json_path : "BENCH_obs.json");
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(format_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
