// Fig. 6: normalised displacement values — Eq. 3 differencing + Eq. 4
// integration remove the hopping discontinuities and track the periodic
// body movement.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/characterization.hpp"
#include "common/stats.hpp"
#include "core/phase_preprocess.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 6",
                      "Displacement track from phase deltas (Eqs. 3-4)");
  const auto cap = bench::run_characterization();

  core::PhasePreprocessor pre;
  const auto deltas = pre.process(cap.reads);
  const auto track = core::integrate_displacement(deltas);
  const auto& stats = pre.stats();
  std::printf("reads in: %zu, deltas out: %zu (gap-dropped %zu, outliers %zu)\n",
              stats.reads_in, stats.deltas_out, stats.dropped_gap,
              stats.dropped_outlier);

  std::vector<double> values;
  for (const auto& s : track) values.push_back(s.value);
  std::vector<double> normalised = values;
  common::normalize_peak(normalised);

  std::printf("track span: %.1f s, %zu samples\n",
              track.back().time_s - track.front().time_s, track.size());
  std::printf("raw displacement range: %.1f .. %.1f mm\n",
              common::min_value(values) * 1e3,
              common::max_value(values) * 1e3);

  // 0.5-s bin means of the normalised track: the Fig. 6 waveform.
  std::vector<double> binned(50, 0.0);
  std::vector<int> counts(50, 0);
  for (std::size_t i = 0; i < track.size(); ++i) {
    auto b = static_cast<std::size_t>(track[i].time_s / 0.5);
    if (b >= binned.size()) b = binned.size() - 1;
    binned[b] += normalised[i];
    ++counts[b];
  }
  for (std::size_t b = 0; b < binned.size(); ++b)
    if (counts[b]) binned[b] /= counts[b];
  std::printf("normalised displacement: %s\n",
              common::sparkline(binned).c_str());
  std::printf("(continuous across hops; ~%0.f breathing cycles visible)\n",
              cap.true_rate_bpm * 25.0 / 60.0);

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig06_displacement.csv",
                          {"time_s", "displacement_m", "normalised"});
    for (std::size_t i = 0; i < track.size(); ++i)
      csv.row({track[i].time_s, values[i], normalised[i]});
    std::printf("CSV: %s/fig06_displacement.csv\n", dir->c_str());
  }
  return 0;
}
