// Fig. 5: channel index vs time — the reader hops among 10 channels,
// residing ~0.2 s in each (regulatory frequency hopping).
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "bench/characterization.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 5", "Channel hopping (paper plan: 10 ch, 0.2 s)");
  const auto cap = bench::run_characterization();

  // Reconstruct dwell segments from the read stream.
  std::map<std::uint16_t, double> dwell_time;
  std::map<std::uint16_t, std::size_t> visits;
  double seg_start = cap.reads.front().time_s;
  std::uint16_t seg_ch = cap.reads.front().channel_index;
  std::size_t segments = 0;
  for (std::size_t i = 1; i < cap.reads.size(); ++i) {
    if (cap.reads[i].channel_index != seg_ch) {
      dwell_time[seg_ch] += cap.reads[i].time_s - seg_start;
      ++visits[seg_ch];
      ++segments;
      seg_ch = cap.reads[i].channel_index;
      seg_start = cap.reads[i].time_s;
    }
  }
  std::printf("distinct channels observed: %zu (paper: 10)\n",
              dwell_time.size());
  std::printf("hop segments in 25 s: %zu (expected ~%d at 0.2 s dwell)\n",
              segments, static_cast<int>(25.0 / 0.2));

  common::ConsoleTable table({"channel", "visits", "mean dwell [s]"});
  for (const auto& [ch, total] : dwell_time) {
    table.add_row({std::to_string(ch), std::to_string(visits[ch]),
                   common::fmt(total / static_cast<double>(visits[ch]), 3)});
  }
  table.print();

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig05_channels.csv",
                          {"time_s", "channel"});
    for (const auto& r : cap.reads)
      csv.row({r.time_s, static_cast<double>(r.channel_index)});
    std::printf("CSV: %s/fig05_channels.csv\n", dir->c_str());
  }
  return 0;
}
