// Capacity load generator (ISSUE 10): replays a synthetic many-user
// fleet (or a recorded journal segment) through the real ingest →
// demux → pipeline stack at N× stream time, and reports the two
// numbers million-user sizing hangs off: resident bytes per tracked
// user and p99 update-tick latency. Curves land in BENCH_capacity.json
// (or --out / $TAGBREATHE_BENCH_JSON); --max-bytes-per-user and
// --max-p99-ms turn the measurements into CI gates via the exit code.
//
//   loadgen --users 100000                       # one point
//   loadgen --curve                              # 100k -> 1M sweep
//   loadgen --users 10000 --max-bytes-per-user 4096 --max-p99-ms 250
//   loadgen --journal /path/to/shard-000         # replay a segment
//
// Exit codes: 0 ok, 1 usage/environment error, 2 bytes-per-user gate
// failed, 3 p99 gate failed.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/journal.hpp"
#include "core/pipeline.hpp"
#include "fleet/fleet.hpp"
#include "rfid/epc.hpp"

using namespace tagbreathe;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  std::vector<std::size_t> user_points = {100000};
  double duration_s = 12.0;
  double read_rate_hz = 0.5;
  double pump_period_s = 0.5;
  std::size_t n_readers = 16;
  std::size_t n_shards = 8;
  std::size_t shard_threads = 4;
  double speed = 0.0;  // N x stream time; 0 = unthrottled
  std::string journal_dir;
  std::string out_path;
  double max_bytes_per_user = 0.0;  // 0 = no gate
  double max_p99_ms = 0.0;          // 0 = no gate
};

struct Point {
  std::string mode;
  std::size_t users = 0;
  std::size_t reads = 0;
  std::size_t events = 0;
  double stream_s = 0.0;
  double wall_s = 0.0;
  double speedup_x = 0.0;
  double rss_mb = 0.0;
  double rss_bytes_per_user = 0.0;
  double footprint_bytes_per_user = 0.0;
  double p50_tick_ms = 0.0;
  double p99_tick_ms = 0.0;
  double max_tick_ms = 0.0;
  std::size_t registry_max_probe = 0;
  double arena_occupancy = 0.0;
};

/// VmRSS in bytes from /proc/self/status (0 if unavailable).
std::size_t resident_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kb = 0;
      fields >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

core::TagRead synth_read(std::uint64_t user, double t) {
  core::TagRead r;
  r.epc = rfid::Epc96::from_user_tag(user, 1);
  r.antenna_id = 1;
  r.time_s = t;
  r.frequency_hz = 920.625e6;
  // Distinct per-user breathing phase so analyses do real work.
  r.phase_rad =
      0.4 * std::sin(2.0 * 3.14159265358979 * t / 4.0 +
                     0.1 * static_cast<double>(user % 63));
  r.rssi_dbm = -55.0;
  return r;
}

void pace(double stream_s, double speed, Clock::time_point start) {
  if (speed <= 0.0) return;
  const auto target =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(stream_s / speed));
  std::this_thread::sleep_until(target);
}

/// Drives `users` synthetic users through a ReaderFleet for
/// `opts.duration_s` of stream time. Each user reads at read_rate_hz,
/// staggered uniformly across the rate period, so the users due in one
/// pump window form a contiguous (wrapping) index range — scheduling
/// stays O(due reads), not O(users), per pump.
Point run_fleet_point(const Options& opts, std::size_t users) {
  fleet::FleetConfig fc;
  fc.n_readers = opts.n_readers;
  fc.n_shards = opts.n_shards;
  fc.shard_threads = opts.shard_threads;
  fc.ingest.max_users = 0;
  fc.pipeline.max_users = 0;
  fc.pipeline.window_s = 12.0;
  fc.pipeline.update_period_s = 4.0;
  fc.pipeline.warmup_s = 4.0;
  // Queue depth sized to one pump window's offered load per reader,
  // with headroom — this bench measures capacity, not shedding.
  const double period_s = 1.0 / opts.read_rate_hz;
  const std::size_t per_pump_per_reader = static_cast<std::size_t>(
      static_cast<double>(users) / static_cast<double>(opts.n_readers) *
      opts.read_rate_hz * opts.pump_period_s);
  fc.ingest.queue_capacity = std::max<std::size_t>(4096, 4 * per_pump_per_reader);
  // Every reader hears traffic each pump; keep the health ladder from
  // firing on scheduling jitter anyway.
  fc.degraded_after_windows = 1000000;
  fc.dead_after_windows = 2000000;

  Point point;
  point.mode = "fleet";
  point.users = users;
  point.stream_s = opts.duration_s;

  const std::size_t rss_before = resident_bytes();
  std::size_t events = 0;
  fleet::ReaderFleet fleet(fc, [&](const fleet::FleetEvent&) { ++events; });

  std::vector<double> pump_ms;
  pump_ms.reserve(static_cast<std::size_t>(opts.duration_s /
                                           opts.pump_period_s) + 2);
  const auto wall_start = Clock::now();
  std::size_t offered = 0;
  for (double t = 0.0; t <= opts.duration_s + 1e-9; t += opts.pump_period_s) {
    // Users due in [t, t + pump_period): stagger offset u*period/users.
    const double cycle = std::fmod(t, period_s);
    const double du = static_cast<double>(users) / period_s;
    std::size_t lo = static_cast<std::size_t>(std::ceil(cycle * du));
    std::size_t hi = static_cast<std::size_t>(
        std::ceil(std::min(cycle + opts.pump_period_s, period_s) * du));
    hi = std::min(hi, users);
    for (std::size_t u = lo; u < hi; ++u) {
      const double offset = static_cast<double>(u) / du;
      const double read_t = t - cycle + offset;
      if (read_t < 0.0 || read_t > opts.duration_s) continue;
      const std::uint64_t user = static_cast<std::uint64_t>(u) + 1;
      fleet.offer(user % opts.n_readers, synth_read(user, read_t), t);
      ++offered;
    }
    const auto pump_start = Clock::now();
    fleet.pump(t);
    pump_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - pump_start)
            .count());
    pace(t, opts.speed, wall_start);
  }
  point.wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  const std::size_t rss_after = resident_bytes();
  point.reads = offered;
  point.events = events;
  point.speedup_x = point.wall_s > 0.0 ? point.stream_s / point.wall_s : 0.0;
  point.rss_mb = static_cast<double>(rss_after) / (1024.0 * 1024.0);
  const std::size_t tracked = fleet.tracked_users();
  if (tracked > 0) {
    point.rss_bytes_per_user =
        static_cast<double>(rss_after - std::min(rss_after, rss_before)) /
        static_cast<double>(tracked);
    std::size_t footprint = 0;
    for (std::size_t s = 0; s < fc.n_shards; ++s) {
      const core::RealtimePipeline& pipeline = fleet.shard_pipeline(s);
      footprint += pipeline.footprint_bytes();
      point.registry_max_probe =
          std::max(point.registry_max_probe, pipeline.registry_max_probe());
      point.arena_occupancy =
          std::max(point.arena_occupancy, pipeline.arena_occupancy());
    }
    point.footprint_bytes_per_user =
        static_cast<double>(footprint) / static_cast<double>(tracked);
  }
  point.p50_tick_ms = percentile(pump_ms, 0.50);
  point.p99_tick_ms = percentile(pump_ms, 0.99);
  point.max_tick_ms = pump_ms.empty()
                          ? 0.0
                          : *std::max_element(pump_ms.begin(), pump_ms.end());
  return point;
}

/// Replays every intact record of a shard journal directory through a
/// single RealtimePipeline, timing each update-period chunk of pushes.
Point run_journal_point(const Options& opts) {
  std::vector<core::TagRead> reads;
  const core::JournalScanResult scan = core::scan_journal(
      opts.journal_dir, 0,
      [&](const core::JournalRecord& record) { reads.push_back(record.read); });

  Point point;
  point.mode = "journal";
  point.reads = reads.size();
  if (reads.empty()) {
    std::cerr << "loadgen: no intact records in " << opts.journal_dir
              << " (delivered=" << scan.delivered << ")\n";
    return point;
  }

  core::PipelineConfig pc;
  pc.window_s = 12.0;
  pc.update_period_s = 4.0;
  pc.warmup_s = 4.0;
  std::size_t events = 0;
  core::RealtimePipeline pipeline(pc,
                                  [&](const core::PipelineEvent&) { ++events; });

  const std::size_t rss_before = resident_bytes();
  const double t0 = reads.front().time_s;
  std::vector<double> chunk_ms;
  const auto wall_start = Clock::now();
  std::size_t i = 0;
  double chunk_end = t0 + pc.update_period_s;
  while (i < reads.size()) {
    const auto chunk_start = Clock::now();
    while (i < reads.size() && reads[i].time_s <= chunk_end) {
      pipeline.push(reads[i]);
      ++i;
    }
    pipeline.advance_to(chunk_end);
    chunk_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - chunk_start)
            .count());
    pace(chunk_end - t0, opts.speed, wall_start);
    chunk_end += pc.update_period_s;
  }
  point.wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  const std::size_t rss_after = resident_bytes();
  point.users = pipeline.tracked_users();
  point.events = events;
  point.stream_s = reads.back().time_s - t0;
  point.speedup_x = point.wall_s > 0.0 ? point.stream_s / point.wall_s : 0.0;
  point.rss_mb = static_cast<double>(rss_after) / (1024.0 * 1024.0);
  if (point.users > 0) {
    point.rss_bytes_per_user =
        static_cast<double>(rss_after - std::min(rss_after, rss_before)) /
        static_cast<double>(point.users);
    point.footprint_bytes_per_user =
        static_cast<double>(pipeline.footprint_bytes()) /
        static_cast<double>(point.users);
  }
  point.registry_max_probe = pipeline.registry_max_probe();
  point.arena_occupancy = pipeline.arena_occupancy();
  point.p50_tick_ms = percentile(chunk_ms, 0.50);
  point.p99_tick_ms = percentile(chunk_ms, 0.99);
  point.max_tick_ms = chunk_ms.empty()
                          ? 0.0
                          : *std::max_element(chunk_ms.begin(), chunk_ms.end());
  return point;
}

void write_json(const std::vector<Point>& points, const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"capacity_loadgen\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"mode\": \"" << p.mode << "\", \"users\": " << p.users
        << ", \"reads\": " << p.reads << ", \"events\": " << p.events
        << ", \"stream_s\": " << p.stream_s << ", \"wall_s\": " << p.wall_s
        << ", \"speedup_x\": " << p.speedup_x << ", \"rss_mb\": " << p.rss_mb
        << ", \"rss_bytes_per_user\": " << p.rss_bytes_per_user
        << ", \"footprint_bytes_per_user\": " << p.footprint_bytes_per_user
        << ", \"p50_tick_ms\": " << p.p50_tick_ms
        << ", \"p99_tick_ms\": " << p.p99_tick_ms
        << ", \"max_tick_ms\": " << p.max_tick_ms
        << ", \"registry_max_probe\": " << p.registry_max_probe
        << ", \"arena_occupancy\": " << p.arena_occupancy << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream file(path);
  file << out.str();
  std::cout << out.str();
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--users") {  // one count or a comma-separated curve
      const char* v = next();
      if (v == nullptr) return false;
      opts.user_points.clear();
      std::istringstream list(v);
      std::string item;
      while (std::getline(list, item, ',')) {
        opts.user_points.push_back(
            static_cast<std::size_t>(std::strtoull(item.c_str(), nullptr, 10)));
      }
      if (opts.user_points.empty()) return false;
    } else if (arg == "--curve") {
      opts.user_points = {100000, 250000, 500000, 1000000};
    } else if (arg == "--duration") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.duration_s = std::strtod(v, nullptr);
    } else if (arg == "--rate") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.read_rate_hz = std::strtod(v, nullptr);
    } else if (arg == "--readers") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.n_readers = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.n_shards = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.shard_threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--speed") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.speed = std::strtod(v, nullptr);
    } else if (arg == "--journal") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.journal_dir = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.out_path = v;
    } else if (arg == "--max-bytes-per-user") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.max_bytes_per_user = std::strtod(v, nullptr);
    } else if (arg == "--max-p99-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.max_p99_ms = std::strtod(v, nullptr);
    } else {
      std::cerr << "loadgen: unknown flag " << arg << "\n";
      return false;
    }
  }
  if (opts.out_path.empty()) {
    const char* env = std::getenv("TAGBREATHE_BENCH_JSON");
    opts.out_path = env != nullptr ? env : "BENCH_capacity.json";
  }
  return opts.read_rate_hz > 0.0 && opts.duration_s > 0.0 &&
         opts.n_readers > 0 && opts.n_shards > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    std::cerr << "usage: loadgen [--users N | --curve] [--duration S] "
                 "[--rate HZ]\n               [--readers N] [--shards N] "
                 "[--threads N] [--speed X]\n               [--journal DIR] "
                 "[--out PATH] [--max-bytes-per-user B] [--max-p99-ms M]\n";
    return 1;
  }

  std::vector<Point> points;
  if (!opts.journal_dir.empty()) {
    points.push_back(run_journal_point(opts));
  } else {
    for (const std::size_t users : opts.user_points) {
      std::cerr << "loadgen: fleet point, " << users << " users...\n";
      points.push_back(run_fleet_point(opts, users));
      std::cerr << "loadgen: " << users << " users -> "
                << points.back().rss_bytes_per_user << " rss B/user, p99 "
                << points.back().p99_tick_ms << " ms ("
                << points.back().speedup_x << "x stream time)\n";
    }
  }
  write_json(points, opts.out_path);

  for (const Point& p : points) {
    if (opts.max_bytes_per_user > 0.0 &&
        p.rss_bytes_per_user > opts.max_bytes_per_user) {
      std::cerr << "loadgen: GATE FAILED: " << p.rss_bytes_per_user
                << " rss bytes/user > budget " << opts.max_bytes_per_user
                << " at " << p.users << " users\n";
      return 2;
    }
    if (opts.max_p99_ms > 0.0 && p.p99_tick_ms > opts.max_p99_ms) {
      std::cerr << "loadgen: GATE FAILED: p99 tick " << p.p99_tick_ms
                << " ms > bound " << opts.max_p99_ms << " ms at " << p.users
                << " users\n";
      return 3;
    }
  }
  return 0;
}
