// Table I: system parameters and default experiment settings.
//
// Prints the parameter table the evaluation sweeps over, with the ranges
// and defaults this reproduction implements, and verifies that each
// default is actually what the library's default-constructed configs
// produce.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/monitor.hpp"
#include "experiments/scenario.hpp"
#include "rfid/channel_plan.hpp"
#include "rfid/reader.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Table I", "System parameters and default settings");

  const experiments::ScenarioConfig defaults;
  const rfid::ReaderConfig reader_defaults;
  const rfid::ChannelPlan plan = rfid::ChannelPlan::paper_plan();

  common::ConsoleTable table({"Parameter", "Range", "Default", "Paper"});
  table.add_row({"Channel", "channel 1 - channel " +
                                std::to_string(plan.channel_count()),
                 "hopping (" + std::to_string(plan.channel_count()) +
                     " ch, " + common::fmt(plan.dwell_s(), 1) + " s dwell)",
                 "hopping (10 ch, ~0.2 s)"});
  table.add_row({"Tx power", "15 - 30 dBm",
                 common::fmt(reader_defaults.link.tx_power_dbm, 0) + " dBm",
                 "30 dBm"});
  table.add_row({"Distance", "1 m - 6 m",
                 common::fmt(defaults.distance_m, 0) + " m", "4 m"});
  table.add_row({"Orientation", "0 (front) - 180 (back) deg",
                 common::fmt(defaults.users[0].orientation_deg, 0) + " deg",
                 "front"});
  table.add_row({"Number of users", "1 - 4 users",
                 std::to_string(defaults.users.size()) + " user", "1 user"});
  table.add_row({"Tags per user", "1 - 3 tags",
                 std::to_string(defaults.tags_per_user) + " tags", "3 tags"});
  table.add_row({"Breathing rate", "5 - 20 bpm",
                 common::fmt(defaults.users[0].rate_bpm, 0) + " bpm",
                 "10 bpm"});
  table.add_row({"Posture", "sitting / standing / lying",
                 body::posture_name(defaults.users[0].posture), "sitting"});
  table.add_row({"Propagation path", "with / without LOS", "with LOS path",
                 "with LOS path"});
  table.print();

  std::printf("\nDerived algorithm defaults (Sec. IV):\n");
  const core::MonitorConfig mc;
  common::ConsoleTable algo({"Setting", "Value", "Paper"});
  algo.add_row({"Fusion bin Dt (Eq. 6)",
                common::fmt(mc.fusion.bin_s, 2) + " s", "Dt (unspecified)"});
  algo.add_row({"Low-pass cutoff",
                common::fmt(mc.extractor.cutoff_hz, 2) + " Hz",
                "0.67 Hz (40 bpm)"});
  algo.add_row({"Buffered zero crossings M (Eq. 5)",
                std::to_string(mc.rate.buffered_crossings), "7 (3 breaths)"});
  algo.add_row({"Tag ID scheme", "64-bit user + 32-bit tag (Fig. 9)",
                "64-bit user + 32-bit tag"});
  algo.print();
  return 0;
}
