// Ablation: office multipath (two-ray ground model) vs the calibrated
// exponent model.
//
// The paper's office contains furniture and appliances; its accuracy
// falls with distance partly because of multipath fades the exponent
// model averages away. Turning on the two-ray floor bounce restores the
// fade structure: per-channel RSSI varies by several dB, some (distance,
// channel) pairs fade out, and frequency hopping is what keeps the
// pipeline fed — exactly the paper's Sec. IV-A.3 argument.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "body/subject.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/monitor.hpp"
#include "rfid/reader.hpp"

using namespace tagbreathe;

namespace {

struct Outcome {
  double accuracy = 0.0;
  double reads_hz = 0.0;
  double rssi_spread_db = 0.0;  // std of per-read RSSI (fade structure)
};

Outcome run_case(double distance, bool two_ray, std::uint64_t seed) {
  body::SubjectConfig sc;
  sc.user_id = 1;
  sc.position = {distance, 0.0, 0.0};
  sc.heading_rad = common::kPi;
  sc.sway_seed = seed;
  auto subject = std::make_unique<body::Subject>(
      sc, body::BreathingModel(body::MetronomeSchedule(10.0), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 3; ++i)
    tags.push_back(std::make_unique<rfid::BodyTag>(
        rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i + 1)),
        subject.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  rfid::ReaderConfig rc;
  rc.link.two_ray_ground = two_ray;
  rc.seed = seed * 17 + 3;
  rfid::ReaderSim sim(rc, std::move(tags));
  const auto reads = sim.run(120.0);

  Outcome out;
  out.reads_hz = static_cast<double>(reads.size()) / 120.0;
  common::RunningStats rssi;
  for (const auto& r : reads) rssi.add(r.rssi_dbm);
  out.rssi_spread_db = rssi.stddev();
  core::BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  if (!analyses.empty())
    out.accuracy =
        core::breathing_rate_accuracy(analyses[0].rate.rate_bpm, 10.0);
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "Multipath: exponent model vs two-ray ground");

  constexpr int kTrials = 4;
  common::ConsoleTable table({"distance [m]", "model", "accuracy",
                              "reads/s", "RSSI spread [dB]"});
  for (double d : {2.0, 4.0, 6.0}) {
    for (bool two_ray : {false, true}) {
      common::RunningStats acc, rate, spread;
      for (int t = 0; t < kTrials; ++t) {
        const Outcome o =
            run_case(d, two_ray, 8400 + static_cast<std::uint64_t>(t));
        acc.add(o.accuracy);
        rate.add(o.reads_hz);
        spread.add(o.rssi_spread_db);
      }
      table.add_row({common::fmt(d, 0),
                     two_ray ? "two-ray ground" : "exponent (default)",
                     common::fmt(acc.mean(), 3), common::fmt(rate.mean(), 1),
                     common::fmt(spread.mean(), 2)});
    }
  }
  table.print();
  std::printf("(two-ray adds the fade structure of a real room: larger RSSI\n"
              " spread, occasional faded channels; hopping + fusion keep the\n"
              " accuracy close to the clean model)\n");
  return 0;
}
